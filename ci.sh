#!/usr/bin/env bash
# CI entry point: build, full test suite, and a fixed-range chaos smoke
# sweep. Everything runs offline — dependencies are vendored under
# `vendor/` and resolved through the workspace, so no network is needed.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== lint (clippy, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== format check =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --offline

echo "== test suite =="
cargo test -q --offline

echo "== chaos smoke (25 seeds, fixed range, parallel sweep) =="
# A deterministic subset of the default 250-seed sweep; the fixed range
# keeps the smoke run reproducible and fast, and SWEEP_JOBS exercises the
# parallel sweep dispatcher (fingerprints are byte-identical at any job
# count). See crates/integration/tests/chaos.rs and DESIGN.md §8, §10.
CHAOS_SEED_START=0 CHAOS_SEEDS=25 SWEEP_JOBS="${SWEEP_JOBS:-4}" \
    cargo test -q --offline -p integration --test chaos

echo "== native backend smoke (quickstart + fig5-small on OS threads) =="
# The same portable programs on the native threaded backend, compared
# against the simulator's per-consumer payload fingerprints. Real threads
# can deadlock rather than fail, so bound each run with a wall-clock
# timeout. See DESIGN.md §11.
timeout 120 cargo run --release --offline -q -p integration \
    --example quickstart_native -- --backend both
timeout 180 cargo test -q --release --offline -p integration \
    --test backend_equivalence

echo "== socket backend smoke (multi-process equivalence over Unix sockets) =="
# The same portable programs again, this time with one OS *process* per
# rank and every payload crossing the Wire codec over Unix-domain
# sockets (DESIGN.md §16). backend_equivalence certifies the socket
# fingerprints against sim and native; recv_deadline_semantics pins the
# half-read-frame and absolute-deadline contracts; the quickstart run
# exercises the launcher + merged wall-clock trace end to end. Process
# worlds can wedge rather than fail, so everything is timeout-bounded.
timeout 300 cargo test -q --release --offline -p socket
timeout 300 cargo test -q --release --offline -p integration \
    --test backend_equivalence socket_
timeout 300 cargo test -q --release --offline -p integration \
    --test recv_deadline_semantics
timeout 120 cargo run --release --offline -q -p integration \
    --example quickstart_native -- --backend socket \
    --trace target/quickstart_socket.trace.json

echo "== replica smoke (VSR failover: sim kills + native + 8-process socket) =="
# The viewstamped-replication subsystem (DESIGN.md §17): protocol unit
# tests, simulator kills at exact element cursors, a native-thread
# abandonment run and the 8-process socket abort/failover test, plus a
# consumer-kill slice of the chaos sweep (primary element-kills, standby
# kills, and the pinned unreplicated terminate-and-account contract).
# Failover paths wedge rather than fail when broken, so everything is
# timeout-bounded. See crates/replica and DESIGN.md §17.
timeout 300 cargo test -q --release --offline -p replica
# The `replicated` filter selects exactly the consumer-kill tests
# (including the *un*replicated terminate-and-account regression).
CHAOS_SEED_START=0 CHAOS_SEEDS=25 SWEEP_JOBS="${SWEEP_JOBS:-4}" \
    timeout 600 cargo test -q --release --offline -p integration \
    --test chaos replicated

echo "== streamprof smoke (chrome traces + golden byte-compare) =="
# fig2 rendered through the streamprof adapters (ASCII Gantt must stay
# byte-identical to the pre-streamprof output) plus Chrome-trace export;
# the golden test byte-compares the sim quickstart trace and structurally
# validates the native one. See DESIGN.md §12.
cargo run --release --offline -q -p bench-harness --bin fig2 -- --chrome-trace \
    > /dev/null
timeout 180 cargo test -q --release --offline -p integration \
    --test streamprof_trace

echo "== schedcheck model checking (bounded exhaustive interleavings) =="
# The native backend's lock-free core — mailbox push/drain, eventcount
# park, deadline receives, batched credit returns, a small tree
# collective — re-compiled against schedcheck's shadow primitives
# (--cfg schedcheck switches the native::sync facade) and explored
# exhaustively up to a preemption bound: every clean model must cover
# >= 1,000 distinct schedules with zero SC201-SC203 violations, and the
# seeded known-bad tests (including PR 6's real lost-wakeup bug,
# reintroduced locally) must be caught with replayable traces. The
# separate target dir keeps the cfg'd build from thrashing the normal
# cache. See DESIGN.md §14.
SCHEDCHECK_PREEMPTIONS=2 RUSTFLAGS='--cfg schedcheck' \
    CARGO_TARGET_DIR=target/schedcheck \
    timeout 600 cargo test -q --release --offline -p schedcheck
SCHEDCHECK_PREEMPTIONS=2 RUSTFLAGS='--cfg schedcheck' \
    CARGO_TARGET_DIR=target/schedcheck \
    timeout 600 cargo test -q --release --offline -p native --test schedcheck_models

echo "== native stress battery (reduced iterations, watchdog-bounded) =="
# The concurrency battery behind the lock-free mailbox and the tree
# collectives: MPSC hammering, lost-wakeup polling races, deadline
# recompute under spurious wakes, a credit-window audit at several ack
# batch sizes, and randomized interleavings. NATIVE_STRESS_ITERS=1 keeps
# CI fast; hang-prone tests abort themselves via an internal watchdog,
# the timeout is the backstop. See DESIGN.md §13.
NATIVE_STRESS_ITERS=1 timeout 300 cargo test -q --release --offline \
    -p native --test native_stress

echo "== native perf smoke (quick gate vs committed baseline) =="
# Wall-clock throughput of the native backend on the bench scenarios
# (incast/pingpong/fanin/coll/stream) against the committed quick-mode
# capture: message and element counts must match exactly, wall time may
# not exceed NATIVE_BENCH_MAX_RATIO (default 4x) of the baseline's, and
# the quick baseline's embedded pre-overhaul capture must show a clear
# incast win (quick-mode bar 1.5x: the small CI incast is spawn-bound).
# The real acceptance bar — full-workload incast >= 3x over the
# pre-overhaul backend — is audited from the committed full artifact
# below, which costs nothing and holds on any host. See DESIGN.md §13.
timeout 300 cargo run --release --offline -q -p bench-harness --bin native_bench -- \
    --quick --check --baseline results/native_quick_baseline.json \
    --out target/BENCH_native_quick.json
cargo run --release --offline -q -p bench-harness --bin native_bench -- \
    --audit results/BENCH_native.json

echo "== engine perf smoke (quick gate vs committed baseline) =="
# Virtual times and message counts must match the committed quick-mode
# capture exactly (the timing model is deterministic — drift means a
# behaviour change); wall time may not exceed ENGINE_BENCH_MAX_RATIO
# (default 3x) of the baseline's. This also gates the streamprof hooks:
# with no Profiled wrapper attached they must cost nothing, so the
# virtual-time capture may not drift. Both this gate and the native one
# above include the agg_incast scenario (tree_reduce over 512 virtual /
# 64 real ranks), so the aggregation operators' timing and message
# counts are pinned by the committed baselines. See DESIGN.md §10, §15.
cargo run --release --offline -q -p bench-harness --bin engine_bench -- \
    --quick --check --baseline results/engine_quick_baseline.json \
    --out target/BENCH_engine_quick.json

echo "== extended-scale fig5 smoke (tree aggregation vs flat incast) =="
# One point of the FIG5_EXTENDED sweep (coarse granularity, 1,024 ranks,
# fixed seed) — enough to prove the aggregated master drain collapses
# versus the flat pipeline without paying for the full 16K sweep. The
# binary prints both drains; the committed 16K artifacts are
# results/fig5_extended.* and fig5_master_drain.*. Time-boxed because a
# weak-scaling point is thread-per-rank on the host; RESULTS_DIR keeps
# the partial sweep away from the committed artifacts. See DESIGN.md §15.
FIG5_EXTENDED=1 MAX_PROCS=1024 RESULTS_DIR=target/ci_results timeout 600 \
    cargo run --release --offline -q -p bench-harness --bin fig5

echo "== ci.sh: all green =="

#!/usr/bin/env bash
# CI entry point: build, full test suite, and a fixed-range chaos smoke
# sweep. Everything runs offline — dependencies are vendored under
# `vendor/` and resolved through the workspace, so no network is needed.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== lint (clippy, warnings are errors) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== format check =="
cargo fmt --check

echo "== build (release) =="
cargo build --release --offline

echo "== test suite =="
cargo test -q --offline

echo "== chaos smoke (25 seeds, fixed range) =="
# A deterministic subset of the default 250-seed sweep; the fixed range
# keeps the smoke run reproducible and fast. See crates/integration/
# tests/chaos.rs and DESIGN.md §8.
CHAOS_SEED_START=0 CHAOS_SEEDS=25 \
    cargo test -q --offline -p integration --test chaos

echo "== ci.sh: all green =="

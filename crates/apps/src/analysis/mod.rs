//! Decoupled workload analysis — the paper's Listing 1 as a library.
//!
//! An application alternates `Calculation()` with an analysis of the
//! workload distribution across processes (min / max / median), a common
//! load-balancing ingredient. Conventionally this costs three global
//! reductions per analysis round ("often the bottleneck of scalability");
//! decoupled, the computation group streams workload updates to a small
//! analysis group that digests them on the fly.

use std::sync::Arc;

use mpisim::{MachineConfig, World, WorldOutcome};
use mpistream::{run_decoupled, ChannelConfig, GroupSpec, Transport};
use parking_lot::Mutex;

/// One workload report streamed to the analysis group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadUpdate {
    pub rank: usize,
    pub step: usize,
    pub work_units: u64,
}

mpistream::wire_struct!(WorkloadUpdate { rank, step, work_units });

/// Distribution digest the analysis group maintains.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadDigest {
    pub samples: u64,
    pub min: u64,
    pub max: u64,
    pub median: u64,
}

/// Exact min/max/median over a set of samples (the analysis operator).
pub fn min_max_median(samples: &mut [u64]) -> WorkloadDigest {
    if samples.is_empty() {
        return WorkloadDigest::default();
    }
    samples.sort_unstable();
    WorkloadDigest {
        samples: samples.len() as u64,
        min: samples[0],
        max: samples[samples.len() - 1],
        median: samples[samples.len() / 2],
    }
}

/// Tunables of the analysis case study.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    pub machine: MachineConfig,
    pub seed: u64,
    /// Calculation steps per rank.
    pub steps: usize,
    /// Modelled seconds per work unit.
    pub secs_per_unit: f64,
    /// One analysis rank per `alpha_every` (decoupled only).
    pub alpha_every: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            machine: MachineConfig::default(),
            seed: 0xA11A,
            steps: 50,
            secs_per_unit: 1e-7,
            alpha_every: 16,
        }
    }
}

/// Deterministic per-rank workload trajectory (an LCG walk, so both
/// implementations and the oracle see the same values).
pub fn workload_at(rank: usize, step: usize) -> u64 {
    let mut x = (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for _ in 0..=step {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    500 + x % 2000
}

/// Result of one analysis run.
pub struct AnalysisResult {
    pub outcome: WorldOutcome,
    /// Digest over every `(rank, step)` sample, assembled at one rank.
    pub digest: WorkloadDigest,
}

/// Serial oracle over all samples.
pub fn oracle(compute_ranks: usize, steps: usize) -> WorkloadDigest {
    let mut all = Vec::with_capacity(compute_ranks * steps);
    for r in 0..compute_ranks {
        for s in 0..steps {
            all.push(workload_at(r, s));
        }
    }
    min_max_median(&mut all)
}

/// Conventional implementation: every rank joins three reductions per
/// step (min, max, and a median stand-in via a full gather at a root —
/// medians do not decompose, which is exactly why this pattern hurts).
pub fn run_reference(nprocs: usize, cfg: &AnalysisConfig) -> AnalysisResult {
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let digest: Arc<Mutex<WorkloadDigest>> = Arc::new(Mutex::new(WorkloadDigest::default()));
    let d2 = digest.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let mut all: Vec<u64> = Vec::new();
        for step in 0..cfg2.steps {
            let w = workload_at(me, step);
            rank.compute(w as f64 * cfg2.secs_per_unit);
            // min and max reduce cheaply...
            let _ = rank.allreduce(&comm, 8, w, |a, b| *a = (*a).min(*b));
            let _ = rank.allreduce(&comm, 8, w, |a, b| *a = (*a).max(*b));
            // ...but the median needs the samples themselves.
            if let Some(ws) = rank.gatherv(&comm, 0, 8, w) {
                all.extend(ws);
            }
        }
        if me == 0 {
            *d2.lock() = min_max_median(&mut all);
        }
    });
    let digest = digest.lock().clone();
    AnalysisResult { outcome, digest }
}

/// Decoupled implementation (Listing 1): stream updates to the analysis
/// group; rank `consumers[0]` assembles the digest.
pub fn run_decoupled_analysis(nprocs: usize, cfg: &AnalysisConfig) -> AnalysisResult {
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let digest: Arc<Mutex<WorkloadDigest>> = Arc::new(Mutex::new(WorkloadDigest::default()));
    let d2 = digest.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let steps = cfg2.steps;
        let secs_per_unit = cfg2.secs_per_unit;
        let d3 = d2.clone();
        run_decoupled::<WorkloadUpdate, _, _, _>(
            rank,
            &comm,
            spec,
            ChannelConfig { element_bytes: 1 << 10, ..ChannelConfig::default() },
            move |rank, p| {
                let me = rank.world_rank();
                for step in 0..steps {
                    let w = workload_at(me, step);
                    rank.compute(w as f64 * secs_per_unit);
                    p.stream.isend(rank, WorkloadUpdate { rank: me, step, work_units: w });
                }
            },
            move |rank, c| {
                let mut samples = Vec::new();
                c.stream.operate(rank, |_, u| samples.push(u.work_units));
                // Consumers gather their shards at consumer 0 for the
                // global digest.
                let shard_bytes = samples.len() as u64 * 8;
                if let Some(shards) = rank.gatherv(&c.group, 0, shard_bytes, samples) {
                    let mut all: Vec<u64> = shards.into_iter().flatten().collect();
                    *d3.lock() = min_max_median(&mut all);
                }
            },
        );
    });
    let digest = digest.lock().clone();
    AnalysisResult { outcome, digest }
}

/// Profiled decoupled analysis run for granularity sweeps: the same
/// streaming pattern as [`run_decoupled_analysis`] (minus the final
/// digest gather) under `streamprof` instrumentation, with the channel
/// granularity `S` (`element_bytes`) as a parameter. Returns the virtual
/// makespan and the recorded trace — the substrate for fitting the
/// paper's β(S)/Tσ from observations instead of assuming them (see
/// `examples/alpha_tuning.rs`).
///
/// Unlike the digest variant, the consumer here models per-update
/// analysis cost (normalised so a consumer's total OP1 work matches one
/// producer's OP0 work) — without a modelled `T_W1` there is nothing to
/// overlap and the effective β is trivially 1.
pub fn run_profiled_analysis(
    nprocs: usize,
    cfg: &AnalysisConfig,
    element_bytes: u64,
) -> (f64, streamprof::Trace) {
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let sink = streamprof::ProfSink::new(streamprof::Clock::Virtual);
    let s2 = sink.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let mut rank = streamprof::Profiled::new(rank, s2.clone());
        let comm = rank.world_group();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let steps = cfg2.steps;
        let secs_per_unit = cfg2.secs_per_unit;
        run_decoupled::<WorkloadUpdate, _, _, _>(
            &mut rank,
            &comm,
            spec,
            ChannelConfig { element_bytes, ..ChannelConfig::default() },
            move |rank, p| {
                let me = rank.world_rank();
                for step in 0..steps {
                    let w = workload_at(me, step);
                    rank.compute(w as f64 * secs_per_unit);
                    p.stream.isend(rank, WorkloadUpdate { rank: me, step, work_units: w });
                }
            },
            move |rank, c| {
                let fan_in = (cfg2.alpha_every - 1).max(1) as f64;
                let per_update = secs_per_unit / fan_in;
                c.stream.operate(rank, |rank, u| {
                    rank.compute(u.work_units as f64 * per_update);
                });
            },
        );
    });
    (outcome.elapsed_secs(), sink.take())
}

/// The granularity-sweep run of [`run_profiled_analysis`] with a
/// producer-side [`Combiner`](mpistream::Combiner) in front of the update
/// stream: `combine_every` per-step updates destined for the same
/// consumer are merged into one batch element before it enters the
/// channel, so the per-element overhead `o` of Eq. 4 is paid once per
/// batch instead of once per update. `combine_every = 1` is the
/// degenerate no-combining case (identical message count to pushing each
/// update straight into the stream), which makes the two fits directly
/// comparable: same routing, same bytes, only the fold factor differs.
///
/// Returns the virtual makespan, the recorded trace, and the combiner
/// counters summed over the producers (fold factor ≈ `combine_every`).
pub fn run_profiled_combined_analysis(
    nprocs: usize,
    cfg: &AnalysisConfig,
    element_bytes: u64,
    combine_every: usize,
) -> (f64, streamprof::Trace, mpistream::CombinerStats) {
    use mpistream::Combiner;
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let sink = streamprof::ProfSink::new(streamprof::Clock::Virtual);
    let s2 = sink.clone();
    let cfg2 = cfg.clone();
    let stats: Arc<Mutex<mpistream::CombinerStats>> =
        Arc::new(Mutex::new(mpistream::CombinerStats::default()));
    let st2 = stats.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let mut rank = streamprof::Profiled::new(rank, s2.clone());
        let comm = rank.world_group();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let steps = cfg2.steps;
        let secs_per_unit = cfg2.secs_per_unit;
        let st3 = st2.clone();
        run_decoupled::<Vec<WorkloadUpdate>, _, _, _>(
            &mut rank,
            &comm,
            spec,
            ChannelConfig { element_bytes, ..ChannelConfig::default() },
            move |rank, p| {
                let me = rank.world_rank();
                let nc = p.stream.channel().consumers().len();
                let mut comb = Combiner::new(p.stream, combine_every);
                for step in 0..steps {
                    let w = workload_at(me, step);
                    rank.compute(w as f64 * secs_per_unit);
                    let update = vec![WorkloadUpdate { rank: me, step, work_units: w }];
                    comb.push(rank, p.stream, me % nc, update, |acc, mut e| {
                        acc.append(&mut e);
                    });
                }
                let s = comb.finish(rank, p.stream);
                let mut sum = st3.lock();
                sum.folded += s.folded;
                sum.emitted += s.emitted;
            },
            move |rank, c| {
                let fan_in = (cfg2.alpha_every - 1).max(1) as f64;
                let per_update = secs_per_unit / fan_in;
                c.stream.operate(rank, |rank, batch| {
                    for u in batch {
                        rank.compute(u.work_units as f64 * per_update);
                    }
                });
            },
        );
    });
    let stats = *stats.lock();
    (outcome.elapsed_secs(), sink.take(), stats)
}

/// Communication topology of [`run_decoupled_analysis`] (Listing 1) for
/// the `streamcheck` static pass: a single statically-routed update stream
/// from the computation group to the analysis group.
pub fn topology(nprocs: usize, cfg: &AnalysisConfig) -> streamcheck::Topology {
    use mpistream::Role;
    use streamcheck::{ChannelDecl, GroupDecl, Topology};
    let spec = GroupSpec { every: cfg.alpha_every };
    let g0: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
    let g1: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
    Topology::new(nprocs)
        .group(GroupDecl::new("computation", g0.clone()))
        .group(GroupDecl::new("analysis", g1.clone()))
        .channel(ChannelDecl::new(
            "updates",
            g0,
            g1,
            ChannelConfig { element_bytes: 1 << 10, ..ChannelConfig::default() },
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::NoiseModel;

    fn cfg() -> AnalysisConfig {
        AnalysisConfig {
            machine: MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() },
            steps: 12,
            alpha_every: 4,
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn min_max_median_handles_edges() {
        assert_eq!(min_max_median(&mut []), WorkloadDigest::default());
        let mut one = vec![7];
        assert_eq!(
            min_max_median(&mut one),
            WorkloadDigest { samples: 1, min: 7, max: 7, median: 7 }
        );
        let mut v = vec![5, 1, 9, 3, 7];
        let d = min_max_median(&mut v);
        assert_eq!((d.min, d.median, d.max), (1, 5, 9));
    }

    #[test]
    fn reference_digest_matches_oracle() {
        let c = cfg();
        let res = run_reference(8, &c);
        assert_eq!(res.digest, oracle(8, c.steps));
    }

    #[test]
    fn decoupled_digest_matches_oracle_over_compute_ranks() {
        let c = cfg();
        // 8 ranks, every=4: compute ranks are 0,1,2,4,5,6 — the oracle
        // must cover exactly those trajectories.
        let res = run_decoupled_analysis(8, &c);
        let mut all = Vec::new();
        for r in [0usize, 1, 2, 4, 5, 6] {
            for s in 0..c.steps {
                all.push(workload_at(r, s));
            }
        }
        assert_eq!(res.digest, min_max_median(&mut all));
    }

    #[test]
    fn decoupling_pays_off_when_reductions_dominate() {
        // Make compute cheap so the three-collectives-per-step pattern is
        // the bottleneck the paper describes.
        let c = AnalysisConfig { secs_per_unit: 1e-9, steps: 30, ..cfg() };
        let t_ref = run_reference(64, &c).outcome.elapsed_secs();
        let t_dec = run_decoupled_analysis(64, &c).outcome.elapsed_secs();
        assert!(
            t_dec < t_ref,
            "decoupled analysis ({t_dec}) must beat per-step reductions ({t_ref})"
        );
    }

    #[test]
    fn profiled_analysis_yields_a_fittable_trace() {
        let c = cfg();
        let (makespan, trace) = run_profiled_analysis(8, &c, 1 << 10);
        assert!(makespan > 0.0);
        assert!((trace.makespan_secs() - makespan).abs() < 1e-9);
        let report = streamprof::fit(&trace).expect("trace carries stream counters");
        // 8 ranks, every=4: six producers feed two consumers.
        assert_eq!(report.producers, vec![0, 1, 2, 4, 5, 6]);
        assert_eq!(report.consumers, vec![3, 7]);
        assert_eq!(report.elems_mean, c.steps as f64);
        assert!(report.overhead_o > 0.0);
        assert!((0.0..=1.0).contains(&report.beta_eff));
        // Determinism: the profiled run is a pure simulation.
        let (m2, t2) = run_profiled_analysis(8, &c, 1 << 10);
        assert_eq!(makespan, m2);
        assert_eq!(trace.to_chrome_json(), t2.to_chrome_json());
    }

    #[test]
    fn combined_profiled_analysis_amortizes_per_element_overhead() {
        let c = cfg();
        let (m1, t1, s1) = run_profiled_combined_analysis(8, &c, 1 << 10, 1);
        let (m4, t4, s4) = run_profiled_combined_analysis(8, &c, 1 << 10, 4);
        // Same logical updates either way; combining divides the emitted
        // element count by the fold factor (exactly, since steps % 4 == 0).
        assert_eq!(s1.folded, s4.folded);
        assert_eq!(s1.emitted, s1.folded);
        assert_eq!(s4.emitted, s4.folded / 4);
        assert!((s4.fold_factor() - 4.0).abs() < 1e-9);
        // Both traces fit, and the combined stream carries 1/4 the elements.
        let f1 = streamprof::fit(&t1).expect("uncombined trace fits");
        let f4 = streamprof::fit(&t4).expect("combined trace fits");
        assert!((f1.elems_mean - c.steps as f64).abs() < 1e-9);
        assert!((f4.elems_mean - c.steps as f64 / 4.0).abs() < 1e-9);
        // The amortization the operator exists for: overhead_o is paid per
        // *emitted* element, so the cost per logical update falls by about
        // the fold factor (at this tiny scale the makespan itself is
        // overlap-dominated and not the discriminating signal).
        let per_update_1 = f1.overhead_o;
        let per_update_4 = f4.overhead_o * s4.emitted as f64 / s4.folded as f64;
        assert!(
            per_update_4 < 0.5 * per_update_1,
            "combining must amortize per-update overhead: {per_update_4:.3e} vs {per_update_1:.3e}"
        );
        assert!(m1 > 0.0 && m4 > 0.0);
    }

    #[test]
    fn workload_trajectories_are_deterministic() {
        assert_eq!(workload_at(3, 5), workload_at(3, 5));
        assert_ne!(workload_at(3, 5), workload_at(4, 5));
        assert_ne!(workload_at(3, 5), workload_at(3, 6));
        for r in 0..20 {
            for s in 0..20 {
                let w = workload_at(r, s);
                assert!((500..2500).contains(&w));
            }
        }
    }
}

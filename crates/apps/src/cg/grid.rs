//! Local subdomain grid for the 7-point Poisson stencil, with halo layers.
//!
//! Each rank owns an `n[0] × n[1] × n[2]` block of interior unknowns,
//! stored with one halo layer per side. Global boundary halos stay zero
//! (homogeneous Dirichlet), so the same code covers interior and edge
//! subdomains.

/// One field (vector) over a rank's subdomain, halo included.
#[derive(Clone, Debug)]
pub struct Field {
    /// Owned cells per dimension.
    pub n: [usize; 3],
    /// `(n+2)³` values, row-major with k fastest.
    pub data: Vec<f64>,
}

impl Field {
    pub fn zeros(n: [usize; 3]) -> Field {
        let len = (n[0] + 2) * (n[1] + 2) * (n[2] + 2);
        Field { n, data: vec![0.0; len] }
    }

    /// Flat index of `(i, j, k)` where each coordinate ranges over
    /// `0..n+2` (0 and n+1 are halo).
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * (self.n[1] + 2) + j) * (self.n[2] + 2) + k
    }

    /// Evaluate `f(gx, gy, gz)` on every owned cell, where the global
    /// index of local cell `(i,j,k)` (1-based owned) is `offset + (i,j,k)`.
    pub fn fill_from(&mut self, offset: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f64) {
        for i in 1..=self.n[0] {
            for j in 1..=self.n[1] {
                for k in 1..=self.n[2] {
                    let v = f(offset[0] + i - 1, offset[1] + j - 1, offset[2] + k - 1);
                    let id = self.idx(i, j, k);
                    self.data[id] = v;
                }
            }
        }
    }

    /// Dot product over owned cells only.
    pub fn dot(&self, other: &Field) -> f64 {
        debug_assert_eq!(self.n, other.n);
        let mut acc = 0.0;
        for i in 1..=self.n[0] {
            for j in 1..=self.n[1] {
                for k in 1..=self.n[2] {
                    let id = self.idx(i, j, k);
                    acc += self.data[id] * other.data[id];
                }
            }
        }
        acc
    }

    /// `self += a * other` over owned cells.
    pub fn axpy(&mut self, a: f64, other: &Field) {
        debug_assert_eq!(self.n, other.n);
        for i in 1..=self.n[0] {
            for j in 1..=self.n[1] {
                for k in 1..=self.n[2] {
                    let id = self.idx(i, j, k);
                    self.data[id] += a * other.data[id];
                }
            }
        }
    }

    /// `self = other + b * self` over owned cells (the CG `p` update).
    pub fn xpby(&mut self, other: &Field, b: f64) {
        debug_assert_eq!(self.n, other.n);
        for i in 1..=self.n[0] {
            for j in 1..=self.n[1] {
                for k in 1..=self.n[2] {
                    let id = self.idx(i, j, k);
                    self.data[id] = other.data[id] + b * self.data[id];
                }
            }
        }
    }

    /// Copy the owned boundary layer facing `(dim, dir)` — the data a
    /// neighbour needs for its halo. `dir` is ±1.
    pub fn extract_face(&self, dim: usize, dir: isize) -> Vec<f64> {
        let fixed = if dir > 0 { self.n[dim] } else { 1 };
        self.slice_plane(dim, fixed)
    }

    /// Write `values` into the halo layer facing `(dim, dir)`.
    pub fn set_halo(&mut self, dim: usize, dir: isize, values: &[f64]) {
        let fixed = if dir > 0 { self.n[dim] + 1 } else { 0 };
        self.write_plane(dim, fixed, values);
    }

    fn plane_dims(&self, dim: usize) -> (usize, usize, usize) {
        // (other1, other2) dims and expected length.
        let others: Vec<usize> = (0..3).filter(|&d| d != dim).collect();
        (others[0], others[1], self.n[others[0]] * self.n[others[1]])
    }

    fn slice_plane(&self, dim: usize, fixed: usize) -> Vec<f64> {
        let (d1, d2, len) = self.plane_dims(dim);
        let mut out = Vec::with_capacity(len);
        for a in 1..=self.n[d1] {
            for b in 1..=self.n[d2] {
                let mut c = [0usize; 3];
                c[dim] = fixed;
                c[d1] = a;
                c[d2] = b;
                out.push(self.data[self.idx(c[0], c[1], c[2])]);
            }
        }
        out
    }

    fn write_plane(&mut self, dim: usize, fixed: usize, values: &[f64]) {
        let (d1, d2, len) = self.plane_dims(dim);
        assert_eq!(values.len(), len, "face size mismatch");
        let mut it = values.iter();
        for a in 1..=self.n[d1] {
            for b in 1..=self.n[d2] {
                let mut c = [0usize; 3];
                c[dim] = fixed;
                c[d1] = a;
                c[d2] = b;
                let id = self.idx(c[0], c[1], c[2]);
                self.data[id] = *it.next().expect("length checked");
            }
        }
    }

    /// 7-point negative Laplacian `q = A·p` over the owned region
    /// selected by `shell`: `Inner` skips the outermost owned layer,
    /// `Boundary` computes only that layer, `All` does both. `inv_h2` is
    /// `1/h²` per dimension.
    pub fn laplacian_into(&self, q: &mut Field, inv_h2: [f64; 3], shell: Shell) {
        debug_assert_eq!(self.n, q.n);
        for i in 1..=self.n[0] {
            for j in 1..=self.n[1] {
                for k in 1..=self.n[2] {
                    let on_boundary = i == 1
                        || i == self.n[0]
                        || j == 1
                        || j == self.n[1]
                        || k == 1
                        || k == self.n[2];
                    match shell {
                        Shell::Inner if on_boundary => continue,
                        Shell::Boundary if !on_boundary => continue,
                        _ => {}
                    }
                    let c = self.data[self.idx(i, j, k)];
                    let v = inv_h2[0]
                        * (2.0 * c
                            - self.data[self.idx(i - 1, j, k)]
                            - self.data[self.idx(i + 1, j, k)])
                        + inv_h2[1]
                            * (2.0 * c
                                - self.data[self.idx(i, j - 1, k)]
                                - self.data[self.idx(i, j + 1, k)])
                        + inv_h2[2]
                            * (2.0 * c
                                - self.data[self.idx(i, j, k - 1)]
                                - self.data[self.idx(i, j, k + 1)]);
                    let id = q.idx(i, j, k);
                    q.data[id] = v;
                }
            }
        }
    }
}

/// Which part of the owned region a stencil application covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shell {
    All,
    Inner,
    Boundary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_and_set_roundtrip_all_faces() {
        let mut f = Field::zeros([3, 4, 5]);
        // Unique values everywhere.
        for idx in 0..f.data.len() {
            f.data[idx] = idx as f64;
        }
        for dim in 0..3 {
            for dir in [-1isize, 1] {
                let face = f.extract_face(dim, dir);
                let (_, _, len) = f.plane_dims(dim);
                assert_eq!(face.len(), len);
                let mut g = Field::zeros([3, 4, 5]);
                g.set_halo(dim, dir, &face);
                // The halo plane of g must equal the owned boundary of f.
                let fixed_src = if dir > 0 { f.n[dim] } else { 1 };
                let fixed_dst = if dir > 0 { f.n[dim] + 1 } else { 0 };
                assert_eq!(g.slice_halo_for_test(dim, fixed_dst), f.slice_plane(dim, fixed_src));
            }
        }
    }

    impl Field {
        fn slice_halo_for_test(&self, dim: usize, fixed: usize) -> Vec<f64> {
            self.slice_plane(dim, fixed)
        }
    }

    #[test]
    fn laplacian_of_linear_function_is_zero_inside() {
        // u = x + 2y + 3z is harmonic: A u = 0 wherever the stencil has
        // correct neighbours (interior of the owned region).
        let n = [6, 6, 6];
        let mut u = Field::zeros(n);
        for i in 0..n[0] + 2 {
            for j in 0..n[1] + 2 {
                for k in 0..n[2] + 2 {
                    let id = u.idx(i, j, k);
                    u.data[id] = i as f64 + 2.0 * j as f64 + 3.0 * k as f64;
                }
            }
        }
        let mut q = Field::zeros(n);
        u.laplacian_into(&mut q, [1.0; 3], Shell::All);
        for i in 1..=n[0] {
            for j in 1..=n[1] {
                for k in 1..=n[2] {
                    assert!(q.data[q.idx(i, j, k)].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn inner_plus_boundary_equals_all() {
        let n = [5, 4, 6];
        let mut u = Field::zeros(n);
        for (i, v) in u.data.iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin();
        }
        let inv = [1.0, 4.0, 9.0];
        let mut q_all = Field::zeros(n);
        u.laplacian_into(&mut q_all, inv, Shell::All);
        let mut q_split = Field::zeros(n);
        u.laplacian_into(&mut q_split, inv, Shell::Inner);
        u.laplacian_into(&mut q_split, inv, Shell::Boundary);
        assert_eq!(q_all.data, q_split.data);
    }

    #[test]
    fn dot_and_axpy_cover_owned_cells_only() {
        let n = [2, 2, 2];
        let mut a = Field::zeros(n);
        let mut b = Field::zeros(n);
        // Poison the halos; they must not contribute.
        for v in a.data.iter_mut() {
            *v = 100.0;
        }
        for v in b.data.iter_mut() {
            *v = 100.0;
        }
        for i in 1..=2 {
            for j in 1..=2 {
                for k in 1..=2 {
                    let id = a.idx(i, j, k);
                    a.data[id] = 2.0;
                    b.data[id] = 3.0;
                }
            }
        }
        assert_eq!(a.dot(&b), 8.0 * 6.0);
        a.axpy(1.0, &b);
        assert_eq!(a.data[a.idx(1, 1, 1)], 5.0);
        a.xpby(&b, 0.0);
        assert_eq!(a.data[a.idx(2, 2, 2)], 3.0);
    }
}

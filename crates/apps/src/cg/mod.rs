//! Conjugate Gradient Poisson solver (the Fig. 6 case study).
//!
//! Solves the 3-D Poisson problem `-∇²u = f` with homogeneous Dirichlet
//! boundaries on a Cartesian grid, decomposed over ranks in blocks. Each
//! iteration does a halo exchange of the search direction, a 7-point
//! stencil application, and two dot-product allreduces — the structure of
//! the open-source reference the paper decouples (Hoefler et al.,
//! "Optimizing a conjugate gradient solver with non-blocking collective
//! operations", cited as [17]).
//!
//! Three variants:
//! - [`run_blocking`] — halo exchange completes before any compute;
//! - [`run_nonblocking`] — halo exchange overlaps the inner stencil;
//! - [`run_decoupled`] — boundary values stream to a decoupled group that
//!   aggregates all six neighbour faces per rank and streams one combined
//!   packet back (§IV-C of the paper), overlapping the inner stencil.
//!
//! The math is real: all variants converge on the same global grid and are
//! verified against a serial oracle and the manufactured solution
//! `u = sin(πx)sin(πy)sin(πz)`.

pub mod grid;

use std::f64::consts::PI;
use std::sync::Arc;

use mpisim::{dims_create, CartComm, MachineConfig, Rank, Src, World, WorldOutcome};
use mpistream::{prof_scoped, ChannelConfig, GroupSpec, Role, Stream, StreamChannel, Transport};
use parking_lot::Mutex;

use grid::{Field, Shell};

/// Tunables of the CG experiment.
#[derive(Clone, Debug)]
pub struct CgConfig {
    pub machine: MachineConfig,
    pub seed: u64,
    /// Owned cells per dimension per rank (actual, computed-on grid).
    pub n_local: usize,
    /// Nominal cells per rank driving the compute-time model (the paper
    /// runs 120³ per process).
    pub nominal_cells: f64,
    /// Fixed iteration count (the paper uses 300).
    pub iterations: usize,
    /// Modelled stencil cost: flops per cell per iteration.
    pub stencil_flops_per_cell: f64,
    /// Modelled vector-op cost (dots, axpys): flops per cell per iteration.
    pub vector_flops_per_cell: f64,
    /// Effective flop rate per rank (flops/s).
    pub flop_rate: f64,
    /// Decoupled only: one boundary-aggregation rank per `alpha_every`.
    pub alpha_every: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            machine: MachineConfig::default(),
            seed: 0xC6,
            n_local: 8,
            nominal_cells: 120.0 * 120.0 * 120.0,
            iterations: 50,
            stencil_flops_per_cell: 16.0,
            vector_flops_per_cell: 14.0,
            flop_rate: 0.6e9,
            alpha_every: 16,
        }
    }
}

impl CgConfig {
    /// Seconds of stencil compute per iteration for a rank owning
    /// `scale ×` the nominal cells.
    fn stencil_secs(&self, scale: f64) -> f64 {
        self.nominal_cells * scale * self.stencil_flops_per_cell / self.flop_rate
    }

    fn vector_secs(&self, scale: f64) -> f64 {
        self.nominal_cells * scale * self.vector_flops_per_cell / self.flop_rate
    }

    /// Modelled bytes of one halo face for a rank owning `scale ×` the
    /// nominal cells.
    fn face_bytes(&self, scale: f64) -> u64 {
        ((self.nominal_cells * scale).powf(2.0 / 3.0) * 8.0) as u64
    }

    /// Fraction of the stencil in the subdomain's outermost owned layer.
    fn boundary_fraction(&self) -> f64 {
        let n = self.n_local as f64;
        if n <= 2.0 {
            return 1.0;
        }
        1.0 - ((n - 2.0) / n).powi(3)
    }
}

/// Result of one CG run.
pub struct CgResult {
    pub outcome: WorldOutcome,
    /// Final squared residual ‖r‖².
    pub residual: f64,
    /// Max-norm error against the manufactured solution (only meaningful
    /// when the global grid is cubic; `NaN` otherwise).
    pub solution_error: f64,
}

/// State each rank carries through the CG iterations.
struct CgState {
    x: Field,
    r: Field,
    p: Field,
    q: Field,
    b_norm2: f64,
    rr: f64,
    inv_h2: [f64; 3],
    /// Global interior sizes.
    n_global: [usize; 3],
    offset: [usize; 3],
}

fn manufactured_u(g: [usize; 3], n_global: [usize; 3]) -> f64 {
    let x = (g[0] + 1) as f64 / (n_global[0] + 1) as f64;
    let y = (g[1] + 1) as f64 / (n_global[1] + 1) as f64;
    let z = (g[2] + 1) as f64 / (n_global[2] + 1) as f64;
    (PI * x).sin() * (PI * y).sin() * (PI * z).sin()
}

fn setup_state(cart: &CartComm, crank: usize, n_local: usize) -> CgState {
    let dims = cart.dims();
    let coords = cart.coords(crank);
    let n = [n_local; 3];
    let n_global = [dims[0] * n_local, dims[1] * n_local, dims[2] * n_local];
    let offset = [coords[0] * n_local, coords[1] * n_local, coords[2] * n_local];
    let h: Vec<f64> = n_global.iter().map(|&ng| 1.0 / (ng + 1) as f64).collect();
    let inv_h2 = [1.0 / (h[0] * h[0]), 1.0 / (h[1] * h[1]), 1.0 / (h[2] * h[2])];

    // b = f = 3π² u (RHS of -∇²u = f for the manufactured solution).
    let mut b = Field::zeros(n);
    b.fill_from(offset, |gx, gy, gz| 3.0 * PI * PI * manufactured_u([gx, gy, gz], n_global));
    let b_norm2_local = b.dot(&b);
    let r = b.clone();
    let p = r.clone();
    CgState {
        x: Field::zeros(n),
        rr: b_norm2_local, // local; reduced by callers
        r,
        p,
        q: Field::zeros(n),
        b_norm2: b_norm2_local,
        inv_h2,
        n_global,
        offset,
    }
}

impl CgState {
    /// Max-norm error vs the manufactured solution over owned cells.
    fn local_error(&self) -> f64 {
        let mut err = 0.0f64;
        let n = self.x.n;
        for i in 1..=n[0] {
            for j in 1..=n[1] {
                for k in 1..=n[2] {
                    let g =
                        [self.offset[0] + i - 1, self.offset[1] + j - 1, self.offset[2] + k - 1];
                    let u = manufactured_u(g, self.n_global);
                    err = err.max((self.x.data[self.x.idx(i, j, k)] - u).abs());
                }
            }
        }
        err
    }
}

/// Serial oracle: plain CG on the full grid, no simulator involved.
/// Returns `(final ‖r‖², max-norm solution error)`.
pub fn serial_solve(n_global_per_dim: usize, iterations: usize) -> (f64, f64) {
    let comm = mpisim::Comm::new(0, vec![0]);
    let cart = CartComm::new(comm, vec![1, 1, 1], vec![false; 3]);
    let mut st = setup_state(&cart, 0, n_global_per_dim);
    let mut rr = st.rr;
    for _ in 0..iterations {
        st.p.laplacian_into(&mut st.q, st.inv_h2, Shell::All);
        let pq = st.p.dot(&st.q);
        let alpha = rr / pq;
        st.x.axpy(alpha, &st.p);
        st.r.axpy(-alpha, &st.q);
        let rr_new = st.r.dot(&st.r);
        let beta = rr_new / rr;
        rr = rr_new;
        st.p.xpby(&st.r, beta);
    }
    (rr / st.b_norm2, st.local_error())
}

/// The shared CG iteration skeleton: `exchange` must fill `p`'s halos and
/// apply the stencil into `q` (charging its own compute); the rest of the
/// iteration (dots, updates, allreduces) is identical across variants.
fn cg_loop(
    rank: &mut Rank,
    comm: &mpisim::Comm,
    st: &mut CgState,
    cfg: &CgConfig,
    scale: f64,
    iterations: usize,
    mut exchange_and_stencil: impl FnMut(&mut Rank, &mut CgState, usize),
) -> (f64, f64) {
    let mut rr = rank.allreduce(comm, 8, st.rr, |a, b| *a += b);
    let b_norm2 = rank.allreduce(comm, 8, st.b_norm2, |a, b| *a += b);
    for it in 0..iterations {
        exchange_and_stencil(rank, st, it);
        rank.traced("comp", |rank| rank.compute(cfg.vector_secs(scale)));
        let pq_local = st.p.dot(&st.q);
        let pq = rank.traced("comm", |rank| rank.allreduce(comm, 8, pq_local, |a, b| *a += b));
        let alpha = rr / pq;
        st.x.axpy(alpha, &st.p);
        st.r.axpy(-alpha, &st.q);
        let rr_local = st.r.dot(&st.r);
        let rr_new = rank.traced("comm", |rank| rank.allreduce(comm, 8, rr_local, |a, b| *a += b));
        let beta = rr_new / rr;
        rr = rr_new;
        st.p.xpby(&st.r, beta);
    }
    let err_local = st.local_error();
    let err = rank.allreduce(comm, 8, err_local, |a, b| *a = a.max(*b));
    (rr / b_norm2, err)
}

/// Exchange `p`'s halos as the reference does — with a *blocking
/// all-to-all collective* (Hoefler et al. [17] build the halo exchange on
/// MPI_Alltoallv): a global synchronization plus the pairwise-exchange
/// algorithm's `P` rounds, even though only six partners carry data. The
/// payload itself still moves point-to-point so the numerics are real.
fn halo_blocking(rank: &mut Rank, cart: &CartComm, st: &mut CgState, cfg: &CgConfig, scale: f64) {
    let me = cart.comm().rank_of(rank.world_rank()).expect("member");
    let face_bytes = cfg.face_bytes(scale);
    rank.trace_begin("comm");
    // Blocking MPI_Alltoallv: enter together (a collective is a
    // synchronization point) ...
    rank.barrier(cart.comm());
    // ... and walk the pairwise-exchange rounds: one latency + software
    // overhead per peer, including the P-6 empty ones.
    let rounds = cart.comm().size() as u64;
    let per_round = cfg.machine.inter_latency + cfg.machine.send_overhead * 2;
    rank.ctx().advance(per_round * rounds);
    let mut reqs = Vec::new();
    for (dim, dir, nb) in cart.neighbors(me) {
        let face = st.p.extract_face(dim, dir);
        let w = cart.comm().world_rank(nb);
        let tag = halo_tag(dim, dir);
        reqs.push(rank.isend_t(w, tag, face_bytes, face));
    }
    for (dim, dir, nb) in cart.neighbors(me) {
        let w = cart.comm().world_rank(nb);
        // Our -x halo comes from the neighbour's +x face.
        let tag = halo_tag(dim, -dir);
        let (face, _) = rank.recv_t::<Vec<f64>>(Src::Rank(w), tag);
        st.p.set_halo(dim, dir, &face);
    }
    rank.wait_send_all(reqs);
    rank.trace_end("comm");
    rank.traced("comp", |rank| rank.compute(cfg.stencil_secs(scale)));
    st.p.laplacian_into(&mut st.q, st.inv_h2, Shell::All);
}

/// Non-blocking variant: post the sends, apply the inner stencil while
/// faces are in flight, then complete the boundary.
fn halo_nonblocking(
    rank: &mut Rank,
    cart: &CartComm,
    st: &mut CgState,
    cfg: &CgConfig,
    scale: f64,
) {
    let me = cart.comm().rank_of(rank.world_rank()).expect("member");
    let face_bytes = cfg.face_bytes(scale);
    rank.trace_begin("comm");
    let mut reqs = Vec::new();
    for (dim, dir, nb) in cart.neighbors(me) {
        let face = st.p.extract_face(dim, dir);
        let w = cart.comm().world_rank(nb);
        reqs.push(rank.isend_t(w, halo_tag(dim, dir), face_bytes, face));
    }
    rank.trace_end("comm");
    // Overlap: inner stencil while the halos travel.
    let bf = cfg.boundary_fraction();
    rank.traced("comp", |rank| rank.compute(cfg.stencil_secs(scale) * (1.0 - bf)));
    st.p.laplacian_into(&mut st.q, st.inv_h2, Shell::Inner);
    rank.trace_begin("comm");
    for (dim, dir, nb) in cart.neighbors(me) {
        let w = cart.comm().world_rank(nb);
        let (face, _) = rank.recv_t::<Vec<f64>>(Src::Rank(w), halo_tag(dim, -dir));
        st.p.set_halo(dim, dir, &face);
    }
    rank.wait_send_all(reqs);
    rank.trace_end("comm");
    rank.traced("comp", |rank| rank.compute(cfg.stencil_secs(scale) * bf));
    st.p.laplacian_into(&mut st.q, st.inv_h2, Shell::Boundary);
}

fn halo_tag(dim: usize, dir: isize) -> mpisim::Tag {
    mpisim::Tag::user(100 + (dim as u32) * 2 + u32::from(dir > 0))
}

/// Run the blocking reference.
pub fn run_blocking(nprocs: usize, cfg: &CgConfig) -> CgResult {
    run_reference(nprocs, cfg, false)
}

/// Run the non-blocking (overlapping) reference.
pub fn run_nonblocking(nprocs: usize, cfg: &CgConfig) -> CgResult {
    run_reference(nprocs, cfg, true)
}

fn run_reference(nprocs: usize, cfg: &CgConfig, nonblocking: bool) -> CgResult {
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let out: Arc<Mutex<(f64, f64)>> = Arc::new(Mutex::new((f64::NAN, f64::NAN)));
    let out2 = out.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let dims = dims_create(nprocs, 3);
        let cart = CartComm::new(comm.clone(), dims, vec![false; 3]);
        let me = rank.world_rank();
        let mut st = setup_state(&cart, me, cfg2.n_local);
        let (res, err) = cg_loop(rank, &comm, &mut st, &cfg2, 1.0, cfg2.iterations, {
            let cart = cart.clone();
            let cfg3 = cfg2.clone();
            move |rank, st, _it| {
                if nonblocking {
                    halo_nonblocking(rank, &cart, st, &cfg3, 1.0);
                } else {
                    halo_blocking(rank, &cart, st, &cfg3, 1.0);
                }
            }
        });
        if me == 0 {
            *out2.lock() = (res, err);
        }
    });
    let (residual, solution_error) = *out.lock();
    CgResult { outcome, residual, solution_error }
}

/// One streamed boundary face, addressed to a compute rank.
struct FaceMsg {
    /// Destination's rank index within the compute (G0) group.
    dest: usize,
    iter: usize,
    /// Which halo of the destination this fills.
    dim: usize,
    dir: isize,
    values: Vec<f64>,
}

mpistream::wire_struct!(FaceMsg { dest, iter, dim, dir, values });

/// The combined per-iteration halo packet streamed back to a compute rank.
struct HaloPacket {
    iter: usize,
    faces: Vec<(usize, isize, Vec<f64>)>,
}

mpistream::wire_struct!(HaloPacket { iter, faces });

/// The boundary group's aggregation kernel, generic over the transport:
/// collect the faces of each `(destination, iteration)` pair
/// first-come-first-served, and reply with one combined packet the moment
/// the set is complete. `expected[r]` is the number of faces destination
/// rank `r` is owed per iteration. The simulated and native backends run
/// this same function.
fn aggregate_faces<TP: Transport>(
    rank: &mut TP,
    faces_in: &mut Stream<FaceMsg>,
    halo_out: &mut Stream<HaloPacket>,
    expected: &[usize],
) {
    // Faces collected so far for one (destination, iteration).
    type FaceSet = Vec<(usize, isize, Vec<f64>)>;
    let mut pending: std::collections::HashMap<(usize, usize), FaceSet> =
        std::collections::HashMap::new();
    while let Some(msg) = faces_in.recv_one(rank) {
        let key = (msg.dest, msg.iter);
        let entry = pending.entry(key).or_default();
        entry.push((msg.dim, msg.dir, msg.values));
        if entry.len() == expected[msg.dest] {
            let faces = pending.remove(&key).expect("just inserted");
            prof_scoped(rank, "aggregate", |rank| {
                // Small aggregation cost per combined packet.
                rank.compute(1e-6);
                halo_out.isend_to(rank, key.0, HaloPacket { iter: key.1, faces });
            });
        }
    }
    assert!(pending.is_empty(), "all face sets must complete");
    halo_out.terminate(rank);
}

/// Run the decoupled variant: compute ranks stream their faces (routed by
/// *destination*) to the boundary group, which aggregates the up-to-six
/// faces of each destination and streams one combined packet back.
pub fn run_decoupled(nprocs: usize, cfg: &CgConfig) -> CgResult {
    assert!(nprocs >= cfg.alpha_every, "need at least alpha_every ranks");
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let out: Arc<Mutex<(f64, f64)>> = Arc::new(Mutex::new((f64::NAN, f64::NAN)));
    let out2 = out.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let (g0, _g1, role) = spec.split(rank, &comm);
        // The compute group owns the whole grid: each member's share of
        // the nominal workload is inflated by P / |G0| (Eq. 2's 1/(1-α)).
        let scale = nprocs as f64 / g0.size() as f64;
        let fwd_role = role; // G0 produces faces, G1 consumes
        let rev_role = match role {
            Role::Producer => Role::Consumer,
            Role::Consumer => Role::Producer,
            Role::Bystander => Role::Bystander,
        };
        let face_bytes = cfg2.face_bytes(scale);
        let fwd_ch = StreamChannel::create(
            rank,
            &comm,
            fwd_role,
            ChannelConfig { element_bytes: face_bytes, ..ChannelConfig::default() },
        );
        let rev_ch = StreamChannel::create(
            rank,
            &comm,
            rev_role,
            ChannelConfig { element_bytes: face_bytes * 6, ..ChannelConfig::default() },
        );
        let dims = dims_create(g0.size(), 3);
        let cart = CartComm::new(g0.clone(), dims, vec![false; 3]);

        match role {
            Role::Producer => {
                let me = g0.rank_of(rank.world_rank()).expect("in G0");
                let nc = fwd_ch.consumers().len();
                let mut faces_out: Stream<FaceMsg> = Stream::attach(fwd_ch);
                let mut halo_in: Stream<HaloPacket> = Stream::attach(rev_ch);
                let mut st = setup_state(&cart, me, cfg2.n_local);
                let bf = cfg2.boundary_fraction();
                let cart2 = cart.clone();
                let cfg3 = cfg2.clone();
                let fo = &mut faces_out;
                let hi = &mut halo_in;
                let (res, err) = cg_loop(rank, &g0, &mut st, &cfg2, scale, cfg2.iterations, {
                    let cart = cart2;
                    move |rank, st, it| {
                        // Stream each face to the consumer that aggregates
                        // for the *destination* rank.
                        rank.trace_begin("comm");
                        for (dim, dir, nb) in cart.neighbors(me) {
                            let values = st.p.extract_face(dim, dir);
                            let msg = FaceMsg { dest: nb, iter: it, dim, dir: -dir, values };
                            fo.isend_to(rank, nb % nc, msg);
                        }
                        rank.trace_end("comm");
                        // Overlap the inner stencil with the round trip.
                        rank.traced("comp", |rank| {
                            rank.compute(cfg3.stencil_secs(scale) * (1.0 - bf))
                        });
                        st.p.laplacian_into(&mut st.q, st.inv_h2, Shell::Inner);
                        // One combined packet per iteration comes back.
                        rank.trace_begin("comm");
                        let packet = hi.recv_one(rank).expect("halo packet for every iteration");
                        assert_eq!(packet.iter, it, "iteration-ordered replies");
                        for (dim, dir, values) in packet.faces {
                            st.p.set_halo(dim, dir, &values);
                        }
                        rank.trace_end("comm");
                        rank.traced("comp", |rank| rank.compute(cfg3.stencil_secs(scale) * bf));
                        st.p.laplacian_into(&mut st.q, st.inv_h2, Shell::Boundary);
                    }
                });
                faces_out.terminate(rank);
                if me == 0 {
                    *out2.lock() = (res, err);
                }
            }
            Role::Consumer => {
                let mut faces_in: Stream<FaceMsg> = Stream::attach(fwd_ch);
                let mut halo_out: Stream<HaloPacket> = Stream::attach(rev_ch);
                let expected: Vec<usize> =
                    (0..g0.size()).map(|r| cart.neighbors(r).len()).collect();
                aggregate_faces(rank, &mut faces_in, &mut halo_out, &expected);
            }
            Role::Bystander => unreachable!(),
        }
    });
    let (residual, solution_error) = *out.lock();
    CgResult { outcome, residual, solution_error }
}

/// The decoupled solver's communication topology for the `streamcheck`
/// static pass: the compute group streams faces to the boundary group
/// (keyed by the *destination* rank, `nb % nc`), which replies with one
/// combined halo packet per destination (keyed identity). The two channels
/// form a request/reply cycle — with unbounded credit windows, so the
/// checker reports it as an informational cycle, not a credit deadlock.
pub fn topology(nprocs: usize, cfg: &CgConfig) -> streamcheck::Topology {
    use streamcheck::{ChannelDecl, GroupDecl, Topology};
    let spec = GroupSpec { every: cfg.alpha_every };
    let g0: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
    let g1: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
    let scale = nprocs as f64 / g0.len() as f64;
    let face_bytes = cfg.face_bytes(scale);
    let nc = g1.len();
    Topology::new(nprocs)
        .group(GroupDecl::new("compute", g0.clone()))
        .group(GroupDecl::new("boundary", g1.clone()))
        .channel(
            ChannelDecl::new(
                "faces",
                g0.clone(),
                g1.clone(),
                ChannelConfig { element_bytes: face_bytes, ..ChannelConfig::default() },
            )
            // Face for destination rank `nb` goes to aggregator `nb % nc`.
            .keyed((0..g0.len()).map(|b| Some(b % nc)).collect()),
        )
        .channel(
            ChannelDecl::new(
                "halos",
                g1,
                g0.clone(),
                ChannelConfig { element_bytes: face_bytes * 6, ..ChannelConfig::default() },
            )
            // One combined packet back to each destination rank.
            .keyed((0..g0.len()).map(Some).collect()),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::NoiseModel;

    fn test_cfg() -> CgConfig {
        CgConfig {
            machine: MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() },
            n_local: 6,
            iterations: 40,
            alpha_every: 4,
            ..CgConfig::default()
        }
    }

    #[test]
    fn serial_oracle_converges_to_manufactured_solution() {
        let (res, err) = serial_solve(12, 60);
        assert!(res < 1e-10, "relative residual {res}");
        // Discretisation error of the 7-point stencil at h = 1/13.
        assert!(err < 0.01, "solution error {err}");
    }

    #[test]
    fn blocking_matches_serial_oracle() {
        // 8 ranks x 6^3 = global 12^3 grid, same as serial_solve(12).
        let cfg = test_cfg();
        let r = run_blocking(8, &cfg);
        let (res_ser, err_ser) = serial_solve(12, cfg.iterations);
        assert!(
            (r.residual - res_ser).abs() <= 1e-9 * (1.0 + res_ser.abs()),
            "parallel {} vs serial {res_ser}",
            r.residual
        );
        assert!((r.solution_error - err_ser).abs() < 1e-9);
    }

    #[test]
    fn nonblocking_matches_blocking_numerically() {
        let cfg = test_cfg();
        let a = run_blocking(8, &cfg);
        let b = run_nonblocking(8, &cfg);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "identical arithmetic");
    }

    #[test]
    fn decoupled_converges_like_its_own_serial_grid() {
        // 8 ranks, every=4 -> G0 has 6 ranks; dims_create(6,3)=[3,2,1],
        // global grid 18x12x6 — verify against the residual dropping and
        // the packet protocol completing.
        let cfg = test_cfg();
        let r = run_decoupled(8, &cfg);
        assert!(r.residual < 1e-8, "decoupled CG must converge, got {}", r.residual);
        assert!(r.solution_error < 0.05);
    }

    #[test]
    fn decoupled_matches_reference_on_same_grid() {
        // Reference on 6 ranks == decoupled's G0 (8 ranks, every=4 -> 6
        // compute ranks): identical global grid, so identical residuals up
        // to reduction order.
        let cfg = test_cfg();
        let reference = run_blocking(6, &cfg);
        let decoupled = run_decoupled(8, &cfg);
        let rel = (reference.residual - decoupled.residual).abs() / reference.residual.max(1e-300);
        assert!(rel < 1e-6, "ref {} vs dec {}", reference.residual, decoupled.residual);
    }

    #[test]
    fn nonblocking_is_not_slower_than_blocking() {
        let cfg = CgConfig { iterations: 20, ..test_cfg() };
        let tb = run_blocking(16, &cfg).outcome.elapsed_secs();
        let tn = run_nonblocking(16, &cfg).outcome.elapsed_secs();
        assert!(tn <= tb * 1.02, "nonblocking {tn} vs blocking {tb}");
    }
}

//! # apps — the paper's evaluated applications
//!
//! Each case study of the evaluation section, in both its reference and
//! decoupled form, running on the simulated machine with *real* data:
//!
//! - [`mapreduce`] — word histogram over a Zipf corpus (Fig. 5);
//! - [`cg`] — conjugate-gradient Poisson solver with halo exchange
//!   (Fig. 6);
//! - [`pic`] — mini-iPIC3D particle code: particle communication (Fig. 2
//!   and Fig. 7) and particle I/O (Fig. 8);
//! - [`analysis`] — the decoupled workload analysis of Listing 1.
//!
//! All implementations separate **nominal** workload (which drives the
//! virtual-time cost model at paper scale) from **actual** in-memory data
//! (computed on for real and checked against serial oracles).

pub mod analysis;
pub mod cg;
pub mod mapreduce;
pub mod pic;
pub mod portable;

//! MapReduce word histogram (the Fig. 5 case study).
//!
//! Extracts a word histogram over a corpus of log files. Two
//! implementations:
//!
//! - [`run_reference`] — the MPI pattern of Hoefler et al. ("Towards
//!   efficient MapReduce using MPI", cited as [15]): every rank maps its
//!   files, then the global key set is agreed with `Iallgatherv` and the
//!   dense count vectors are combined with `Ireduce`.
//! - [`run_decoupled`] — the paper's strategy: a map group streams
//!   intermediate `(word, count)` chunks to a reduce group (keyed
//!   routing); reduce ranks fold the stream on the fly (FCFS) and a master
//!   rank aggregates the per-consumer shards at the end **without** data
//!   aggregation on the way in — reproducing the master-incast uptick at
//!   4,096–8,192 processes the paper reports.
//!
//! Word counts are computed for real: both implementations are verified
//! against [`workloads::Corpus::serial_histogram`].

use std::collections::HashMap;
use std::sync::Arc;

use mpisim::{MachineConfig, Rank, World, WorldOutcome};
use mpistream::{
    create_tree_channels, plan_tree, prof_scoped, reduce_through, ChannelConfig, Combiner,
    GroupSpec, Role, Stream, StreamChannel, Transport,
};
use parking_lot::Mutex;
use pfsim::{Pfs, PfsConfig};
use workloads::{Corpus, CorpusConfig};

/// Tunables of the MapReduce experiment.
#[derive(Clone, Debug)]
pub struct MapReduceConfig {
    /// Machine model.
    pub machine: MachineConfig,
    /// Filesystem model (the corpus is read through it).
    pub pfs: PfsConfig,
    /// Corpus description. For weak scaling, callers scale `n_files`
    /// with the rank count.
    pub corpus: CorpusConfig,
    /// Map compute cost per nominal input gigabyte (seconds).
    pub map_secs_per_gb: f64,
    /// Modelled wire bytes of one streamed `(word, count)` chunk.
    pub element_bytes: u64,
    /// Tokens per streamed chunk (the actual-side granularity knob).
    pub chunk_tokens: usize,
    /// Decoupled only: one reduce rank per `alpha_every` ranks.
    pub alpha_every: usize,
    /// Modelled bytes of one `(word, count)` pair in exchanges.
    pub pair_bytes: u64,
    /// Nominal-to-actual scale applied to exchanged key/count volumes: the
    /// actual vocabulary is kept small, but the wire sizes of the key-union
    /// allgatherv, the dense reduce and the master flow are scaled up to
    /// paper-scale data volumes.
    pub wire_scale: f64,
    /// Reference only: CPU cost (s per modelled MB) of materialising and
    /// combining the *dense* count vectors the MPI workaround needs —
    /// Hoefler et al. point out that MPI has no variable-sized reduction,
    /// so the reference reduces union-sized dense vectors. The decoupled
    /// reducers fold sparse hash entries instead (the complexity reduction
    /// of §II-E).
    pub dense_fold_secs_per_mb: f64,
    /// Decoupled only: modelled wire size of one folded chunk summary
    /// relayed to the master (much smaller than the raw chunk).
    pub master_element_bytes: u64,
    /// Decoupled only: producer-side combiner — merge this many
    /// same-reducer chunks into one stream element before it enters the
    /// map-output channel (1 = off, the paper's per-chunk flow). Amortizes
    /// the per-message overhead `o` of Eq. 4 across `combine_every`
    /// chunks.
    pub combine_every: usize,
    /// Decoupled only: interpose a reduction tree with this fan-in
    /// between the local reducers and the master (None = the paper's flat
    /// reducer → master incast). Each reducer's folded shard climbs
    /// `ceil(log_k nr)` aggregation stages, so the master drains at most
    /// one pre-merged shard instead of every reducer's chunk stream.
    pub tree_fan_in: Option<usize>,
    /// RNG seed for the world.
    pub seed: u64,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        MapReduceConfig {
            machine: MachineConfig::default(),
            pfs: PfsConfig { n_ost: 160, ..PfsConfig::default() },
            corpus: CorpusConfig::default(),
            map_secs_per_gb: 4.0,
            element_bytes: 64 << 10,
            chunk_tokens: 256,
            alpha_every: 16,
            pair_bytes: 8,
            wire_scale: 64.0,
            dense_fold_secs_per_mb: 0.02,
            master_element_bytes: 8 << 10,
            combine_every: 1,
            tree_fan_in: None,
            seed: 0xFEED,
        }
    }
}

/// Result of one MapReduce run.
pub struct MapReduceResult {
    pub outcome: WorldOutcome,
    /// The computed histogram (indexed by word id), as assembled at the
    /// root/master rank.
    pub histogram: Vec<u64>,
    /// Virtual time at which the *last* mapper finished streaming its
    /// output (decoupled runs only; 0 for the reference).
    pub map_done_secs: f64,
    /// Pipeline-flush tail: elapsed minus [`Self::map_done_secs`] — how
    /// long the reduce/master side needed to drain after the last map
    /// output entered the pipeline. The master incast lives here, which
    /// makes it the discriminating metric for the aggregation operators.
    pub master_drain_secs: f64,
}

/// Map one file's tokens into a local histogram, charging compute in
/// chunk-sized slices so the data flow (in the decoupled version) is
/// spread over the execution. `emit` is called once per chunk with the
/// chunk's partial counts.
fn map_file(
    rank: &mut Rank,
    corpus: &Corpus,
    file: &workloads::FileSpec,
    cfg: &MapReduceConfig,
    pfs: &Pfs,
    mut emit: impl FnMut(&mut Rank, Vec<(u32, u32)>),
) {
    let tokens = corpus.tokens_of(file);
    let n_chunks = tokens.len().div_ceil(cfg.chunk_tokens).max(1);
    let bytes_per_chunk = file.bytes / n_chunks as u64;
    let secs_per_chunk = cfg.map_secs_per_gb * bytes_per_chunk as f64 / (1u64 << 30) as f64;
    for chunk in tokens.chunks(cfg.chunk_tokens) {
        // Read this slice of the file, then hash its words (really).
        pfs.read_striped(rank.ctx(), bytes_per_chunk);
        rank.compute(secs_per_chunk);
        let mut partial: HashMap<u32, u32> = HashMap::new();
        for &t in chunk {
            *partial.entry(t).or_insert(0) += 1;
        }
        let mut pairs: Vec<(u32, u32)> = partial.into_iter().collect();
        pairs.sort_unstable();
        emit(rank, pairs);
    }
}

/// Reference implementation: map everywhere, then
/// `Iallgatherv` (key union) + `Ireduce` (dense counts).
pub fn run_reference(nprocs: usize, cfg: &MapReduceConfig) -> MapReduceResult {
    let corpus = Arc::new(Corpus::new(cfg.corpus.clone()));
    let pfs = Pfs::new(cfg.pfs.clone());
    let result: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let cfg2 = cfg.clone();
    let (corpus2, pfs2, result2) = (corpus, pfs, result.clone());
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        // --- map phase: local histogram over my files ---
        let mut local: HashMap<u32, u64> = HashMap::new();
        for file in corpus2.files_for(me, nprocs) {
            map_file(rank, &corpus2, &file, &cfg2, &pfs2, |_rank, pairs| {
                for (w, c) in pairs {
                    *local.entry(w).or_insert(0) += c as u64;
                }
            });
        }
        // --- key union: allgatherv of local key sets ---
        let mut my_keys: Vec<u32> = local.keys().copied().collect();
        my_keys.sort_unstable();
        let key_bytes = (my_keys.len() as f64 * 4.0 * cfg2.wire_scale) as u64;
        let req = rank.iallgatherv_start(&comm, key_bytes, my_keys);
        let key_sets = rank.iallgatherv_wait::<Vec<u32>>(req);
        let mut global_keys: Vec<u32> = key_sets.into_iter().flatten().collect();
        global_keys.sort_unstable();
        global_keys.dedup();
        // --- dense reduce over the agreed key order ---
        let dense: Vec<u64> =
            global_keys.iter().map(|k| local.get(k).copied().unwrap_or(0)).collect();
        let dense_bytes = (dense.len() as f64 * cfg2.pair_bytes as f64 * cfg2.wire_scale) as u64;
        // Materialising the union-sized dense vector and combining it
        // along the tree is real CPU work proportional to its size
        // (construction + the expected ~1.5 combines per rank).
        rank.compute(dense_bytes as f64 / 1e6 * cfg2.dense_fold_secs_per_mb * 2.5);
        let req = rank.ireduce_start(&comm, dense_bytes, dense);
        let summed = rank.ireduce_wait(req, |a: &mut Vec<u64>, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        });
        if let Some(summed) = summed {
            // Root re-expands to a vocabulary-indexed histogram.
            let vocab = corpus2.vocab();
            let mut hist = vec![0u64; vocab];
            for (k, v) in global_keys.iter().zip(summed) {
                hist[*k as usize] = v;
            }
            *result2.lock() = hist;
        }
    });

    let histogram = result.lock().clone();
    MapReduceResult { outcome, histogram, map_done_secs: 0.0, master_drain_secs: 0.0 }
}

/// A streamed chunk of intermediate map output.
pub(crate) type KvChunk = Vec<(u32, u32)>;

/// A folded histogram shard climbing the reduction tree (sorted by word).
pub(crate) type Shard = Vec<(u32, u64)>;

/// Merge `other` into `acc` (both sorted by key), summing counts of
/// duplicate keys. The associative merge behind both the mapper-side
/// combiner and the reduction-tree stages.
pub(crate) fn merge_sorted<C: Copy + std::ops::AddAssign>(
    acc: &mut Vec<(u32, C)>,
    other: Vec<(u32, C)>,
) {
    let a = std::mem::take(acc);
    let mut out = Vec::with_capacity(a.len() + other.len());
    let mut a = a.into_iter().peekable();
    let mut b = other.into_iter().peekable();
    loop {
        match (a.peek().copied(), b.peek().copied()) {
            (Some((ka, va)), Some((kb, vb))) => {
                if ka < kb {
                    out.push((ka, va));
                    a.next();
                } else if kb < ka {
                    out.push((kb, vb));
                    b.next();
                } else {
                    let mut v = va;
                    v += vb;
                    out.push((ka, v));
                    a.next();
                    b.next();
                }
            }
            (Some(x), None) => {
                out.push(x);
                a.next();
            }
            (None, Some(x)) => {
                out.push(x);
                b.next();
            }
            (None, None) => break,
        }
    }
    *acc = out;
}

/// The local reducer's kernel, generic over the transport: fold arriving
/// chunks FCFS into the sparse `local` histogram and forward each chunk to
/// the master — deliberately unaggregated, per the paper. The simulated
/// and native backends run this same function.
pub(crate) fn reduce_fold<TP: Transport>(
    rank: &mut TP,
    input: &mut Stream<KvChunk>,
    mut to_master: Option<&mut Stream<KvChunk>>,
    local: &mut HashMap<u32, u64>,
) {
    input.operate(rank, |rank, chunk| {
        prof_scoped(rank, "reduce", |rank| {
            // Sparse hash fold: cheap per pair.
            rank.compute(chunk.len() as f64 * 100e-9);
            for &(w, c) in &chunk {
                *local.entry(w).or_insert(0) += c as u64;
            }
            if let Some(m) = to_master.as_mut() {
                m.isend_to(rank, 0, chunk);
            }
        });
    });
}

/// The master's kernel, generic over the transport: aggregate the stream
/// of unaggregated per-chunk updates into a dense histogram.
pub(crate) fn master_aggregate<TP: Transport>(
    rank: &mut TP,
    from_reducers: &mut Stream<KvChunk>,
    hist: &mut [u64],
) {
    from_reducers.operate(rank, |rank, chunk| {
        prof_scoped(rank, "master", |rank| {
            rank.compute(chunk.len() as f64 * 100e-9);
            for (w, c) in chunk {
                hist[w as usize] += c as u64;
            }
        });
    });
}

/// Decoupled implementation: map group ⇒ (keyed stream) ⇒ reduce group ⇒
/// (flat gather, no aggregation — per the paper) ⇒ master.
/// Decoupled implementation (§IV-B of the paper): a map group streams
/// intermediate `(word, count)` chunks to a group of local reducers
/// (keyed routing over the word space); the local reducers fold arriving
/// chunks on the fly (FCFS) **and** forward their per-chunk results to a
/// master rank *without data aggregation* — the unoptimized intra-group
/// flow the paper calls out as the cause of master congestion at
/// 4,096–8,192 processes.
pub fn run_decoupled(nprocs: usize, cfg: &MapReduceConfig) -> MapReduceResult {
    assert!(
        nprocs >= cfg.alpha_every,
        "need at least {} ranks for alpha = 1/{}",
        cfg.alpha_every,
        cfg.alpha_every
    );
    let corpus = Arc::new(Corpus::new(cfg.corpus.clone()));
    let pfs = Pfs::new(cfg.pfs.clone());
    let result: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let map_done: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));

    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let cfg2 = cfg.clone();
    let (corpus2, pfs2, result2, map_done2) = (corpus, pfs, result.clone(), map_done.clone());
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let me = rank.world_rank();
        let my_role = spec.role_of(me);
        // The reduce group's highest rank serves as the master aggregator
        // (it does not consume map output unless it is the only reducer).
        let reduce_ranks: Vec<usize> =
            (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
        let master = *reduce_ranks.last().expect("at least one reducer");
        let solo_reducer = reduce_ranks.len() == 1;
        let local_reducers: Vec<usize> = if solo_reducer {
            reduce_ranks.clone()
        } else {
            reduce_ranks[..reduce_ranks.len() - 1].to_vec()
        };
        // Optional reduction tree over the local reducers (a solo reducer
        // is its own master — nothing to aggregate).
        let tree_plan = if solo_reducer {
            None
        } else {
            cfg2.tree_fan_in.map(|k| plan_tree(&local_reducers, k))
        };
        // A merged shard covers the whole vocabulary in the worst case;
        // model every tree (and tree-root → master) element at that full
        // size rather than flattering the tree with per-stage estimates.
        let shard_bytes =
            (corpus2.vocab() as f64 * cfg2.pair_bytes as f64 * cfg2.wire_scale) as u64;

        // Channel 1: map group -> local reducers.
        let ch1_role = match my_role {
            Role::Producer => Role::Producer,
            Role::Consumer if me == master && !solo_reducer => Role::Bystander,
            Role::Consumer => Role::Consumer,
            Role::Bystander => unreachable!(),
        };
        let ch1 = StreamChannel::create(
            rank,
            &comm,
            ch1_role,
            ChannelConfig {
                element_bytes: cfg2.element_bytes,
                aggregation: 1,
                credits: None,
                route: mpistream::RoutePolicy::Static,
                credit_batch: 1,
                failure_timeout: None,
                replicas: 0,
                replication_patience: None,
            },
        );
        // Channel 2: local reducers -> master (absent when solo). In tree
        // mode only the tree root produces — the other reducers' shards
        // reach the master through it.
        let ch2 = if solo_reducer {
            None
        } else {
            let ch2_role = if let Some(plan) = &tree_plan {
                if me == master {
                    Role::Consumer
                } else if me == plan.root {
                    Role::Producer
                } else {
                    Role::Bystander
                }
            } else {
                match my_role {
                    Role::Consumer if me == master => Role::Consumer,
                    Role::Consumer => Role::Producer,
                    _ => Role::Bystander,
                }
            };
            Some(StreamChannel::create(
                rank,
                &comm,
                ch2_role,
                ChannelConfig {
                    element_bytes: if tree_plan.is_some() {
                        shard_bytes
                    } else {
                        cfg2.master_element_bytes
                    },
                    aggregation: 1, // deliberately unaggregated (the paper)
                    credits: None,
                    route: mpistream::RoutePolicy::Static,
                    credit_batch: 1,
                    failure_timeout: None,
                    replicas: 0,
                    replication_patience: None,
                },
            ))
        };
        // Tree-stage block channels (collective: every rank takes part in
        // the per-stage subgroup splits, mappers and master end up with no
        // endpoints).
        let tree = tree_plan.as_ref().map(|plan| {
            create_tree_channels(
                rank,
                &comm,
                plan,
                &ChannelConfig { element_bytes: shard_bytes, ..ChannelConfig::default() },
            )
        });

        match ch1_role {
            Role::Producer => {
                // Map rank: stream each chunk's pairs, partitioned by the
                // owning local reducer.
                let mut stream: Stream<KvChunk> = Stream::attach(ch1);
                let map_ranks: Vec<usize> =
                    (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
                let nmap = map_ranks.len();
                let mi = map_ranks.iter().position(|&r| r == me).expect("mapper");
                let nc = stream.channel().consumers().len();
                // Optional producer-side combiner: pre-merge chunks bound
                // for the same reducer so the channel carries one element
                // per `combine_every` chunks.
                let mut comb =
                    (cfg2.combine_every > 1).then(|| Combiner::new(&stream, cfg2.combine_every));
                for file in corpus2.files_for(mi, nmap) {
                    map_file(rank, &corpus2, &file, &cfg2, &pfs2, |rank, pairs| {
                        let mut by_consumer: Vec<KvChunk> = vec![Vec::new(); nc];
                        for (w, c) in pairs {
                            by_consumer[w as usize % nc].push((w, c));
                        }
                        for (ci, part) in by_consumer.into_iter().enumerate() {
                            if part.is_empty() {
                                continue;
                            }
                            match comb.as_mut() {
                                Some(comb) => comb.push(rank, &mut stream, ci, part, merge_sorted),
                                None => stream.isend_to(rank, ci, part),
                            }
                        }
                    });
                }
                if let Some(comb) = comb {
                    comb.finish(rank, &mut stream);
                }
                stream.terminate(rank);
                // Stamp the last-mapper finish time: everything after the
                // maximum of these is pipeline flush (the drain tail).
                let done = Transport::now(rank).as_secs_f64();
                let mut latest = map_done2.lock();
                if done > *latest {
                    *latest = done;
                }
            }
            Role::Consumer => {
                let mut input: Stream<KvChunk> = Stream::attach(ch1);
                if let (Some(plan), Some(tree)) = (tree_plan.as_ref(), tree) {
                    // Tree mode: fold the map stream locally (nothing is
                    // forwarded per chunk), then climb the reduction tree
                    // with the folded shard; only the tree root talks to
                    // the master — with a single pre-merged shard.
                    let mut local: HashMap<u32, u64> = HashMap::new();
                    reduce_fold(rank, &mut input, None, &mut local);
                    let mut shard: Shard = local.into_iter().collect();
                    shard.sort_unstable();
                    let merged =
                        reduce_through(rank, plan, tree, Some(shard), |rank, acc, other| {
                            rank.compute(other.len() as f64 * 100e-9);
                            merge_sorted(acc, other);
                        });
                    if let Some(shard) = merged {
                        let mut m: Stream<Shard> =
                            Stream::attach(ch2.expect("tree root has the master channel"));
                        m.isend_to(rank, 0, shard);
                        m.terminate(rank);
                    }
                } else {
                    // Paper baseline: fold arriving chunks FCFS and forward
                    // each folded chunk to the master without aggregation.
                    let mut to_master: Option<Stream<KvChunk>> = ch2.map(Stream::attach);
                    let mut local: HashMap<u32, u64> = HashMap::new();
                    reduce_fold(rank, &mut input, to_master.as_mut(), &mut local);
                    if let Some(mut m) = to_master {
                        m.terminate(rank);
                    } else {
                        // Solo reducer: it *is* the master.
                        let vocab = corpus2.vocab();
                        let mut hist = vec![0u64; vocab];
                        for (w, c) in local {
                            hist[w as usize] += c;
                        }
                        *result2.lock() = hist;
                    }
                }
            }
            Role::Bystander => {
                let vocab = corpus2.vocab();
                let mut hist = vec![0u64; vocab];
                if tree_plan.is_some() {
                    // Master behind the tree: a single pre-merged shard
                    // arrives from the tree root.
                    let mut from_root: Stream<Shard> =
                        Stream::attach(ch2.expect("master has the reducer channel"));
                    from_root.operate(rank, |rank, shard| {
                        prof_scoped(rank, "master", |rank| {
                            rank.compute(shard.len() as f64 * 100e-9);
                            for (w, c) in shard {
                                hist[w as usize] += c;
                            }
                        });
                    });
                } else {
                    // Master on the flat incast: aggregate the stream of
                    // unaggregated per-chunk updates.
                    let mut from_reducers: Stream<KvChunk> =
                        Stream::attach(ch2.expect("master has the reducer channel"));
                    master_aggregate(rank, &mut from_reducers, &mut hist);
                }
                *result2.lock() = hist;
            }
        }
    });

    let histogram = result.lock().clone();
    let map_done_secs = *map_done.lock();
    let master_drain_secs = (outcome.elapsed_secs() - map_done_secs).max(0.0);
    MapReduceResult { outcome, histogram, map_done_secs, master_drain_secs }
}

/// The decoupled run's communication topology (the paper's Fig. 5 shape),
/// declared for the `streamcheck` static pass. Mirrors exactly what
/// [`run_decoupled`] builds: mappers stream keyed word chunks to the local
/// reducers (`word % nc` partitioning), which forward folded chunks to the
/// master — the reduce group's highest rank — unless a solo reducer is
/// its own master.
pub fn topology(nprocs: usize, cfg: &MapReduceConfig) -> streamcheck::Topology {
    use streamcheck::{ChannelDecl, GroupDecl, Topology};
    let spec = GroupSpec { every: cfg.alpha_every };
    let mappers: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
    let reducers: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
    let master = *reducers.last().expect("at least one reducer");
    let solo = reducers.len() == 1;
    let local: Vec<usize> = if solo {
        reducers.clone()
    } else {
        reducers.iter().copied().filter(|&r| r != master).collect()
    };
    let nc = local.len();
    let mut topo = Topology::new(nprocs)
        .group(GroupDecl::new("map", mappers.clone()))
        .group(GroupDecl::new("reduce", reducers))
        .channel(
            ChannelDecl::new(
                "map-output",
                mappers,
                local.clone(),
                ChannelConfig { element_bytes: cfg.element_bytes, ..ChannelConfig::default() },
            )
            // Word-space partitioning: bucket `w % nc` -> local reducer.
            .keyed((0..nc).map(Some).collect()),
        );
    if !solo {
        if let Some(k) = cfg.tree_fan_in {
            // Tree mode: one private channel per aggregation block, then a
            // single root → master link. Mirrors `create_tree_channels`.
            let shard_bytes =
                (cfg.corpus.vocab as f64 * cfg.pair_bytes as f64 * cfg.wire_scale) as u64;
            let plan = plan_tree(&local, k);
            for (si, stage) in plan.stages.iter().enumerate() {
                for (bi, block) in stage.blocks.iter().enumerate() {
                    if block.len() < 2 {
                        continue;
                    }
                    topo = topo.channel(
                        ChannelDecl::new(
                            format!("tree-s{si}-b{bi}"),
                            block[1..].to_vec(),
                            vec![block[0]],
                            ChannelConfig {
                                element_bytes: shard_bytes,
                                ..ChannelConfig::default()
                            },
                        )
                        .keyed(vec![Some(0)]),
                    );
                }
            }
            topo = topo.channel(
                ChannelDecl::new(
                    "reduce-to-master",
                    vec![plan.root],
                    vec![master],
                    ChannelConfig { element_bytes: shard_bytes, ..ChannelConfig::default() },
                )
                .keyed(vec![Some(0)]),
            );
        } else {
            topo = topo.channel(
                ChannelDecl::new(
                    "reduce-to-master",
                    local,
                    vec![master],
                    ChannelConfig {
                        element_bytes: cfg.master_element_bytes,
                        ..ChannelConfig::default()
                    },
                )
                .keyed(vec![Some(0)]),
            );
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::NoiseModel;

    fn small_cfg(n_files: usize) -> MapReduceConfig {
        MapReduceConfig {
            corpus: CorpusConfig {
                n_files,
                vocab: 500,
                tokens_per_gb: 2_000,
                min_file_bytes: 8 << 20,
                max_file_bytes: 64 << 20,
                ..CorpusConfig::default()
            },
            machine: MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() },
            chunk_tokens: 64,
            alpha_every: 4,
            ..MapReduceConfig::default()
        }
    }

    #[test]
    fn reference_histogram_matches_serial_oracle() {
        let cfg = small_cfg(12);
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_reference(6, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn decoupled_histogram_matches_serial_oracle() {
        let cfg = small_cfg(12);
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_decoupled(8, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn decoupled_with_solo_reducer_matches_oracle() {
        // every=4 at P=4: exactly one reducer, which doubles as master.
        let cfg = small_cfg(9);
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_decoupled(4, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn both_implementations_agree_across_sizes() {
        for (nprocs, files) in [(8usize, 5usize), (12, 20), (16, 16)] {
            let cfg = small_cfg(files);
            let a = run_reference(nprocs, &cfg);
            let b = run_decoupled(nprocs, &cfg);
            assert_eq!(a.histogram, b.histogram, "P={nprocs} files={files}");
        }
    }

    #[test]
    fn reference_on_one_rank_is_a_serial_run() {
        let cfg = small_cfg(3);
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_reference(1, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn merge_sorted_sums_duplicates_and_keeps_order() {
        let mut acc: Vec<(u32, u64)> = vec![(1, 2), (3, 4), (9, 1)];
        merge_sorted(&mut acc, vec![(0, 1), (3, 6), (9, 9), (12, 2)]);
        assert_eq!(acc, vec![(0, 1), (1, 2), (3, 10), (9, 10), (12, 2)]);
        let mut empty: Vec<(u32, u64)> = Vec::new();
        merge_sorted(&mut empty, vec![(5, 5)]);
        assert_eq!(empty, vec![(5, 5)]);
        merge_sorted(&mut empty, Vec::new());
        assert_eq!(empty, vec![(5, 5)]);
    }

    #[test]
    fn combiner_mode_matches_oracle() {
        let cfg = MapReduceConfig { combine_every: 4, ..small_cfg(12) };
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_decoupled(8, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn tree_mode_matches_oracle_at_various_fan_ins() {
        // every=4 at P=16: reducers {3,7,11,15}, master 15, three local
        // reducers climbing the tree. Also a deeper shape at P=32.
        for (nprocs, k) in [(16usize, 2usize), (16, 3), (32, 2), (32, 4)] {
            let cfg = MapReduceConfig { tree_fan_in: Some(k), ..small_cfg(12) };
            let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
            let res = run_decoupled(nprocs, &cfg);
            assert_eq!(res.histogram, oracle, "P={nprocs} k={k}");
        }
    }

    #[test]
    fn combined_operators_match_oracle() {
        let cfg = MapReduceConfig { combine_every: 4, tree_fan_in: Some(2), ..small_cfg(16) };
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_decoupled(16, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn tree_mode_with_solo_reducer_falls_back_cleanly() {
        // A solo reducer is its own master: tree_fan_in must be a no-op.
        let cfg = MapReduceConfig { tree_fan_in: Some(4), ..small_cfg(9) };
        let oracle = Corpus::new(cfg.corpus.clone()).serial_histogram();
        let res = run_decoupled(4, &cfg);
        assert_eq!(res.histogram, oracle);
    }

    #[test]
    fn drain_metric_splits_elapsed_at_the_last_mapper() {
        let cfg = small_cfg(12);
        let res = run_decoupled(8, &cfg);
        assert!(res.map_done_secs > 0.0);
        assert!(res.master_drain_secs >= 0.0);
        let total = res.outcome.elapsed_secs();
        assert!(
            (res.map_done_secs + res.master_drain_secs - total).abs() < 1e-9,
            "metric must partition elapsed time"
        );
    }

    #[test]
    fn decoupled_wins_when_the_reduce_phase_matters() {
        // Miniature of the paper's setting: the exchanged key volume is
        // large relative to the map time (wire_scale lifts the actual
        // 500-word vocabulary to paper-scale data volumes). The decoupled
        // run pipelines the reduce away; the reference pays it after the
        // map phase.
        let cfg = MapReduceConfig {
            wire_scale: 40_000.0,
            corpus: CorpusConfig {
                // LCM-friendly: 224 = 7 x 32 mappers (reference) and
                // 8 x 28 mappers (decoupled), so file-count imbalance does
                // not mask the reduce-phase effect under study.
                n_files: 224,
                vocab: 500,
                tokens_per_gb: 2_000,
                min_file_bytes: 8 << 20,
                max_file_bytes: 64 << 20,
                ..CorpusConfig::default()
            },
            machine: MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() },
            chunk_tokens: 64,
            alpha_every: 8,
            ..MapReduceConfig::default()
        };
        let t_ref = run_reference(32, &cfg).outcome.elapsed_secs();
        let t_dec = run_decoupled(32, &cfg).outcome.elapsed_secs();
        assert!(t_dec < t_ref, "decoupled ({t_dec}) should beat reference ({t_ref}) at P=32");
    }
}

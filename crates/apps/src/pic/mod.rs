//! Mini-iPIC3D: the particle-in-cell case study (Fig. 2, 7 and 8).
//!
//! A particle code on a periodic unit cube with a GEM-like current-sheet
//! particle distribution (skewed across ranks, dynamically migrating).
//! Only the parts the paper evaluates are implemented in full:
//!
//! **Particle communication** (Fig. 7):
//! - [`run_comm_reference`] — the iPIC3D scheme: each round, every rank
//!   forwards exiting particles one hop towards their destination through
//!   its six Cartesian neighbours, then a global allreduce decides whether
//!   any particles are still travelling. Worst case `ΣDimᵢ` rounds; one
//!   collective per round, every step.
//! - [`run_comm_decoupled`] — the paper's strategy: compute ranks stream
//!   exiting particles to a decoupled group, which aggregates them by
//!   destination and forwards each bundle in one pass — at most two hops
//!   per particle and no global collectives.
//!
//! **Particle I/O** (Fig. 8):
//! - [`run_io_reference`] with [`IoMode::Collective`] —
//!   `MPI_File_write_all` flavour: per dump, a count allgatherv
//!   (displacements), a file-view redefinition at the metadata server, a
//!   striped write and a closing barrier.
//! - [`run_io_reference`] with [`IoMode::Shared`] —
//!   `MPI_File_write_shared` flavour: every rank writes through the
//!   shared file pointer; writers serialize.
//! - [`run_io_decoupled`] — particles stream to an I/O group that buffers
//!   aggressively and flushes large striped writes, overlapping compute.
//!
//! Particles are real (positions and velocities are advanced and
//! ownership is asserted); the *nominal* particle count per rank drives
//! the compute/wire/IO cost models at paper scale.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpisim::{dims_create, CartComm, MachineConfig, Rank, World, WorldOutcome};
use mpistream::{
    create_tree_channels, operate2, plan_stage, prof_scoped, ChannelConfig, GroupSpec, Role,
    Stream, StreamChannel, Transport, TreePlan,
};
use pfsim::{Pfs, PfsConfig};
use workloads::particles::{advance, Particle, ParticleConfig};

/// Tunables of the PIC experiments.
#[derive(Clone, Debug)]
pub struct PicConfig {
    pub machine: MachineConfig,
    pub seed: u64,
    /// Nominal particles per rank (the paper: ~2×10⁹ / 8192 ≈ 244k).
    pub nominal_per_rank: f64,
    /// Actual in-memory particles per rank (kept small for big worlds).
    pub actual_per_rank: usize,
    /// Mover cost: flops per (nominal) particle per step.
    pub mover_flops_per_particle: f64,
    /// Transient per-rank, per-step variability of the mover
    /// (coefficient of variation of a mean-1 log-normal). Models the
    /// unpredictable per-step cost swings of particle work — sorting,
    /// cache behaviour, locally varying field gathers — on top of the
    /// static sheet skew. This is the variance the decoupling strategy
    /// absorbs: a global collective waits for the slowest of `P` draws
    /// every round, a local protocol only for the slowest neighbour.
    pub mover_step_cv: f64,
    /// Effective flop rate per rank.
    pub flop_rate: f64,
    /// Time step (controls the exiting fraction).
    pub dt: f64,
    /// Number of simulation steps.
    pub iterations: usize,
    /// Particle distribution (current-sheet skew).
    pub particle: ParticleConfig,
    /// Decoupled variants: one decoupled rank per `alpha_every`.
    pub alpha_every: usize,
    /// Nominal wire/disk bytes of one nominal particle.
    pub particle_bytes: u64,
    /// Filesystem model (I/O experiments only).
    pub pfs: PfsConfig,
    /// Decoupled I/O: flush threshold of the I/O-group buffer.
    pub io_buffer_bytes: u64,
    /// Decoupled I/O: aggregate the I/O group into writer blocks of this
    /// fan-in (k ≥ 2). Only block representatives open and write the
    /// file; the other io ranks buffer their particle share and spill
    /// byte bundles to their writer — collapsing the `O(αP)` serialized
    /// metadata opens and letting writers cross the flush threshold
    /// mid-run instead of draining one unoverlapped buffer each at the
    /// end. None = every io rank writes (the paper's flat shape).
    pub io_writer_fan_in: Option<usize>,
}

impl Default for PicConfig {
    fn default() -> Self {
        PicConfig {
            machine: MachineConfig::default(),
            seed: 0x91C,
            nominal_per_rank: 244_000.0,
            actual_per_rank: 192,
            mover_flops_per_particle: 400.0,
            mover_step_cv: 0.25,
            flop_rate: 1.0e9,
            dt: 0.4,
            iterations: 10,
            // A moderately thick current sheet: still strongly skewed
            // (mid-plane ranks carry several times the edge load) but not
            // so singular that tiny decomposition differences between the
            // P-rank and (1-α)P-rank grids dominate every comparison.
            particle: ParticleConfig { sheet_thickness: 0.22, ..ParticleConfig::default() },
            alpha_every: 16,
            particle_bytes: 56,
            pfs: PfsConfig { n_ost: 160, ..PfsConfig::default() },
            io_buffer_bytes: 1 << 30,
            io_writer_fan_in: None,
        }
    }
}

/// Result of one PIC run.
pub struct PicResult {
    pub outcome: WorldOutcome,
    /// Total particles held by the compute ranks at the end
    /// (conservation check).
    pub final_particles: u64,
    /// Total bytes the run wrote to the filesystem (I/O experiments).
    pub bytes_written: u64,
    /// Serialized metadata operations the run issued (I/O experiments) —
    /// the writer-aggregation stage exists to shrink this.
    pub meta_ops: u64,
    /// The figure metric: the execution time of the weak-scaling test
    /// (equals `outcome.elapsed_secs()`), kept as an explicit field so
    /// harnesses treat every experiment uniformly.
    pub op_secs: f64,
}

/// Per-rank particle state on a Cartesian compute decomposition.
struct PicState {
    cart: CartComm,
    me: usize,
    lo: [f64; 3],
    hi: [f64; 3],
    particles: Vec<Particle>,
    /// Nominal particles represented by one actual particle.
    scale: f64,
}

impl PicState {
    /// Build the state for compute rank `me` of `cart`, with the global
    /// nominal population taken from `world_ranks` (so decoupled runs
    /// carry the same total workload on fewer compute ranks).
    fn new(cfg: &PicConfig, cart: &CartComm, me: usize, world_ranks: usize) -> PicState {
        let dims = cart.dims();
        let coords = cart.coords(me);
        let lo = [
            coords[0] as f64 / dims[0] as f64,
            coords[1] as f64 / dims[1] as f64,
            coords[2] as f64 / dims[2] as f64,
        ];
        let hi = [
            (coords[0] + 1) as f64 / dims[0] as f64,
            (coords[1] + 1) as f64 / dims[1] as f64,
            (coords[2] + 1) as f64 / dims[2] as f64,
        ];
        let total_nominal = cfg.nominal_per_rank * world_ranks as f64;
        let total_actual = (cfg.actual_per_rank * world_ranks) as f64;
        // The sheet profile concentrates along y (dim 1); x and z are
        // uniform, so this subdomain's share of the population is its x/z
        // extent times the sheet mass over its y range.
        let frac = (hi[0] - lo[0]) * (hi[2] - lo[2]) * cfg.particle.mass_in(lo[1], hi[1]);
        let n_actual = (total_actual * frac).round() as usize;
        let particles = cfg.particle.generate(me, n_actual, lo, hi);
        PicState { cart: cart.clone(), me, lo, hi, particles, scale: total_nominal / total_actual }
    }

    /// The compute rank owning position `pos`.
    fn cart_owner(&self, pos: [f64; 3]) -> usize {
        let dims = self.cart.dims();
        let mut c = [0usize; 3];
        for d in 0..3 {
            c[d] = ((pos[d] * dims[d] as f64) as usize).min(dims[d] - 1);
        }
        self.cart.rank_at(&c)
    }

    /// Nominal particle count currently represented by this rank.
    fn nominal_count(&self) -> f64 {
        self.particles.len() as f64 * self.scale
    }

    /// Nominal bytes of `n` actual particles.
    fn bytes_of(&self, cfg: &PicConfig, n: usize) -> u64 {
        (n as f64 * self.scale * cfg.particle_bytes as f64).ceil() as u64
    }

    /// Advance all particles one step (charging the nominal mover cost)
    /// and split off the ones that left the subdomain.
    fn mover(&mut self, rank: &mut Rank, cfg: &PicConfig) -> Vec<Particle> {
        let swing = workloads::lognormal(1.0, cfg.mover_step_cv, rank.rng());
        let secs = self.nominal_count() * cfg.mover_flops_per_particle / cfg.flop_rate * swing;
        rank.traced("comp", |rank| rank.compute(secs));
        let dt = cfg.dt;
        let pcfg = cfg.particle.clone();
        let rng = rank.rng();
        for p in self.particles.iter_mut() {
            *p = advance(p, dt, &pcfg, rng);
        }
        let me = self.me;
        let mut exiting = Vec::new();
        let mut kept = Vec::with_capacity(self.particles.len());
        for p in self.particles.drain(..) {
            if Self::owner_static(&self.cart, p.pos) == me {
                kept.push(p);
            } else {
                exiting.push(p);
            }
        }
        self.particles = kept;
        exiting
    }

    fn owner_static(cart: &CartComm, pos: [f64; 3]) -> usize {
        let dims = cart.dims();
        let mut c = [0usize; 3];
        for d in 0..3 {
            c[d] = ((pos[d] * dims[d] as f64) as usize).min(dims[d] - 1);
        }
        cart.rank_at(&c)
    }

    /// Every resident particle is inside the subdomain box.
    fn assert_all_home(&self) {
        for p in &self.particles {
            assert_eq!(
                self.cart_owner(p.pos),
                self.me,
                "particle at {:?} not home on rank {} ([{:?} .. {:?}])",
                p.pos,
                self.me,
                self.lo,
                self.hi
            );
        }
    }
}

/// One hop of the reference forwarding: which neighbour takes a particle
/// that ultimately belongs to `owner`? Move along the first mismatched
/// dimension, in the wrap-shortest direction.
fn forward_hop(cart: &CartComm, me: usize, owner: usize) -> usize {
    let dims = cart.dims();
    let my_c = cart.coords(me);
    let ow_c = cart.coords(owner);
    for d in 0..3 {
        if my_c[d] != ow_c[d] {
            let n = dims[d] as isize;
            let delta = ow_c[d] as isize - my_c[d] as isize;
            let fwd = delta.rem_euclid(n);
            let dir = if fwd <= n - fwd { 1 } else { -1 };
            return cart.shift(me, d, dir).expect("periodic grid always has a shift");
        }
    }
    me
}

/// Decomposition used by every PIC run: balanced factors, with the
/// *largest even* factor assigned to y (the sheet axis). An even y count
/// puts a subdomain boundary exactly on the current sheet's mid-plane, so
/// reference and decoupled runs (whose rank counts differ by α) split the
/// particle hotspot the same way and stay comparable.
pub(crate) fn pic_dims(n: usize) -> Vec<usize> {
    let mut d = dims_create(n, 3); // sorted non-increasing
    let y_idx = d.iter().position(|&v| v % 2 == 0).unwrap_or(0);
    let y = d.remove(y_idx);
    // Remaining two: larger to x, smaller to z.
    vec![d[0], y, d[1]]
}

// ---------------------------------------------------------------------
// Particle communication (Fig. 7)
// ---------------------------------------------------------------------

/// Reference: iterative 6-neighbour forwarding with a global termination
/// check per round.
pub fn run_comm_reference(nprocs: usize, cfg: &PicConfig) -> PicResult {
    run_comm_reference_inner(nprocs, cfg, false)
}

/// Trace-enabled reference run (Fig. 2, top panel).
pub fn run_comm_reference_traced(nprocs: usize, cfg: &PicConfig) -> PicResult {
    run_comm_reference_inner(nprocs, cfg, true)
}

fn run_comm_reference_inner(nprocs: usize, cfg: &PicConfig, trace: bool) -> PicResult {
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed).with_trace(trace);
    let final_count = Arc::new(AtomicU64::new(0));
    let fc = final_count.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let dims = pic_dims(nprocs);
        let cart = CartComm::new(comm.clone(), dims, vec![true; 3]);
        let me = rank.world_rank();
        let mut st = PicState::new(&cfg2, &cart, me, nprocs);
        for _step in 0..cfg2.iterations {
            let mut homeless = st.mover(rank, &cfg2);
            // Rounds of one-hop forwarding until the world is quiet.
            loop {
                let travelling = rank.traced("comm", |rank| {
                    rank.allreduce(&comm, 8, homeless.len() as u64, |a, b| *a += b)
                });
                if travelling == 0 {
                    break;
                }
                rank.trace_begin("comm");
                // Bucket by the next hop.
                let mut buckets: HashMap<usize, Vec<Particle>> = HashMap::new();
                for p in homeless.drain(..) {
                    let owner = st.cart_owner(p.pos);
                    let hop = forward_hop(&cart, me, owner);
                    buckets.entry(hop).or_default().push(p);
                }
                // Exchange with all six neighbours (empty bundles too, so
                // receive counts stay deterministic).
                let neighbours = cart.neighbors(me);
                let mut reqs = Vec::new();
                for &(dim, dir, nb) in &neighbours {
                    let w = comm.world_rank(nb);
                    let bundle = buckets.remove(&nb).unwrap_or_default();
                    let bytes = st.bytes_of(&cfg2, bundle.len());
                    let tag = 200 + dim as u32 * 2 + u32::from(dir > 0);
                    reqs.push(rank.isend(w, tag, bytes, bundle));
                }
                debug_assert!(buckets.is_empty(), "every hop must be a neighbour");
                for &(dim, dir, nb) in &neighbours {
                    let w = comm.world_rank(nb);
                    // Our (dim, dir) send matches their (dim, -dir) recv.
                    let tag = 200 + dim as u32 * 2 + u32::from(dir < 0);
                    let (bundle, _) = rank.recv::<Vec<Particle>>(mpisim::Src::Rank(w), tag);
                    for p in bundle {
                        if st.cart_owner(p.pos) == me {
                            st.particles.push(p);
                        } else {
                            homeless.push(p);
                        }
                    }
                }
                rank.wait_send_all(reqs);
                rank.trace_end("comm");
            }
            st.assert_all_home();
        }
        fc.fetch_add(st.particles.len() as u64, Ordering::SeqCst);
    });
    let op_secs = outcome.elapsed_secs();
    PicResult {
        outcome,
        final_particles: final_count.load(Ordering::SeqCst),
        bytes_written: 0,
        meta_ops: 0,
        op_secs,
    }
}

/// Messages on the forward (compute → decoupled) channel.
/// Messages on the forward (compute → decoupled) channel.
enum ToComm {
    Exits { particles: Vec<Particle> },
}

impl mpistream::Wire for ToComm {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ToComm::Exits { particles } => {
                out.push(0);
                particles.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, mpistream::WireError> {
        match u8::decode(input)? {
            0 => Ok(ToComm::Exits { particles: mpistream::Wire::decode(input)? }),
            got => Err(mpistream::WireError::BadDiscriminant { got }),
        }
    }
}

/// The communication group's relay kernel, generic over the transport:
/// aggregate each arriving bundle of exits by destination owner and
/// forward in one pass — pure FCFS, no waiting on any producer. The
/// simulated and native backends run this same function.
fn relay_exits<TP: Transport>(
    rank: &mut TP,
    input: &mut Stream<ToComm>,
    reply: &mut Stream<Vec<Particle>>,
    owner_of: impl Fn(&Particle) -> usize,
) {
    while let Some(ToComm::Exits { particles }) = input.recv_one(rank) {
        prof_scoped(rank, "relay", |rank| {
            let mut by_dest: HashMap<usize, Vec<Particle>> = HashMap::new();
            for p in particles {
                by_dest.entry(owner_of(&p)).or_default().push(p);
            }
            // Small aggregation cost per forwarded bundle.
            rank.compute(1e-6 * by_dest.len().max(1) as f64);
            for (dest, bundle) in by_dest {
                reply.isend_to(rank, dest, bundle);
            }
        });
    }
    reply.terminate(rank);
}

/// Decoupled: stream exiting particles to the communication group; each
/// arriving bundle is aggregated by destination and forwarded in one pass
/// (max two hops per particle, no collectives). The compute ranks are
/// **free-running**: they inject exits, opportunistically merge whatever
/// arrivals have already landed, and keep computing — the continuous
/// compute timeline of the paper's Fig. 2 (bottom). In-flight particles
/// join their owner a step later (the FCFS weak consistency the dataflow
/// model embraces); a full drain at the end restores exact conservation.
pub fn run_comm_decoupled(nprocs: usize, cfg: &PicConfig) -> PicResult {
    run_comm_decoupled_inner(nprocs, cfg, false)
}

/// Trace-enabled decoupled run (Fig. 2, bottom panel).
pub fn run_comm_decoupled_traced(nprocs: usize, cfg: &PicConfig) -> PicResult {
    run_comm_decoupled_inner(nprocs, cfg, true)
}

fn run_comm_decoupled_inner(nprocs: usize, cfg: &PicConfig, trace: bool) -> PicResult {
    assert!(nprocs >= cfg.alpha_every);
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed).with_trace(trace);
    let final_count = Arc::new(AtomicU64::new(0));
    let fc = final_count.clone();
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let (g0, _g1, role) = spec.split(rank, &comm);
        let rev_role = match role {
            Role::Producer => Role::Consumer,
            Role::Consumer => Role::Producer,
            Role::Bystander => Role::Bystander,
        };
        // Wire size of one actual particle at nominal scale.
        let pb = (cfg2.particle_bytes as f64 * cfg2.nominal_per_rank / cfg2.actual_per_rank as f64)
            as u64;
        let fwd_ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig { element_bytes: pb.max(1), ..ChannelConfig::default() },
        );
        let rev_ch = StreamChannel::create(
            rank,
            &comm,
            rev_role,
            ChannelConfig { element_bytes: pb.max(1), ..ChannelConfig::default() },
        );
        let dims = pic_dims(g0.size());
        let cart = CartComm::new(g0.clone(), dims, vec![true; 3]);
        let nc = fwd_ch.consumers().len();

        match role {
            Role::Producer => {
                let me = g0.rank_of(rank.world_rank()).expect("in G0");
                let mut out: Stream<ToComm> = Stream::attach(fwd_ch);
                let mut back: Stream<Vec<Particle>> = Stream::attach(rev_ch);
                let mut st = PicState::new(&cfg2, &cart, me, nprocs);
                for _step in 0..cfg2.iterations {
                    let exiting = st.mover(rank, &cfg2);
                    rank.trace_begin("comm");
                    if !exiting.is_empty() {
                        out.isend_to(rank, me % nc, ToComm::Exits { particles: exiting });
                    }
                    // Opportunistic, non-blocking merge of whatever
                    // arrivals already landed; stragglers join later.
                    let mut staged: Vec<Vec<Particle>> = Vec::new();
                    while back.operate_some(rank, |_, bundle| staged.push(bundle)) > 0 {}
                    for p in staged.into_iter().flatten() {
                        debug_assert_eq!(st.cart_owner(p.pos), me);
                        st.particles.push(p);
                    }
                    rank.trace_end("comm");
                }
                out.terminate(rank);
                // Final drain: everything still in flight, for exact
                // conservation at shutdown.
                rank.trace_begin("comm");
                let mut staged: Vec<Vec<Particle>> = Vec::new();
                back.operate(rank, |_, bundle| staged.push(bundle));
                for p in staged.into_iter().flatten() {
                    st.particles.push(p);
                }
                rank.trace_end("comm");
                st.assert_all_home();
                fc.fetch_add(st.particles.len() as u64, Ordering::SeqCst);
            }
            Role::Consumer => {
                let mut input: Stream<ToComm> = Stream::attach(fwd_ch);
                let mut reply: Stream<Vec<Particle>> = Stream::attach(rev_ch);
                rank.trace_begin("comm");
                relay_exits(rank, &mut input, &mut reply, |p| PicState::owner_static(&cart, p.pos));
                rank.trace_end("comm");
            }
            Role::Bystander => unreachable!(),
        }
    });
    let op_secs = outcome.elapsed_secs();
    PicResult {
        outcome,
        final_particles: final_count.load(Ordering::SeqCst),
        bytes_written: 0,
        meta_ops: 0,
        op_secs,
    }
}

// ---------------------------------------------------------------------
// Particle I/O (Fig. 8)
// ---------------------------------------------------------------------

/// Which reference I/O flavour to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// `MPI_File_write_all`: displacement allgatherv + file-view update +
    /// striped write + barrier, every dump.
    Collective,
    /// `MPI_File_write_shared`: serialized shared-pointer writes.
    Shared,
}

/// Reference particle I/O (collective or shared), dumping every step.
pub fn run_io_reference(nprocs: usize, cfg: &PicConfig, mode: IoMode) -> PicResult {
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let pfs = Pfs::new(cfg.pfs.clone());
    let final_count = Arc::new(AtomicU64::new(0));
    let (fc, pfs2) = (final_count.clone(), pfs.clone());
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let dims = pic_dims(nprocs);
        let cart = CartComm::new(comm.clone(), dims, vec![true; 3]);
        let me = rank.world_rank();
        let mut st = PicState::new(&cfg2, &cart, me, nprocs);
        pfs2.meta_op(rank.ctx()); // open
        for _step in 0..cfg2.iterations {
            // The I/O experiment isolates mover + dump: migrating
            // particles stay local (ownership is irrelevant to I/O time).
            let exiting = st.mover(rank, &cfg2);
            st.particles.extend(exiting);
            let bytes = st.bytes_of(&cfg2, st.particles.len());
            match mode {
                IoMode::Collective => rank.traced("io", |rank| {
                    // Everyone agrees on displacements, redefines the file
                    // view (metadata), writes its block, synchronizes.
                    let _counts = rank.allgatherv(&comm, 8, st.particles.len() as u64);
                    pfs2.meta_op(rank.ctx());
                    pfs2.write_striped(rank.ctx(), bytes);
                    rank.barrier(&comm);
                }),
                IoMode::Shared => rank.traced("io", |rank| {
                    pfs2.write_shared(rank.ctx(), bytes);
                }),
            }
        }
        fc.fetch_add(st.particles.len() as u64, Ordering::SeqCst);
    });
    let op_secs = outcome.elapsed_secs();
    PicResult {
        outcome,
        final_particles: final_count.load(Ordering::SeqCst),
        bytes_written: pfs.bytes_written(),
        meta_ops: pfs.meta_ops(),
        op_secs,
    }
}

/// Decoupled particle I/O: stream particles to the I/O group, which
/// buffers up to `io_buffer_bytes` and flushes large striped writes,
/// overlapping the compute group's next steps.
pub fn run_io_decoupled(nprocs: usize, cfg: &PicConfig) -> PicResult {
    assert!(nprocs >= cfg.alpha_every);
    let world = World::new(cfg.machine.clone()).with_seed(cfg.seed);
    let pfs = Pfs::new(cfg.pfs.clone());
    let final_count = Arc::new(AtomicU64::new(0));
    let (fc, pfs2) = (final_count.clone(), pfs.clone());
    let cfg2 = cfg.clone();
    let outcome = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: cfg2.alpha_every };
        let (g0, _g1, role) = spec.split(rank, &comm);
        let pb = (cfg2.particle_bytes as f64 * cfg2.nominal_per_rank / cfg2.actual_per_rank as f64)
            as u64;
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig {
                element_bytes: pb.max(1),
                aggregation: 64, // coalesce particles into wire messages
                ..ChannelConfig::default()
            },
        );
        // Optional writer-aggregation stage over the I/O group: one spill
        // channel per block (collective — compute ranks take part in the
        // splits and get no endpoints).
        let io_ranks: Vec<usize> =
            (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
        let wplan = cfg2
            .io_writer_fan_in
            .filter(|_| io_ranks.len() >= 2)
            .map(|k| TreePlan::single_stage(&io_ranks, k));
        let spill_at =
            (cfg2.io_buffer_bytes / cfg2.io_writer_fan_in.unwrap_or(1).max(1) as u64).max(1);
        let spill_ch = wplan.as_ref().and_then(|plan| {
            let chans = create_tree_channels(
                rank,
                &comm,
                plan,
                &ChannelConfig { element_bytes: spill_at, ..ChannelConfig::default() },
            );
            chans.into_stages().pop().flatten()
        });
        let dims = pic_dims(g0.size());
        let cart = CartComm::new(g0.clone(), dims, vec![true; 3]);
        match role {
            Role::Producer => {
                let me = g0.rank_of(rank.world_rank()).expect("in G0");
                let mut out: Stream<Particle> = Stream::attach(ch);
                let mut st = PicState::new(&cfg2, &cart, me, nprocs);
                for _step in 0..cfg2.iterations {
                    let exiting = st.mover(rank, &cfg2);
                    st.particles.extend(exiting);
                    rank.traced("io", |rank| {
                        for p in st.particles.clone() {
                            out.isend(rank, p);
                        }
                    });
                }
                out.terminate(rank);
                fc.fetch_add(st.particles.len() as u64, Ordering::SeqCst);
            }
            Role::Consumer => {
                let mut input: Stream<Particle> = Stream::attach(ch);
                let flush_at = cfg2.io_buffer_bytes;
                match spill_ch {
                    Some(sc) if sc.role() == Role::Producer => {
                        // Forwarder: buffer my particle share and spill
                        // byte bundles to my block's writer — never touches
                        // the filesystem (no open, no metadata).
                        let mut spill: Stream<u64> = Stream::attach(sc);
                        let mut buffered: u64 = 0;
                        input.operate(rank, |rank, _p| {
                            buffered += pb;
                            if buffered >= spill_at {
                                spill.isend_to(rank, 0, buffered);
                                buffered = 0;
                            }
                        });
                        if buffered > 0 {
                            spill.isend_to(rank, 0, buffered);
                        }
                        spill.terminate(rank);
                    }
                    Some(sc) => {
                        // Writer: multiplex my own particle share and the
                        // forwarders' spills FCFS; flush large striped
                        // writes past the buffer threshold.
                        let mut spills: Stream<u64> = Stream::attach(sc);
                        pfs2.meta_op(rank.ctx()); // open once per block
                        let buffered = Cell::new(0u64);
                        let flush_if_full = |rank: &mut Rank, buffered: &Cell<u64>| {
                            if buffered.get() >= flush_at {
                                rank.traced("io", |rank| {
                                    pfs2.write_striped(rank.ctx(), buffered.get());
                                });
                                buffered.set(0);
                            }
                        };
                        operate2(
                            rank,
                            &mut input,
                            &mut spills,
                            |rank, _p: Particle| {
                                buffered.set(buffered.get() + pb);
                                flush_if_full(rank, &buffered);
                            },
                            |rank, bytes: u64| {
                                buffered.set(buffered.get() + bytes);
                                flush_if_full(rank, &buffered);
                            },
                        );
                        if buffered.get() > 0 {
                            pfs2.write_striped(rank.ctx(), buffered.get());
                        }
                    }
                    None => {
                        // Flat shape (the paper): every io rank opens and
                        // writes its own buffer.
                        pfs2.meta_op(rank.ctx()); // open once
                        let mut buffered: u64 = 0;
                        input.operate(rank, |rank, _p| {
                            buffered += pb;
                            if buffered >= flush_at {
                                rank.traced("io", |rank| {
                                    pfs2.write_striped(rank.ctx(), buffered);
                                });
                                buffered = 0;
                            }
                        });
                        if buffered > 0 {
                            pfs2.write_striped(rank.ctx(), buffered);
                        }
                    }
                }
            }
            Role::Bystander => unreachable!(),
        }
    });
    let op_secs = outcome.elapsed_secs();
    PicResult {
        outcome,
        final_particles: final_count.load(Ordering::SeqCst),
        bytes_written: pfs.bytes_written(),
        meta_ops: pfs.meta_ops(),
        op_secs,
    }
}

/// Communication topology of [`run_comm_decoupled`] for the `streamcheck`
/// static pass: exiting particles stream to relay rank `me % nc`, which
/// forwards each bundle to its owner (keyed identity over the compute
/// group). Like CG, the fwd/rev pair is an unbounded request/reply cycle.
pub fn comm_topology(nprocs: usize, cfg: &PicConfig) -> streamcheck::Topology {
    use streamcheck::{ChannelDecl, GroupDecl, Topology};
    let spec = GroupSpec { every: cfg.alpha_every };
    let g0: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
    let g1: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
    let pb = (cfg.particle_bytes as f64 * cfg.nominal_per_rank / cfg.actual_per_rank as f64) as u64;
    let nc = g1.len();
    Topology::new(nprocs)
        .group(GroupDecl::new("compute", g0.clone()))
        .group(GroupDecl::new("relay", g1.clone()))
        .channel(
            ChannelDecl::new(
                "exits",
                g0.clone(),
                g1.clone(),
                ChannelConfig { element_bytes: pb.max(1), ..ChannelConfig::default() },
            )
            .keyed((0..g0.len()).map(|b| Some(b % nc)).collect()),
        )
        .channel(
            ChannelDecl::new(
                "returns",
                g1,
                g0.clone(),
                ChannelConfig { element_bytes: pb.max(1), ..ChannelConfig::default() },
            )
            .keyed((0..g0.len()).map(Some).collect()),
        )
}

/// Communication topology of [`run_io_decoupled`]: one statically-routed,
/// aggregated particle stream from the compute group to the I/O group —
/// plus, with [`PicConfig::io_writer_fan_in`] set, one spill channel per
/// writer block (forwarders → block representative). The whole pipeline
/// stays acyclic (compute → forwarders → writers), so the checker
/// certifies it deadlock-free.
pub fn io_topology(nprocs: usize, cfg: &PicConfig) -> streamcheck::Topology {
    use streamcheck::{ChannelDecl, GroupDecl, Topology};
    let spec = GroupSpec { every: cfg.alpha_every };
    let g0: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
    let g1: Vec<usize> = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
    let pb = (cfg.particle_bytes as f64 * cfg.nominal_per_rank / cfg.actual_per_rank as f64) as u64;
    let mut topo = Topology::new(nprocs)
        .group(GroupDecl::new("compute", g0.clone()))
        .group(GroupDecl::new("io", g1.clone()))
        .channel(ChannelDecl::new(
            "particles",
            g0,
            g1.clone(),
            ChannelConfig { element_bytes: pb.max(1), aggregation: 64, ..ChannelConfig::default() },
        ));
    if let Some(k) = cfg.io_writer_fan_in.filter(|_| g1.len() >= 2) {
        let spill_at = (cfg.io_buffer_bytes / k as u64).max(1);
        let stage = plan_stage(&g1, k);
        for (bi, block) in stage.blocks.iter().enumerate() {
            if block.len() < 2 {
                continue;
            }
            topo = topo.channel(
                ChannelDecl::new(
                    format!("spill-b{bi}"),
                    block[1..].to_vec(),
                    vec![block[0]],
                    ChannelConfig { element_bytes: spill_at, ..ChannelConfig::default() },
                )
                .keyed(vec![Some(0)]),
            );
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Comm, NoiseModel};

    fn test_cfg() -> PicConfig {
        PicConfig {
            machine: MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() },
            actual_per_rank: 64,
            iterations: 4,
            alpha_every: 4,
            dt: 0.3,
            io_buffer_bytes: 64 << 20,
            ..PicConfig::default()
        }
    }

    fn total_initial_particles(cfg: &PicConfig, compute_ranks: usize, world: usize) -> u64 {
        let dims = dims_create(compute_ranks, 3);
        let comm = Comm::new(0, (0..compute_ranks).collect());
        let cart = CartComm::new(comm, dims, vec![true; 3]);
        (0..compute_ranks).map(|r| PicState::new(cfg, &cart, r, world).particles.len() as u64).sum()
    }

    #[test]
    fn pic_dims_prefers_even_sheet_axis() {
        // y (index 1) must get the largest even factor so the sheet
        // mid-plane falls on a subdomain boundary.
        assert_eq!(pic_dims(64)[1] % 2, 0);
        assert_eq!(pic_dims(8192)[1] % 2, 0);
        assert_eq!(pic_dims(56)[1] % 2, 0);
        assert_eq!(pic_dims(120)[1] % 2, 0);
        // Product preserved for arbitrary sizes.
        for n in 1..200 {
            assert_eq!(pic_dims(n).iter().product::<usize>(), n, "n={n}");
        }
        // Odd-only factorizations fall back to the largest factor.
        assert_eq!(pic_dims(15).iter().product::<usize>(), 15);
    }

    #[test]
    fn initial_distribution_is_sheet_skewed() {
        let cfg = test_cfg();
        let dims = dims_create(64, 3);
        let comm = Comm::new(0, (0..64).collect());
        let cart = CartComm::new(comm, dims, vec![true; 3]);
        let counts: Vec<usize> =
            (0..64).map(|r| PicState::new(&cfg, &cart, r, 64).particles.len()).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 3 * min.max(1), "skew expected: min {min} max {max}");
        let total: usize = counts.iter().sum();
        let expect = 64 * cfg.actual_per_rank;
        assert!(
            (total as i64 - expect as i64).unsigned_abs() < expect as u64 / 10,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn forward_hop_always_makes_progress() {
        let comm = Comm::new(0, (0..24).collect());
        let cart = CartComm::new(comm, vec![4, 3, 2], vec![true; 3]);
        for me in 0..24 {
            for owner in 0..24 {
                let mut at = me;
                let mut hops = 0;
                while at != owner {
                    at = forward_hop(&cart, at, owner);
                    hops += 1;
                    assert!(hops <= 4 + 3 + 2, "no progress from {me} to {owner}");
                }
            }
        }
    }

    #[test]
    fn reference_comm_conserves_particles_and_homes_them() {
        let cfg = test_cfg();
        let initial = total_initial_particles(&cfg, 8, 8);
        let res = run_comm_reference(8, &cfg);
        assert_eq!(res.final_particles, initial);
    }

    #[test]
    fn decoupled_comm_conserves_particles_and_homes_them() {
        let cfg = test_cfg();
        // 8 ranks, every=4 -> 6 compute ranks.
        let initial = total_initial_particles(&cfg, 6, 8);
        let res = run_comm_decoupled(8, &cfg);
        assert_eq!(res.final_particles, initial);
    }

    #[test]
    fn decoupled_comm_operation_is_cheaper() {
        // The reference pays >= 2 global allreduces per step, each
        // harvesting the per-step transient imbalance across all P ranks;
        // the free-running decoupled pipeline absorbs it. At the paper's
        // α = 6.25% the compute-inflation cost (1/(1−α)) is small, so
        // decoupling must win the end-to-end time.
        let cfg = PicConfig { iterations: 6, alpha_every: 16, ..test_cfg() };
        let r = run_comm_reference(64, &cfg);
        let d = run_comm_decoupled(64, &cfg);
        assert!(
            d.op_secs < r.op_secs,
            "decoupled comm {} must undercut reference {}",
            d.op_secs,
            r.op_secs
        );
    }

    #[test]
    fn io_modes_write_identical_volumes() {
        let cfg = test_cfg();
        let coll = run_io_reference(8, &cfg, IoMode::Collective);
        let shared = run_io_reference(8, &cfg, IoMode::Shared);
        assert_eq!(coll.bytes_written, shared.bytes_written);
        assert!(coll.bytes_written > 0);
    }

    #[test]
    fn decoupled_io_writes_comparable_volume() {
        let cfg = test_cfg();
        let dec = run_io_decoupled(8, &cfg);
        assert!(dec.bytes_written > 0);
        // Volume ≈ iterations x total particles x per-particle bytes.
        let pb =
            (cfg.particle_bytes as f64 * cfg.nominal_per_rank / cfg.actual_per_rank as f64) as u64;
        let initial = total_initial_particles(&cfg, 6, 8);
        let expect = cfg.iterations as u64 * initial * pb;
        let rel = (dec.bytes_written as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.05, "wrote {} vs expected {expect}", dec.bytes_written);
    }

    #[test]
    fn aggregated_io_writes_identical_volume() {
        // Writer aggregation re-routes bytes through block
        // representatives but must conserve the written volume exactly.
        let flat = run_io_decoupled(16, &test_cfg());
        for k in [2usize, 4] {
            let cfg = PicConfig { io_writer_fan_in: Some(k), ..test_cfg() };
            let agg = run_io_decoupled(16, &cfg);
            assert_eq!(agg.bytes_written, flat.bytes_written, "k={k}");
            assert_eq!(agg.final_particles, flat.final_particles, "k={k}");
        }
    }

    #[test]
    fn aggregated_io_opens_one_file_per_writer_block() {
        // 16 ranks, every=4 -> io group {3,7,11,15}. Flat: 4 opens.
        // k=4: one block, one writer, one open.
        assert_eq!(run_io_decoupled(16, &test_cfg()).meta_ops, 4);
        let agg_cfg = PicConfig { io_writer_fan_in: Some(4), ..test_cfg() };
        assert_eq!(run_io_decoupled(16, &agg_cfg).meta_ops, 1);
    }

    #[test]
    fn aggregated_io_with_singleton_tail_block_still_writes_everything() {
        // io group {3,7,11,15} at k=3: blocks {3,7,11} and {15} — the
        // singleton representative must fall back to writing directly.
        let cfg = PicConfig { io_writer_fan_in: Some(3), ..test_cfg() };
        let flat = run_io_decoupled(16, &test_cfg());
        let agg = run_io_decoupled(16, &cfg);
        assert_eq!(agg.bytes_written, flat.bytes_written);
        assert_eq!(agg.meta_ops, 2); // one per writing rank
    }

    #[test]
    fn shared_io_is_slowest_and_decoupled_fastest_at_scale() {
        // Keep the mover light so the comparison isolates the I/O path
        // (at miniature scale the 24- vs 32-rank y-decompositions split
        // the particle sheet differently, which would otherwise dominate).
        let cfg = PicConfig { iterations: 3, mover_flops_per_particle: 40.0, ..test_cfg() };
        let t_coll = run_io_reference(32, &cfg, IoMode::Collective).outcome.elapsed_secs();
        let t_shared = run_io_reference(32, &cfg, IoMode::Shared).outcome.elapsed_secs();
        let t_dec = run_io_decoupled(32, &cfg).outcome.elapsed_secs();
        assert!(t_shared > t_coll, "shared {t_shared} vs collective {t_coll}");
        assert!(t_dec < t_shared, "decoupled {t_dec} vs shared {t_shared}");
    }

    #[test]
    fn traced_runs_produce_comp_and_comm_spans() {
        let cfg = PicConfig { iterations: 2, ..test_cfg() };
        let res = run_comm_decoupled_traced(8, &cfg);
        let tags: std::collections::HashSet<&str> =
            res.outcome.sim.trace.spans().iter().map(|s| s.tag).collect();
        assert!(tags.contains("comp"), "tags: {tags:?}");
        assert!(tags.contains("comm"), "tags: {tags:?}");
    }
}

//! Portable stream applications — the same programs on every backend.
//!
//! The functions here are written once, generic over [`Transport`], and
//! run unchanged on the discrete-event simulator (`mpisim::Rank`) and the
//! native threaded backend (`native::NativeRank`). They are the substrate
//! of the cross-backend equivalence tests: both take only deterministic
//! inputs (world rank, step number, a splitmix recurrence), route over
//! [`RoutePolicy::Static`] or explicit keyed partitioning, and report the
//! payloads each consumer received — so the *per-consumer payload
//! multisets* must agree between backends even though arrival order (and
//! on the native backend, wall-clock timing) differs run to run.
//!
//! [`RoutePolicy::Static`]: mpistream::RoutePolicy::Static

use std::collections::HashMap;

use mpistream::{
    create_tree_channels, plan_tree, reduce_through, run_decoupled, ChannelConfig, Combiner,
    GroupSpec, Role, Stream, StreamChannel, Transport,
};

use crate::mapreduce::{master_aggregate, merge_sorted, reduce_fold, KvChunk};

// ---------------------------------------------------------------------
// Quickstart (the paper's Listing 1)
// ---------------------------------------------------------------------

/// One workload report streamed to the analysis group.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadUpdate {
    pub rank: usize,
    pub step: usize,
    pub work_units: u64,
}

mpistream::wire_struct!(WorkloadUpdate { rank, step, work_units });

/// What one rank saw during a portable run: its role, how many elements it
/// streamed (producers), and the sorted payload values it consumed
/// (consumers). The consumer payloads are the cross-backend invariant.
#[derive(Clone, Debug, Default)]
pub struct PortableReport {
    /// Elements this rank streamed into the channel (producers).
    pub sent: u64,
    /// Sorted payload values this rank consumed (consumers; empty
    /// otherwise). Sorted so the report is an order-insensitive multiset.
    pub received: Vec<u64>,
}

/// The quickstart program of `examples/quickstart.rs`, generic over the
/// transport: a computation group alternates `Calculation()` with
/// streaming workload updates to a small analysis group that folds them
/// first-come-first-served.
///
/// Every streamed `work_units` value is a pure function of `(rank, step)`,
/// and the channel routes statically (producer `i` feeds consumer
/// `i % n_consumers`), so each analysis rank's received *multiset* is
/// identical on every backend.
pub fn quickstart<TP: Transport>(rank: &mut TP, steps: usize, every: usize) -> PortableReport {
    quickstart_with(
        rank,
        steps,
        every,
        ChannelConfig { element_bytes: 1 << 10, ..ChannelConfig::default() },
    )
}

/// [`quickstart`] with an explicit [`ChannelConfig`] — the hook the
/// cross-backend tests use to drive the same program through different
/// flow-control regimes (credit windows, batched acknowledgements,
/// aggregation) and assert the consumed multisets stay identical.
pub fn quickstart_with<TP: Transport>(
    rank: &mut TP,
    steps: usize,
    every: usize,
    config: ChannelConfig,
) -> PortableReport {
    let comm = rank.world_group();
    let spec = GroupSpec { every };
    let my_role = spec.role_of(rank.world_rank());
    let mut report = PortableReport::default();
    let received = &mut report.received;
    let stats = run_decoupled::<WorkloadUpdate, _, _, _>(
        rank,
        &comm,
        spec,
        config,
        // --- computation group ---
        |rank, p| {
            let me = rank.world_rank();
            let mut work = 1_000u64 + (me as u64 * 37) % 500;
            for step in 0..steps {
                // Calculation(): imbalanced work, perturbed each step.
                rank.compute(work as f64 * 1e-7);
                work =
                    work.wrapping_mul(6364136223846793005).wrapping_add(step as u64) % 2_000 + 500;
                p.stream.isend(rank, WorkloadUpdate { rank: me, step, work_units: work });
            }
        },
        // --- analysis group ---
        |rank, c| {
            c.stream.operate(rank, |_rank, update: WorkloadUpdate| {
                received.push(update.work_units);
            });
            received.sort_unstable();
        },
    );
    if my_role == Role::Producer {
        report.sent = stats.elements;
    }
    report
}

// ---------------------------------------------------------------------
// Mini MapReduce (a scaled-down Fig. 5 topology)
// ---------------------------------------------------------------------

/// Tunables of the portable mini MapReduce: a synthetic token stream
/// replaces the simulated corpus/PFS so the program depends on nothing but
/// the transport.
#[derive(Clone, Debug)]
pub struct MiniMrConfig {
    /// One reduce rank per `every` ranks (the paper's `alpha`).
    pub every: usize,
    /// Word-id space of the synthetic token stream.
    pub vocab: usize,
    /// Streamed chunks per mapper.
    pub chunks_per_mapper: usize,
    /// Tokens hashed into each chunk.
    pub tokens_per_chunk: usize,
    /// Credit window applied to both stream channels (`None` = unbounded,
    /// the original configuration).
    pub credits: Option<usize>,
    /// Credit acknowledgement batch applied to both stream channels.
    pub credit_batch: usize,
    /// Producer-side combiner: merge this many same-reducer chunks into
    /// one stream element before it enters the map-output channel (1 =
    /// off). Integer count merging — exact on every backend, no
    /// reduction-order caveat.
    pub combine_every: usize,
    /// Interpose a reduction tree with this fan-in between the local
    /// reducers and the master (`None` = the flat relay).
    pub tree_fan_in: Option<usize>,
}

impl Default for MiniMrConfig {
    fn default() -> Self {
        MiniMrConfig {
            every: 4,
            vocab: 97,
            chunks_per_mapper: 8,
            tokens_per_chunk: 64,
            credits: None,
            credit_batch: 1,
            combine_every: 1,
            tree_fan_in: None,
        }
    }
}

/// splitmix64 — the deterministic token generator shared by the mappers
/// and the serial oracle.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Token `i` of chunk `chunk` on mapper index `mi`.
fn token(cfg: &MiniMrConfig, mi: usize, chunk: usize, i: usize) -> u32 {
    let seq = (mi * cfg.chunks_per_mapper + chunk) * cfg.tokens_per_chunk + i;
    (mix64(seq as u64) % cfg.vocab as u64) as u32
}

/// The paper's Fig. 5 dataflow in miniature, generic over the transport:
/// a map group streams `(word, count)` chunks to local reducers (keyed
/// `word % n_reducers` partitioning); the reducers fold FCFS and forward
/// each chunk — unaggregated — to a master rank that assembles the global
/// histogram. Returns `Some(histogram)` on the master, `None` elsewhere.
///
/// With `combine_every > 1` the mappers pre-merge same-reducer chunks
/// through a [`Combiner`]; with `tree_fan_in = Some(k)` the local
/// reducers fold completely and merge their shards down a fan-in-`k`
/// reduction tree, whose root relays one shard to the master — the
/// tree-aggregated variant of the same dataflow. All merging is integer
/// count addition, so the result is exact on every backend (a floating
/// combiner would inherit the reduction-order caveat of DESIGN.md §11).
///
/// The token stream is a pure function of the mapper index, so the
/// master's histogram equals [`mini_mapreduce_oracle`] on every backend.
pub fn mini_mapreduce<TP: Transport>(rank: &mut TP, cfg: &MiniMrConfig) -> Option<Vec<u64>> {
    let nprocs = rank.world_size();
    assert!(nprocs >= cfg.every, "need at least {} ranks for alpha = 1/{0}", cfg.every);
    let comm = rank.world_group();
    let spec = GroupSpec { every: cfg.every };
    let me = rank.world_rank();
    let my_role = spec.role_of(me);
    // The reduce group's highest rank serves as the master aggregator
    // (it does not consume map output unless it is the only reducer).
    let reduce_ranks: Vec<usize> =
        (0..nprocs).filter(|&r| spec.role_of(r) == Role::Consumer).collect();
    let master = *reduce_ranks.last().expect("at least one reducer");
    let solo_reducer = reduce_ranks.len() == 1;
    let local_reducers: Vec<usize> =
        reduce_ranks.iter().copied().filter(|&r| solo_reducer || r != master).collect();
    let tree_plan =
        if solo_reducer { None } else { cfg.tree_fan_in.map(|k| plan_tree(&local_reducers, k)) };

    // Channel 1: map group -> local reducers.
    let ch1_role = match my_role {
        Role::Producer => Role::Producer,
        Role::Consumer if me == master && !solo_reducer => Role::Bystander,
        Role::Consumer => Role::Consumer,
        Role::Bystander => unreachable!(),
    };
    let stream_config = ChannelConfig {
        element_bytes: 1 << 10,
        credits: cfg.credits,
        credit_batch: cfg.credit_batch,
        ..ChannelConfig::default()
    };
    let ch1 = StreamChannel::create(rank, &comm, ch1_role, stream_config.clone());
    // Channel 2: local reducers -> master (absent when solo). In tree
    // mode only the tree root produces into it.
    let ch2 = if solo_reducer {
        None
    } else {
        let ch2_role = match (&tree_plan, my_role) {
            (_, Role::Consumer) if me == master => Role::Consumer,
            (Some(plan), _) => {
                if plan.is_root(me) {
                    Role::Producer
                } else {
                    Role::Bystander
                }
            }
            (None, Role::Consumer) => Role::Producer,
            _ => Role::Bystander,
        };
        Some(StreamChannel::create(rank, &comm, ch2_role, stream_config.clone()))
    };
    // Per-block tree channels (collective over the world, like ch1/ch2).
    let tree =
        tree_plan.as_ref().map(|plan| create_tree_channels(rank, &comm, plan, &stream_config));

    match ch1_role {
        Role::Producer => {
            // Map rank: hash each synthetic chunk and stream its pairs,
            // partitioned by the owning local reducer.
            let mut stream: Stream<KvChunk> = Stream::attach(ch1);
            let map_ranks: Vec<usize> =
                (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).collect();
            let mi = map_ranks.iter().position(|&r| r == me).expect("mapper");
            let nc = stream.channel().consumers().len();
            let mut combiner =
                (cfg.combine_every > 1).then(|| Combiner::new(&stream, cfg.combine_every));
            for chunk in 0..cfg.chunks_per_mapper {
                let mut partial: HashMap<u32, u32> = HashMap::new();
                for i in 0..cfg.tokens_per_chunk {
                    *partial.entry(token(cfg, mi, chunk, i)).or_insert(0) += 1;
                }
                rank.compute(cfg.tokens_per_chunk as f64 * 50e-9);
                let mut pairs: Vec<(u32, u32)> = partial.into_iter().collect();
                pairs.sort_unstable();
                let mut by_consumer: Vec<KvChunk> = vec![Vec::new(); nc];
                for (w, c) in pairs {
                    by_consumer[w as usize % nc].push((w, c));
                }
                for (ci, part) in by_consumer.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    match &mut combiner {
                        Some(comb) => comb.push(rank, &mut stream, ci, part, merge_sorted),
                        None => stream.isend_to(rank, ci, part),
                    }
                }
            }
            if let Some(comb) = combiner {
                comb.finish(rank, &mut stream);
            }
            stream.terminate(rank);
            None
        }
        Role::Consumer => {
            let mut input: Stream<KvChunk> = Stream::attach(ch1);
            if let (Some(plan), Some(tree)) = (&tree_plan, tree) {
                // Tree mode: fold completely, merge shards up the tree;
                // the root relays the single merged shard to the master.
                let mut local: HashMap<u32, u64> = HashMap::new();
                reduce_fold(rank, &mut input, None, &mut local);
                let mut shard: Vec<(u32, u64)> = local.into_iter().collect();
                shard.sort_unstable();
                let merged = reduce_through(rank, plan, tree, Some(shard), |_, acc, other| {
                    merge_sorted(acc, other)
                });
                if let Some(shard) = merged {
                    let mut to_master: Stream<Vec<(u32, u64)>> =
                        Stream::attach(ch2.expect("tree root has the master channel"));
                    to_master.isend_to(rank, 0, shard);
                    to_master.terminate(rank);
                }
                None
            } else {
                let mut to_master: Option<Stream<KvChunk>> = ch2.map(Stream::attach);
                let mut local: HashMap<u32, u64> = HashMap::new();
                reduce_fold(rank, &mut input, to_master.as_mut(), &mut local);
                if let Some(mut m) = to_master {
                    m.terminate(rank);
                    None
                } else {
                    // Solo reducer: it *is* the master.
                    let mut hist = vec![0u64; cfg.vocab];
                    for (w, c) in local {
                        hist[w as usize] += c;
                    }
                    Some(hist)
                }
            }
        }
        Role::Bystander => {
            let ch2 = ch2.expect("master has the reducer channel");
            let mut hist = vec![0u64; cfg.vocab];
            if tree_plan.is_some() {
                // Tree mode: one merged shard arrives from the tree root.
                let mut from_root: Stream<Vec<(u32, u64)>> = Stream::attach(ch2);
                from_root.operate(rank, |_, shard| {
                    for (w, c) in shard {
                        hist[w as usize] += c;
                    }
                });
            } else {
                // Flat mode: aggregate the stream of unaggregated chunks.
                let mut from_reducers: Stream<KvChunk> = Stream::attach(ch2);
                master_aggregate(rank, &mut from_reducers, &mut hist);
            }
            Some(hist)
        }
    }
}

/// Serial oracle for [`mini_mapreduce`]: the histogram the master must
/// produce for a world of `nprocs` ranks, independent of any transport.
pub fn mini_mapreduce_oracle(nprocs: usize, cfg: &MiniMrConfig) -> Vec<u64> {
    let spec = GroupSpec { every: cfg.every };
    let nmap = (0..nprocs).filter(|&r| spec.role_of(r) == Role::Producer).count();
    let mut hist = vec![0u64; cfg.vocab];
    for mi in 0..nmap {
        for chunk in 0..cfg.chunks_per_mapper {
            for i in 0..cfg.tokens_per_chunk {
                hist[token(cfg, mi, chunk, i) as usize] += 1;
            }
        }
    }
    hist
}

/// Order-insensitive fingerprint of a payload multiset: sort a copy, then
/// fold each value through splitmix64. Two backends that deliver the same
/// multiset — in any order — produce the same fingerprint.
pub fn fingerprint(values: &[u64]) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let mut h = 0xcbf29ce484222325u64;
    for v in sorted {
        h = mix64(h ^ v);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{MachineConfig, World};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn quickstart_consumers_see_every_update_in_sim() {
        let reports: Arc<Mutex<HashMap<usize, PortableReport>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let r2 = reports.clone();
        World::new(MachineConfig::default()).with_seed(7).run_expect(16, move |rank| {
            let rep = quickstart(rank, 10, 8);
            r2.lock().insert(rank.world_rank(), rep);
        });
        let reports = reports.lock();
        let produced: u64 = reports.values().map(|r| r.sent).sum();
        let consumed: usize = reports.values().map(|r| r.received.len()).sum();
        assert_eq!(produced, 14 * 10); // 14 producers, 10 steps each
        assert_eq!(consumed as u64, produced);
    }

    #[test]
    fn mini_mapreduce_matches_oracle_in_sim() {
        let cfg = MiniMrConfig::default();
        let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        let cfg2 = cfg.clone();
        World::new(MachineConfig::default()).with_seed(9).run_expect(8, move |rank| {
            if let Some(hist) = mini_mapreduce(rank, &cfg2) {
                *g2.lock() = hist;
            }
        });
        assert_eq!(*got.lock(), mini_mapreduce_oracle(8, &cfg));
    }

    #[test]
    fn tree_aggregated_mini_mapreduce_matches_oracle_in_sim() {
        // Combiners on the mappers + a fan-in-2 reduction tree between the
        // local reducers and the master: same histogram, exactly (integer
        // count merging has no reduction-order sensitivity).
        let cfg =
            MiniMrConfig { combine_every: 4, tree_fan_in: Some(2), ..MiniMrConfig::default() };
        let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        let cfg2 = cfg.clone();
        World::new(MachineConfig::default()).with_seed(11).run_expect(16, move |rank| {
            if let Some(hist) = mini_mapreduce(rank, &cfg2) {
                *g2.lock() = hist;
            }
        });
        assert_eq!(*got.lock(), mini_mapreduce_oracle(16, &cfg));
    }

    #[test]
    fn fingerprint_is_order_insensitive() {
        assert_eq!(fingerprint(&[3, 1, 2]), fingerprint(&[1, 2, 3]));
        assert_ne!(fingerprint(&[1, 2, 3]), fingerprint(&[1, 2, 4]));
        assert_ne!(fingerprint(&[1]), fingerprint(&[1, 1]));
    }
}

//! Criterion benchmarks — one group per paper figure plus the model
//! ablation, at CI-friendly scale (the full sweeps live in the
//! `--bin figN` harnesses).
//!
//! Run with `cargo bench -p bench-harness`.

use apps::cg;
use apps::mapreduce;
use apps::pic;
use bench_harness::configs;
use criterion::{criterion_group, criterion_main, Criterion};
use perfmodel::{figure3, Beta, Complexity, Scenario};

const P: usize = 64;

fn fig2_trace(c: &mut Criterion) {
    let cfg = pic::PicConfig {
        actual_per_rank: 128,
        iterations: 3,
        alpha_every: 7,
        dt: 0.3,
        ..pic::PicConfig::default()
    };
    let mut g = c.benchmark_group("fig2_trace");
    g.sample_size(10);
    g.bench_function("reference_7ranks", |b| b.iter(|| pic::run_comm_reference_traced(7, &cfg)));
    g.bench_function("decoupled_7ranks", |b| b.iter(|| pic::run_comm_decoupled_traced(7, &cfg)));
    g.finish();
}

fn fig3_model(c: &mut Criterion) {
    let scn = Scenario {
        t_w0: 10e-3,
        t_w1: 4e-3,
        complexity: Complexity::Divisible,
        t_sigma: 2e-3,
        data_d: 4 << 20,
        overhead_o: 1e-6,
        p: 16,
        beta: Beta::new(0.05, 1e6),
        op1_optimization: 8.0,
    };
    let mut g = c.benchmark_group("fig3_model");
    g.bench_function("schedule_comparison", |b| b.iter(|| figure3(&scn, 1.0 / 8.0, 16e3)));
    g.bench_function("optimal_alpha_search", |b| b.iter(|| scn.optimal_alpha(16e3)));
    g.bench_function("optimal_granularity_search", |b| {
        b.iter(|| scn.optimal_granularity(1.0 / 8.0, 64.0, 1e8))
    });
    g.finish();
}

fn fig5_mapreduce(c: &mut Criterion) {
    // Scaled-down corpus so one run is ~a second.
    let mut small = configs::fig5(P, 16);
    small.corpus.tokens_per_gb = 4_000;
    small.corpus.min_file_bytes = 32 << 20;
    small.corpus.max_file_bytes = 128 << 20;
    let mut g = c.benchmark_group("fig5_mapreduce");
    g.sample_size(10);
    g.bench_function("reference_64ranks", |b| b.iter(|| mapreduce::run_reference(P, &small)));
    g.bench_function("decoupled_64ranks", |b| b.iter(|| mapreduce::run_decoupled(P, &small)));
    g.finish();
}

fn fig6_cg(c: &mut Criterion) {
    let cfg = configs::fig6(10);
    let mut g = c.benchmark_group("fig6_cg");
    g.sample_size(10);
    g.bench_function("blocking_64ranks", |b| b.iter(|| cg::run_blocking(P, &cfg)));
    g.bench_function("nonblocking_64ranks", |b| b.iter(|| cg::run_nonblocking(P, &cfg)));
    g.bench_function("decoupled_64ranks", |b| b.iter(|| cg::run_decoupled(P, &cfg)));
    g.finish();
}

fn fig7_pic_comm(c: &mut Criterion) {
    let mut cfg = configs::fig7();
    cfg.iterations = 4;
    cfg.actual_per_rank = 48;
    let mut g = c.benchmark_group("fig7_pic_comm");
    g.sample_size(10);
    g.bench_function("reference_64ranks", |b| b.iter(|| pic::run_comm_reference(P, &cfg)));
    g.bench_function("decoupled_64ranks", |b| b.iter(|| pic::run_comm_decoupled(P, &cfg)));
    g.finish();
}

fn fig8_pic_io(c: &mut Criterion) {
    let mut cfg = configs::fig8();
    cfg.iterations = 2;
    cfg.actual_per_rank = 48;
    let mut g = c.benchmark_group("fig8_pic_io");
    g.sample_size(10);
    g.bench_function("write_all_64ranks", |b| {
        b.iter(|| pic::run_io_reference(P, &cfg, pic::IoMode::Collective))
    });
    g.bench_function("write_shared_64ranks", |b| {
        b.iter(|| pic::run_io_reference(P, &cfg, pic::IoMode::Shared))
    });
    g.bench_function("decoupled_64ranks", |b| b.iter(|| pic::run_io_decoupled(P, &cfg)));
    g.finish();
}

fn engine_microbench(c: &mut Criterion) {
    use desim::{SimConfig, SimDuration, Simulation};
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    // Raw event throughput: 256 processes x 200 advances.
    g.bench_function("context_switches_51k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(SimConfig::default());
            for i in 0..256usize {
                sim.spawn(format!("p{i}"), |ctx| {
                    for _ in 0..200 {
                        ctx.advance(SimDuration::from_nanos(10));
                    }
                });
            }
            sim.run_expect()
        })
    });
    // Message path: ping-pong pairs.
    g.bench_function("p2p_pingpong_8k_msgs", |b| {
        use mpisim::{MachineConfig, Src, World};
        b.iter(|| {
            let world = World::new(MachineConfig::ideal());
            world.run_expect(16, |rank| {
                let peer = rank.world_rank() ^ 1;
                for i in 0..500u32 {
                    if rank.world_rank() % 2 == 0 {
                        rank.send(peer, 1, 64, i);
                        let _ = rank.recv::<u32>(Src::Rank(peer), 2);
                    } else {
                        let _ = rank.recv::<u32>(Src::Rank(peer), 1);
                        rank.send(peer, 2, 64, i);
                    }
                }
            })
        })
    });
    g.finish();
}

fn ablation_model(c: &mut Criterion) {
    let scn = Scenario {
        t_w0: 1.0,
        t_w1: 0.5,
        complexity: Complexity::LogP,
        t_sigma: 0.1,
        data_d: 1 << 30,
        overhead_o: 1e-6,
        p: 8192,
        beta: Beta::new(0.05, 1e6),
        op1_optimization: 1.0,
    };
    let mut g = c.benchmark_group("ablation_model");
    g.bench_function("eq4_full_sweep", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            for k in 2..64usize {
                let (_, t) = scn.optimal_granularity(1.0 / k as f64, 64.0, 1e9);
                best = best.min(t);
            }
            best
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig2_trace,
    fig3_model,
    fig5_mapreduce,
    fig6_cg,
    fig7_pic_comm,
    fig8_pic_io,
    engine_microbench,
    ablation_model
);
criterion_main!(benches);

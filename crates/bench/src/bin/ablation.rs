//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. stream granularity S (Eq. 4's pipelining-vs-overhead trade-off),
//! 2. group fraction α across the applications,
//! 3. producer-side aggregation for the MapReduce master flow,
//! 4. credit-based flow control (memory bound vs throughput),
//! 5. adaptive granularity (the paper's stated future work).
//!
//! `cargo run --release -p bench-harness --bin ablation`.

use bench_harness::{configs, Table};
use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{run_decoupled, AdaptiveGranularity, ChannelConfig, GroupSpec, RoutePolicy};
use perfmodel::{Beta, Complexity, Scenario};

const P: usize = 128;

/// Synthetic pipeline whose op sizes mirror Eq. 4's regime.
fn pipeline_time(aggregation: usize, credits: Option<usize>, adaptive: bool) -> f64 {
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let world = World::new(machine).with_seed(11);
    world
        .run_expect(64, move |rank| {
            let comm = rank.comm_world();
            run_decoupled::<u64, _, _, _>(
                rank,
                &comm,
                GroupSpec { every: 8 },
                ChannelConfig {
                    element_bytes: 4 << 10,
                    aggregation,
                    credits,
                    route: RoutePolicy::Static,
                    credit_batch: 1,
                    failure_timeout: None,
                    replicas: 0,
                    replication_patience: None,
                },
                move |rank, pc| {
                    let mut ctl = AdaptiveGranularity::new(200e-6, 1, 512);
                    let mut since_flush = 0usize;
                    for i in 0..2_000u64 {
                        rank.compute_exact(3e-6);
                        pc.stream.isend(rank, i);
                        if adaptive {
                            since_flush += 1;
                            if since_flush >= ctl.batch() {
                                ctl.on_flush(rank.now());
                                since_flush = 0;
                            }
                        }
                    }
                },
                |rank, cc| {
                    cc.stream.operate(rank, |rank, _| rank.compute_exact(2e-6));
                },
            );
        })
        .elapsed_secs()
}

fn granularity_sweep() {
    let mut table = Table::new(
        "Ablation 1 — stream aggregation (granularity S), synthetic pipeline",
        "batch",
        &["sim_secs", "model_secs"],
    );
    let scn = Scenario {
        t_w0: 2_000.0 / 56.0 * 64.0 * 3e-6, // per-producer op0
        t_w1: 2_000.0 * 2e-6 / 8.0,
        complexity: Complexity::Divisible,
        t_sigma: 0.0,
        data_d: 2_000 * 56 / 64 * (4 << 10),
        overhead_o: 1.2e-6,
        p: 64,
        beta: Beta::new(0.05, (256u64 << 10) as f64),
        op1_optimization: 1.0,
    };
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let sim = pipeline_time(batch, None, false);
        let model = scn.predict(1.0 / 8.0, (batch * (4 << 10)) as f64);
        println!("batch {batch:>4}: sim {sim:.4}s  model {model:.4}s");
        table.push(batch, vec![sim, model]);
    }
    table.finish("ablation_granularity");
}

fn alpha_sweep() {
    let mut table = Table::new(
        "Ablation 2 — group fraction alpha (MapReduce, P=128), time (s)",
        "every",
        &["mapreduce_secs"],
    );
    for every in [4usize, 8, 16, 32, 64] {
        let cfg = configs::fig5(P, every);
        let t = apps::mapreduce::run_decoupled(P, &cfg).outcome.elapsed_secs();
        println!("alpha = 1/{every:>2}: {t:.3}s");
        table.push(every, vec![t]);
    }
    table.finish("ablation_alpha");
}

fn credits_sweep() {
    let mut table = Table::new(
        "Ablation 3 — credit window (flow control): time vs memory bound",
        "credits",
        &["secs"],
    );
    // Windows must admit at least one aggregated batch (8 elements here).
    for credits in [8usize, 16, 64, 256, 0] {
        let c = if credits == 0 { None } else { Some(credits) };
        let t = pipeline_time(8, c, false);
        let label = if credits == 0 { "unbounded".to_string() } else { credits.to_string() };
        println!("credits {label:>9}: {t:.4}s");
        table.push(credits, vec![t]);
    }
    table.finish("ablation_credits");
}

fn adaptive_vs_static() {
    let fixed_fine = pipeline_time(1, None, false);
    let fixed_coarse = pipeline_time(128, None, false);
    let adaptive = pipeline_time(1, None, true);
    println!(
        "\nAblation 4 — adaptive granularity: fine {fixed_fine:.4}s, \
         coarse {fixed_coarse:.4}s, adaptive {adaptive:.4}s"
    );
    let mut table =
        Table::new("Ablation 4 — adaptive granularity controller", "variant", &["secs"]);
    table.push(1, vec![fixed_fine]);
    table.push(128, vec![fixed_coarse]);
    table.push(999, vec![adaptive]);
    table.finish("ablation_adaptive");
}

fn main() {
    granularity_sweep();
    alpha_sweep();
    credits_sweep();
    adaptive_vs_static();
}

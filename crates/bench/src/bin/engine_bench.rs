//! Engine perf-regression harness: microbenchmarks of the simulation
//! engine's hot paths, emitting machine-readable `BENCH_engine.json`.
//!
//! Four scenarios, each a self-contained deterministic world (fixed seed,
//! zero noise) timed in *wall clock* — virtual time measures the modelled
//! machine, wall time measures the simulator:
//!
//! - **incast** — one consumer drains N producers' large messages via
//!   `Src::Any` (the Fig. 5 master pattern). Large messages keep arrivals
//!   rx-NIC-serialized behind the consumer, so every receive exercises the
//!   mailbox's nothing-available-yet path — the quadratic hot spot this
//!   harness exists to watch.
//! - **pingpong** — two ranks alternating small sends; isolates per-event
//!   kernel overhead (token passing, heap churn) with a near-empty mailbox.
//! - **fanin** — a consumer polling many tags over `try_recv` +
//!   `wait_for_mail` while producers fan in; exercises probe misses and
//!   `park_until_change` wake-ups.
//! - **chaos** — a fault-free slice of the DST stream pipeline (credits,
//!   RoundRobin) across a few seeds; end-to-end engine throughput with the
//!   full mpistream protocol on top.
//! - **agg_incast** — the same all-to-one reduction as incast but routed
//!   through the fan-in-k tree-aggregation operators; gates the
//!   hierarchical-aggregation win (virtual end time far below the flat
//!   incast at the same rank count) so it stays a fact, not an anecdote.
//!
//! Per scenario we report wall-clock, messages, kernel event counters
//! ([`desim::EventStats`]), events per delivered message, and virtual end
//! time. `--quick` shrinks the workloads for the CI smoke step; `--baseline
//! <path>` splices a previously captured JSON verbatim under `"baseline"`
//! so before/after rides in one artifact; `--out <path>` overrides the
//! default `BENCH_engine.json` at the workspace root.
//!
//! `--check` turns the run into a regression *gate* against the baseline
//! (same mode required): per scenario, virtual end time and message count
//! must match the baseline exactly — the timing model is deterministic, so
//! any drift is a behaviour change, not noise — and wall time must stay
//! within `ENGINE_BENCH_MAX_RATIO` (default 3.0) of the baseline's. The
//! generous wall ratio absorbs host-to-host variance while still catching
//! a reintroduced quadratic hot path, which regresses by 10–50x.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_harness::{scenarios as sc, workspace_root};
use desim::EventStats;
use mpisim::{MachineConfig, NoiseModel, Src, World};
use mpistream::{ChannelConfig, Role, RoutePolicy, Stream, StreamChannel};

const SEED: u64 = 0xE26_1BE7;

/// One scenario's measured numbers.
struct Metrics {
    wall_secs: f64,
    msgs: u64,
    events: EventStats,
    sim_end_secs: f64,
}

impl Metrics {
    fn json(&self) -> String {
        let events_per_msg =
            if self.msgs > 0 { self.events.fired as f64 / self.msgs as f64 } else { 0.0 };
        let kmsgs_per_sec =
            if self.wall_secs > 0.0 { self.msgs as f64 / self.wall_secs / 1e3 } else { 0.0 };
        format!(
            concat!(
                "{{\"wall_ms\": {:.3}, \"msgs\": {}, ",
                "\"events_scheduled\": {}, \"events_coalesced\": {}, \"events_fired\": {}, ",
                "\"events_per_msg\": {:.3}, \"kmsgs_per_sec_wall\": {:.2}, ",
                "\"sim_end_ms\": {:.3}}}"
            ),
            self.wall_secs * 1e3,
            self.msgs,
            self.events.scheduled,
            self.events.coalesced,
            self.events.fired,
            events_per_msg,
            kmsgs_per_sec,
            self.sim_end_secs * 1e3,
        )
    }
}

fn quiet_world(seed: u64) -> World {
    World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(seed)
}

/// Time `run`, which returns a finished world outcome.
fn measure(run: impl FnOnce() -> mpisim::WorldOutcome) -> Metrics {
    let t0 = Instant::now();
    let out = run();
    let wall_secs = t0.elapsed().as_secs_f64();
    Metrics {
        wall_secs,
        msgs: out.msgs_sent,
        events: out.sim.events,
        sim_end_secs: out.sim.end_time.as_secs_f64(),
    }
}

/// The Fig. 5 master: rank 0 drains `producers * per_producer` large
/// messages via `Src::Any` while the rx NIC serializes arrivals.
fn incast(producers: usize, per_producer: u64) -> Metrics {
    const BYTES: u64 = 64 << 10;
    measure(move || {
        quiet_world(SEED).run_expect(producers + 1, move |rank| {
            let me = rank.world_rank();
            if me == 0 {
                let total = producers as u64 * per_producer;
                let mut sum = 0u64;
                for _ in 0..total {
                    let (v, _info) = rank.recv::<u64>(Src::Any, 1);
                    sum = sum.wrapping_add(v);
                }
                assert!(sum > 0);
            } else {
                for i in 0..per_producer {
                    rank.send(0, 1, BYTES, (me as u64) << 32 | i);
                }
            }
        })
    })
}

/// Two ranks alternating small messages: per-event kernel overhead.
fn pingpong(rounds: u64) -> Metrics {
    measure(move || {
        quiet_world(SEED).run_expect(2, move |rank| {
            let me = rank.world_rank();
            let peer = 1 - me;
            for i in 0..rounds {
                if me == 0 {
                    rank.send(peer, 7, 8, i);
                    let (v, _) = rank.recv::<u64>(Src::Rank(peer), 7);
                    assert_eq!(v, i);
                } else {
                    let (v, _) = rank.recv::<u64>(Src::Rank(peer), 7);
                    rank.send(peer, 7, 8, v);
                }
            }
        })
    })
}

/// A consumer polling `tags` distinct tags over `try_recv`, sleeping on
/// `wait_for_mail` between passes, while `producers` ranks fan in.
fn fanin(producers: usize, per_producer: u64, tags: u32) -> Metrics {
    measure(move || {
        quiet_world(SEED).run_expect(producers + 1, move |rank| {
            let me = rank.world_rank();
            if me == 0 {
                let total = producers as u64 * per_producer;
                let mut got = 0u64;
                while got < total {
                    let mut progressed = false;
                    for t in 1..=tags {
                        while rank.try_recv::<u64>(Src::Any, t).is_some() {
                            got += 1;
                            progressed = true;
                        }
                    }
                    if !progressed && got < total {
                        rank.wait_for_mail();
                    }
                }
            } else {
                let tag = 1 + (me as u32 - 1) % tags;
                for i in 0..per_producer {
                    rank.send(0, tag, 4 << 10, i);
                }
            }
        })
    })
}

/// Fault-free slice of the chaos stream pipeline: 4 producers, 2
/// consumers, credit window 32, RoundRobin routing.
fn chaos_throughput(per_producer: u64, seeds: u64) -> Metrics {
    const N_PRODUCERS: usize = 4;
    const N_CONSUMERS: usize = 2;
    let mut total =
        Metrics { wall_secs: 0.0, msgs: 0, events: EventStats::default(), sim_end_secs: 0.0 };
    for seed in 0..seeds {
        let m = measure(move || {
            let config = ChannelConfig {
                element_bytes: 512,
                aggregation: 2,
                credits: Some(32),
                route: RoutePolicy::RoundRobin,
                credit_batch: 1,
                failure_timeout: None,
                replicas: 0,
                replication_patience: None,
            };
            let processed = Arc::new(AtomicU64::new(0));
            let p = processed.clone();
            let out = quiet_world(SEED ^ seed).run_expect(N_PRODUCERS + N_CONSUMERS, move |rank| {
                let comm = rank.comm_world();
                let me = rank.world_rank();
                let role = if me < N_PRODUCERS { Role::Producer } else { Role::Consumer };
                let ch = StreamChannel::create(rank, &comm, role, config.clone());
                let mut stream: Stream<u64> = Stream::attach(ch);
                match role {
                    Role::Producer => {
                        for i in 0..per_producer {
                            stream.isend(rank, (me as u64) << 32 | i);
                        }
                        stream.terminate(rank);
                    }
                    Role::Consumer => {
                        let outcome = stream.operate_outcome(rank, |_, _| {});
                        p.fetch_add(outcome.processed, Ordering::Relaxed);
                    }
                    Role::Bystander => unreachable!(),
                }
            });
            assert_eq!(
                processed.load(Ordering::Relaxed),
                per_producer * N_PRODUCERS as u64,
                "chaos scenario lost elements"
            );
            out
        });
        total.wall_secs += m.wall_secs;
        total.msgs += m.msgs;
        total.events.scheduled += m.events.scheduled;
        total.events.coalesced += m.events.coalesced;
        total.events.fired += m.events.fired;
        total.sim_end_secs += m.sim_end_secs;
    }
    total
}

/// The incast pattern routed through the tree-aggregation operators:
/// every rank contributes a 64 KiB partial, merged down a fan-in-`k`
/// reduction tree to rank 0. Same all-to-one semantics as `incast`, but
/// the virtual end time must reflect the flattened hierarchy.
fn agg_incast(ranks: usize, fan_in: usize) -> Metrics {
    const WIDTH: usize = 8 << 10; // u64s per partial = 64 KiB payloads
    measure(move || {
        let roots = Arc::new(AtomicU64::new(0));
        let r = roots.clone();
        let out = quiet_world(SEED).run_expect(ranks, move |rank| {
            let n = sc::agg_incast_rank(rank, fan_in, WIDTH);
            r.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(roots.load(Ordering::Relaxed), 1, "agg_incast must elect exactly one root");
        out
    })
}

/// Pull a JSON number field out of `obj` (a flat `{...}` emitted by
/// [`Metrics::json`]) without a JSON dependency.
fn field(obj: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\": ");
    let start = obj.find(&key)? + key.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Slice one scenario's `{...}` object out of a full engine_bench JSON.
fn scenario_obj<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\": {{");
    let start = json.find(&key)? + key.len() - 1;
    let end = json[start..].find('}')? + start;
    Some(&json[start..=end])
}

/// Gate the measured scenarios against a prior capture: exact virtual
/// times and message counts (determinism — any drift is a model change),
/// bounded wall-time ratio (a reintroduced hot path). Returns the number
/// of violations, printing each.
fn check_against(baseline: &str, mode: &str, scenarios: &[(&str, Metrics)]) -> u32 {
    if !baseline.contains(&format!("\"mode\": \"{mode}\"")) {
        eprintln!("check: baseline mode differs from --{mode} run; re-capture the baseline");
        return 1;
    }
    let max_ratio: f64 =
        std::env::var("ENGINE_BENCH_MAX_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(3.0);
    let mut violations = 0;
    for (name, m) in scenarios {
        let Some(obj) = scenario_obj(baseline, name) else {
            eprintln!("check: baseline has no scenario \"{name}\"");
            violations += 1;
            continue;
        };
        let (Some(b_sim), Some(b_msgs), Some(b_wall)) =
            (field(obj, "sim_end_ms"), field(obj, "msgs"), field(obj, "wall_ms"))
        else {
            eprintln!("check: baseline scenario \"{name}\" is missing fields");
            violations += 1;
            continue;
        };
        let sim_ms = m.sim_end_secs * 1e3;
        // Emitted with 3 decimals; compare at that resolution.
        if format!("{sim_ms:.3}") != format!("{b_sim:.3}") {
            eprintln!("check: {name}: virtual end {sim_ms:.3} ms != baseline {b_sim:.3} ms");
            violations += 1;
        }
        if m.msgs as f64 != b_msgs {
            eprintln!("check: {name}: {} msgs != baseline {b_msgs}", m.msgs);
            violations += 1;
        }
        let wall_ms = m.wall_secs * 1e3;
        if b_wall > 0.0 && wall_ms > b_wall * max_ratio {
            eprintln!("check: {name}: wall {wall_ms:.0} ms > {max_ratio}x baseline {b_wall:.0} ms");
            violations += 1;
        }
    }
    violations
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out_path: Option<std::path::PathBuf> = None;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out_path = Some(args.next().expect("--out needs a path").into()),
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline needs a path").into())
            }
            other => {
                eprintln!(
                    "unknown flag {other} (expected --quick/--check/--out <p>/--baseline <p>)"
                );
                std::process::exit(2);
            }
        }
    }
    if check && baseline_path.is_none() {
        eprintln!("--check needs --baseline <path> to compare against");
        std::process::exit(2);
    }
    let out_path = out_path.unwrap_or_else(|| workspace_root().join("BENCH_engine.json"));

    // Workload sizes: `--quick` is the CI smoke (seconds), full mode is the
    // recorded trajectory. The incast producer count in full mode is the
    // acceptance bar from the paper reproduction (Fig. 5 master at 4k).
    let (inc_n, inc_k) = if quick { (512, 2) } else { (4096, 8) };
    let pp_rounds = if quick { 2_000 } else { 20_000 };
    let (fan_n, fan_k, fan_tags) = if quick { (128, 4, 8) } else { (1024, 8, 16) };
    let (chaos_elems, chaos_seeds) = if quick { (500, 2) } else { (2_000, 4) };
    let (agg_n, agg_k) = if quick { (512, 8) } else { (4096, 8) };

    let mode = if quick { "quick" } else { "full" };
    println!("engine_bench ({mode} mode)");
    let scenarios: Vec<(&str, Metrics)> = vec![
        ("incast", {
            println!("  incast: {inc_n} producers x {inc_k} msgs of 64 KiB ...");
            incast(inc_n, inc_k)
        }),
        ("pingpong", {
            println!("  pingpong: {pp_rounds} rounds ...");
            pingpong(pp_rounds)
        }),
        ("fanin", {
            println!("  fanin: {fan_n} producers x {fan_k} msgs over {fan_tags} tags ...");
            fanin(fan_n, fan_k, fan_tags)
        }),
        ("chaos", {
            println!("  chaos: {chaos_seeds} seeds x {chaos_elems} elems/producer ...");
            chaos_throughput(chaos_elems, chaos_seeds)
        }),
        ("agg_incast", {
            println!("  agg_incast: {agg_n} ranks, fan-in {agg_k}, 64 KiB partials ...");
            agg_incast(agg_n, agg_k)
        }),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"engine_bench/v1\",\n  \"mode\": \"{mode}\",\n"));
    json.push_str("  \"scenarios\": {\n");
    for (i, (name, m)) in scenarios.iter().enumerate() {
        let sep = if i + 1 < scenarios.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {}{sep}\n", m.json()));
        println!(
            "  {name}: {:.0} ms wall, {} msgs, {:.1} events/msg",
            m.wall_secs * 1e3,
            m.msgs,
            if m.msgs > 0 { m.events.fired as f64 / m.msgs as f64 } else { 0.0 },
        );
    }
    json.push_str("  }");
    let baseline = baseline_path.as_ref().map(|bp| match std::fs::read_to_string(bp) {
        Ok(content) => content,
        Err(e) => {
            eprintln!("could not read baseline {}: {e}", bp.display());
            std::process::exit(if check { 1 } else { 2 });
        }
    });
    if let Some(content) = &baseline {
        // Splice the prior capture verbatim: before/after in one file.
        json.push_str(",\n  \"baseline\": ");
        let trimmed = content.trim();
        for (i, line) in trimmed.lines().enumerate() {
            if i > 0 {
                json.push_str("\n  ");
            }
            json.push_str(line);
        }
    }
    json.push_str("\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    if check {
        let violations = check_against(baseline.as_deref().unwrap(), mode, &scenarios);
        if violations > 0 {
            eprintln!("check: {violations} regression(s) against the baseline");
            std::process::exit(1);
        }
        println!("check: all scenarios match the baseline (wall within ratio)");
    }
}

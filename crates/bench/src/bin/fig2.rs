//! Figure 2: execution-timeline traces of the mini-iPIC3D particle
//! compute/communication on 7 ranks — reference (top) vs decoupled
//! (bottom, rank P6 hosting the communication group).
//!
//! `cargo run --release -p bench-harness --bin fig2`. Writes the span CSVs
//! under `results/` and prints ASCII Gantt charts (C = compute, M =
//! communication, . = idle).

use apps::pic::{run_comm_decoupled_traced, run_comm_reference_traced, PicConfig};
use bench_harness::write_artifact;

fn main() {
    let cfg = PicConfig {
        actual_per_rank: 256,
        iterations: 4,
        alpha_every: 7, // 7 ranks: 6 compute + 1 communication (the paper's G1)
        dt: 0.3,
        ..PicConfig::default()
    };

    let reference = run_comm_reference_traced(7, &cfg);
    println!(
        "reference implementation ({} steps, makespan {:.3}s):",
        cfg.iterations,
        reference.outcome.elapsed_secs()
    );
    let g = reference.outcome.sim.trace.to_gantt(100);
    println!("{g}");
    write_artifact("fig2_reference.csv", &reference.outcome.sim.trace.to_csv());

    let decoupled = run_comm_decoupled_traced(7, &cfg);
    println!(
        "decoupled implementation (makespan {:.3}s; P6 = communication group):",
        decoupled.outcome.elapsed_secs()
    );
    let g = decoupled.outcome.sim.trace.to_gantt(100);
    println!("{g}");
    write_artifact("fig2_decoupled.csv", &decoupled.outcome.sim.trace.to_csv());

    // The figure's claim: the decoupled run is shorter and its compute
    // ranks spend a larger fraction of the timeline computing.
    println!(
        "makespan: reference {:.3}s vs decoupled {:.3}s",
        reference.outcome.elapsed_secs(),
        decoupled.outcome.elapsed_secs()
    );
}

//! Figure 2: execution-timeline traces of the mini-iPIC3D particle
//! compute/communication on 7 ranks — reference (top) vs decoupled
//! (bottom, rank P6 hosting the communication group).
//!
//! `cargo run --release -p bench-harness --bin fig2`. Writes the span CSVs
//! under `results/` and prints ASCII Gantt charts (C = compute, M =
//! communication, . = idle). With `--chrome-trace`, additionally writes
//! `fig2_{reference,decoupled}.trace.json` — Chrome-trace files openable
//! in `chrome://tracing` / Perfetto.

use apps::pic::{run_comm_decoupled_traced, run_comm_reference_traced, PicConfig};
use bench_harness::write_artifact;
use streamprof::{Clock, Trace};

fn main() {
    let chrome = std::env::args().any(|a| a == "--chrome-trace");
    let cfg = PicConfig {
        actual_per_rank: 256,
        iterations: 4,
        alpha_every: 7, // 7 ranks: 6 compute + 1 communication (the paper's G1)
        dt: 0.3,
        ..PicConfig::default()
    };

    let reference = run_comm_reference_traced(7, &cfg);
    let ref_trace = Trace::from_desim(&reference.outcome.sim.trace, Clock::Virtual);
    println!(
        "reference implementation ({} steps, makespan {:.3}s):",
        cfg.iterations,
        reference.outcome.elapsed_secs()
    );
    let g = ref_trace.to_gantt(100);
    println!("{g}");
    write_artifact("fig2_reference.csv", &ref_trace.to_csv());
    if chrome {
        write_artifact("fig2_reference.trace.json", &ref_trace.to_chrome_json());
    }

    let decoupled = run_comm_decoupled_traced(7, &cfg);
    let dec_trace = Trace::from_desim(&decoupled.outcome.sim.trace, Clock::Virtual);
    println!(
        "decoupled implementation (makespan {:.3}s; P6 = communication group):",
        decoupled.outcome.elapsed_secs()
    );
    let g = dec_trace.to_gantt(100);
    println!("{g}");
    write_artifact("fig2_decoupled.csv", &dec_trace.to_csv());
    if chrome {
        write_artifact("fig2_decoupled.trace.json", &dec_trace.to_chrome_json());
    }

    // The figure's claim: the decoupled run is shorter and its compute
    // ranks spend a larger fraction of the timeline computing.
    println!(
        "makespan: reference {:.3}s vs decoupled {:.3}s",
        reference.outcome.elapsed_secs(),
        decoupled.outcome.elapsed_secs()
    );
}

//! Figure 3: conventional vs non-blocking vs decoupled execution — the
//! conceptual schedule comparison, regenerated quantitatively from the
//! performance model (Eqs. 1–4) across an imbalance sweep, and
//! cross-checked with a micro-simulation.
//!
//! `cargo run --release -p bench-harness --bin fig3`.

use bench_harness::Table;
use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{run_decoupled, ChannelConfig, GroupSpec};
use perfmodel::{figure3, Beta, Complexity, Scenario};

fn scenario(t_sigma: f64) -> Scenario {
    Scenario {
        t_w0: 10e-3,
        t_w1: 4e-3,
        complexity: Complexity::Divisible,
        t_sigma,
        data_d: 4 << 20,
        overhead_o: 1e-6,
        p: 16,
        beta: Beta::new(0.05, (1u64 << 20) as f64),
        op1_optimization: 8.0,
    }
}

/// Micro-simulation of the same two-operation app (see the
/// model-vs-simulation integration tests for the full validation).
fn micro_sim(t_sigma: f64) -> (f64, f64) {
    let machine = MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() };
    let elements = 100usize;
    let op0 = 10e-3 / elements as f64;
    let op1 = 4e-3 / elements as f64;

    let world = World::new(machine.clone()).with_seed(5);
    let conv = world
        .run_expect(16, move |rank| {
            let comm = rank.comm_world();
            let straggle = if rank.world_rank() == 0 { t_sigma / 10e-3 } else { 0.0 };
            for _ in 0..elements {
                rank.compute_exact(op0 * (1.0 + straggle));
            }
            rank.barrier(&comm);
            for _ in 0..elements {
                rank.compute_exact(op1);
            }
            rank.barrier(&comm);
        })
        .elapsed_secs();

    let world = World::new(machine).with_seed(5);
    let dec = world
        .run_expect(16, move |rank| {
            let comm = rank.comm_world();
            run_decoupled::<u64, _, _, _>(
                rank,
                &comm,
                GroupSpec { every: 8 },
                ChannelConfig { element_bytes: 4 << 10, ..ChannelConfig::default() },
                move |rank, pc| {
                    let straggle = if rank.world_rank() == 0 { t_sigma / 10e-3 } else { 0.0 };
                    for i in 0..elements {
                        rank.compute_exact(op0 * (1.0 + straggle));
                        pc.stream.isend(rank, i as u64);
                    }
                },
                move |rank, cc| {
                    // Total Op1 work (16 ranks x 100 x op1) splits over 2
                    // consumers (700 elements each) and runs 8x faster on
                    // the dedicated group (the model's op1_optimization).
                    let per_elem = 16.0 * 100.0 * op1 / 2.0 / 700.0 / 8.0;
                    cc.stream.operate(rank, move |rank, _| rank.compute_exact(per_elem));
                },
            );
        })
        .elapsed_secs();
    (conv, dec)
}

fn main() {
    let mut table = Table::new(
        "Fig. 3 — schedule comparison vs imbalance (model, ms; sim in ())",
        "sigma_pct",
        &["conventional", "nonblocking", "decoupled", "sim_conv", "sim_dec"],
    );
    for pct in [0usize, 10, 25, 50, 100] {
        let t_sigma = 10e-3 * pct as f64 / 100.0;
        let f = figure3(&scenario(t_sigma), 1.0 / 8.0, 16e3);
        let (sim_c, sim_d) = micro_sim(t_sigma);
        println!(
            "Tσ = {pct:>3}% of Op0: conventional {:.2}ms  nonblocking {:.2}ms  \
             decoupled {:.2}ms   | sim: conv {:.2}ms dec {:.2}ms",
            f.conventional * 1e3,
            f.nonblocking * 1e3,
            f.decoupled * 1e3,
            sim_c * 1e3,
            sim_d * 1e3
        );
        table.push(
            pct,
            vec![
                f.conventional * 1e3,
                f.nonblocking * 1e3,
                f.decoupled * 1e3,
                sim_c * 1e3,
                sim_d * 1e3,
            ],
        );
    }
    table.finish("fig3_schedules");
}

//! Figure 5: weak-scaling MapReduce word histogram — reference vs
//! decoupled at α = 12.5 / 6.25 / 3.125 %, plus the tree-aggregated
//! pipeline (producer-side combiners + a fan-in-8 reduction tree between
//! the local reducers and the master) at α = 6.25 %.
//!
//! `cargo run --release -p bench-harness --bin fig5` (env: MAX_PROCS,
//! FULL_SCALE=1 for the paper's 8,192).
//!
//! `FIG5_EXTENDED=1` switches to the extended-scale sweep *past* the
//! paper's 8,192 ranks (1,024 up to a default ceiling of 16,384;
//! MAX_PROCS raises it): the same pipeline at 8x coarser stream
//! granularity — identical modelled bytes per mapper, an eighth of the
//! simulator events — so 16K+ rank worlds stay affordable on one host.
//! One sweep emits two tables: `fig5_extended.{csv,svg}` (execution
//! time, flat vs tree-aggregated) and `fig5_master_drain.{csv,svg}`
//! (the master's pipeline-flush tail — the incast the aggregation
//! operators exist to kill).

use apps::mapreduce::{run_decoupled, run_reference, MapReduceConfig};
use bench_harness::{configs, max_procs, proc_sweep, run_weak_scaling, FigRow, Table};

/// The tree-aggregated variant: merge 8 same-reducer chunks before they
/// enter the map-output channel, and interpose a fan-in-8 reduction tree
/// between the local reducers and the master.
fn agg(mut cfg: MapReduceConfig) -> MapReduceConfig {
    cfg.combine_every = 8;
    cfg.tree_fan_in = Some(8);
    cfg
}

/// 8x coarser stream granularity: same modelled bytes per mapper, 1/8th
/// the simulator events — the extended sweep's affordability knob. The
/// decoupled-vs-aggregated comparison is unaffected (both sides coarsen
/// identically).
fn coarse(mut cfg: MapReduceConfig) -> MapReduceConfig {
    cfg.chunk_tokens *= 8;
    cfg.element_bytes *= 8;
    cfg.master_element_bytes *= 8;
    cfg
}

fn standard_sweep() {
    run_weak_scaling(
        "fig5_mapreduce",
        "Fig. 5 — MapReduce weak scaling, execution time (s)",
        &["reference", "dec_a12.5%", "dec_a6.25%", "dec_a3.125%", "agg_a6.25%"],
        1024,
        |p| {
            let t_ref = run_reference(p, &configs::fig5(p, 16)).outcome.elapsed_secs();
            let d8 = run_decoupled(p, &configs::fig5(p, 8)).outcome.elapsed_secs();
            let d16 = run_decoupled(p, &configs::fig5(p, 16)).outcome.elapsed_secs();
            let d32 = run_decoupled(p, &configs::fig5(p, 32)).outcome.elapsed_secs();
            let da = run_decoupled(p, &agg(configs::fig5(p, 16))).outcome.elapsed_secs();
            FigRow {
                values: vec![t_ref, d8, d16, d32, da],
                note: format!(
                    "ref {t_ref:.3}  a=1/8 {d8:.3}  a=1/16 {d16:.3}  a=1/32 {d32:.3}  \
                     agg {da:.3}"
                ),
            }
        },
    );
}

fn extended_sweep() {
    let max = max_procs(16_384);
    let procs: Vec<usize> = proc_sweep(max).into_iter().filter(|&p| p >= 1024).collect();
    let mut times = Table::new(
        "Fig. 5 (extended) — MapReduce weak scaling past 8,192 ranks, execution time (s)",
        "procs",
        &["dec_a6.25%", "agg_a6.25%"],
    );
    let mut drain = Table::new(
        "Fig. 5 (extended) — master pipeline-flush tail (s): flat incast vs combine + tree",
        "procs",
        &["flat", "agg_k8"],
    );
    let rows = desim::sweep::par_map(procs, |p| {
        let flat = run_decoupled(p, &coarse(configs::fig5(p, 16)));
        let tree = run_decoupled(p, &agg(coarse(configs::fig5(p, 16))));
        (p, flat, tree)
    });
    for (p, flat, tree) in rows {
        println!(
            "P={p}: flat {:.3}s (drain {:.3}s)  agg {:.3}s (drain {:.3}s)",
            flat.outcome.elapsed_secs(),
            flat.master_drain_secs,
            tree.outcome.elapsed_secs(),
            tree.master_drain_secs,
        );
        times.push(p, vec![flat.outcome.elapsed_secs(), tree.outcome.elapsed_secs()]);
        drain.push(p, vec![flat.master_drain_secs, tree.master_drain_secs]);
    }
    times.finish("fig5_extended");
    drain.finish("fig5_master_drain");
}

fn main() {
    if std::env::var("FIG5_EXTENDED").map(|v| v == "1").unwrap_or(false) {
        extended_sweep();
    } else {
        standard_sweep();
    }
}

//! Figure 5: weak-scaling MapReduce word histogram — reference vs
//! decoupled at α = 12.5 / 6.25 / 3.125 %.
//!
//! `cargo run --release -p bench-harness --bin fig5` (env: MAX_PROCS,
//! FULL_SCALE=1 for the paper's 8,192).

use apps::mapreduce::{run_decoupled, run_reference};
use bench_harness::{configs, run_weak_scaling, FigRow};

fn main() {
    run_weak_scaling(
        "fig5_mapreduce",
        "Fig. 5 — MapReduce weak scaling, execution time (s)",
        &["reference", "dec_a12.5%", "dec_a6.25%", "dec_a3.125%"],
        1024,
        |p| {
            let t_ref = run_reference(p, &configs::fig5(p, 16)).outcome.elapsed_secs();
            let d8 = run_decoupled(p, &configs::fig5(p, 8)).outcome.elapsed_secs();
            let d16 = run_decoupled(p, &configs::fig5(p, 16)).outcome.elapsed_secs();
            let d32 = if p >= 32 {
                run_decoupled(p, &configs::fig5(p, 32)).outcome.elapsed_secs()
            } else {
                f64::NAN
            };
            FigRow {
                values: vec![t_ref, d8, d16, d32],
                note: format!("ref {t_ref:.3}  a=1/8 {d8:.3}  a=1/16 {d16:.3}  a=1/32 {d32:.3}"),
            }
        },
    );
}

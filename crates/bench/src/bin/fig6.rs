//! Figure 6: weak-scaling CG solver — blocking vs non-blocking halo
//! exchange vs decoupled boundary streaming.
//!
//! `cargo run --release -p bench-harness --bin fig6`. The default runs 50
//! CG iterations (report scales linearly); `FULL_SCALE=1` runs the
//! paper's 300.

use apps::cg::{run_blocking, run_decoupled, run_nonblocking};
use bench_harness::{configs, full_scale, run_weak_scaling, FigRow};

fn main() {
    let iters = if full_scale() { 300 } else { 50 };
    let cfg = configs::fig6(iters);
    run_weak_scaling(
        "fig6_cg",
        &format!("Fig. 6 — CG weak scaling ({iters} iterations), execution time (s)"),
        &["blocking", "nonblocking", "decoupling"],
        1024,
        |p| {
            let b = run_blocking(p, &cfg);
            let n = run_nonblocking(p, &cfg);
            let d = run_decoupled(p, &cfg);
            FigRow {
                note: format!(
                    "blocking {:.3}  nonblocking {:.3}  decoupled {:.3}  \
                     (residuals {:.2e}/{:.2e}/{:.2e})",
                    b.outcome.elapsed_secs(),
                    n.outcome.elapsed_secs(),
                    d.outcome.elapsed_secs(),
                    b.residual,
                    n.residual,
                    d.residual
                ),
                values: vec![
                    b.outcome.elapsed_secs(),
                    n.outcome.elapsed_secs(),
                    d.outcome.elapsed_secs(),
                ],
            }
        },
    );
}

//! Figure 6: weak-scaling CG solver — blocking vs non-blocking halo
//! exchange vs decoupled boundary streaming.
//!
//! `cargo run --release -p bench-harness --bin fig6`. The default runs 50
//! CG iterations (report scales linearly); `FULL_SCALE=1` runs the
//! paper's 300.

use apps::cg::{run_blocking, run_decoupled, run_nonblocking};
use bench_harness::{configs, full_scale, max_procs, proc_sweep, Table};

fn main() {
    let max = max_procs(1024);
    let iters = if full_scale() { 300 } else { 50 };
    let cfg = configs::fig6(iters);
    let mut table = Table::new(
        &format!("Fig. 6 — CG weak scaling ({iters} iterations), execution time (s)"),
        "procs",
        &["blocking", "nonblocking", "decoupling"],
    );
    let rows = desim::sweep::par_map(proc_sweep(max), |p| {
        (p, run_blocking(p, &cfg), run_nonblocking(p, &cfg), run_decoupled(p, &cfg))
    });
    for (p, b, n, d) in rows {
        println!(
            "P={p}: blocking {:.3}  nonblocking {:.3}  decoupled {:.3}  \
             (residuals {:.2e}/{:.2e}/{:.2e})",
            b.outcome.elapsed_secs(),
            n.outcome.elapsed_secs(),
            d.outcome.elapsed_secs(),
            b.residual,
            n.residual,
            d.residual
        );
        table.push(
            p,
            vec![b.outcome.elapsed_secs(), n.outcome.elapsed_secs(), d.outcome.elapsed_secs()],
        );
    }
    table.finish("fig6_cg");
}

//! Figure 7: weak-scaling particle communication in the mini-iPIC3D code —
//! 6-neighbour iterative forwarding vs decoupled two-hop streaming.
//!
//! `cargo run --release -p bench-harness --bin fig7`.

use apps::pic::{run_comm_decoupled, run_comm_reference};
use bench_harness::{configs, max_procs, proc_sweep, Table};

fn main() {
    let max = max_procs(1024);
    let cfg = configs::fig7();
    let mut table = Table::new(
        "Fig. 7 — iPIC3D particle communication weak scaling, execution time (s)",
        "procs",
        &["reference", "decoupling"],
    );
    let rows = desim::sweep::par_map(proc_sweep(max), |p| {
        (p, run_comm_reference(p, &cfg), run_comm_decoupled(p, &cfg))
    });
    for (p, r, d) in rows {
        println!(
            "P={p}: reference {:.3}  decoupled {:.3}  (particles {} / {})",
            r.op_secs, d.op_secs, r.final_particles, d.final_particles
        );
        table.push(p, vec![r.op_secs, d.op_secs]);
    }
    table.finish("fig7_pic_comm");
}

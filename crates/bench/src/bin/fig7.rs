//! Figure 7: weak-scaling particle communication in the mini-iPIC3D code —
//! 6-neighbour iterative forwarding vs decoupled two-hop streaming.
//!
//! `cargo run --release -p bench-harness --bin fig7`.

use apps::pic::{run_comm_decoupled, run_comm_reference};
use bench_harness::{configs, run_weak_scaling, FigRow};

fn main() {
    let cfg = configs::fig7();
    run_weak_scaling(
        "fig7_pic_comm",
        "Fig. 7 — iPIC3D particle communication weak scaling, execution time (s)",
        &["reference", "decoupling"],
        1024,
        |p| {
            let r = run_comm_reference(p, &cfg);
            let d = run_comm_decoupled(p, &cfg);
            FigRow {
                note: format!(
                    "reference {:.3}  decoupled {:.3}  (particles {} / {})",
                    r.op_secs, d.op_secs, r.final_particles, d.final_particles
                ),
                values: vec![r.op_secs, d.op_secs],
            }
        },
    );
}

//! Figure 8: weak-scaling particle I/O in the mini-iPIC3D code —
//! `write_all` (RefColl) vs `write_shared` (RefShared) vs the decoupled
//! I/O group.
//!
//! `cargo run --release -p bench-harness --bin fig8`.

use apps::pic::{run_io_decoupled, run_io_reference, IoMode};
use bench_harness::{configs, run_weak_scaling, FigRow};

fn main() {
    let cfg = configs::fig8();
    run_weak_scaling(
        "fig8_pic_io",
        "Fig. 8 — iPIC3D particle I/O weak scaling, execution time (s)",
        &["RefColl", "RefShared", "Decoupling"],
        1024,
        |p| {
            let c = run_io_reference(p, &cfg, IoMode::Collective);
            let s = run_io_reference(p, &cfg, IoMode::Shared);
            let d = run_io_decoupled(p, &cfg);
            FigRow {
                note: format!(
                    "RefColl {:.3}  RefShared {:.3}  Decoupling {:.3}  \
                     ({:.1} GB written each)",
                    c.op_secs,
                    s.op_secs,
                    d.op_secs,
                    c.bytes_written as f64 / 1e9
                ),
                values: vec![c.op_secs, s.op_secs, d.op_secs],
            }
        },
    );
}

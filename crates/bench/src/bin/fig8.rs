//! Figure 8: weak-scaling particle I/O in the mini-iPIC3D code —
//! `write_all` (RefColl) vs `write_shared` (RefShared) vs the decoupled
//! I/O group.
//!
//! `cargo run --release -p bench-harness --bin fig8`.

use apps::pic::{run_io_decoupled, run_io_reference, IoMode};
use bench_harness::{configs, max_procs, proc_sweep, Table};

fn main() {
    let max = max_procs(1024);
    let cfg = configs::fig8();
    let mut table = Table::new(
        "Fig. 8 — iPIC3D particle I/O weak scaling, execution time (s)",
        "procs",
        &["RefColl", "RefShared", "Decoupling"],
    );
    let rows = desim::sweep::par_map(proc_sweep(max), |p| {
        (
            p,
            run_io_reference(p, &cfg, IoMode::Collective),
            run_io_reference(p, &cfg, IoMode::Shared),
            run_io_decoupled(p, &cfg),
        )
    });
    for (p, c, s, d) in rows {
        println!(
            "P={p}: RefColl {:.3}  RefShared {:.3}  Decoupling {:.3}  \
             ({:.1} GB written each)",
            c.op_secs,
            s.op_secs,
            d.op_secs,
            c.bytes_written as f64 / 1e9
        );
        table.push(p, vec![c.op_secs, s.op_secs, d.op_secs]);
    }
    table.finish("fig8_pic_io");
}

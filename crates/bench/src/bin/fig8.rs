//! Figure 8: weak-scaling particle I/O in the mini-iPIC3D code —
//! `write_all` (RefColl) vs `write_shared` (RefShared) vs the decoupled
//! I/O group, plus the decoupled group with writer aggregation (fan-in-4
//! spill blocks: one file open per block instead of per I/O rank).
//!
//! `cargo run --release -p bench-harness --bin fig8` (env: MAX_PROCS;
//! the committed artifact extends past the paper's 8,192 to 16,384).

use apps::pic::{run_io_decoupled, run_io_reference, IoMode, PicConfig};
use bench_harness::{configs, run_weak_scaling, FigRow};

fn main() {
    let cfg = configs::fig8();
    let agg_cfg = PicConfig { io_writer_fan_in: Some(4), ..cfg.clone() };
    run_weak_scaling(
        "fig8_pic_io",
        "Fig. 8 — iPIC3D particle I/O weak scaling, execution time (s)",
        &["RefColl", "RefShared", "Decoupling", "DecAgg_k4"],
        1024,
        |p| {
            let c = run_io_reference(p, &cfg, IoMode::Collective);
            let s = run_io_reference(p, &cfg, IoMode::Shared);
            let d = run_io_decoupled(p, &cfg);
            let a = run_io_decoupled(p, &agg_cfg);
            FigRow {
                note: format!(
                    "RefColl {:.3}  RefShared {:.3}  Decoupling {:.3}  DecAgg {:.3}  \
                     ({:.1} GB written each; opens {} -> {})",
                    c.op_secs,
                    s.op_secs,
                    d.op_secs,
                    a.op_secs,
                    c.bytes_written as f64 / 1e9,
                    d.meta_ops,
                    a.meta_ops,
                ),
                values: vec![c.op_secs, s.op_secs, d.op_secs, a.op_secs],
            }
        },
    );
}

//! Native-backend perf-regression harness: wall-clock throughput of the
//! thread backend (`crates/native`) on the portable benchmark scenarios,
//! emitting machine-readable `BENCH_native.json`.
//!
//! The scenario bodies live in [`bench_harness::scenarios`] and are shared
//! with `engine_bench` in pattern; here every rank is a real OS thread, so
//! the numbers measure the native mailbox, the collective topology and the
//! credit protocol against actual contention:
//!
//! - **incast** — N producer threads push into rank 0's single mailbox
//!   (`Src::Any` drain). The producer-side serialization hot spot.
//! - **pingpong** — two threads alternating; per-message latency with an
//!   empty mailbox (park/wake round-trips dominate).
//! - **fanin** — `try_recv` polling over many tags + `wait_for_mail`
//!   parking; probe misses and wake-up churn.
//! - **coll** — barrier/allreduce/allgatherv rounds; gather-all versus
//!   binomial-tree topology is exactly what this times.
//! - **stream** — the full mpistream protocol (credits, aggregation,
//!   RoundRobin) end to end, with a batched credit return path.
//! - **agg_incast** — the incast reduction routed through the fan-in-k
//!   tree-aggregation operators; every thread contributes a 64 KiB
//!   partial and blocks merge through per-block channels instead of all
//!   landing in one mailbox.
//!
//! Unlike the simulator the native backend is not deterministic in time,
//! so the JSON reports wall-clock throughput (kmsgs/s, kelems/s) next to
//! exact *analytic* message/element counts. `--check` gates against a
//! baseline: counts must match exactly (a drift is a scenario change),
//! wall time must stay within `NATIVE_BENCH_MAX_RATIO` (default 4.0) of
//! the baseline's, and — the acceptance bar for the mailbox overhaul —
//! the baseline artifact itself must record an incast throughput at least
//! `NATIVE_BENCH_MIN_SPEEDUP` times its embedded `"pre"` capture, taken
//! on the pre-overhaul backend with `--pre <json>` (default 3.0 for full
//! captures, 1.5 for quick ones, whose tiny incast is spawn-dominated).
//! The speedup gate reads only the committed artifact, so it holds on
//! any host; the wall-ratio gate compares the live run to the baseline's
//! wall times and absorbs host variance. `--audit <json>` applies just
//! the artifact-side gate to the committed full capture without running
//! a single scenario — the cheap, host-independent CI check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench_harness::{results_dir, scenarios as sc};
use native::NativeWorld;

/// One scenario's measured numbers.
struct Metrics {
    wall_secs: f64,
    msgs: u64,
    elems: u64,
}

impl Metrics {
    fn kmsgs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.msgs as f64 / self.wall_secs / 1e3
        } else {
            0.0
        }
    }

    fn kelems_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.elems as f64 / self.wall_secs / 1e3
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"wall_ms\": {:.3}, \"msgs\": {}, \"elems\": {}, ",
                "\"kmsgs_per_sec_wall\": {:.2}, \"kelems_per_sec_wall\": {:.2}}}"
            ),
            self.wall_secs * 1e3,
            self.msgs,
            self.elems,
            self.kmsgs_per_sec(),
            self.kelems_per_sec(),
        )
    }
}

/// Time one native world run; traffic counts come from the shape.
fn measure(shape: sc::Shape, body: impl Fn(&mut native::NativeRank) + Send + Sync) -> Metrics {
    let t0 = Instant::now();
    NativeWorld::new(shape.nprocs).run(body);
    Metrics { wall_secs: t0.elapsed().as_secs_f64(), msgs: shape.msgs, elems: shape.elems }
}

fn incast(producers: usize, per_producer: u64) -> Metrics {
    measure(sc::incast_shape(producers, per_producer), move |rank| {
        sc::incast_rank(rank, producers, per_producer, 64 << 10)
    })
}

fn pingpong(rounds: u64) -> Metrics {
    measure(sc::pingpong_shape(rounds), move |rank| sc::pingpong_rank(rank, rounds))
}

fn fanin(producers: usize, per_producer: u64, tags: u32) -> Metrics {
    measure(sc::fanin_shape(producers, per_producer), move |rank| {
        sc::fanin_rank(rank, producers, per_producer, tags, 4 << 10)
    })
}

fn coll(ranks: usize, iters: u64) -> Metrics {
    measure(sc::coll_shape(ranks, iters), move |rank| sc::coll_rank(rank, iters))
}

/// Time the coll scenario with the flat/tree threshold pinned (0 forces
/// binomial trees everywhere, `usize::MAX` forces the flat star).
fn coll_threshold(ranks: usize, iters: u64, threshold: usize) -> Metrics {
    let shape = sc::coll_shape(ranks, iters);
    let t0 = Instant::now();
    NativeWorld::new(shape.nprocs)
        .with_coll_flat_threshold(threshold)
        .run(move |rank| sc::coll_rank(rank, iters));
    Metrics { wall_secs: t0.elapsed().as_secs_f64(), msgs: shape.msgs, elems: shape.elems }
}

/// `--coll-sweep`: both collective geometries across group sizes — the
/// measurement behind the default flat threshold (DESIGN.md §13). Both
/// geometries send the same 2(size-1) messages per op; what differs is
/// the critical path (star: one hub; tree: log2(size) levels of context
/// switches), so wall time is the whole story. Returns the measured rows
/// `(ranks, flat_ms, tree_ms)` plus the recommended flat threshold — the
/// largest swept size at which the star is still at least as fast as the
/// binomial tree — so the artifact can record the tuning, not just the
/// raw table.
fn coll_sweep(iters: u64) -> (Vec<(usize, f64, f64)>, usize) {
    println!("coll geometry sweep: {iters} barrier+allreduce+allgatherv rounds per cell");
    println!("  ranks   flat ms   tree ms   flat/tree");
    let mut rows = Vec::new();
    for &ranks in &[2usize, 4, 8, 16, 32, 64] {
        let flat = coll_threshold(ranks, iters, usize::MAX);
        let tree = coll_threshold(ranks, iters, 0);
        println!(
            "  {ranks:>5} {:>9.1} {:>9.1} {:>10.2}",
            flat.wall_secs * 1e3,
            tree.wall_secs * 1e3,
            flat.wall_secs / tree.wall_secs
        );
        rows.push((ranks, flat.wall_secs * 1e3, tree.wall_secs * 1e3));
    }
    // Recommend the largest size at which the star still wins; a single
    // noisy cell (tiny groups are spawn-dominated) must not truncate the
    // walk, so take the max rather than stopping at the first tree win.
    let recommended = rows
        .iter()
        .filter(|&&(_, flat_ms, tree_ms)| flat_ms <= tree_ms)
        .map(|&(ranks, _, _)| ranks)
        .max()
        .unwrap_or_else(|| rows.first().map_or(2, |r| r.0));
    println!("  recommended NATIVE_COLL_FLAT_THRESHOLD={recommended}");
    (rows, recommended)
}

/// The incast reduction through the tree-aggregation operators: 64 KiB
/// partials merged down a fan-in-`k` tree to rank 0.
fn agg_incast(ranks: usize, fan_in: usize) -> Metrics {
    const WIDTH: usize = 8 << 10; // u64s per partial = 64 KiB payloads
    let shape = sc::agg_incast_shape(ranks, fan_in);
    let roots = Arc::new(AtomicU64::new(0));
    let r = roots.clone();
    let m = measure(shape, move |rank| {
        let n = sc::agg_incast_rank(rank, fan_in, WIDTH);
        r.fetch_add(n, Ordering::Relaxed);
    });
    assert_eq!(roots.load(Ordering::Relaxed), 1, "agg_incast must elect exactly one root");
    m
}

fn stream(producers: usize, consumers: usize, per_producer: u64, credit_batch: usize) -> Metrics {
    let shape = sc::stream_shape(producers, consumers, per_producer);
    let processed = Arc::new(AtomicU64::new(0));
    let p = processed.clone();
    let m = measure(shape, move |rank| {
        let n = sc::stream_rank(rank, producers, per_producer, credit_batch);
        p.fetch_add(n, Ordering::Relaxed);
    });
    assert_eq!(processed.load(Ordering::Relaxed), shape.elems, "stream scenario lost elements");
    m
}

/// Pull a JSON number field out of a flat `{...}` object (same no-dep
/// parsing as `engine_bench`).
fn field(obj: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\": ");
    let start = obj.find(&key)? + key.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Slice one scenario's `{...}` object out of a section of the JSON.
fn scenario_obj<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\": {{");
    let start = json.find(&key)? + key.len() - 1;
    let end = json[start..].find('}')? + start;
    Some(&json[start..=end])
}

/// Gate this run against a prior capture. Exact counts, bounded wall
/// ratio, and the committed artifact's own incast speedup over its `"pre"`
/// section. Returns the number of violations, printing each.
fn check_against(baseline: &str, mode: &str, scenarios: &[(&str, Metrics)]) -> u32 {
    if !baseline.contains(&format!("\"mode\": \"{mode}\"")) {
        eprintln!("check: baseline mode differs from --{mode} run; re-capture the baseline");
        return 1;
    }
    let max_ratio: f64 =
        std::env::var("NATIVE_BENCH_MAX_RATIO").ok().and_then(|v| v.parse().ok()).unwrap_or(4.0);
    // The acceptance bar (3x) is defined at the full workload; the quick
    // incast is small enough that thread spawn/join dominates the wall
    // time, so its embedded pre capture can only document a smaller win.
    let default_speedup = if mode == "full" { 3.0 } else { 1.5 };
    let min_speedup: f64 = std::env::var("NATIVE_BENCH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_speedup);
    let mut violations = 0;
    // Split off the "pre" section so scenario lookups hit the current
    // capture, not the embedded pre-overhaul one (same scenario names).
    let pre_at = baseline.find("\"pre\":");
    let current = &baseline[..pre_at.unwrap_or(baseline.len())];
    for (name, m) in scenarios {
        let Some(obj) = scenario_obj(current, name) else {
            eprintln!("check: baseline has no scenario \"{name}\"");
            violations += 1;
            continue;
        };
        let (Some(b_msgs), Some(b_elems), Some(b_wall)) =
            (field(obj, "msgs"), field(obj, "elems"), field(obj, "wall_ms"))
        else {
            eprintln!("check: baseline scenario \"{name}\" is missing fields");
            violations += 1;
            continue;
        };
        if m.msgs as f64 != b_msgs || m.elems as f64 != b_elems {
            eprintln!(
                "check: {name}: counts ({} msgs, {} elems) != baseline ({b_msgs}, {b_elems}); \
                 the scenario workload changed — re-capture the baseline",
                m.msgs, m.elems
            );
            violations += 1;
        }
        let wall_ms = m.wall_secs * 1e3;
        if b_wall > 0.0 && wall_ms > b_wall * max_ratio {
            eprintln!("check: {name}: wall {wall_ms:.0} ms > {max_ratio}x baseline {b_wall:.0} ms");
            violations += 1;
        }
    }
    // Acceptance bar: the artifact must document the overhaul's incast
    // speedup over the pre-overhaul capture embedded at `"pre"`.
    match pre_at.map(|i| &baseline[i..]) {
        None => {
            eprintln!("check: baseline has no \"pre\" section (capture one with --pre)");
            violations += 1;
        }
        Some(pre) => {
            let post_rate = scenario_obj(current, "incast")
                .and_then(|o| field(o, "kmsgs_per_sec_wall"))
                .unwrap_or(0.0);
            let pre_rate = scenario_obj(pre, "incast")
                .and_then(|o| field(o, "kmsgs_per_sec_wall"))
                .unwrap_or(f64::INFINITY);
            let speedup = post_rate / pre_rate;
            if speedup < min_speedup {
                eprintln!(
                    "check: baseline incast speedup {speedup:.2}x (post {post_rate:.0} vs pre \
                     {pre_rate:.0} kmsgs/s) is below the required {min_speedup}x"
                );
                violations += 1;
            } else {
                println!("check: baseline incast speedup {speedup:.2}x over pre-overhaul capture");
            }
        }
    }
    violations
}

/// `--audit`: validate a committed artifact without running anything.
/// The speedup gate reads only numbers recorded inside the artifact, so
/// this enforces the overhaul's acceptance bar (full-mode incast at
/// least `NATIVE_BENCH_MIN_SPEEDUP`x its embedded pre-overhaul capture)
/// on any host, in milliseconds — CI runs it against the committed
/// full baseline while the live quick gate absorbs host variance.
fn audit(artifact: &str) -> u32 {
    let min_speedup: f64 =
        std::env::var("NATIVE_BENCH_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok()).unwrap_or(3.0);
    if !artifact.contains("\"mode\": \"full\"") {
        eprintln!("audit: artifact is not a full-mode capture");
        return 1;
    }
    let Some(pre_at) = artifact.find("\"pre\":") else {
        eprintln!("audit: artifact has no \"pre\" section (capture one with --pre)");
        return 1;
    };
    let post_rate = scenario_obj(&artifact[..pre_at], "incast")
        .and_then(|o| field(o, "kmsgs_per_sec_wall"))
        .unwrap_or(0.0);
    let pre_rate = scenario_obj(&artifact[pre_at..], "incast")
        .and_then(|o| field(o, "kmsgs_per_sec_wall"))
        .unwrap_or(f64::INFINITY);
    let speedup = post_rate / pre_rate;
    if speedup < min_speedup {
        eprintln!(
            "audit: incast speedup {speedup:.2}x (post {post_rate:.0} vs pre {pre_rate:.0} \
             kmsgs/s) is below the required {min_speedup}x"
        );
        return 1;
    }
    println!("audit: incast speedup {speedup:.2}x over pre-overhaul capture (>= {min_speedup}x)");
    0
}

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out_path: Option<std::path::PathBuf> = None;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut pre_path: Option<std::path::PathBuf> = None;
    let mut audit_path: Option<std::path::PathBuf> = None;
    let mut notes: Option<String> = None;
    let mut sweep = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--coll-sweep" => sweep = true,
            "--out" => out_path = Some(args.next().expect("--out needs a path").into()),
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline needs a path").into())
            }
            "--pre" => pre_path = Some(args.next().expect("--pre needs a path").into()),
            "--audit" => audit_path = Some(args.next().expect("--audit needs a path").into()),
            "--notes" => notes = Some(args.next().expect("--notes needs a string")),
            other => {
                eprintln!(
                    "unknown flag {other} (expected --quick/--check/--coll-sweep/--out <p>\
                     /--baseline <p>/--pre <p>/--audit <p>/--notes <s>)"
                );
                std::process::exit(2);
            }
        }
    }
    if sweep {
        let (rows, recommended) = coll_sweep(if quick { 50 } else { 200 });
        // Auto-emit the tuning result into the artifact notes so the
        // committed capture records the recommendation, not just a table
        // scrolled off a terminal.
        let auto = format!("recommended NATIVE_COLL_FLAT_THRESHOLD={recommended}");
        let note = match &notes {
            Some(n) => format!("{n}; {auto}"),
            None => auto,
        };
        let out_path = out_path.unwrap_or_else(|| results_dir().join("BENCH_coll_sweep.json"));
        let mut json = String::new();
        json.push_str("{\n  \"schema\": \"native_bench_coll_sweep/v1\",\n");
        json.push_str(&format!(
            "  \"notes\": \"{}\",\n",
            note.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        json.push_str(&format!("  \"recommended_flat_threshold\": {recommended},\n"));
        json.push_str("  \"rows\": [\n");
        for (i, (ranks, flat_ms, tree_ms)) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"ranks\": {ranks}, \"flat_ms\": {flat_ms:.3}, \"tree_ms\": {tree_ms:.3}}}{sep}\n"
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(&out_path, &json) {
            Ok(()) => println!("wrote {}", out_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", out_path.display());
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(ap) = &audit_path {
        let artifact = match std::fs::read_to_string(ap) {
            Ok(content) => content,
            Err(e) => {
                eprintln!("could not read {}: {e}", ap.display());
                std::process::exit(1);
            }
        };
        std::process::exit(if audit(&artifact) > 0 { 1 } else { 0 });
    }
    if check && baseline_path.is_none() {
        eprintln!("--check needs --baseline <path> to compare against");
        std::process::exit(2);
    }
    let out_path = out_path.unwrap_or_else(|| results_dir().join("BENCH_native.json"));

    // Full mode carries the acceptance workload (incast at 256 real
    // producer threads); quick mode is the CI smoke, sized to finish in
    // seconds even on the pre-overhaul backend.
    let (inc_n, inc_k) = if quick { (64, 200) } else { (256, 2_000) };
    let pp_rounds = if quick { 10_000 } else { 50_000 };
    let (fan_n, fan_k, fan_tags) = if quick { (16, 100, 8) } else { (64, 250, 16) };
    let (coll_n, coll_iters) = if quick { (16, 50) } else { (64, 200) };
    let (st_p, st_c, st_k, st_b) = if quick { (4, 2, 5_000, 8) } else { (8, 4, 25_000, 8) };
    let (agg_n, agg_k) = if quick { (64, 8) } else { (256, 8) };

    let mode = if quick { "quick" } else { "full" };
    println!("native_bench ({mode} mode)");
    let scenarios: Vec<(&str, Metrics)> = vec![
        ("incast", {
            println!("  incast: {inc_n} producer threads x {inc_k} msgs ...");
            incast(inc_n, inc_k)
        }),
        ("pingpong", {
            println!("  pingpong: {pp_rounds} rounds ...");
            pingpong(pp_rounds)
        }),
        ("fanin", {
            println!("  fanin: {fan_n} producers x {fan_k} msgs over {fan_tags} tags ...");
            fanin(fan_n, fan_k, fan_tags)
        }),
        ("coll", {
            println!("  coll: {coll_n} ranks x {coll_iters} rounds ...");
            coll(coll_n, coll_iters)
        }),
        ("stream", {
            println!("  stream: {st_p}p/{st_c}c x {st_k} elems, credit_batch {st_b} ...");
            stream(st_p, st_c, st_k, st_b)
        }),
        ("agg_incast", {
            println!("  agg_incast: {agg_n} ranks, fan-in {agg_k}, 64 KiB partials ...");
            agg_incast(agg_n, agg_k)
        }),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"schema\": \"native_bench/v1\",\n  \"mode\": \"{mode}\",\n"));
    if let Some(n) = &notes {
        json.push_str(&format!(
            "  \"notes\": \"{}\",\n",
            n.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    json.push_str("  \"scenarios\": {\n");
    for (i, (name, m)) in scenarios.iter().enumerate() {
        let sep = if i + 1 < scenarios.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {}{sep}\n", m.json()));
        println!(
            "  {name}: {:.0} ms wall, {:.0} kmsgs/s, {:.0} kelems/s",
            m.wall_secs * 1e3,
            m.kmsgs_per_sec(),
            m.kelems_per_sec(),
        );
    }
    json.push_str("  }");
    let read_or_die = |p: &std::path::PathBuf| match std::fs::read_to_string(p) {
        Ok(content) => content,
        Err(e) => {
            eprintln!("could not read {}: {e}", p.display());
            std::process::exit(if check { 1 } else { 2 });
        }
    };
    // Splice a pre-overhaul capture verbatim: before/after in one file,
    // and the material for the --check speedup gate.
    if let Some(pp) = &pre_path {
        let content = read_or_die(pp);
        json.push_str(",\n  \"pre\": ");
        for (i, line) in content.trim().lines().enumerate() {
            if i > 0 {
                json.push_str("\n  ");
            }
            json.push_str(line);
        }
    }
    json.push_str("\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    if check {
        let baseline = read_or_die(baseline_path.as_ref().unwrap());
        let violations = check_against(&baseline, mode, &scenarios);
        if violations > 0 {
            eprintln!("check: {violations} regression(s) against the baseline");
            std::process::exit(1);
        }
        println!("check: all scenarios within bounds of the baseline");
    }
}

//! Regenerate the SVG chart for an existing `results/<name>.csv` (useful
//! when a long sweep predates a plotting change).
//!
//! `cargo run --release -p bench-harness --bin svgify -- fig7_pic_comm ...`

use bench_harness::{plot, results_dir, Table};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    if names.is_empty() {
        eprintln!("usage: svgify <result-name> [<result-name> ...]");
        std::process::exit(2);
    }
    for name in names {
        let csv_path = results_dir().join(format!("{name}.csv"));
        let csv = match std::fs::read_to_string(&csv_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("skipping {}: {e}", csv_path.display());
                continue;
            }
        };
        let mut lines = csv.lines();
        let header: Vec<&str> = match lines.next() {
            Some(h) => h.split(',').collect(),
            None => {
                eprintln!("skipping {name}: empty csv");
                continue;
            }
        };
        let cols: Vec<&str> = header[1..].to_vec();
        let mut table = Table::new(&name, header[0], &cols);
        for line in lines {
            let mut parts = line.split(',');
            let x: usize = match parts.next().and_then(|v| v.parse().ok()) {
                Some(x) => x,
                None => continue,
            };
            let vals: Vec<f64> = parts.map(|v| v.parse().unwrap_or(f64::NAN)).collect();
            if vals.len() == cols.len() {
                table.push(x, vals);
            }
        }
        let svg_path = results_dir().join(format!("{name}.svg"));
        match std::fs::write(&svg_path, plot::render_svg(&table)) {
            Ok(()) => println!("wrote {}", svg_path.display()),
            Err(e) => eprintln!("could not write {}: {e}", svg_path.display()),
        }
    }
}

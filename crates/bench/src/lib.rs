//! Shared utilities for the figure-regeneration harnesses.
//!
//! Each `--bin figN` sweeps the paper's process counts (32 … 8,192),
//! prints the series the corresponding figure plots, and writes a CSV
//! under `results/`. Scale is controlled by environment variables:
//!
//! - `MAX_PROCS` — largest world size in the sweep (default 1024; the
//!   paper's full 8192 works but takes longer).
//! - `FULL_SCALE=1` — shorthand for `MAX_PROCS=8192` plus the paper's
//!   iteration counts where applicable.

use std::fmt::Write as _;
use std::path::PathBuf;

pub mod plot;
pub mod scenarios;

/// Standard weak-scaling sweep: powers of two from 32 to `max`.
pub fn proc_sweep(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = 32;
    while p <= max {
        v.push(p);
        p *= 2;
    }
    v
}

/// The sweep ceiling from the environment (see module docs).
pub fn max_procs(default: usize) -> usize {
    if full_scale() {
        return 8192;
    }
    std::env::var("MAX_PROCS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Whether the full paper-scale run was requested.
pub fn full_scale() -> bool {
    std::env::var("FULL_SCALE").map(|v| v == "1").unwrap_or(false)
}

/// A results table: one labelled series per column, one process count per
/// row. Renders both an aligned console table and CSV.
pub struct Table {
    pub title: String,
    pub x_label: String,
    pub columns: Vec<String>,
    pub rows: Vec<(usize, Vec<f64>)>,
}

impl Table {
    pub fn new(title: &str, x_label: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, x: usize, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((x, values));
    }

    /// Aligned console rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let _ = write!(out, "{:>10}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, "{c:>16}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x:>10}");
            for v in vals {
                let _ = write!(out, "{v:>16.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV rendering (`x,col1,col2,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x}");
            for v in vals {
                let _ = write!(out, ",{v:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Write the CSV and an SVG chart under `results/<name>.{csv,svg}`
    /// (workspace root) and print the table.
    pub fn finish(&self, name: &str) {
        print!("{}", self.render());
        let dir = results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.csv"));
        match std::fs::write(&path, self.to_csv()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        let svg_path = dir.join(format!("{name}.svg"));
        match std::fs::write(&svg_path, plot::render_svg(self)) {
            Ok(()) => println!("wrote {}", svg_path.display()),
            Err(e) => eprintln!("could not write {}: {e}", svg_path.display()),
        }
    }
}

/// One scale point of a figure sweep: the column values for the table row
/// plus the human-readable progress note printed as `P=<procs>: <note>`.
pub struct FigRow {
    pub values: Vec<f64>,
    pub note: String,
}

/// The boilerplate every `figN` binary shares: read the sweep ceiling
/// from the environment, simulate each scale point in parallel on
/// `SWEEP_JOBS` threads (each point is an independent simulation), print
/// the rows in order, and render the table to console + `results/`.
pub fn run_weak_scaling(
    csv_name: &str,
    title: &str,
    columns: &[&str],
    default_max: usize,
    point: impl Fn(usize) -> FigRow + Sync,
) {
    let max = max_procs(default_max);
    let mut table = Table::new(title, "procs", columns);
    let rows = desim::sweep::par_map(proc_sweep(max), |p| (p, point(p)));
    for (p, row) in rows {
        println!("P={p}: {}", row.note);
        table.push(p, row.values);
    }
    table.finish(csv_name);
}

/// The workspace root (falls back to CWD).
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// `results/` next to the workspace root (falls back to CWD).
/// `RESULTS_DIR` overrides the destination — CI smokes of the figure
/// binaries redirect there so a partial sweep cannot clobber the
/// committed full-scale artifacts.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    workspace_root().join("results")
}

/// Write a raw text artifact under `results/`.
pub fn write_artifact(name: &str, content: &str) {
    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_points() {
        assert_eq!(proc_sweep(8192), vec![32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]);
        assert_eq!(proc_sweep(100), vec![32, 64]);
    }

    #[test]
    fn table_renders_and_serialises() {
        let mut t = Table::new("demo", "procs", &["a", "b"]);
        t.push(32, vec![1.5, 2.5]);
        t.push(64, vec![1.0, 3.25]);
        let csv = t.to_csv();
        assert!(csv.starts_with("procs,a,b\n"));
        assert!(csv.contains("32,1.500000,2.500000"));
        let txt = t.render();
        assert!(txt.contains("demo"));
        assert!(txt.contains("1.0000"));
    }
}

/// The experiment configurations used by both the figure binaries and the
/// Criterion benches, in one place so they stay consistent.
pub mod configs {
    use apps::cg::CgConfig;
    use apps::mapreduce::MapReduceConfig;
    use apps::pic::PicConfig;
    use workloads::CorpusConfig;

    /// Fig. 5: weak-scaling MapReduce. The corpus grows with P
    /// (~0.56 files/rank of 256 MB–1 GB ≈ the paper's 2.9 TB at 8,192).
    pub fn fig5(p: usize, alpha_every: usize) -> MapReduceConfig {
        MapReduceConfig {
            corpus: CorpusConfig {
                n_files: (p * 9 / 16).max(4),
                vocab: 20_000,
                exponent: 1.0,
                // ~45k actual tokens per rank => ~350 streamed chunks per
                // map rank at 128 tokens/chunk.
                tokens_per_gb: 75_000,
                min_file_bytes: 256 << 20,
                max_file_bytes: 1 << 30,
                seed: 0x5EED,
            },
            map_secs_per_gb: 4.0,
            // 1 MB stream elements x ~350 chunks ≈ the paper's ~354 MB of
            // intermediate data per rank.
            element_bytes: 1 << 20,
            chunk_tokens: 128,
            alpha_every,
            pair_bytes: 8,
            // Lifts the 20k actual vocabulary to web-log key volumes
            // (keysets ~2 MB, dense union vectors ~10 MB).
            wire_scale: 60.0,
            dense_fold_secs_per_mb: 0.05,
            master_element_bytes: 8 << 10,
            ..MapReduceConfig::default()
        }
    }

    /// Fig. 6: weak-scaling CG (120³ nominal cells/rank; iterations from
    /// `iters`, the paper uses 300). The machine gets a visible OS-noise
    /// level (~1.5 % duty): Fig. 6's blocking-vs-overlap separation is an
    /// idle-wave effect — serialized halo waits harvest and propagate
    /// noise that overlap hides (Peng et al., HPCC'16, the paper's [5]).
    pub fn fig6(iters: usize) -> CgConfig {
        use desim::SimDuration;
        use mpisim::{MachineConfig, NoiseModel};
        CgConfig {
            n_local: 6,
            iterations: iters,
            alpha_every: 16,
            machine: MachineConfig {
                noise: NoiseModel {
                    jitter_cv: 0.05,
                    spike_rate_hz: 30.0,
                    spike_mean: SimDuration::from_micros(500),
                },
                ..MachineConfig::default()
            },
            ..CgConfig::default()
        }
    }

    /// Fig. 7: particle communication (GEM-like skew, α = 6.25 %).
    pub fn fig7() -> PicConfig {
        PicConfig {
            actual_per_rank: 96,
            iterations: 10,
            alpha_every: 16,
            dt: 0.3,
            ..PicConfig::default()
        }
    }

    /// Fig. 8: particle I/O (dump every step, α = 6.25 %).
    pub fn fig8() -> PicConfig {
        PicConfig {
            actual_per_rank: 96,
            iterations: 4,
            alpha_every: 16,
            dt: 0.2,
            io_buffer_bytes: 1 << 30,
            ..PicConfig::default()
        }
    }
}

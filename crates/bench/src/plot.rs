//! Minimal SVG line-chart renderer for the figure harnesses — no
//! dependencies, good enough to eyeball the reproduced curves next to the
//! paper's figures.

use std::fmt::Write as _;

use crate::Table;

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 180.0;
const MARGIN_T: f64 = 50.0;
const MARGIN_B: f64 = 60.0;

/// A colour-blind-friendly categorical palette.
const COLORS: [&str; 6] = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"];

/// Render `table` as an SVG line chart: x = process count (log₂ scale),
/// y = seconds (linear from zero), one polyline per column.
pub fn render_svg(table: &Table) -> String {
    let mut svg = String::new();
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;

    let xs: Vec<f64> = table.rows.iter().map(|(x, _)| (*x as f64).log2()).collect();
    let (x_min, x_max) = match (xs.first(), xs.last()) {
        (Some(a), Some(b)) if b > a => (*a, *b),
        (Some(a), _) => (*a - 0.5, *a + 0.5),
        _ => (0.0, 1.0),
    };
    let y_max = table
        .rows
        .iter()
        .flat_map(|(_, vs)| vs.iter())
        .copied()
        .filter(|v| v.is_finite())
        .fold(0.0f64, f64::max)
        .max(1e-9)
        * 1.08;

    let x_of = |lx: f64| MARGIN_L + (lx - x_min) / (x_max - x_min) * plot_w;
    let y_of = |v: f64| MARGIN_T + (1.0 - v / y_max) * plot_h;

    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    let _ = write!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="28" font-family="sans-serif" font-size="16" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        xml_escape(&table.title)
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    );
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
        MARGIN_T + plot_h
    );
    // X ticks at the actual data points.
    for (x, _) in &table.rows {
        let px = x_of((*x as f64).log2());
        let py = MARGIN_T + plot_h;
        let _ = write!(
            svg,
            r#"<line x1="{px}" y1="{py}" x2="{px}" y2="{}" stroke="black"/>"#,
            py + 5.0
        );
        let _ = write!(
            svg,
            r#"<text x="{px}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{x}</text>"#,
            py + 20.0
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        HEIGHT - 15.0,
        xml_escape(&table.x_label)
    );
    // Y ticks (5 divisions).
    for i in 0..=5 {
        let v = y_max * i as f64 / 5.0;
        let py = y_of(v);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{py}" x2="{MARGIN_L}" y2="{py}" stroke="black"/>"#,
            MARGIN_L - 5.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{v:.2}</text>"#,
            MARGIN_L - 9.0,
            py + 4.0
        );
        if i > 0 {
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#dddddd"/>"##,
                MARGIN_L + plot_w
            );
        }
    }
    // Series.
    for (ci, col) in table.columns.iter().enumerate() {
        let color = COLORS[ci % COLORS.len()];
        let mut path = String::new();
        for (x, vals) in &table.rows {
            let v = vals[ci];
            if !v.is_finite() {
                continue;
            }
            let px = x_of((*x as f64).log2());
            let py = y_of(v);
            if path.is_empty() {
                let _ = write!(path, "M{px:.1},{py:.1}");
            } else {
                let _ = write!(path, " L{px:.1},{py:.1}");
            }
            let _ = write!(svg, r#"<circle cx="{px:.1}" cy="{py:.1}" r="3.2" fill="{color}"/>"#);
        }
        let _ = write!(svg, r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#);
        // Legend.
        let ly = MARGIN_T + 14.0 + ci as f64 * 20.0;
        let lx = MARGIN_L + plot_w + 14.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
            lx + 22.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            xml_escape(col)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", "procs", &["ref", "dec"]);
        t.push(32, vec![1.0, 0.8]);
        t.push(64, vec![1.5, 0.9]);
        t.push(128, vec![2.5, 1.0]);
        t
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = render_svg(&sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polyline and one legend entry per column.
        assert_eq!(svg.matches("<path").count(), 2);
        assert_eq!(svg.matches("stroke-width=\"3\"").count(), 2);
        // One marker per finite point.
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("demo"));
    }

    #[test]
    fn nan_points_are_skipped() {
        let mut t = sample();
        t.push(256, vec![3.0, f64::NAN]);
        let svg = render_svg(&t);
        assert_eq!(svg.matches("<circle").count(), 7, "NaN point must be dropped");
    }

    #[test]
    fn titles_are_escaped() {
        let mut t = sample();
        t.title = "a < b & c".into();
        let svg = render_svg(&t);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn single_row_does_not_panic() {
        let mut t = Table::new("one", "procs", &["x"]);
        t.push(32, vec![1.0]);
        let svg = render_svg(&t);
        assert!(svg.contains("</svg>"));
    }
}

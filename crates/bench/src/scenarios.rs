//! Backend-portable benchmark scenarios.
//!
//! Each scenario is a per-rank body written against [`Transport`], so the
//! exact same communication pattern can be timed on the simulator
//! (`engine_bench`, which additionally reads kernel event counters) and on
//! the native thread backend (`native_bench`, which reads the wall clock
//! only). The companion `*_shape` functions report the world size and the
//! analytic message/element counts, so harnesses without a message-counting
//! runtime (the native backend) still emit exact, deterministic totals.

use mpistream::{
    plan_tree, tree_reduce, ChannelConfig, Role, RoutePolicy, Src, Stream, StreamChannel, Tag,
    Transport,
};

/// World size plus the analytic traffic of one scenario run: `msgs` wire
/// messages (point-to-point payloads; collective internals excluded) and
/// `elems` stream elements.
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    pub nprocs: usize,
    pub msgs: u64,
    pub elems: u64,
}

// ---------------------------------------------------------------------
// incast — the Fig. 5 master pattern
// ---------------------------------------------------------------------

/// `producers` ranks all send `per_producer` messages to rank 0, which
/// drains them via `Src::Any`. On the native backend every push lands in
/// one mailbox — the maximal-contention case the sharded staging queue
/// exists for.
pub fn incast_shape(producers: usize, per_producer: u64) -> Shape {
    Shape { nprocs: producers + 1, msgs: producers as u64 * per_producer, elems: 0 }
}

pub fn incast_rank<TP: Transport>(rank: &mut TP, producers: usize, per_producer: u64, bytes: u64) {
    let tag = Tag::user(1);
    let me = rank.world_rank();
    if me == 0 {
        let total = producers as u64 * per_producer;
        let mut sum = 0u64;
        for _ in 0..total {
            let (v, _info) = rank.recv::<u64>(Src::Any, tag);
            sum = sum.wrapping_add(v);
        }
        assert!(sum > 0);
    } else {
        for i in 0..per_producer {
            rank.send(0, tag, bytes, ((me as u64) << 32) | i);
        }
    }
}

// ---------------------------------------------------------------------
// pingpong — per-message overhead, near-empty mailbox
// ---------------------------------------------------------------------

pub fn pingpong_shape(rounds: u64) -> Shape {
    Shape { nprocs: 2, msgs: 2 * rounds, elems: 0 }
}

pub fn pingpong_rank<TP: Transport>(rank: &mut TP, rounds: u64) {
    let tag = Tag::user(7);
    let me = rank.world_rank();
    let peer = 1 - me;
    for i in 0..rounds {
        if me == 0 {
            rank.send(peer, tag, 8, i);
            let (v, _) = rank.recv::<u64>(Src::Rank(peer), tag);
            assert_eq!(v, i);
        } else {
            let (v, _) = rank.recv::<u64>(Src::Rank(peer), tag);
            rank.send(peer, tag, 8, v);
        }
    }
}

// ---------------------------------------------------------------------
// fanin — try_recv polling over many tags + wait_for_mail parking
// ---------------------------------------------------------------------

/// A consumer polling `tags` distinct tags over `try_recv`, sleeping on
/// `wait_for_mail` between passes, while `producers` ranks fan in. Probe
/// misses and park/wake churn dominate; this is the scenario that caught
/// the native lost-wakeup race.
pub fn fanin_shape(producers: usize, per_producer: u64) -> Shape {
    Shape { nprocs: producers + 1, msgs: producers as u64 * per_producer, elems: 0 }
}

pub fn fanin_rank<TP: Transport>(
    rank: &mut TP,
    producers: usize,
    per_producer: u64,
    tags: u32,
    bytes: u64,
) {
    let me = rank.world_rank();
    if me == 0 {
        let total = producers as u64 * per_producer;
        let mut got = 0u64;
        while got < total {
            let mut progressed = false;
            for t in 1..=tags {
                while rank.try_recv::<u64>(Src::Any, Tag::user(t)).is_some() {
                    got += 1;
                    progressed = true;
                }
            }
            if !progressed && got < total {
                rank.wait_for_mail();
            }
        }
    } else {
        let tag = Tag::user(1 + (me as u32 - 1) % tags);
        for i in 0..per_producer {
            rank.send(0, tag, bytes, i);
        }
    }
}

// ---------------------------------------------------------------------
// agg_incast — the incast pattern routed through a reduction tree
// ---------------------------------------------------------------------

/// Every rank contributes one partial vector; a fan-in-`fan_in` reduction
/// tree merges them down to rank 0 instead of `ranks - 1` point-to-point
/// sends landing in one mailbox (the plain `incast` scenario). `elems`
/// counts the analytic tree data messages — `ranks - 1` regardless of
/// fan-in, since every leaf's partial is shipped exactly once. Terms and
/// the channel-creation collectives are protocol details excluded from
/// the count, as for `stream`.
pub fn agg_incast_shape(ranks: usize, fan_in: usize) -> Shape {
    let leaves: Vec<usize> = (0..ranks).collect();
    let plan = plan_tree(&leaves, fan_in);
    Shape { nprocs: ranks, msgs: 0, elems: plan.data_messages() }
}

/// Returns 1 on the tree root (after checking the closed-form sum), 0
/// elsewhere; the harness sums and asserts exactly one root emerged.
pub fn agg_incast_rank<TP: Transport>(rank: &mut TP, fan_in: usize, width: usize) -> u64 {
    let comm = rank.world_group();
    let n = rank.world_size();
    let me = rank.world_rank();
    let leaves: Vec<usize> = (0..n).collect();
    let config = ChannelConfig { element_bytes: (width * 8) as u64, ..ChannelConfig::default() };
    let partial: Vec<u64> = vec![me as u64 + 1; width];
    let got = tree_reduce(rank, &comm, &leaves, fan_in, &config, Some(partial), |_, acc, e| {
        for (a, b) in acc.iter_mut().zip(e) {
            *a += b;
        }
    });
    match got {
        Some(v) => {
            let expect = (n as u64) * (n as u64 + 1) / 2;
            assert!(
                v.len() == width && v.iter().all(|&x| x == expect),
                "agg_incast tree sum mismatch"
            );
            1
        }
        None => 0,
    }
}

// ---------------------------------------------------------------------
// coll — collective rounds (barrier / allreduce / allgatherv)
// ---------------------------------------------------------------------

/// Every rank runs `iters` rounds of barrier + allreduce + allgatherv over
/// the world group. `msgs` counts collective operations completed
/// (3 per rank per round) rather than wire messages, whose count is a
/// topology implementation detail — gather-all versus binomial tree is
/// exactly the difference this scenario is meant to time.
pub fn coll_shape(ranks: usize, iters: u64) -> Shape {
    Shape { nprocs: ranks, msgs: 3 * ranks as u64 * iters, elems: 0 }
}

pub fn coll_rank<TP: Transport>(rank: &mut TP, iters: u64) {
    let world = rank.world_group();
    let size = rank.world_size() as u64;
    let me = rank.world_rank() as u64;
    for i in 0..iters {
        rank.barrier(&world);
        let sum = rank.allreduce(&world, 8, me + i, |a, b| *a += b);
        assert_eq!(sum, size * (size - 1) / 2 + size * i);
        let all = rank.allgatherv(&world, 8, me);
        debug_assert_eq!(all.len(), size as usize);
    }
}

// ---------------------------------------------------------------------
// stream — the full mpistream protocol under a credit window
// ---------------------------------------------------------------------

/// Flow-controlled stream pipeline: `producers` ranks push `per_producer`
/// elements each through a credited, aggregated channel to `consumers`
/// ranks. This is the end-to-end number — mailbox, credit returns and
/// wake-ups all on the critical path. `credit_batch` > 1 exercises the
/// batched acknowledgement path.
pub fn stream_shape(producers: usize, consumers: usize, per_producer: u64) -> Shape {
    Shape { nprocs: producers + consumers, msgs: 0, elems: producers as u64 * per_producer }
}

pub fn stream_config(credit_batch: usize) -> ChannelConfig {
    ChannelConfig {
        element_bytes: 512,
        aggregation: 2,
        credits: Some(32),
        route: RoutePolicy::RoundRobin,
        credit_batch,
        ..ChannelConfig::default()
    }
}

/// Returns the number of elements this rank processed (consumers) or 0
/// (producers); the harness sums and checks conservation.
pub fn stream_rank<TP: Transport>(
    rank: &mut TP,
    producers: usize,
    per_producer: u64,
    credit_batch: usize,
) -> u64 {
    let comm = rank.world_group();
    let me = rank.world_rank();
    let role = if me < producers { Role::Producer } else { Role::Consumer };
    let ch = StreamChannel::create(rank, &comm, role, stream_config(credit_batch));
    let mut stream: Stream<u64> = Stream::attach(ch);
    match role {
        Role::Producer => {
            for i in 0..per_producer {
                stream.isend(rank, ((me as u64) << 32) | i);
            }
            stream.terminate(rank);
            0
        }
        Role::Consumer => stream.operate_outcome(rank, |_, _| {}).processed,
        Role::Bystander => unreachable!(),
    }
}

//! Adaptive stream granularity — the extension the paper leaves as future
//! work ("Currently, the library only supports static configuration of
//! these values. An extension to support adaptive changes of the
//! configuration is subject of a current work", §III).
//!
//! The controller tunes the **aggregation factor** (how many logical
//! elements coalesce into one wire message) at run time. Finer batches
//! improve pipelining β(S) but pay the per-message overhead `D/S · o`
//! (Eq. 4); the right point depends on the producer's element rate, which
//! is generally unknown a-priori and may drift. The controller targets a
//! fixed *message* rate: if batches are being emitted faster than
//! `target_batch_interval`, it doubles the batch size; if much slower, it
//! halves it.

use desim::SimTime;

/// Multiplicative-increase / multiplicative-decrease controller for the
/// producer-side aggregation factor.
#[derive(Clone, Debug)]
pub struct AdaptiveGranularity {
    /// Desired virtual time between consecutive wire messages.
    pub target_batch_interval: f64,
    /// Inclusive bounds on the aggregation factor.
    pub min_batch: usize,
    pub max_batch: usize,
    batch: usize,
    last_flush: Option<SimTime>,
}

impl AdaptiveGranularity {
    pub fn new(target_batch_interval: f64, min_batch: usize, max_batch: usize) -> Self {
        assert!(target_batch_interval > 0.0);
        assert!(min_batch >= 1 && min_batch <= max_batch);
        AdaptiveGranularity {
            target_batch_interval,
            min_batch,
            max_batch,
            batch: min_batch,
            last_flush: None,
        }
    }

    /// Current recommended aggregation factor.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Record that a wire message was emitted at `now`; adapt the factor.
    pub fn on_flush(&mut self, now: SimTime) {
        if let Some(prev) = self.last_flush {
            let interval = now.since(prev).as_secs_f64();
            if interval < self.target_batch_interval * 0.5 {
                self.batch = (self.batch * 2).min(self.max_batch);
            } else if interval > self.target_batch_interval * 2.0 {
                self.batch = (self.batch / 2).max(self.min_batch);
            }
        }
        self.last_flush = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimDuration;

    #[test]
    fn fast_producers_grow_batches() {
        let mut a = AdaptiveGranularity::new(1e-3, 1, 1024);
        let mut t = SimTime::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_micros(10); // far under target
            a.on_flush(t);
        }
        assert_eq!(a.batch(), 1024, "should saturate at max");
    }

    #[test]
    fn slow_producers_shrink_batches() {
        let mut a = AdaptiveGranularity::new(1e-3, 1, 1024);
        // Force it up first.
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_micros(10);
            a.on_flush(t);
        }
        let grown = a.batch();
        assert!(grown > 1);
        for _ in 0..20 {
            t += SimDuration::from_millis(10); // far over target
            a.on_flush(t);
        }
        assert_eq!(a.batch(), 1, "should decay to min");
    }

    #[test]
    fn on_target_interval_is_stable() {
        let mut a = AdaptiveGranularity::new(1e-3, 1, 1024);
        let mut t = SimTime::ZERO;
        a.on_flush(t);
        let before = a.batch();
        for _ in 0..50 {
            t += SimDuration::from_millis(1);
            a.on_flush(t);
        }
        assert_eq!(a.batch(), before, "in-band intervals must not oscillate");
    }
}

//! Stream channels: the communication fabric between decoupled groups.

use mpisim::{Comm, Rank, SimDuration, Tag};

use crate::group::Role;

/// Namespace byte for stream traffic inside the simulator's tag space.
pub(crate) const NS_STREAM: u8 = 2;

/// Tag codes within one channel.
pub(crate) const CODE_DATA: u32 = 0;
pub(crate) const CODE_CREDIT: u32 = 1;

/// How stream elements are routed from producers to consumers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Producer `i` always feeds consumer `i % n_consumers`. Preserves
    /// per-producer ordering at a single consumer and keeps the mapping
    /// cache-friendly; the default in the paper's case studies.
    Static,
    /// Successive elements from one producer rotate over all consumers —
    /// maximal spreading for load balance.
    RoundRobin,
}

/// Configuration of one channel (the knobs of Eq. 4).
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// Modelled wire size of one stream element, in bytes — the stream
    /// granularity `S`.
    pub element_bytes: u64,
    /// Elements coalesced into one message on the producer side. `1`
    /// disables aggregation. Raising this trades pipelining fineness
    /// (β(S) in the model) against per-message overhead (D/S · o).
    pub aggregation: usize,
    /// Flow-control window: maximum elements a producer may have
    /// unacknowledged per consumer. `None` = unbounded (buffer at the
    /// consumer can then grow up to the total transferred data `D`;
    /// see the memory discussion in §II-D).
    pub credits: Option<usize>,
    /// Default routing of `Stream::isend`.
    pub route: RoutePolicy,
    /// Failure-detection timeout. `None` (the default) keeps the original
    /// infallible protocol: endpoints wait forever and a crashed peer
    /// deadlocks the stream. `Some(t)`: a consumer that hears nothing from
    /// a still-open producer for `t` of virtual time declares it dead (see
    /// [`crate::Stream::operate_outcome`]), and a producer whose credit
    /// window stays exhausted for `t` declares the consumer dead and
    /// re-routes (under [`RoutePolicy::RoundRobin`]) or drops elements.
    pub failure_timeout: Option<SimDuration>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            element_bytes: 64 << 10,
            aggregation: 1,
            credits: None,
            route: RoutePolicy::Static,
            failure_timeout: None,
        }
    }
}

/// A communication channel between a producer group and a consumer group
/// (`MPIStream_CreateChannel` in the paper). Creation is collective over
/// `comm`; every member declares its [`Role`].
#[derive(Clone, Debug)]
pub struct StreamChannel {
    pub(crate) id: u16,
    pub(crate) producers: Vec<usize>,
    pub(crate) consumers: Vec<usize>,
    pub(crate) my_role: Role,
    pub(crate) config: ChannelConfig,
}

impl StreamChannel {
    /// Collectively create a channel over `comm`. Each rank passes its own
    /// role; the membership lists are agreed through an allgather, and the
    /// channel id is allocated world-uniquely and broadcast.
    pub fn create(
        rank: &mut Rank,
        comm: &Comm,
        role: Role,
        config: ChannelConfig,
    ) -> StreamChannel {
        assert!(config.aggregation >= 1, "aggregation factor must be >= 1");
        assert!(config.element_bytes >= 1, "element size must be >= 1 byte");
        if let Some(c) = config.credits {
            assert!(
                c >= config.aggregation,
                "credit window ({c}) must admit at least one aggregated batch \
                 ({} elements)",
                config.aggregation
            );
        }
        let code = match role {
            Role::Producer => 0u8,
            Role::Consumer => 1,
            Role::Bystander => 2,
        };
        let roles = rank.allgatherv(comm, 1, (rank.world_rank(), code));
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for (w, c) in roles {
            match c {
                0 => producers.push(w),
                1 => consumers.push(w),
                _ => {}
            }
        }
        producers.sort_unstable();
        consumers.sort_unstable();
        assert!(!producers.is_empty(), "channel needs at least one producer");
        assert!(!consumers.is_empty(), "channel needs at least one consumer");
        let id = if comm.rank_of(rank.world_rank()) == Some(0) {
            Some(rank.alloc_channel_id())
        } else {
            None
        };
        let id = rank.bcast(comm, 0, 2, id);
        StreamChannel { id, producers, consumers, my_role: role, config }
    }

    /// World ranks of the producer group.
    pub fn producers(&self) -> &[usize] {
        &self.producers
    }

    /// World ranks of the consumer group.
    pub fn consumers(&self) -> &[usize] {
        &self.consumers
    }

    /// This rank's role on the channel.
    pub fn role(&self) -> Role {
        self.my_role
    }

    /// Channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    pub(crate) fn data_tag(&self) -> Tag {
        Tag::internal(NS_STREAM, self.id, CODE_DATA)
    }

    pub(crate) fn credit_tag(&self) -> Tag {
        Tag::internal(NS_STREAM, self.id, CODE_CREDIT)
    }
}

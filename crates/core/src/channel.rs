//! Stream channels: the communication fabric between decoupled groups.

use desim::SimDuration;

use crate::group::Role;
use crate::transport::{Group, Tag, Transport};

/// Namespace byte for stream traffic inside the simulator's tag space.
pub(crate) const NS_STREAM: u8 = 2;

/// Tag codes within one channel.
pub(crate) const CODE_DATA: u32 = 0;
pub(crate) const CODE_CREDIT: u32 = 1;
/// Replica-group traffic (VSR prepare/commit/view-change, `crates/replica`).
pub(crate) const CODE_REPL: u32 = 2;
/// Takeover announcements and term acknowledgements between a replica
/// primary and the producers (`crates/replica`).
pub(crate) const CODE_TAKEOVER: u32 = 3;

/// How stream elements are routed from producers to consumers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Producer `i` always feeds consumer `i % n_consumers`. Preserves
    /// per-producer ordering at a single consumer and keeps the mapping
    /// cache-friendly; the default in the paper's case studies.
    Static,
    /// Successive elements from one producer rotate over all consumers —
    /// maximal spreading for load balance.
    RoundRobin,
}

/// Configuration of one channel (the knobs of Eq. 4).
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// Modelled wire size of one stream element, in bytes — the stream
    /// granularity `S`.
    pub element_bytes: u64,
    /// Elements coalesced into one message on the producer side. `1`
    /// disables aggregation. Raising this trades pipelining fineness
    /// (β(S) in the model) against per-message overhead (D/S · o).
    pub aggregation: usize,
    /// Flow-control window: maximum elements a producer may have
    /// unacknowledged per consumer. `None` = unbounded (buffer at the
    /// consumer can then grow up to the total transferred data `D`;
    /// see the memory discussion in §II-D).
    pub credits: Option<usize>,
    /// Default routing of `Stream::isend`.
    pub route: RoutePolicy,
    /// Elements' worth of credit a consumer accumulates per producer
    /// before acknowledging with a single credit message. `1` (the
    /// default) keeps the original protocol — one credit message per
    /// data batch received. Raising it amortizes the per-message cost of
    /// the return path (one wire message *and*, on the native backend,
    /// one producer wake-up per `credit_batch` elements instead of one
    /// per batch — the same amortization the simulator's wake-hint
    /// protocol applies to receiver wake-ups). Bounded by the credit
    /// window: a batch larger than `credits - aggregation + 1` could
    /// withhold the credit a stalled producer is waiting for
    /// ([`ConfigError::CreditBatchAboveWindow`]). Ignored (no credits
    /// flow at all) when `credits` is `None`.
    pub credit_batch: usize,
    /// Failure-detection timeout. `None` (the default) keeps the original
    /// infallible protocol: endpoints wait forever and a crashed peer
    /// deadlocks the stream. `Some(t)`: a consumer that hears nothing from
    /// a still-open producer for `t` of virtual time declares it dead (see
    /// [`crate::Stream::operate_outcome`]), and a producer whose credit
    /// window stays exhausted for `t` declares the consumer dead and
    /// re-routes (under [`RoutePolicy::RoundRobin`]) or drops elements.
    pub failure_timeout: Option<SimDuration>,
    /// Number of *standby* replicas for the channel's consumer state.
    /// `0` (the default) keeps the original unreplicated protocol and adds
    /// zero overhead. With `replicas = r`, the channel's consumer group
    /// must list `r + 1` ranks: `consumers[0]` is the initial primary and
    /// the rest are standbys running a Viewstamped Replication group
    /// (`crates/replica`). Surviving any single death requires a group
    /// that can still form a majority without the victim, i.e. `r >= 2`.
    /// Requires [`RoutePolicy::Static`]: a replicated channel has one
    /// *logical* consumer, so round-robin spreading (and its loss
    /// accounting) does not apply.
    pub replicas: usize,
    /// How long a standby waits without hearing from the primary before it
    /// starts a view change. Must sit *above* the `t`/`2t` producer/
    /// consumer patience hierarchy so replica failover is the slowest,
    /// most deliberate detector. `None` with `replicas > 0` derives
    /// `4 * failure_timeout`; if `failure_timeout` is also `None` the
    /// config is rejected ([`ConfigError::ReplicationWithoutTimeout`]).
    pub replication_patience: Option<SimDuration>,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            element_bytes: 64 << 10,
            aggregation: 1,
            credits: None,
            route: RoutePolicy::Static,
            credit_batch: 1,
            failure_timeout: None,
            replicas: 0,
            replication_patience: None,
        }
    }
}

/// Why a [`ChannelConfig`] was rejected at channel construction. Each
/// variant is a configuration that would hang or misbehave at runtime —
/// better refused up front with a typed error than discovered when an
/// 8,192-rank simulation stalls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `element_bytes == 0`: the stream granularity `S` must be positive —
    /// a zero-byte element makes every cost model term degenerate.
    ZeroGranularity,
    /// `aggregation == 0`: a message must carry at least one element, or
    /// the producer's flush loop never makes progress.
    ZeroAggregation,
    /// `credits == Some(0)`: a zero-element window can never admit an
    /// element, so the first send blocks forever.
    ZeroCreditWindow,
    /// `credits < aggregation`: the window can never admit one aggregated
    /// batch, so the producer stalls permanently on its first full batch.
    CreditWindowBelowBatch { credits: usize, aggregation: usize },
    /// `failure_timeout == Some(0)`: every peer would be declared dead the
    /// instant the endpoint first waits, partitioning a healthy stream.
    ZeroFailureTimeout,
    /// `credit_batch == 0`: the consumer would accumulate credit forever
    /// and never acknowledge anything.
    ZeroCreditBatch,
    /// `credit_batch > credits - aggregation + 1`: a producer can stall
    /// with as few as `credits - aggregation + 1` elements outstanding,
    /// all of which the consumer may already have processed — if the
    /// accumulation threshold lies above that, the acknowledgement never
    /// flushes and the stream deadlocks.
    CreditBatchAboveWindow { batch: usize, credits: usize, aggregation: usize },
    /// `replicas > 0` with [`RoutePolicy::RoundRobin`]: a replicated
    /// channel has exactly one logical consumer (the replica group), so
    /// round-robin spreading — and the per-consumer loss accounting it
    /// implies — is meaningless and would split the stream across ranks
    /// whose state is supposed to be one replicated whole.
    ReplicationNeedsStaticRoute,
    /// `replicas > 0` with neither `replication_patience` nor
    /// `failure_timeout`: the standbys would have no way to ever suspect a
    /// dead primary, so a primary death hangs the group forever.
    ReplicationWithoutTimeout,
    /// `replication_patience == Some(0)`: the standbys would depose a
    /// healthy primary the instant they first wait.
    ZeroReplicationPatience,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroGranularity => {
                write!(f, "element_bytes is 0: stream granularity must be at least one byte")
            }
            ConfigError::ZeroAggregation => {
                write!(f, "aggregation is 0: a message must carry at least one element")
            }
            ConfigError::ZeroCreditWindow => {
                write!(f, "credits is Some(0): a zero credit window blocks the first send forever")
            }
            ConfigError::CreditWindowBelowBatch { credits, aggregation } => write!(
                f,
                "credit window ({credits}) is smaller than one aggregated batch \
                 ({aggregation} elements): the producer can never send"
            ),
            ConfigError::ZeroFailureTimeout => {
                write!(f, "failure_timeout is Some(0): every peer would be declared dead instantly")
            }
            ConfigError::ZeroCreditBatch => {
                write!(f, "credit_batch is 0: accumulated credit would never be acknowledged")
            }
            ConfigError::CreditBatchAboveWindow { batch, credits, aggregation } => write!(
                f,
                "credit_batch ({batch}) exceeds credits - aggregation + 1 \
                 ({credits} - {aggregation} + 1): a producer stalled on the window \
                 could wait forever for a credit flush that never triggers"
            ),
            ConfigError::ReplicationNeedsStaticRoute => write!(
                f,
                "replicas > 0 requires RoutePolicy::Static: a replicated channel \
                 has one logical consumer (the replica group)"
            ),
            ConfigError::ReplicationWithoutTimeout => write!(
                f,
                "replicas > 0 needs replication_patience or failure_timeout: \
                 without either, a dead primary is never suspected"
            ),
            ConfigError::ZeroReplicationPatience => write!(
                f,
                "replication_patience is Some(0): a healthy primary would be \
                 deposed the instant a standby first waits"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl ChannelConfig {
    /// Check the configuration for values that hang or misbehave at
    /// runtime. Called by [`StreamChannel::create`]; also usable up front
    /// (and by `streamcheck`'s static pass) without building a channel.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.element_bytes == 0 {
            return Err(ConfigError::ZeroGranularity);
        }
        if self.aggregation == 0 {
            return Err(ConfigError::ZeroAggregation);
        }
        match self.credits {
            Some(0) => return Err(ConfigError::ZeroCreditWindow),
            Some(c) if c < self.aggregation => {
                return Err(ConfigError::CreditWindowBelowBatch {
                    credits: c,
                    aggregation: self.aggregation,
                });
            }
            _ => {}
        }
        if self.failure_timeout == Some(SimDuration::ZERO) {
            return Err(ConfigError::ZeroFailureTimeout);
        }
        if self.credit_batch == 0 {
            return Err(ConfigError::ZeroCreditBatch);
        }
        if let Some(c) = self.credits {
            if self.credit_batch > c - self.aggregation + 1 {
                return Err(ConfigError::CreditBatchAboveWindow {
                    batch: self.credit_batch,
                    credits: c,
                    aggregation: self.aggregation,
                });
            }
        }
        if self.replication_patience == Some(SimDuration::ZERO) {
            return Err(ConfigError::ZeroReplicationPatience);
        }
        if self.replicas > 0 {
            if self.route == RoutePolicy::RoundRobin {
                return Err(ConfigError::ReplicationNeedsStaticRoute);
            }
            if self.effective_replication_patience().is_none() {
                return Err(ConfigError::ReplicationWithoutTimeout);
            }
        }
        Ok(())
    }

    /// The standbys' failover patience: `replication_patience` when set,
    /// otherwise `4 * failure_timeout` — twice the consumer's `2t`
    /// patience, keeping replica failover the slowest detector in the
    /// `t`/`2t`/patience hierarchy. `None` when neither knob is set.
    pub fn effective_replication_patience(&self) -> Option<SimDuration> {
        self.replication_patience
            .or_else(|| self.failure_timeout.map(|t| SimDuration(t.0.saturating_mul(4))))
    }
}

/// A communication channel between a producer group and a consumer group
/// (`MPIStream_CreateChannel` in the paper). Creation is collective over
/// a [`Group`]; every member declares its [`Role`]. The channel itself is
/// backend-free — plain rank lists, a config and a tag namespace — so the
/// same value describes a simulated or a native channel (and feeds
/// `streamcheck` topology extraction either way).
#[derive(Clone, Debug)]
pub struct StreamChannel {
    pub(crate) id: u16,
    pub(crate) producers: Vec<usize>,
    pub(crate) consumers: Vec<usize>,
    pub(crate) my_role: Role,
    pub(crate) config: ChannelConfig,
}

impl StreamChannel {
    /// Collectively create a channel over `group`. Each rank passes its
    /// own role; the membership lists are agreed through an allgather, and
    /// the channel id is allocated world-uniquely and broadcast.
    pub fn create<TP: Transport>(
        rank: &mut TP,
        group: &TP::Group,
        role: Role,
        config: ChannelConfig,
    ) -> StreamChannel {
        match StreamChannel::try_create(rank, group, role, config) {
            Ok(ch) => ch,
            Err(e) => panic!("invalid ChannelConfig: {e}"),
        }
    }

    /// [`StreamChannel::create`] returning the typed [`ConfigError`] instead
    /// of panicking on an invalid configuration. Validation happens before
    /// any communication, so a rejected config leaves the communicator in a
    /// usable state on every rank (all ranks see the same config and reject
    /// identically).
    pub fn try_create<TP: Transport>(
        rank: &mut TP,
        group: &TP::Group,
        role: Role,
        config: ChannelConfig,
    ) -> Result<StreamChannel, ConfigError> {
        config.validate()?;
        let code = match role {
            Role::Producer => 0u8,
            Role::Consumer => 1,
            Role::Bystander => 2,
        };
        let roles = rank.allgatherv(group, 1, (rank.world_rank(), code));
        let mut producers = Vec::new();
        let mut consumers = Vec::new();
        for (w, c) in roles {
            match c {
                0 => producers.push(w),
                1 => consumers.push(w),
                _ => {}
            }
        }
        producers.sort_unstable();
        consumers.sort_unstable();
        assert!(!producers.is_empty(), "channel needs at least one producer");
        assert!(!consumers.is_empty(), "channel needs at least one consumer");
        assert!(
            config.replicas == 0 || consumers.len() == config.replicas + 1,
            "replicated channel declares {} replicas but {} consumer ranks joined \
             (the consumer group IS the replica group: primary + standbys)",
            config.replicas,
            consumers.len(),
        );
        let id = if group.rank_of(rank.world_rank()) == Some(0) {
            Some(rank.alloc_channel_id())
        } else {
            None
        };
        let id = rank.bcast(group, 0, 2, id);
        let ch = StreamChannel { id, producers, consumers, my_role: role, config };
        // Sanitizer: every member registers the channel's flow-control
        // parameters (idempotent) so credit audits and the orphan scan can
        // classify this channel's traffic. A no-op on backends without a
        // checker.
        rank.check_register_channel(ch.id, ch.config.credits.map(|c| c as u64), ch.credit_tag());
        Ok(ch)
    }

    /// World ranks of the producer group.
    pub fn producers(&self) -> &[usize] {
        &self.producers
    }

    /// World ranks of the consumer group.
    pub fn consumers(&self) -> &[usize] {
        &self.consumers
    }

    /// This rank's role on the channel.
    pub fn role(&self) -> Role {
        self.my_role
    }

    /// Channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// World-unique channel id (the key profiling and sanitizer hooks use
    /// to attribute traffic to this channel).
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Tag carrying this channel's data batches ([`crate::StreamMsg`]
    /// frames). Public so replication drivers (`crates/replica`) can run
    /// their own receive loops over the same wire protocol.
    pub fn data_tag(&self) -> Tag {
        Tag::internal(NS_STREAM, self.id, CODE_DATA)
    }

    /// Tag carrying this channel's credit acknowledgements, consumer to
    /// producer: bare `u64` element counts on unreplicated channels,
    /// view-stamped `CreditMsg` envelopes on replicated ones
    /// (`crates/replica`).
    pub fn credit_tag(&self) -> Tag {
        Tag::internal(NS_STREAM, self.id, CODE_CREDIT)
    }

    /// Tag carrying replica-group traffic (VSR prepare/prepare-ok/commit/
    /// view-change messages) between the channel's consumer ranks.
    pub fn repl_tag(&self) -> Tag {
        Tag::internal(NS_STREAM, self.id, CODE_REPL)
    }

    /// Tag carrying takeover announcements and term acknowledgements from
    /// the replica group's current primary to the producers.
    pub fn takeover_tag(&self) -> Tag {
        Tag::internal(NS_STREAM, self.id, CODE_TAKEOVER)
    }

    /// The replica group's world ranks (the consumer list) when the
    /// channel is replicated (`config.replicas > 0`); `None` otherwise.
    /// `consumers[0]` is the view-0 primary.
    pub fn replica_group(&self) -> Option<&[usize]> {
        if self.config.replicas > 0 {
            Some(&self.consumers)
        } else {
            None
        }
    }
}

//! Process-group formation: mapping operations onto disjoint groups.
//!
//! The paper expresses group sizes as the fraction `α` of processes
//! dedicated to the decoupled operation (Eq. 2–4), and realises it as
//! "one out of every `k` processes" — e.g. α = 6.25 % means every 16th
//! rank joins the decoupled group. Spreading the decoupled ranks across
//! the machine (instead of packing them at one end) keeps every producer
//! close to a consumer and balances NIC load, so we follow the same
//! pattern.

use crate::transport::{Group, Transport};

/// Role of a rank with respect to one stream channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Generates stream elements.
    Producer,
    /// Receives stream elements and applies the attached operator.
    Consumer,
    /// Takes no part in the channel.
    Bystander,
}

/// Deterministic assignment of ranks to the compute group vs the
/// decoupled group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupSpec {
    /// One out of `every` ranks joins the decoupled (consumer) group.
    pub every: usize,
}

impl GroupSpec {
    /// Build a spec from the paper's α (fraction of processes in the
    /// decoupled group). `α = 0.0625` → every 16th rank.
    pub fn from_alpha(alpha: f64) -> GroupSpec {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1), got {alpha}");
        let every = (1.0 / alpha).round() as usize;
        GroupSpec { every: every.max(2) }
    }

    /// The α this spec realises.
    pub fn alpha(&self) -> f64 {
        1.0 / self.every as f64
    }

    /// Role of a world rank: the last rank of each block of `every` joins
    /// the decoupled group.
    pub fn role_of(&self, world_rank: usize) -> Role {
        if world_rank % self.every == self.every - 1 {
            Role::Consumer
        } else {
            Role::Producer
        }
    }

    /// Number of decoupled (consumer) ranks in a world of `n`.
    pub fn consumers_in(&self, n: usize) -> usize {
        (0..n).filter(|&r| self.role_of(r) == Role::Consumer).count()
    }

    /// Split `comm` into (producer group, consumer group). Collective over
    /// `comm`. The group this rank belongs to is a real communicator
    /// (usable for collectives); the *other* group is metadata-only (rank
    /// list and sizes — which is all MPI would let you know about a group
    /// you are not part of). Both groups must be non-empty — a world too
    /// small for the spec panics with a clear message.
    pub fn split<TP: Transport>(
        &self,
        rank: &mut TP,
        comm: &TP::Group,
    ) -> (TP::Group, TP::Group, Role) {
        let me = rank.world_rank();
        let role = self.role_of(me);
        let color = match role {
            Role::Producer => 0i64,
            Role::Consumer => 1,
            Role::Bystander => unreachable!("GroupSpec assigns no bystanders"),
        };
        let mine =
            rank.split(comm, Some(color), me as i64).expect("split with Some color yields a comm");
        let other_ranks: Vec<usize> =
            comm.ranks().iter().copied().filter(|&w| self.role_of(w) != role).collect();
        // Metadata-only view of the opposite group (never used to address
        // collectives).
        let other = TP::Group::meta(other_ranks);
        let (producers, consumers) = if color == 0 { (mine, other) } else { (other, mine) };
        assert!(
            !producers.ranks().is_empty() && !consumers.ranks().is_empty(),
            "GroupSpec {{ every: {} }} needs at least {} ranks, got {}",
            self.every,
            self.every,
            comm.size()
        );
        (producers, consumers, role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_roundtrip_matches_paper_fractions() {
        assert_eq!(GroupSpec::from_alpha(0.125).every, 8);
        assert_eq!(GroupSpec::from_alpha(0.0625).every, 16);
        assert_eq!(GroupSpec::from_alpha(0.03125).every, 32);
        let s = GroupSpec { every: 16 };
        assert!((s.alpha() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn roles_spread_consumers_across_blocks() {
        let s = GroupSpec { every: 4 };
        let roles: Vec<Role> = (0..8).map(|r| s.role_of(r)).collect();
        assert_eq!(
            roles,
            vec![
                Role::Producer,
                Role::Producer,
                Role::Producer,
                Role::Consumer,
                Role::Producer,
                Role::Producer,
                Role::Producer,
                Role::Consumer,
            ]
        );
        assert_eq!(s.consumers_in(32), 8);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn silly_alpha_is_rejected() {
        let _ = GroupSpec::from_alpha(1.5);
    }
}

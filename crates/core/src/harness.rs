//! High-level decoupling harness: split, wire, run, terminate.
//!
//! [`run_decoupled`] packages the boilerplate of §III-B: form the two
//! groups from a [`GroupSpec`], create the channel, attach the stream,
//! run the producer/consumer bodies, and terminate the flow. Application
//! case studies with richer topologies (multiple channels, reply streams)
//! compose the lower-level pieces directly.
//!
//! The harness is generic over [`Transport`], so the same producer and
//! consumer bodies run inside the simulator (`TP = SimTransport`) or on
//! native OS threads (`TP = native::NativeRank`) unchanged.

use crate::channel::{ChannelConfig, ConfigError, StreamChannel};
use crate::group::{GroupSpec, Role};
use crate::stream::Stream;
use crate::transport::Transport;
use crate::wire::Wire;

/// Everything a producer body gets to work with.
pub struct ProducerCtx<'s, T, G> {
    /// Stream endpoint to inject into. Terminated automatically when the
    /// body returns (explicit early [`Stream::terminate`] is fine too).
    pub stream: &'s mut Stream<T>,
    /// The producer group's own communicator (for collectives among the
    /// remaining, non-decoupled ranks).
    pub group: G,
}

/// Everything a consumer body gets to work with.
pub struct ConsumerCtx<'s, T, G> {
    /// Stream endpoint to drain (typically via [`Stream::operate`]).
    pub stream: &'s mut Stream<T>,
    /// The consumer (decoupled) group's communicator.
    pub group: G,
}

/// Split `comm` per `spec`, create a producer→consumer channel with
/// `config`, and run `producer` on compute ranks and `consumer` on
/// decoupled ranks. Returns this rank's stream statistics.
///
/// Panics on an invalid [`ChannelConfig`]; [`try_run_decoupled`] returns
/// the typed [`ConfigError`] instead.
pub fn run_decoupled<T, TP, P, C>(
    rank: &mut TP,
    comm: &TP::Group,
    spec: GroupSpec,
    config: ChannelConfig,
    producer: P,
    consumer: C,
) -> crate::stream::StreamStats
where
    T: Wire + Send + 'static,
    TP: Transport,
    P: FnOnce(&mut TP, &mut ProducerCtx<'_, T, TP::Group>),
    C: FnOnce(&mut TP, &mut ConsumerCtx<'_, T, TP::Group>),
{
    match try_run_decoupled(rank, comm, spec, config, producer, consumer) {
        Ok(stats) => stats,
        Err(e) => panic!("invalid ChannelConfig: {e}"),
    }
}

/// [`run_decoupled`] returning the typed [`ConfigError`] instead of
/// panicking on an invalid configuration. Validation happens before any
/// communication — no split is performed, no channel id consumed — so a
/// rejected config leaves the communicator fully usable on every rank
/// (all ranks see the same config and reject identically).
pub fn try_run_decoupled<T, TP, P, C>(
    rank: &mut TP,
    comm: &TP::Group,
    spec: GroupSpec,
    config: ChannelConfig,
    producer: P,
    consumer: C,
) -> Result<crate::stream::StreamStats, ConfigError>
where
    T: Wire + Send + 'static,
    TP: Transport,
    P: FnOnce(&mut TP, &mut ProducerCtx<'_, T, TP::Group>),
    C: FnOnce(&mut TP, &mut ConsumerCtx<'_, T, TP::Group>),
{
    config.validate()?;
    let (producers, consumers, role) = spec.split(rank, comm);
    let channel = StreamChannel::create(rank, comm, role, config);
    let mut stream: Stream<T> = Stream::attach(channel);
    match role {
        Role::Producer => {
            let mut pctx = ProducerCtx { stream: &mut stream, group: producers };
            producer(rank, &mut pctx);
            stream.terminate(rank);
        }
        Role::Consumer => {
            let mut cctx = ConsumerCtx { stream: &mut stream, group: consumers };
            consumer(rank, &mut cctx);
        }
        Role::Bystander => unreachable!("GroupSpec assigns no bystanders"),
    }
    Ok(stream.stats())
}

//! High-level decoupling harness: split, wire, run, terminate.
//!
//! [`run_decoupled`] packages the boilerplate of §III-B: form the two
//! groups from a [`GroupSpec`], create the channel, attach the stream,
//! run the producer/consumer bodies, and terminate the flow. Application
//! case studies with richer topologies (multiple channels, reply streams)
//! compose the lower-level pieces directly.

use mpisim::{Comm, Rank};

use crate::channel::{ChannelConfig, StreamChannel};
use crate::group::{GroupSpec, Role};
use crate::stream::Stream;

/// Everything a producer body gets to work with.
pub struct ProducerCtx<'s, T> {
    /// Stream endpoint to inject into. Terminated automatically when the
    /// body returns (explicit early [`Stream::terminate`] is fine too).
    pub stream: &'s mut Stream<T>,
    /// The producer group's own communicator (for collectives among the
    /// remaining, non-decoupled ranks).
    pub group: Comm,
}

/// Everything a consumer body gets to work with.
pub struct ConsumerCtx<'s, T> {
    /// Stream endpoint to drain (typically via [`Stream::operate`]).
    pub stream: &'s mut Stream<T>,
    /// The consumer (decoupled) group's communicator.
    pub group: Comm,
}

/// Split `comm` per `spec`, create a producer→consumer channel with
/// `config`, and run `producer` on compute ranks and `consumer` on
/// decoupled ranks. Returns this rank's stream statistics.
pub fn run_decoupled<T, P, C>(
    rank: &mut Rank,
    comm: &Comm,
    spec: GroupSpec,
    config: ChannelConfig,
    producer: P,
    consumer: C,
) -> crate::stream::StreamStats
where
    T: Send + 'static,
    P: FnOnce(&mut Rank, &mut ProducerCtx<'_, T>),
    C: FnOnce(&mut Rank, &mut ConsumerCtx<'_, T>),
{
    let (producers, consumers, role) = spec.split(rank, comm);
    let channel = StreamChannel::create(rank, comm, role, config);
    let mut stream: Stream<T> = Stream::attach(channel);
    match role {
        Role::Producer => {
            let mut pctx = ProducerCtx { stream: &mut stream, group: producers };
            producer(rank, &mut pctx);
            stream.terminate(rank);
        }
        Role::Consumer => {
            let mut cctx = ConsumerCtx { stream: &mut stream, group: consumers };
            consumer(rank, &mut cctx);
        }
        Role::Bystander => unreachable!("GroupSpec assigns no bystanders"),
    }
    stream.stats()
}

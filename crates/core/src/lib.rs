//! # mpistream — the decoupling strategy as a library
//!
//! Rust reproduction of the MPIStream library from *"Preparing HPC
//! Applications for the Exascale Era: A Decoupling Strategy"* (Peng,
//! Gioiosa, Kestor, Laure, Markidis — ICPP 2017).
//!
//! The strategy separates an application's operations onto disjoint
//! **groups of processes** linked by asynchronous, fine-grained **data
//! streams**, establishing a dataflow pipeline among groups:
//!
//! - operations progress concurrently (pipelining),
//! - consumers process the *first available* element from *any* producer,
//!   absorbing process imbalance,
//! - a decoupled operation runs on a small group where its complexity
//!   shrinks and can be aggressively optimized (aggregation, buffering).
//!
//! The runtime is generic over a [`Transport`] — the same stream program
//! runs inside the deterministic discrete-event simulator
//! ([`SimTransport`], i.e. `mpisim::Rank`) or on real OS threads (the
//! `native` crate). See the [`transport`] module for the contract.
//!
//! ## Quick example (the paper's Listing 1)
//!
//! ```
//! use mpisim::{MachineConfig, World};
//! use mpistream::{ChannelConfig, GroupSpec, run_decoupled};
//!
//! let world = World::new(MachineConfig::default());
//! world.run_expect(8, |rank| {
//!     let comm = rank.comm_world();
//!     run_decoupled::<u64, _, _, _>(
//!         rank,
//!         &comm,
//!         GroupSpec { every: 8 },          // one analysis rank per 8
//!         ChannelConfig::default(),
//!         |rank, p| {
//!             // Computation group: compute, stream workload changes out.
//!             for step in 0..10 {
//!                 rank.compute(1e-4);
//!                 p.stream.isend(rank, step);
//!             }
//!         },
//!         |rank, c| {
//!             // Analysis group: process on-the-fly, FCFS.
//!             let mut seen = 0;
//!             c.stream.operate(rank, |_, _w| seen += 1);
//!             assert_eq!(seen, 70); // 7 producers x 10 elements
//!         },
//!     );
//! });
//! ```

pub mod adaptive;
pub mod channel;
pub mod group;
pub mod harness;
pub mod operators;
pub mod select;
pub mod sim;
pub mod stream;
pub mod transport;
pub mod wire;

pub use adaptive::AdaptiveGranularity;
pub use channel::{ChannelConfig, ConfigError, RoutePolicy, StreamChannel};
pub use group::{GroupSpec, Role};
pub use harness::{run_decoupled, try_run_decoupled, ConsumerCtx, ProducerCtx};
pub use operators::{
    create_tree_channels, plan_stage, plan_tree, reduce_through, stage_span, tree_reduce, Combiner,
    CombinerStats, TreeChannels, TreePlan, TreeStage,
};
pub use select::operate2;
pub use sim::SimTransport;
pub use stream::{
    ConsumerCheckpoint, ProducerReport, ProducerState, StepEvent, Stream, StreamMsg, StreamOutcome,
    StreamStats,
};
pub use transport::{prof_scoped, Group, MsgInfo, Src, Tag, TagKind, Transport};
pub use wire::{Wire, WireError, MAX_FRAME_BYTES, MAX_WIRE_ELEMS};

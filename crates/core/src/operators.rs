//! Tree-aggregation operators: producer-side combiners and reduction
//! trees of intermediate consumer stages.
//!
//! The paper's own Fig. 5 analysis concedes that the decoupled curve
//! rises again at 4,096–8,192 ranks: the master drains one unaggregated
//! message per folded chunk from every local reducer, so its per-message
//! overhead `o` (Eq. 4) is paid `O(P)` times — an incast the decoupling
//! strategy itself does not remove. This module supplies the two
//! composable operators that do:
//!
//! - [`Combiner`] — producer-side pre-reduction. Elements destined for
//!   the same consumer are merged in place and enter the channel only
//!   every `flush_every` pushes, amortizing `o` across `flush_every`
//!   logical elements without changing the stream's granularity `S`.
//! - [`plan_tree`] / [`reduce_through`] — reduction-tree stages.
//!   Participating ranks are partitioned into blocks of `fan_in`; each
//!   block's first member is its *representative*, consuming the other
//!   members' partials over a private block channel and carrying the
//!   merged result into the next stage. The recursion ends at a single
//!   root, so every rank's partial reaches the root over
//!   `ceil(log_fan_in n)` hops and the worst per-rank fan-in is `fan_in`
//!   instead of `n`.
//!
//! Everything is generic over [`Transport`], so the simulator and the
//! native threaded backend get both operators unchanged.
//!
//! ## Termination and flow control across stages
//!
//! Each block channel is an ordinary [`StreamChannel`] with the full
//! protocol (aggregation, credits, Term markers). Stages compose without
//! new machinery because the block graph is a forest directed at the
//! root: a representative finishes draining its stage-`s` block (i.e.
//! has seen every block sender's `Term`) *before* it produces on its
//! stage-`s+1` channel, so `Term`s propagate strictly upward and no
//! credit-wait can cycle. See DESIGN.md §15.

use crate::channel::{ChannelConfig, StreamChannel};
use crate::group::Role;
use crate::stream::Stream;
use crate::transport::Transport;
use crate::wire::Wire;

// ---------------------------------------------------------------------
// Producer-side combiner
// ---------------------------------------------------------------------

/// Counters of one [`Combiner`]: how many elements were folded in and how
/// many pre-reduced elements actually entered the stream. The ratio is
/// the per-message-overhead amortization factor the operator bought.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombinerStats {
    /// Elements accepted by [`Combiner::push`].
    pub folded: u64,
    /// Pre-reduced elements emitted into the underlying stream.
    pub emitted: u64,
}

impl CombinerStats {
    /// Folded-to-emitted ratio (1.0 when the combiner never merged).
    pub fn fold_factor(&self) -> f64 {
        if self.emitted == 0 {
            1.0
        } else {
            self.folded as f64 / self.emitted as f64
        }
    }
}

/// Producer-side pre-reduction in front of a [`Stream`].
///
/// One accumulator slot per consumer index: [`Combiner::push`] merges the
/// new element into the slot (with the caller's associative `merge`) and
/// forwards the accumulated element via [`Stream::isend_to`] only once
/// `flush_every` elements have been folded into it. `flush_every = 1`
/// degenerates to a plain `isend_to`.
///
/// The combiner holds data outside the stream's aggregation buffers, so
/// callers must [`Combiner::finish`] (or [`Combiner::flush`]) before
/// terminating the stream — `finish` returns the stats and makes the
/// leak impossible to miss in review.
pub struct Combiner<T> {
    slots: Vec<Option<T>>,
    counts: Vec<u64>,
    flush_every: u64,
    stats: CombinerStats,
}

impl<T: Wire + Send + 'static> Combiner<T> {
    /// A combiner sized for `stream`'s consumer set, flushing each slot
    /// every `flush_every` folded elements.
    pub fn new(stream: &Stream<T>, flush_every: usize) -> Combiner<T> {
        assert!(flush_every >= 1, "flush_every must be at least 1");
        let nc = stream.channel().consumers().len();
        Combiner {
            slots: (0..nc).map(|_| None).collect(),
            counts: vec![0; nc],
            flush_every: flush_every as u64,
            stats: CombinerStats::default(),
        }
    }

    /// Fold `elem` into the accumulator for `consumer`, emitting the
    /// accumulated element into `stream` once `flush_every` elements have
    /// been merged. `merge(acc, elem)` must be associative with respect
    /// to the consumer's own fold, or the pre-reduction changes the
    /// result.
    pub fn push<TP: Transport>(
        &mut self,
        rank: &mut TP,
        stream: &mut Stream<T>,
        consumer: usize,
        elem: T,
        merge: impl FnOnce(&mut T, T),
    ) {
        self.stats.folded += 1;
        match &mut self.slots[consumer] {
            Some(acc) => merge(acc, elem),
            slot @ None => *slot = Some(elem),
        }
        self.counts[consumer] += 1;
        if self.counts[consumer] >= self.flush_every {
            self.emit(rank, stream, consumer);
        }
    }

    /// Emit every non-empty accumulator into `stream`.
    pub fn flush<TP: Transport>(&mut self, rank: &mut TP, stream: &mut Stream<T>) {
        for c in 0..self.slots.len() {
            if self.slots[c].is_some() {
                self.emit(rank, stream, c);
            }
        }
    }

    /// Flush and consume the combiner, returning its stats. Call before
    /// [`Stream::terminate`] on the underlying stream.
    pub fn finish<TP: Transport>(mut self, rank: &mut TP, stream: &mut Stream<T>) -> CombinerStats {
        self.flush(rank, stream);
        self.stats
    }

    /// Counters so far.
    pub fn stats(&self) -> CombinerStats {
        self.stats
    }

    fn emit<TP: Transport>(&mut self, rank: &mut TP, stream: &mut Stream<T>, consumer: usize) {
        let acc = self.slots[consumer].take().expect("emit of an empty combiner slot");
        self.counts[consumer] = 0;
        self.stats.emitted += 1;
        rank.prof_begin("combine");
        stream.isend_to(rank, consumer, acc);
        rank.prof_end("combine");
    }
}

// ---------------------------------------------------------------------
// Reduction-tree planning
// ---------------------------------------------------------------------

/// One aggregation stage: the participating ranks partitioned into blocks
/// of at most `fan_in`. Each block's **first** member is its
/// representative (the block channel's consumer); the other members
/// stream their partials to it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeStage {
    /// Aggregation blocks, in participant order. A singleton block has a
    /// representative and no senders (its partial just carries forward).
    pub blocks: Vec<Vec<usize>>,
}

impl TreeStage {
    /// The representatives, one per block — the next stage's members.
    pub fn receivers(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b[0]).collect()
    }

    /// `(sender, representative)` pairs across all blocks.
    pub fn senders(&self) -> Vec<(usize, usize)> {
        self.blocks.iter().flat_map(|b| b[1..].iter().map(move |&s| (s, b[0]))).collect()
    }

    /// The block containing `rank`, with its index, if `rank` takes part
    /// in this stage.
    pub fn block_of(&self, rank: usize) -> Option<(usize, &[usize])> {
        self.blocks.iter().enumerate().find(|(_, b)| b.contains(&rank)).map(|(i, b)| (i, &b[..]))
    }
}

/// Partition `members` into blocks of at most `fan_in` (a single
/// aggregation stage). `fan_in >= 2`; block representatives keep the
/// member order, so with a sorted member list every representative is the
/// lowest rank of its block.
pub fn plan_stage(members: &[usize], fan_in: usize) -> TreeStage {
    assert!(fan_in >= 2, "a reduction stage needs fan_in >= 2");
    assert!(!members.is_empty(), "a reduction stage needs at least one member");
    TreeStage { blocks: members.chunks(fan_in).map(<[usize]>::to_vec).collect() }
}

/// A full reduction tree over a set of leaf ranks: stages of
/// [`plan_stage`] repeated until a single root remains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePlan {
    /// Configured fan-in `k`.
    pub fan_in: usize,
    /// Aggregation stages, leaf-most first. Empty when there is only one
    /// leaf.
    pub stages: Vec<TreeStage>,
    /// The single rank holding the fully merged result (`leaves[0]`).
    pub root: usize,
}

impl TreePlan {
    /// A one-stage plan: blocks of `fan_in` with no recursion — the shape
    /// of a streaming aggregator group (e.g. the fig8 I/O writers), where
    /// block representatives keep consuming indefinitely instead of
    /// forwarding a one-shot partial. `root` is the first member, for
    /// [`reduce_through`] compatibility.
    pub fn single_stage(members: &[usize], fan_in: usize) -> TreePlan {
        TreePlan { fan_in, stages: vec![plan_stage(members, fan_in)], root: members[0] }
    }

    /// Whether `rank` ends the reduction holding the merged result.
    pub fn is_root(&self, rank: usize) -> bool {
        self.root == rank
    }

    /// Tree depth in stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total partial-carrying data messages the reduction will send (one
    /// per sender per stage; `Term` markers double the wire count).
    pub fn data_messages(&self) -> u64 {
        self.stages.iter().map(|s| s.senders().len() as u64).sum()
    }
}

/// Plan a reduction tree over `leaves` with the given fan-in: repeated
/// [`plan_stage`] over the surviving representatives until one root
/// remains. The root is always `leaves[0]`.
pub fn plan_tree(leaves: &[usize], fan_in: usize) -> TreePlan {
    assert!(fan_in >= 2, "a reduction tree needs fan_in >= 2");
    assert!(!leaves.is_empty(), "a reduction tree needs at least one leaf");
    debug_assert!(
        {
            let mut seen = std::collections::BTreeSet::new();
            leaves.iter().all(|&l| seen.insert(l))
        },
        "tree leaves must be distinct ranks"
    );
    let mut stages = Vec::new();
    let mut current: Vec<usize> = leaves.to_vec();
    while current.len() > 1 {
        let stage = plan_stage(&current, fan_in);
        current = stage.receivers();
        stages.push(stage);
    }
    TreePlan { fan_in, stages, root: leaves[0] }
}

// ---------------------------------------------------------------------
// Tree channels and the reduction driver
// ---------------------------------------------------------------------

/// This rank's endpoints on a planned tree: at most one block channel per
/// stage (`None` where the rank does not take part in the stage).
pub struct TreeChannels {
    channels: Vec<Option<StreamChannel>>,
}

impl TreeChannels {
    /// Per-stage channel presence (testing / introspection).
    pub fn stage_roles(&self) -> Vec<Option<Role>> {
        self.channels.iter().map(|c| c.as_ref().map(StreamChannel::role)).collect()
    }

    /// Take the per-stage endpoints out, for callers that drive the block
    /// channels directly (streaming aggregators) instead of through
    /// [`reduce_through`].
    pub fn into_stages(self) -> Vec<Option<StreamChannel>> {
        self.channels
    }
}

/// Collectively create the block channels of `plan`. **Every** rank of
/// `comm` must call this (the per-stage subgroup splits are collective),
/// whether or not it is a tree leaf; non-participants end up with no
/// endpoints. Each block gets its own private channel (senders =
/// producers, representative = consumer), so the whole tree moves one
/// data message and one `Term` per sender — never a quadratic
/// sender × receiver `Term` wave.
///
/// `config` applies to every block channel; `aggregation` is effectively
/// 1 for one-shot reductions (each sender contributes a single partial),
/// but streaming stages (e.g. the fig8 writer group) inherit whatever
/// batching the caller picked.
pub fn create_tree_channels<TP: Transport>(
    rank: &mut TP,
    comm: &TP::Group,
    plan: &TreePlan,
    config: &ChannelConfig,
) -> TreeChannels {
    let me = rank.world_rank();
    let mut channels = Vec::with_capacity(plan.stages.len());
    for stage in &plan.stages {
        // Singleton blocks need no channel: the representative's partial
        // simply survives into the next stage.
        let mine = stage.block_of(me).filter(|(_, b)| b.len() >= 2);
        let color = mine.map(|(i, _)| i as i64);
        let sub = rank.split(comm, color, me as i64);
        channels.push(match (mine, sub) {
            (Some((_, block)), Some(sub)) => {
                let role = if block[0] == me { Role::Consumer } else { Role::Producer };
                Some(StreamChannel::create(rank, &sub, role, config.clone()))
            }
            (None, _) => None,
            (Some(_), None) => unreachable!("colored ranks always get a subgroup"),
        });
    }
    TreeChannels { channels }
}

/// Span names attributing per-stage drain time on a profiled transport.
const STAGE_SPANS: [&str; 16] = [
    "tree-l0", "tree-l1", "tree-l2", "tree-l3", "tree-l4", "tree-l5", "tree-l6", "tree-l7",
    "tree-l8", "tree-l9", "tree-l10", "tree-l11", "tree-l12", "tree-l13", "tree-l14", "tree-l15",
];

/// The streamprof span name of tree stage `i` (stall breakdowns attribute
/// drain time per tree level through these).
pub fn stage_span(i: usize) -> &'static str {
    STAGE_SPANS.get(i).copied().unwrap_or("tree-deep")
}

/// Run the reduction: every tree leaf passes `Some(partial)`; the merged
/// result comes back as `Some` on the plan's root and `None` everywhere
/// else. `merge(rank, acc, incoming)` gets the transport so callers can
/// charge modelled compute per merge.
///
/// Stage walk, per rank: a block *sender* ships its accumulated partial
/// to its representative and is done; a *representative* drains its block
/// channel (under a per-stage profiling span, FCFS over the block) and
/// carries the merged accumulator into the next stage. Ranks of `comm`
/// that are not tree leaves pass `None` and flow straight through.
pub fn reduce_through<TP: Transport, T: Wire + Send + 'static>(
    rank: &mut TP,
    plan: &TreePlan,
    tree: TreeChannels,
    partial: Option<T>,
    mut merge: impl FnMut(&mut TP, &mut T, T),
) -> Option<T> {
    assert_eq!(tree.channels.len(), plan.stages.len(), "tree channels do not match the plan");
    let me = rank.world_rank();
    let mut acc = partial;
    for (i, ch) in tree.channels.into_iter().enumerate() {
        let Some(ch) = ch else { continue };
        match ch.role() {
            Role::Producer => {
                let v = acc.take().expect("a tree sender must hold a partial");
                let mut s: Stream<T> = Stream::attach(ch);
                s.isend_to(rank, 0, v);
                s.terminate(rank);
                s.free(rank);
                // A sender at stage `i` is in no later stage; the
                // remaining entries are `None` by construction.
            }
            Role::Consumer => {
                let mut s: Stream<T> = Stream::attach(ch);
                let span = stage_span(i);
                rank.prof_begin(span);
                s.operate(rank, |rank, incoming| match acc.as_mut() {
                    Some(acc) => merge(rank, acc, incoming),
                    None => acc = Some(incoming),
                });
                rank.prof_end(span);
                s.free(rank);
            }
            Role::Bystander => unreachable!("block channels have no bystanders"),
        }
    }
    if plan.is_root(me) {
        acc
    } else {
        None
    }
}

/// Plan, create and run a reduction tree in one collective call: every
/// rank of `comm` participates; `leaves` pass `Some(partial)`; the merged
/// result lands on `leaves[0]`.
pub fn tree_reduce<TP: Transport, T: Wire + Send + 'static>(
    rank: &mut TP,
    comm: &TP::Group,
    leaves: &[usize],
    fan_in: usize,
    config: &ChannelConfig,
    partial: Option<T>,
    merge: impl FnMut(&mut TP, &mut T, T),
) -> Option<T> {
    let plan = plan_tree(leaves, fan_in);
    let tree = create_tree_channels(rank, comm, &plan, config);
    reduce_through(rank, &plan, tree, partial, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_stage_blocks_and_representatives() {
        let members: Vec<usize> = (10..23).collect(); // 13 members
        let stage = plan_stage(&members, 4);
        assert_eq!(stage.blocks.len(), 4);
        assert_eq!(stage.receivers(), vec![10, 14, 18, 22]);
        // The trailing singleton block has no senders.
        assert_eq!(stage.blocks[3], vec![22]);
        let senders = stage.senders();
        assert_eq!(senders.len(), 13 - 4);
        assert!(senders.contains(&(13, 10)));
        assert!(senders.contains(&(21, 18)));
    }

    #[test]
    fn plan_tree_reduces_to_a_single_root() {
        for n in [1usize, 2, 3, 8, 9, 64, 65, 511] {
            for k in [2usize, 4, 8] {
                let leaves: Vec<usize> = (0..n).collect();
                let plan = plan_tree(&leaves, k);
                assert_eq!(plan.root, 0, "n={n} k={k}");
                // Depth is ceil(log_k n) (0 for a single leaf).
                let mut depth = 0;
                let mut m = n;
                while m > 1 {
                    m = m.div_ceil(k);
                    depth += 1;
                }
                assert_eq!(plan.depth(), depth, "n={n} k={k}");
                // Every leaf but the root sends exactly once in the whole
                // tree, so the data message count is n - 1.
                assert_eq!(plan.data_messages(), n as u64 - 1, "n={n} k={k}");
                // Final stage merges into the root.
                if let Some(last) = plan.stages.last() {
                    assert_eq!(last.receivers(), vec![0]);
                }
            }
        }
    }

    #[test]
    fn plan_tree_keeps_worst_fan_in_bounded() {
        let leaves: Vec<usize> = (0..1000).collect();
        let plan = plan_tree(&leaves, 8);
        for stage in &plan.stages {
            for block in &stage.blocks {
                assert!(block.len() <= 8);
            }
        }
    }

    #[test]
    fn plan_tree_over_sparse_rank_set() {
        // Tree leaves need not be contiguous world ranks (fig5 uses the
        // reduce group's scattered ranks).
        let leaves = vec![3, 7, 11, 15, 19, 23, 27];
        let plan = plan_tree(&leaves, 3);
        assert_eq!(plan.root, 3);
        assert_eq!(plan.stages[0].receivers(), vec![3, 15, 27]);
        assert_eq!(plan.stages[1].receivers(), vec![3]);
        assert_eq!(plan.data_messages(), 6);
    }

    #[test]
    fn stage_span_names_are_stable() {
        assert_eq!(stage_span(0), "tree-l0");
        assert_eq!(stage_span(15), "tree-l15");
        assert_eq!(stage_span(16), "tree-deep");
    }

    #[test]
    fn fold_factor_reports_amortization() {
        let s = CombinerStats { folded: 24, emitted: 3 };
        assert_eq!(s.fold_factor(), 8.0);
        assert_eq!(CombinerStats::default().fold_factor(), 1.0);
    }
}

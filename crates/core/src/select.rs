//! Multiplexed consumption over several streams.
//!
//! The decoupled groups of the case studies often sit between *two* flows
//! — e.g. the CG boundary group consumes faces while producing combined
//! halo packets, and a PIC communication rank may consume exits from the
//! compute group while consuming control traffic from a master. This
//! module provides first-come-first-served draining across two channels
//! without busy-waiting.

use crate::stream::Stream;
use crate::transport::Transport;
use crate::wire::Wire;

/// Drain two consumer endpoints first-come-first-served until **both**
/// have seen every producer terminate. Returns the element counts
/// processed from each.
///
/// Elements are taken in availability order across both channels, so a
/// burst on one stream cannot starve the other: whenever either has a
/// message ready it is processed; when neither does, the rank suspends
/// until its mailbox changes.
pub fn operate2<A, B, TP: Transport>(
    rank: &mut TP,
    a: &mut Stream<A>,
    b: &mut Stream<B>,
    mut on_a: impl FnMut(&mut TP, A),
    mut on_b: impl FnMut(&mut TP, B),
) -> (u64, u64)
where
    A: Wire + Send + 'static,
    B: Wire + Send + 'static,
{
    let (mut na, mut nb) = (0u64, 0u64);
    loop {
        let mut progressed = false;
        if !a.all_terminated() {
            let (n, consumed) = a.try_step(rank, &mut on_a);
            na += n;
            progressed |= consumed;
        }
        if !b.all_terminated() {
            let (n, consumed) = b.try_step(rank, &mut on_b);
            nb += n;
            progressed |= consumed;
        }
        if a.all_terminated() && b.all_terminated() {
            return (na, nb);
        }
        if !progressed {
            rank.wait_for_mail();
        }
    }
}

#[cfg(test)]
mod tests {
    // Integration-level tests live in `tests/streams.rs`
    // (`operate2_*`): this module needs a full simulated world.
}

//! `SimTransport`: the [`Transport`] implementation over the
//! discrete-event simulator.
//!
//! `mpisim::Rank` *is* the simulator backend — the impl here is a direct
//! forwarding shim, so a stream program generic over [`Transport`]
//! executes the exact same simulator calls, in the exact same order, as
//! one written against `Rank` directly. That is the property the fig
//! harnesses, the chaos suite and the perf-regression baselines rely on:
//! going through the abstraction is byte-identical to not having it.
//!
//! Two details keep the shim exact:
//!
//! - [`Transport::send`] forwards to [`mpisim::Rank::send_t`], which is
//!   defined as `isend_t` + `wait_send` — precisely the call pair the
//!   stream layer used before the refactor (wait only for injection,
//!   never for delivery).
//! - [`Tag`]/[`Src`] convert by value with the same bit layout, so tags
//!   on the wire are unchanged and the sanitizer's tag-space
//!   classification still applies.

use mpisim::Rank;

use crate::transport::{Group, MsgInfo, SimTime, Src, Tag, Transport};
use crate::wire::Wire;

/// The simulator backend, by its transport name. Stream programs written
/// against `Transport` take a `&mut SimTransport` to run simulated.
pub type SimTransport<'c> = Rank<'c>;

#[inline]
fn sim_src(src: Src) -> mpisim::Src {
    match src {
        Src::Rank(r) => mpisim::Src::Rank(r),
        Src::Any => mpisim::Src::Any,
    }
}

#[inline]
fn sim_tag(tag: Tag) -> mpisim::Tag {
    mpisim::Tag(tag.0)
}

#[inline]
fn from_sim_info(info: mpisim::MsgInfo) -> MsgInfo {
    MsgInfo { src: info.src, tag: Tag(info.tag.0), bytes: info.bytes }
}

impl Group for mpisim::Comm {
    fn ranks(&self) -> &[usize] {
        mpisim::Comm::ranks(self)
    }

    fn rank_of(&self, w: usize) -> Option<usize> {
        mpisim::Comm::rank_of(self, w)
    }

    fn meta(ranks: Vec<usize>) -> Self {
        // Id outside the registered range; never used to address
        // collectives (see the `Group` contract).
        mpisim::Comm::new(u16::MAX, ranks)
    }
}

impl<'c> Transport for Rank<'c> {
    type Group = mpisim::Comm;

    fn world_rank(&self) -> usize {
        Rank::world_rank(self)
    }

    fn world_size(&self) -> usize {
        Rank::world_size(self)
    }

    fn world_group(&self) -> mpisim::Comm {
        Rank::comm_world(self)
    }

    fn now(&self) -> SimTime {
        Rank::now(self)
    }

    fn compute(&mut self, secs: f64) {
        Rank::compute(self, secs);
    }

    fn send<T: Wire + Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: T) {
        Rank::send_t(self, dst, sim_tag(tag), bytes, value);
    }

    fn recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo) {
        let (v, info) = Rank::recv_t(self, sim_src(src), sim_tag(tag));
        (v, from_sim_info(info))
    }

    fn try_recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(T, MsgInfo)> {
        Rank::try_recv_t(self, sim_src(src), sim_tag(tag)).map(|(v, i)| (v, from_sim_info(i)))
    }

    fn recv_deadline<T: Wire + Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        Rank::recv_t_deadline(self, sim_src(src), sim_tag(tag), deadline)
            .map(|(v, i)| (v, from_sim_info(i)))
    }

    fn probe(&mut self, src: Src, tag: Tag) -> Option<MsgInfo> {
        Rank::iprobe_t(self, sim_src(src), sim_tag(tag)).map(from_sim_info)
    }

    fn wait_for_mail(&mut self) {
        Rank::wait_for_mail(self);
    }

    fn barrier(&mut self, group: &mpisim::Comm) {
        Rank::barrier(self, group);
    }

    fn allreduce<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &mpisim::Comm,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> T {
        Rank::allreduce(self, group, bytes, value, op)
    }

    fn allgatherv<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &mpisim::Comm,
        bytes: u64,
        value: T,
    ) -> Vec<T> {
        Rank::allgatherv(self, group, bytes, value)
    }

    fn bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &mpisim::Comm,
        root: usize,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        Rank::bcast(self, group, root, bytes, value)
    }

    fn split(
        &mut self,
        group: &mpisim::Comm,
        color: Option<i64>,
        key: i64,
    ) -> Option<mpisim::Comm> {
        Rank::split(self, group, color, key)
    }

    fn alloc_channel_id(&mut self) -> u16 {
        Rank::alloc_channel_id(self)
    }

    #[cfg(feature = "check")]
    fn check_register_channel(&mut self, id: u16, window: Option<u64>, credit_tag: Tag) {
        Rank::check_register_channel(self, id, window, sim_tag(credit_tag));
    }

    #[cfg(feature = "check")]
    fn check_data_sent(&mut self, id: u16, consumer: usize, elems: u64) {
        Rank::check_data_sent(self, id, consumer, elems);
    }

    #[cfg(feature = "check")]
    fn check_credit_issued(&mut self, id: u16, producer: usize, elems: u64) {
        Rank::check_credit_issued(self, id, producer, elems);
    }
}

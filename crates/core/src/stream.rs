//! Streams: asynchronous element flows with attached operators.
//!
//! Mirrors the paper's library surface:
//!
//! | paper                   | here                         |
//! |-------------------------|------------------------------|
//! | `MPIStream_Attach`      | [`Stream::attach`]           |
//! | `MPIStream_Isend`       | [`Stream::isend`]            |
//! | `MPIStream_Operate`     | [`Stream::operate`]          |
//! | `MPIStream_Terminate`   | [`Stream::terminate`]        |
//! | `MPIStream_FreeChannel` | dropping the [`Stream`]      |
//!
//! Consumers process elements **first-come-first-served** across all
//! producers (`AnySource` matching on availability time), which is the
//! mechanism that absorbs producer imbalance: a late producer never stalls
//! the consumer as long as any other producer has data in flight.

use crate::channel::{RoutePolicy, StreamChannel};
use crate::group::Role;
use crate::transport::{MsgInfo, SimTime, Src, Transport};
use crate::wire::{Wire, WireError};

/// Wire format of one stream message: the enum that actually crosses the
/// transport, with a defined [`Wire`] encoding (discriminant byte `0` for
/// `Data`, `1` for `Term`) so the same stream runs over a socket link.
/// Public so replication drivers (`crates/replica`) can speak the same
/// wire protocol from their own send/receive loops.
pub enum StreamMsg<T> {
    /// A batch of `aggregation`-coalesced elements.
    Data(Vec<T>),
    /// End of this producer's flow; carries the total elements it sent to
    /// this consumer (conservation checking).
    Term {
        /// Total elements this producer sent to this consumer.
        sent: u64,
    },
    /// Epoch marker (discriminant `2`), sent only by *replicated*
    /// producers when they start replaying to a new primary: everything
    /// this producer sent on the data tag before the marker belongs to
    /// an earlier reign and must not fold. Unreplicated channels never
    /// send it, so their wire traffic stays byte-identical.
    Mark(u64),
}

impl<T: Wire> Wire for StreamMsg<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StreamMsg::Data(batch) => {
                out.push(0);
                batch.encode(out);
            }
            StreamMsg::Term { sent } => {
                out.push(1);
                sent.encode(out);
            }
            StreamMsg::Mark(mark) => {
                out.push(2);
                mark.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(StreamMsg::Data(Vec::decode(input)?)),
            1 => Ok(StreamMsg::Term { sent: u64::decode(input)? }),
            2 => Ok(StreamMsg::Mark(u64::decode(input)?)),
            got => Err(WireError::BadDiscriminant { got }),
        }
    }
}

/// Producer- and consumer-side statistics of one stream endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Elements pushed by this producer / processed by this consumer.
    pub elements: u64,
    /// Wire messages sent / received (data messages only).
    pub batches: u64,
    /// Modelled payload bytes moved.
    pub bytes: u64,
    /// Elements abandoned producer-side because no live consumer could
    /// accept them (their consumer was declared dead and the route policy
    /// admits no alternative). Always `0` on fault-free runs.
    pub lost: u64,
}

/// Terminal state of one producer as seen by a consumer endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProducerState {
    /// The producer closed its flow cleanly with a `Term` marker.
    Terminated,
    /// The producer went silent past the channel's `failure_timeout` and
    /// was declared dead by the consumer's failure detector.
    Dead,
}

/// Per-producer accounting inside a [`StreamOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProducerReport {
    /// World rank of the producer.
    pub rank: usize,
    /// Elements from this producer actually processed by this consumer.
    pub delivered: u64,
    /// Elements the producer claims to have sent us (the `Term` payload);
    /// `None` when it died before terminating, so its claim is unknown.
    pub claimed: Option<u64>,
    /// How this producer's flow ended.
    pub state: ProducerState,
}

impl ProducerReport {
    /// Elements known to be lost from this producer: claimed by its `Term`
    /// but never delivered (link drops). `0` when the producer died without
    /// terminating — its claim is unknown, not zero.
    pub fn lost(&self) -> u64 {
        self.claimed.map_or(0, |c| c.saturating_sub(self.delivered))
    }
}

/// Result of a fault-tolerant drain ([`Stream::operate_outcome`]): how many
/// elements were processed and what became of each producer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Total elements processed, over all producers.
    pub processed: u64,
    /// One report per producer, in channel (sorted world-rank) order.
    pub producers: Vec<ProducerReport>,
}

impl StreamOutcome {
    /// Whether every producer closed cleanly and every claimed element was
    /// delivered — i.e. the run was indistinguishable from fault-free.
    pub fn complete(&self) -> bool {
        self.producers.iter().all(|p| p.state == ProducerState::Terminated && p.lost() == 0)
    }

    /// World ranks of the producers declared dead.
    pub fn dead(&self) -> Vec<usize> {
        self.producers.iter().filter(|p| p.state == ProducerState::Dead).map(|p| p.rank).collect()
    }

    /// Total elements known lost (claimed by a `Term` but not delivered).
    pub fn lost(&self) -> u64 {
        self.producers.iter().map(|p| p.lost()).sum()
    }
}

/// One endpoint of a stream over a [`StreamChannel`].
///
/// Producer endpoints push with [`Stream::isend`] and close with
/// [`Stream::terminate`]; consumer endpoints drain with
/// [`Stream::operate`] (or step with [`Stream::operate_some`]).
pub struct Stream<T> {
    channel: StreamChannel,
    // --- producer state ---
    /// Pending (not yet flushed) elements per consumer index.
    agg: Vec<Vec<T>>,
    rr_next: usize,
    /// Outstanding (unacknowledged) elements per consumer index, for
    /// credit-based flow control.
    outstanding: Vec<u64>,
    /// Elements sent per consumer index (for Term accounting).
    sent_per_consumer: Vec<u64>,
    /// Consumer indices this producer declared dead (credit silence past
    /// the channel's `failure_timeout`).
    dead_consumers: Vec<bool>,
    terminated: bool,
    // --- consumer state ---
    terms_seen: usize,
    /// World ranks of producers this consumer declared dead
    /// (see [`Stream::operate_outcome`]).
    dead_producers: Vec<usize>,
    /// Total elements producers claim to have sent us (sum of Terms).
    claimed: u64,
    /// Elements received but not yet handed out by [`Stream::recv_one`].
    pending: std::collections::VecDeque<T>,
    /// Credit not yet acknowledged, per producer world rank: flushed as
    /// one credit message once `config.credit_batch` elements accumulate
    /// (see [`ChannelConfig::credit_batch`]).
    ///
    /// [`ChannelConfig::credit_batch`]: crate::ChannelConfig::credit_batch
    pending_credit: std::collections::HashMap<usize, u64>,
    /// While true, [`Stream::grant_credit`] only accumulates — nothing is
    /// acknowledged until [`Stream::release_credits`]. The
    /// commit-before-credit-return gate of replicated consumers
    /// (`crates/replica`): a credit message doubles as a durability
    /// acknowledgement there, so it must not leave before the processed
    /// state is replicated.
    gate_credits: bool,
    /// Element cursor per producer world rank: how many of its elements
    /// this consumer endpoint has processed. The replay oracle replicated
    /// consumers checkpoint; maintained on every receive path.
    delivered_by: std::collections::HashMap<usize, u64>,
    /// Terminated producers' claimed totals per world rank (their `Term`
    /// payloads), checkpointed alongside the cursors.
    claimed_by: std::collections::HashMap<usize, u64>,
    /// Producer world ranks whose data tag is quarantined, mapped to the
    /// [`StreamMsg::Mark`] value that lifts the quarantine (`u64::MAX` =
    /// never). A replicated consumer taking over quarantines every
    /// unfinished producer until its post-announce epoch marker arrives:
    /// per-`(src, tag)` FIFO puts all traffic addressed to an earlier
    /// reign of this rank strictly before the marker, so everything
    /// dropped while muted is provably stale. Always empty on
    /// unreplicated channels.
    muted: std::collections::HashMap<usize, u64>,
    stats: StreamStats,
}

/// What one [`Stream::step_deadline`] call consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepEvent {
    /// World rank of the producer whose message was dispatched.
    pub src: usize,
    /// Elements handed to the operator (0 for a `Term`).
    pub elems: u64,
    /// Whether the message was the producer's termination marker.
    pub term: bool,
}

/// A replicated consumer's durable per-channel state: the element cursor
/// per producer, terminated producers' claims, and the endpoint's
/// statistics. Serialized with the [`Wire`] codec and shipped inside VSR
/// prepare messages (`crates/replica`); a standby that takes over restores
/// it with [`Stream::restore_consumer`] and resumes from the exact cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConsumerCheckpoint {
    /// `(producer world rank, elements delivered)` — sorted by rank for a
    /// canonical encoding.
    pub cursors: Vec<(u64, u64)>,
    /// `(producer world rank, claimed total)` for producers whose `Term`
    /// arrived — also sorted by rank.
    pub claims: Vec<(u64, u64)>,
    /// Consumer-side [`StreamStats`] mirror (elements, batches, bytes).
    pub elements: u64,
    /// Data messages received.
    pub batches: u64,
    /// Payload bytes received.
    pub bytes: u64,
}

crate::wire_struct!(ConsumerCheckpoint { cursors, claims, elements, batches, bytes });

impl<T: Wire + Send + 'static> Stream<T> {
    /// Attach a stream endpoint to `channel` (the element type `T` plays
    /// the role of the MPI derived datatype).
    pub fn attach(channel: StreamChannel) -> Stream<T> {
        let nc = channel.consumers.len();
        // Aggregation buffers are allocated at full batch capacity once
        // and swapped for an equally-sized buffer on every flush, so the
        // element push path never grows a Vec (see `flush_one`).
        let cap = channel.config.aggregation;
        Stream {
            agg: (0..nc).map(|_| Vec::with_capacity(cap)).collect(),
            channel,
            rr_next: 0,
            outstanding: vec![0; nc],
            sent_per_consumer: vec![0; nc],
            dead_consumers: vec![false; nc],
            terminated: false,
            terms_seen: 0,
            dead_producers: Vec::new(),
            claimed: 0,
            pending: std::collections::VecDeque::new(),
            pending_credit: std::collections::HashMap::new(),
            gate_credits: false,
            delivered_by: std::collections::HashMap::new(),
            claimed_by: std::collections::HashMap::new(),
            muted: std::collections::HashMap::new(),
            stats: StreamStats::default(),
        }
    }

    /// The underlying channel.
    pub fn channel(&self) -> &StreamChannel {
        &self.channel
    }

    /// Endpoint statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    fn my_producer_index<TP: Transport>(&self, rank: &TP) -> usize {
        self.channel
            .producers
            .iter()
            .position(|&w| w == rank.world_rank())
            .expect("this rank is not a producer on the channel")
    }

    fn default_consumer_index<TP: Transport>(&mut self, rank: &TP) -> usize {
        match self.channel.config.route {
            RoutePolicy::Static => self.my_producer_index(rank) % self.channel.consumers.len(),
            RoutePolicy::RoundRobin => {
                let i = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.channel.consumers.len();
                i
            }
        }
    }

    // ------------------------------------------------------------------
    // Producer side
    // ------------------------------------------------------------------

    /// Inject one element into the stream (`MPIStream_Isend`): route it to
    /// a consumer per the channel policy, coalescing `aggregation`
    /// elements per wire message. Asynchronous — blocks only when the
    /// credit window is exhausted.
    pub fn isend<TP: Transport>(&mut self, rank: &mut TP, elem: T) {
        assert_eq!(self.channel.my_role, Role::Producer, "isend on a non-producer endpoint");
        let c = self.default_consumer_index(rank);
        self.isend_to(rank, c, elem);
    }

    /// Inject one element routed by `key` (hash-partitioned streams, e.g.
    /// word-histogram keys).
    pub fn isend_keyed<TP: Transport>(&mut self, rank: &mut TP, key: u64, elem: T) {
        let c = (mix64(key) % self.channel.consumers.len() as u64) as usize;
        self.isend_to(rank, c, elem);
    }

    /// Inject one element to an explicit consumer index (application-
    /// specific routing, e.g. "the consumer responsible for my subdomain").
    pub fn isend_to<TP: Transport>(&mut self, rank: &mut TP, consumer: usize, elem: T) {
        assert!(!self.terminated, "isend after terminate");
        assert_eq!(self.channel.my_role, Role::Producer, "isend on a non-producer endpoint");
        self.agg[consumer].push(elem);
        if self.agg[consumer].len() >= self.channel.config.aggregation {
            self.flush_one(rank, consumer);
        }
    }

    /// Flush any partially filled aggregation buffers.
    pub fn flush<TP: Transport>(&mut self, rank: &mut TP) {
        for c in 0..self.channel.consumers.len() {
            if !self.agg[c].is_empty() {
                self.flush_one(rank, c);
            }
        }
    }

    fn flush_one<TP: Transport>(&mut self, rank: &mut TP, consumer: usize) {
        // The outgoing batch keeps its allocation (it travels to the
        // consumer inside the wire message); the slot gets a fresh
        // full-capacity buffer so subsequent pushes never reallocate.
        let cap = self.channel.config.aggregation;
        let batch = std::mem::replace(&mut self.agg[consumer], Vec::with_capacity(cap));
        debug_assert!(!batch.is_empty());
        self.send_batch(rank, consumer, batch);
    }

    /// Deliver one batch to `consumer`, re-routing it if the consumer is —
    /// or is discovered mid-wait to be — dead. [`RoutePolicy::RoundRobin`]
    /// re-routes to the next live consumer; under [`RoutePolicy::Static`]
    /// (and keyed routing) elements are pinned to their consumer, so they
    /// are dropped and counted in [`StreamStats::lost`].
    fn send_batch<TP: Transport>(&mut self, rank: &mut TP, mut consumer: usize, batch: Vec<T>) {
        let n = batch.len() as u64;
        loop {
            if self.dead_consumers[consumer] {
                match self.reroute_from(consumer) {
                    Some(c) => consumer = c,
                    None => {
                        self.stats.lost += n;
                        return;
                    }
                }
            }
            // Credit window: block until the consumer has drained enough —
            // or, with a failure timeout, until it is declared dead.
            if let Some(window) = self.channel.config.credits {
                let mut died = false;
                while self.outstanding[consumer] + n > window as u64 {
                    if !self.absorb_credit(rank, consumer) {
                        self.declare_consumer_dead(consumer);
                        died = true;
                        break;
                    }
                }
                if died {
                    continue;
                }
            }
            let bytes = n * self.channel.config.element_bytes;
            let dst = self.channel.consumers[consumer];
            let tag = self.channel.data_tag();
            // Report to the sanitizer *before* injecting: on a threaded
            // backend the consumer can observe the message (and ack it)
            // the instant `send` returns, so a post-send report would
            // race any cross-rank ledger built on these hooks.
            rank.check_data_sent(self.channel.id, dst, n);
            rank.send(dst, tag, bytes, StreamMsg::Data(batch));
            self.outstanding[consumer] += n;
            rank.prof_stream_send(self.channel.id, n, bytes);
            if let Some(window) = self.channel.config.credits {
                rank.prof_credit_occupancy(
                    self.channel.id,
                    self.outstanding[consumer],
                    window as u64,
                );
            }
            self.sent_per_consumer[consumer] += n;
            self.stats.elements += n;
            self.stats.batches += 1;
            self.stats.bytes += bytes;
            return;
        }
    }

    /// The consumer index that takes over from dead `consumer`, if the
    /// route policy admits one.
    fn reroute_from(&self, consumer: usize) -> Option<usize> {
        match self.channel.config.route {
            RoutePolicy::RoundRobin => {
                let nc = self.channel.consumers.len();
                (1..nc).map(|d| (consumer + d) % nc).find(|&c| !self.dead_consumers[c])
            }
            RoutePolicy::Static => None,
        }
    }

    /// Failure-detection verdict on a consumer: stop waiting on it and
    /// reclaim its credit window so no later send can block on it either.
    fn declare_consumer_dead(&mut self, consumer: usize) {
        self.dead_consumers[consumer] = true;
        self.outstanding[consumer] = 0;
    }

    /// Blockingly consume one credit message for `consumer`. With a
    /// `failure_timeout` configured the wait is bounded: `false` means the
    /// consumer stayed silent past the timeout.
    fn absorb_credit<TP: Transport>(&mut self, rank: &mut TP, consumer: usize) -> bool {
        let src = self.channel.consumers[consumer];
        let tag = self.channel.credit_tag();
        let acked = match self.channel.config.failure_timeout {
            None => rank.recv::<u64>(Src::Rank(src), tag).0,
            Some(t) => {
                let deadline = rank.now() + t;
                match rank.recv_deadline::<u64>(Src::Rank(src), tag, deadline) {
                    Some((acked, _)) => acked,
                    None => return false,
                }
            }
        };
        self.outstanding[consumer] = self.outstanding[consumer].saturating_sub(acked);
        true
    }

    /// Opportunistically drain any credits that have already arrived
    /// (keeps the window loose without blocking).
    fn drain_credits<TP: Transport>(&mut self, rank: &mut TP) {
        if self.channel.config.credits.is_none() {
            return;
        }
        let tag = self.channel.credit_tag();
        while let Some((acked, info)) = rank.try_recv::<u64>(Src::Any, tag) {
            let c = self
                .channel
                .consumers
                .iter()
                .position(|&w| w == info.src)
                .expect("credit from a consumer");
            self.outstanding[c] = self.outstanding[c].saturating_sub(acked);
        }
    }

    /// Close this producer's flow (`MPIStream_Terminate`): flush all
    /// buffers and notify every consumer.
    pub fn terminate<TP: Transport>(&mut self, rank: &mut TP) {
        assert_eq!(self.channel.my_role, Role::Producer, "terminate on a non-producer endpoint");
        if self.terminated {
            return;
        }
        self.flush(rank);
        let tag = self.channel.data_tag();
        for (c, &dst) in self.channel.consumers.clone().iter().enumerate() {
            // A consumer declared dead gets no Term: its traffic was
            // re-routed (or dropped) and nobody is listening there.
            if self.dead_consumers[c] {
                continue;
            }
            let sent = self.sent_per_consumer[c];
            rank.send(dst, tag, 16, StreamMsg::<T>::Term { sent });
        }
        // Drain remaining credit messages so they do not linger as
        // unconsumed traffic (and so outstanding counts settle for tests).
        self.drain_credits(rank);
        self.terminated = true;
    }

    /// Whether this producer endpoint has terminated.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    // ------------------------------------------------------------------
    // Consumer side
    // ------------------------------------------------------------------

    /// Acknowledge `n` consumed elements towards producer `src`,
    /// accumulating up to `config.credit_batch` elements per producer
    /// before flushing one credit message. With the default batch of 1
    /// this is exactly the original protocol: one credit message per
    /// data batch, sent immediately.
    fn grant_credit<TP: Transport>(&mut self, rank: &mut TP, src: usize, n: u64) {
        debug_assert!(self.channel.config.credits.is_some());
        if self.gate_credits {
            // Commit-before-credit-return: park everything until the
            // replication layer calls `release_credits`.
            *self.pending_credit.entry(src).or_insert(0) += n;
            return;
        }
        let batch = self.channel.config.credit_batch as u64;
        let tag = self.channel.credit_tag();
        if batch <= 1 {
            // Sanitizer report before the send, as on the data path: the
            // producer absorbs the credit as soon as it is observable.
            rank.check_credit_issued(self.channel.id, src, n);
            rank.send(src, tag, 8, n);
            return;
        }
        let pending = self.pending_credit.entry(src).or_insert(0);
        *pending += n;
        if *pending >= batch {
            let acked = std::mem::take(pending);
            rank.check_credit_issued(self.channel.id, src, acked);
            rank.send(src, tag, 8, acked);
        }
    }

    /// Gate (or un-gate) credit acknowledgements. While held, every credit
    /// this endpoint would grant is parked in the pending ledger instead of
    /// being sent; [`Stream::release_credits`] flushes the ledger. The
    /// commit-before-credit-return handshake of replicated consumers
    /// (`crates/replica`) — a credit there asserts the acknowledged
    /// elements are durably replicated, so it may only leave after the
    /// covering checkpoint commits.
    pub fn hold_credits(&mut self, hold: bool) {
        self.gate_credits = hold;
    }

    /// Flush every parked credit acknowledgement, regardless of the
    /// `credit_batch` threshold. A no-op on channels without credits.
    pub fn release_credits<TP: Transport>(&mut self, rank: &mut TP) {
        if self.channel.config.credits.is_none() {
            return;
        }
        let tag = self.channel.credit_tag();
        // Deterministic flush order (HashMap iteration is not).
        let mut entries: Vec<(usize, u64)> =
            self.pending_credit.drain().filter(|&(_, n)| n > 0).collect();
        entries.sort_unstable();
        for (src, acked) in entries {
            rank.check_credit_issued(self.channel.id, src, acked);
            rank.send(src, tag, 8, acked);
        }
    }

    /// Drain the parked credit ledger without sending anything: the
    /// replicated driver's alternative to [`Stream::release_credits`],
    /// used to wrap each acknowledgement in a view-stamped envelope
    /// before it leaves (`crates/replica`). Returns `(producer world
    /// rank, elements)` pairs, sorted by rank for a deterministic send
    /// order; empty on channels without credits. The caller must report
    /// each pair via `Transport::check_credit_issued` when it sends.
    pub fn take_pending_credits(&mut self) -> Vec<(usize, u64)> {
        if self.channel.config.credits.is_none() {
            return Vec::new();
        }
        let mut entries: Vec<(usize, u64)> =
            self.pending_credit.drain().filter(|&(_, n)| n > 0).collect();
        entries.sort_unstable();
        entries
    }

    /// A producer terminated (or died): drop its accumulated credit
    /// rather than acknowledging into the void. Its `Term` is the last
    /// message on the data tag (non-overtaking per `(src, tag)`), so the
    /// producer can never again block on the window — a flush here would
    /// only send a message nobody is waiting for.
    fn credit_on_closed(&mut self, src: usize) {
        self.pending_credit.remove(&src);
    }

    /// Apply `op` to every arriving element, first-come-first-served over
    /// all producers, until every producer has terminated
    /// (`MPIStream_Operate`). Returns the number of elements processed.
    pub fn operate<TP: Transport>(&mut self, rank: &mut TP, mut op: impl FnMut(&mut TP, T)) -> u64 {
        assert_eq!(self.channel.my_role, Role::Consumer, "operate on a non-consumer endpoint");
        let mut processed = 0;
        // Drain anything a prior recv_one pulled but did not hand out.
        while let Some(elem) = self.pending.pop_front() {
            op(rank, elem);
            processed += 1;
        }
        while self.terms_seen < self.channel.producers.len() {
            processed += self.step(rank, &mut op);
        }
        debug_assert_eq!(
            self.stats.elements, self.claimed,
            "conservation: processed must equal producers' claimed total"
        );
        processed
    }

    /// Fault-tolerant [`Stream::operate`]: apply `op` to every arriving
    /// element (FCFS across producers) until every producer has either
    /// terminated or been declared dead, and return a [`StreamOutcome`]
    /// with per-producer delivered/claimed accounting instead of hanging
    /// on a `Term` that will never come.
    ///
    /// Failure detection requires `config.failure_timeout = Some(t)`: a
    /// producer that has not yet terminated and from which nothing has
    /// arrived for `2t` of virtual time is declared [`ProducerState::Dead`]
    /// and its claim on the stream is discarded. The patience is twice the
    /// producer-side credit-wait timeout deliberately — a producer stalled
    /// up to `t` while it convicts a dead consumer of its own must not be
    /// convicted in turn by the surviving consumers. The verdict
    /// self-heals — if a declared-dead producer's message does arrive
    /// later (an extreme delay spike rather than a crash) while the drain
    /// is still running, the message is processed and the producer is
    /// live again.
    ///
    /// With `failure_timeout = None` this behaves exactly like `operate`,
    /// plus reporting. Must be the endpoint's only draining call — mixing
    /// with `operate`/`recv_one` would consume `Term`s this method can no
    /// longer attribute.
    pub fn operate_outcome<TP: Transport>(
        &mut self,
        rank: &mut TP,
        mut op: impl FnMut(&mut TP, T),
    ) -> StreamOutcome {
        assert_eq!(self.channel.my_role, Role::Consumer, "operate on a non-consumer endpoint");
        assert_eq!(self.terms_seen, 0, "operate_outcome must be the endpoint's only draining call");
        let producers = self.channel.producers.clone();
        let np = producers.len();
        // World rank -> channel index, so the per-message attribution is a
        // hash lookup instead of an O(np) scan (wide fan-in channels drain
        // one message per producer per scan otherwise — O(np²) total).
        let idx_of: std::collections::HashMap<usize, usize> =
            producers.iter().enumerate().map(|(i, &w)| (w, i)).collect();
        // Consumer patience is 2x the configured timeout (see rustdoc).
        let timeout = self.channel.config.failure_timeout.map(|t| t + t);
        let mut delivered = vec![0u64; np];
        let mut claimed: Vec<Option<u64>> = vec![None; np];
        let mut dead = vec![false; np];
        let mut terminated = vec![false; np];
        let mut last_heard = vec![rank.now(); np];
        // Silence deadlines of *open* (neither terminated nor dead)
        // producers, ordered: `first()` is the earliest instant any of them
        // exceeds the timeout. Maintained incrementally on each arrival in
        // place of a full O(np) min-scan per message.
        let mut deadlines: std::collections::BTreeSet<(SimTime, usize)> =
            std::collections::BTreeSet::new();
        if let Some(t) = timeout {
            for (i, &heard) in last_heard.iter().enumerate() {
                deadlines.insert((heard + t, i));
            }
        }
        let mut processed = 0u64;
        // Elements a prior `recv_one` pulled but never handed out can no
        // longer be attributed to a producer; they only count in the total.
        while let Some(elem) = self.pending.pop_front() {
            op(rank, elem);
            processed += 1;
        }
        let tag = self.channel.data_tag();
        loop {
            if terminated.iter().zip(&dead).all(|(&t, &d)| t || d) {
                break;
            }
            let got = match timeout {
                None => Some(rank.recv::<StreamMsg<T>>(Src::Any, tag)),
                Some(_) => {
                    // The earliest instant any open producer's silence
                    // exceeds the timeout.
                    let &(deadline, _) = deadlines.first().expect("at least one producer is open");
                    rank.recv_deadline::<StreamMsg<T>>(Src::Any, tag, deadline)
                }
            };
            match got {
                Some((wire, info)) => {
                    let pi = *idx_of.get(&info.src).expect("stream data from a channel producer");
                    if let Some(t) = timeout {
                        // Absent when `pi` was closed (dead producer
                        // speaking again) — remove is a no-op then.
                        deadlines.remove(&(last_heard[pi] + t, pi));
                    }
                    last_heard[pi] = rank.now();
                    dead[pi] = false; // self-heal: it spoke after the verdict
                    match wire {
                        StreamMsg::Data(batch) => {
                            let n = batch.len() as u64;
                            self.stats.elements += n;
                            self.stats.batches += 1;
                            self.stats.bytes += info.bytes;
                            rank.prof_stream_recv(self.channel.id, n, info.bytes);
                            *self.delivered_by.entry(info.src).or_insert(0) += n;
                            delivered[pi] += n;
                            processed += n;
                            for elem in batch {
                                op(rank, elem);
                            }
                            if let Some(t) = timeout {
                                if !terminated[pi] {
                                    deadlines.insert((last_heard[pi] + t, pi));
                                }
                            }
                            if self.channel.config.credits.is_some() {
                                self.grant_credit(rank, info.src, n);
                            }
                        }
                        StreamMsg::Term { sent } => {
                            if self.claimed_by.insert(info.src, sent).is_none() {
                                self.terms_seen += 1;
                                self.claimed += sent;
                            }
                            terminated[pi] = true;
                            claimed[pi] = Some(sent);
                            self.credit_on_closed(info.src);
                        }
                        StreamMsg::Mark(_) => {
                            // Epoch marker: a liveness signal with nothing
                            // to fold. Only replicated producers send it,
                            // and they drain through `step_deadline` — but
                            // arriving here it is benign: re-arm the
                            // sender's silence deadline and move on.
                            if let Some(t) = timeout {
                                if !terminated[pi] {
                                    deadlines.insert((last_heard[pi] + t, pi));
                                }
                            }
                        }
                    }
                }
                None => {
                    // Deadline passed with nothing deliverable: declare
                    // every producer silent past the timeout dead and
                    // reclaim its claim on this endpoint.
                    let now = rank.now();
                    while let Some(&(d, i)) = deadlines.first() {
                        if d > now {
                            break;
                        }
                        deadlines.pop_first();
                        dead[i] = true;
                    }
                }
            }
        }
        self.dead_producers = (0..np).filter(|&i| dead[i]).map(|i| producers[i]).collect();
        StreamOutcome {
            processed,
            producers: (0..np)
                .map(|i| ProducerReport {
                    rank: producers[i],
                    delivered: delivered[i],
                    claimed: claimed[i],
                    state: if dead[i] { ProducerState::Dead } else { ProducerState::Terminated },
                })
                .collect(),
        }
    }

    /// Process arriving elements while `running` stays true (for consumers
    /// that interleave stream processing with other work). Returns
    /// elements processed; stops early once all producers terminated.
    pub fn operate_while<TP: Transport>(
        &mut self,
        rank: &mut TP,
        mut running: impl FnMut() -> bool,
        mut op: impl FnMut(&mut TP, T),
    ) -> u64 {
        let mut processed = 0;
        while self.terms_seen < self.channel.producers.len() && running() {
            processed += self.step(rank, &mut op);
        }
        processed
    }

    /// Process at most the next wire message if one is already available;
    /// never blocks. Returns elements processed (0 if nothing was ready).
    pub fn operate_some<TP: Transport>(
        &mut self,
        rank: &mut TP,
        mut op: impl FnMut(&mut TP, T),
    ) -> u64 {
        assert_eq!(self.channel.my_role, Role::Consumer);
        let tag = self.channel.data_tag();
        match rank.try_recv::<StreamMsg<T>>(Src::Any, tag) {
            Some((wire, info)) => self.dispatch(rank, wire, info, &mut op),
            None => 0,
        }
    }

    /// Like [`Stream::operate_some`] but also reports whether *any* wire
    /// message (data or termination marker) was consumed — the progress
    /// signal multiplexers need to avoid busy-waiting.
    pub fn try_step<TP: Transport>(
        &mut self,
        rank: &mut TP,
        mut op: impl FnMut(&mut TP, T),
    ) -> (u64, bool) {
        assert_eq!(self.channel.my_role, Role::Consumer);
        let tag = self.channel.data_tag();
        match rank.try_recv::<StreamMsg<T>>(Src::Any, tag) {
            Some((wire, info)) => (self.dispatch(rank, wire, info, &mut op), true),
            None => (0, false),
        }
    }

    /// Blockingly dispatch the next wire message, giving up at `deadline`:
    /// `None` on timeout, otherwise what was consumed. The receive loop
    /// primitive of replicated consumers (`crates/replica`), whose primary
    /// must interleave stream progress with heartbeats to its standbys.
    pub fn step_deadline<TP: Transport>(
        &mut self,
        rank: &mut TP,
        deadline: SimTime,
        mut op: impl FnMut(&mut TP, T),
    ) -> Option<StepEvent> {
        assert_eq!(self.channel.my_role, Role::Consumer);
        let tag = self.channel.data_tag();
        let (wire, info) = rank.recv_deadline::<StreamMsg<T>>(Src::Any, tag, deadline)?;
        let src = info.src;
        // A quarantined `Term` is dropped by `dispatch` and must not be
        // reported either: the replica driver acknowledges term events,
        // which would certify a flow whose claim never committed.
        let term = matches!(wire, StreamMsg::Term { .. }) && !self.is_quarantined(src);
        let elems = self.dispatch(rank, wire, info, &mut op);
        Some(StepEvent { src, elems, term })
    }

    /// Snapshot this consumer endpoint's durable state (element cursors,
    /// terminated producers' claims, statistics) for replication. The
    /// encoding is canonical: two endpoints that processed the same
    /// elements produce byte-identical checkpoints.
    pub fn consumer_checkpoint(&self) -> ConsumerCheckpoint {
        let mut cursors: Vec<(u64, u64)> =
            self.delivered_by.iter().map(|(&r, &n)| (r as u64, n)).collect();
        cursors.sort_unstable();
        let mut claims: Vec<(u64, u64)> =
            self.claimed_by.iter().map(|(&r, &n)| (r as u64, n)).collect();
        claims.sort_unstable();
        ConsumerCheckpoint {
            cursors,
            claims,
            elements: self.stats.elements,
            batches: self.stats.batches,
            bytes: self.stats.bytes,
        }
    }

    /// Install a replicated predecessor's [`ConsumerCheckpoint`] into this
    /// (fresh) consumer endpoint: cursors, claims and statistics resume
    /// from the exact committed state; parked credits and undelivered
    /// buffers are cleared (the takeover protocol re-derives credit from
    /// the cursors, and a committed checkpoint never contains unprocessed
    /// elements).
    pub fn restore_consumer(&mut self, ckpt: &ConsumerCheckpoint) {
        assert_eq!(self.channel.my_role, Role::Consumer);
        self.delivered_by = ckpt.cursors.iter().map(|&(r, n)| (r as usize, n)).collect();
        self.claimed_by = ckpt.claims.iter().map(|&(r, n)| (r as usize, n)).collect();
        self.terms_seen = ckpt.claims.len();
        self.claimed = ckpt.claims.iter().map(|&(_, n)| n).sum();
        self.pending.clear();
        self.pending_credit.clear();
        self.muted.clear();
        self.stats.elements = ckpt.elements;
        self.stats.batches = ckpt.batches;
        self.stats.bytes = ckpt.bytes;
    }

    /// Quarantine producer world rank `src`'s data tag until a
    /// [`StreamMsg::Mark`] with a value `>= mark` arrives from it
    /// (`u64::MAX`: forever). While quarantined, every wire message from
    /// `src` — data, `Term`, stale markers — is dropped unprocessed.
    /// Replicated consumers call this at takeover for each unfinished
    /// producer before announcing the new view: per-`(src, tag)` FIFO
    /// guarantees everything the producer sent to this rank's earlier
    /// reign is delivered strictly before the post-announce marker, so
    /// the drop window contains exactly the stale traffic.
    pub fn quarantine_until_mark(&mut self, src: usize, mark: u64) {
        self.muted.insert(src, mark);
    }

    /// Whether producer world rank `src` is currently quarantined.
    pub fn is_quarantined(&self, src: usize) -> bool {
        self.muted.contains_key(&src)
    }

    /// The element cursor for producer world rank `src`: elements of its
    /// flow this endpoint has processed.
    pub fn cursor_of(&self, src: usize) -> u64 {
        self.delivered_by.get(&src).copied().unwrap_or(0)
    }

    /// Whether producer world rank `src`'s `Term` has been processed, and
    /// its claimed total if so.
    pub fn claim_of(&self, src: usize) -> Option<u64> {
        self.claimed_by.get(&src).copied()
    }

    /// Whether every producer has signalled termination (or, after a
    /// fault-tolerant drain, been declared dead).
    pub fn all_terminated(&self) -> bool {
        self.terms_seen + self.dead_producers.len() >= self.channel.producers.len()
    }

    /// Release the endpoint (`MPIStream_FreeChannel`): consumes the
    /// stream, asserting it is in a clean terminal state — producers must
    /// have terminated, consumers must have drained every claimed element.
    /// Dropping a `Stream` without `free` is allowed (Rust cleans up), but
    /// `free` catches protocol bugs the way the C API's explicit call did.
    pub fn free<TP: Transport>(self, _rank: &mut TP) {
        match self.channel.my_role {
            Role::Producer => {
                assert!(self.terminated, "free() on a producer endpoint that never terminated");
                assert!(self.agg.iter().all(|b| b.is_empty()), "free() with unflushed elements");
            }
            Role::Consumer => {
                assert!(
                    self.all_terminated(),
                    "free() on a consumer endpoint before all producers terminated"
                );
                assert!(
                    self.pending.is_empty(),
                    "free() with {} undelivered elements",
                    self.pending.len()
                );
                // Conservation only holds when no producer died: a dead
                // producer's claim is unknown and its data may be short.
                if self.dead_producers.is_empty() {
                    assert_eq!(
                        self.stats.elements, self.claimed,
                        "free() with unconsumed claimed elements"
                    );
                }
            }
            Role::Bystander => {}
        }
    }

    /// Pull-style consumption: block for the next element (FCFS across
    /// producers). Returns `None` once every producer has terminated and
    /// all elements were handed out. Mixing `recv_one` with `operate` on
    /// the same endpoint is supported — both drain the same buffers.
    pub fn recv_one<TP: Transport>(&mut self, rank: &mut TP) -> Option<T> {
        assert_eq!(self.channel.my_role, Role::Consumer, "recv_one on a non-consumer endpoint");
        loop {
            if let Some(elem) = self.pending.pop_front() {
                return Some(elem);
            }
            if self.all_terminated() {
                debug_assert_eq!(self.stats.elements, self.claimed);
                return None;
            }
            let tag = self.channel.data_tag();
            let (wire, info) = rank.recv::<StreamMsg<T>>(Src::Any, tag);
            if let StreamMsg::Mark(mark) = wire {
                if self.muted.get(&info.src).is_some_and(|&need| mark >= need) {
                    self.muted.remove(&info.src);
                }
                continue;
            }
            if !self.muted.is_empty() && self.muted.contains_key(&info.src) {
                continue; // quarantined: stale pre-takeover traffic
            }
            match wire {
                StreamMsg::Data(batch) => {
                    let n = batch.len() as u64;
                    self.stats.elements += n;
                    self.stats.batches += 1;
                    self.stats.bytes += info.bytes;
                    rank.prof_stream_recv(self.channel.id, n, info.bytes);
                    *self.delivered_by.entry(info.src).or_insert(0) += n;
                    self.pending.extend(batch);
                    if self.channel.config.credits.is_some() {
                        self.grant_credit(rank, info.src, n);
                    }
                }
                StreamMsg::Term { sent } => {
                    // Idempotent: a resent Term (a replicated producer whose
                    // TermAck was lost, see `crates/replica`) must not
                    // double-count the claim.
                    if self.claimed_by.insert(info.src, sent).is_none() {
                        self.terms_seen += 1;
                        self.claimed += sent;
                    }
                    self.credit_on_closed(info.src);
                }
                StreamMsg::Mark(_) => unreachable!("Mark is consumed before the match"),
            }
        }
    }

    /// Blockingly receive and dispatch one wire message.
    fn step<TP: Transport>(&mut self, rank: &mut TP, op: &mut impl FnMut(&mut TP, T)) -> u64 {
        let tag = self.channel.data_tag();
        let (wire, info) = rank.recv::<StreamMsg<T>>(Src::Any, tag);
        self.dispatch(rank, wire, info, op)
    }

    fn dispatch<TP: Transport>(
        &mut self,
        rank: &mut TP,
        wire: StreamMsg<T>,
        info: MsgInfo,
        op: &mut impl FnMut(&mut TP, T),
    ) -> u64 {
        if let StreamMsg::Mark(mark) = wire {
            // An epoch marker lifts a matching quarantine; stale markers
            // (from a view this rank's quarantine outlived) are ignored.
            if self.muted.get(&info.src).is_some_and(|&need| mark >= need) {
                self.muted.remove(&info.src);
            }
            return 0;
        }
        if !self.muted.is_empty() && self.muted.contains_key(&info.src) {
            // Quarantined: pre-takeover traffic addressed to an earlier
            // reign of this rank. Dropping it is the exactly-once cut —
            // everything below the producer's marker was either already
            // folded into the committed checkpoint or will arrive again
            // in the post-marker replay.
            return 0;
        }
        match wire {
            StreamMsg::Data(batch) => {
                let n = batch.len() as u64;
                self.stats.elements += n;
                self.stats.batches += 1;
                self.stats.bytes += info.bytes;
                rank.prof_stream_recv(self.channel.id, n, info.bytes);
                *self.delivered_by.entry(info.src).or_insert(0) += n;
                for elem in batch {
                    op(rank, elem);
                }
                if self.channel.config.credits.is_some() {
                    // Acknowledge the whole batch (or accumulate towards
                    // one credit_batch-sized acknowledgement).
                    self.grant_credit(rank, info.src, n);
                }
                n
            }
            StreamMsg::Term { sent } => {
                // Idempotent against resent Terms (see `recv_one`).
                if self.claimed_by.insert(info.src, sent).is_none() {
                    self.terms_seen += 1;
                    self.claimed += sent;
                }
                self.credit_on_closed(info.src);
                0
            }
            StreamMsg::Mark(_) => unreachable!("Mark is consumed before the dispatch match"),
        }
    }
}

/// Finalizer-style avalanche hash (so consecutive keys spread evenly).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_spreads_consecutive_keys() {
        let n = 16u64;
        let mut buckets = vec![0usize; n as usize];
        for k in 0..1_600 {
            buckets[(mix64(k) % n) as usize] += 1;
        }
        // Each bucket should get roughly 100; no pathological clumping.
        assert!(buckets.iter().all(|&b| b > 50 && b < 200), "{buckets:?}");
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // Distinct inputs must map to distinct outputs (sampled).
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(mix64(k)));
        }
    }
}

//! Streams: asynchronous element flows with attached operators.
//!
//! Mirrors the paper's library surface:
//!
//! | paper                   | here                         |
//! |-------------------------|------------------------------|
//! | `MPIStream_Attach`      | [`Stream::attach`]           |
//! | `MPIStream_Isend`       | [`Stream::isend`]            |
//! | `MPIStream_Operate`     | [`Stream::operate`]          |
//! | `MPIStream_Terminate`   | [`Stream::terminate`]        |
//! | `MPIStream_FreeChannel` | dropping the [`Stream`]      |
//!
//! Consumers process elements **first-come-first-served** across all
//! producers (`AnySource` matching on availability time), which is the
//! mechanism that absorbs producer imbalance: a late producer never stalls
//! the consumer as long as any other producer has data in flight.

use mpisim::{MsgInfo, Rank, Src};

use crate::channel::{RoutePolicy, StreamChannel};
use crate::group::Role;

/// Wire format of one stream message.
enum Wire<T> {
    /// A batch of `aggregation`-coalesced elements.
    Data(Vec<T>),
    /// End of this producer's flow; carries the total elements it sent to
    /// this consumer (conservation checking).
    Term { sent: u64 },
}

/// Producer- and consumer-side statistics of one stream endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Elements pushed by this producer / processed by this consumer.
    pub elements: u64,
    /// Wire messages sent / received (data messages only).
    pub batches: u64,
    /// Modelled payload bytes moved.
    pub bytes: u64,
}

/// One endpoint of a stream over a [`StreamChannel`].
///
/// Producer endpoints push with [`Stream::isend`] and close with
/// [`Stream::terminate`]; consumer endpoints drain with
/// [`Stream::operate`] (or step with [`Stream::operate_some`]).
pub struct Stream<T> {
    channel: StreamChannel,
    // --- producer state ---
    /// Pending (not yet flushed) elements per consumer index.
    agg: Vec<Vec<T>>,
    rr_next: usize,
    /// Outstanding (unacknowledged) elements per consumer index, for
    /// credit-based flow control.
    outstanding: Vec<u64>,
    /// Elements sent per consumer index (for Term accounting).
    sent_per_consumer: Vec<u64>,
    terminated: bool,
    // --- consumer state ---
    terms_seen: usize,
    /// Total elements producers claim to have sent us (sum of Terms).
    claimed: u64,
    /// Elements received but not yet handed out by [`Stream::recv_one`].
    pending: std::collections::VecDeque<T>,
    stats: StreamStats,
}

impl<T: Send + 'static> Stream<T> {
    /// Attach a stream endpoint to `channel` (the element type `T` plays
    /// the role of the MPI derived datatype).
    pub fn attach(channel: StreamChannel) -> Stream<T> {
        let nc = channel.consumers.len();
        Stream {
            channel,
            agg: (0..nc).map(|_| Vec::new()).collect(),
            rr_next: 0,
            outstanding: vec![0; nc],
            sent_per_consumer: vec![0; nc],
            terminated: false,
            terms_seen: 0,
            claimed: 0,
            pending: std::collections::VecDeque::new(),
            stats: StreamStats::default(),
        }
    }

    /// The underlying channel.
    pub fn channel(&self) -> &StreamChannel {
        &self.channel
    }

    /// Endpoint statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    fn my_producer_index(&self, rank: &Rank) -> usize {
        self.channel
            .producers
            .iter()
            .position(|&w| w == rank.world_rank())
            .expect("this rank is not a producer on the channel")
    }

    fn default_consumer_index(&mut self, rank: &Rank) -> usize {
        match self.channel.config.route {
            RoutePolicy::Static => {
                self.my_producer_index(rank) % self.channel.consumers.len()
            }
            RoutePolicy::RoundRobin => {
                let i = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.channel.consumers.len();
                i
            }
        }
    }

    // ------------------------------------------------------------------
    // Producer side
    // ------------------------------------------------------------------

    /// Inject one element into the stream (`MPIStream_Isend`): route it to
    /// a consumer per the channel policy, coalescing `aggregation`
    /// elements per wire message. Asynchronous — blocks only when the
    /// credit window is exhausted.
    pub fn isend(&mut self, rank: &mut Rank, elem: T) {
        assert_eq!(self.channel.my_role, Role::Producer, "isend on a non-producer endpoint");
        let c = self.default_consumer_index(rank);
        self.isend_to(rank, c, elem);
    }

    /// Inject one element routed by `key` (hash-partitioned streams, e.g.
    /// word-histogram keys).
    pub fn isend_keyed(&mut self, rank: &mut Rank, key: u64, elem: T) {
        let c = (mix64(key) % self.channel.consumers.len() as u64) as usize;
        self.isend_to(rank, c, elem);
    }

    /// Inject one element to an explicit consumer index (application-
    /// specific routing, e.g. "the consumer responsible for my subdomain").
    pub fn isend_to(&mut self, rank: &mut Rank, consumer: usize, elem: T) {
        assert!(!self.terminated, "isend after terminate");
        assert_eq!(self.channel.my_role, Role::Producer, "isend on a non-producer endpoint");
        self.agg[consumer].push(elem);
        if self.agg[consumer].len() >= self.channel.config.aggregation {
            self.flush_one(rank, consumer);
        }
    }

    /// Flush any partially filled aggregation buffers.
    pub fn flush(&mut self, rank: &mut Rank) {
        for c in 0..self.channel.consumers.len() {
            if !self.agg[c].is_empty() {
                self.flush_one(rank, c);
            }
        }
    }

    fn flush_one(&mut self, rank: &mut Rank, consumer: usize) {
        let batch = std::mem::take(&mut self.agg[consumer]);
        debug_assert!(!batch.is_empty());
        let n = batch.len() as u64;
        // Credit window: block until the consumer has drained enough.
        if let Some(window) = self.channel.config.credits {
            while self.outstanding[consumer] + n > window as u64 {
                self.absorb_credit(rank, consumer);
            }
        }
        let bytes = n * self.channel.config.element_bytes;
        let dst = self.channel.consumers[consumer];
        let tag = self.channel.data_tag();
        let req = rank.isend_t(dst, tag, bytes, Wire::Data(batch));
        rank.wait_send(req);
        self.outstanding[consumer] += n;
        self.sent_per_consumer[consumer] += n;
        self.stats.elements += n;
        self.stats.batches += 1;
        self.stats.bytes += bytes;
    }

    /// Blockingly consume one credit message for `consumer`.
    fn absorb_credit(&mut self, rank: &mut Rank, consumer: usize) {
        let src = self.channel.consumers[consumer];
        let (acked, _) = rank.recv_t::<u64>(Src::Rank(src), self.channel.credit_tag());
        self.outstanding[consumer] = self.outstanding[consumer].saturating_sub(acked);
    }

    /// Opportunistically drain any credits that have already arrived
    /// (keeps the window loose without blocking).
    fn drain_credits(&mut self, rank: &mut Rank) {
        if self.channel.config.credits.is_none() {
            return;
        }
        let tag = self.channel.credit_tag();
        while let Some((acked, info)) = rank.try_recv_t::<u64>(Src::Any, tag) {
            let c = self
                .channel
                .consumers
                .iter()
                .position(|&w| w == info.src)
                .expect("credit from a consumer");
            self.outstanding[c] = self.outstanding[c].saturating_sub(acked);
        }
    }

    /// Close this producer's flow (`MPIStream_Terminate`): flush all
    /// buffers and notify every consumer.
    pub fn terminate(&mut self, rank: &mut Rank) {
        assert_eq!(self.channel.my_role, Role::Producer, "terminate on a non-producer endpoint");
        if self.terminated {
            return;
        }
        self.flush(rank);
        let tag = self.channel.data_tag();
        for (c, &dst) in self.channel.consumers.clone().iter().enumerate() {
            let sent = self.sent_per_consumer[c];
            rank.send_t(dst, tag, 16, Wire::<T>::Term { sent });
        }
        // Drain remaining credit messages so they do not linger as
        // unconsumed traffic (and so outstanding counts settle for tests).
        self.drain_credits(rank);
        self.terminated = true;
    }

    /// Whether this producer endpoint has terminated.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    // ------------------------------------------------------------------
    // Consumer side
    // ------------------------------------------------------------------

    /// Apply `op` to every arriving element, first-come-first-served over
    /// all producers, until every producer has terminated
    /// (`MPIStream_Operate`). Returns the number of elements processed.
    pub fn operate(&mut self, rank: &mut Rank, mut op: impl FnMut(&mut Rank, T)) -> u64 {
        assert_eq!(self.channel.my_role, Role::Consumer, "operate on a non-consumer endpoint");
        let mut processed = 0;
        // Drain anything a prior recv_one pulled but did not hand out.
        while let Some(elem) = self.pending.pop_front() {
            op(rank, elem);
            processed += 1;
        }
        while self.terms_seen < self.channel.producers.len() {
            processed += self.step(rank, &mut op);
        }
        debug_assert_eq!(
            self.stats.elements, self.claimed,
            "conservation: processed must equal producers' claimed total"
        );
        processed
    }

    /// Process arriving elements while `running` stays true (for consumers
    /// that interleave stream processing with other work). Returns
    /// elements processed; stops early once all producers terminated.
    pub fn operate_while(
        &mut self,
        rank: &mut Rank,
        mut running: impl FnMut() -> bool,
        mut op: impl FnMut(&mut Rank, T),
    ) -> u64 {
        let mut processed = 0;
        while self.terms_seen < self.channel.producers.len() && running() {
            processed += self.step(rank, &mut op);
        }
        processed
    }

    /// Process at most the next wire message if one is already available;
    /// never blocks. Returns elements processed (0 if nothing was ready).
    pub fn operate_some(&mut self, rank: &mut Rank, mut op: impl FnMut(&mut Rank, T)) -> u64 {
        assert_eq!(self.channel.my_role, Role::Consumer);
        let tag = self.channel.data_tag();
        match rank.try_recv_t::<Wire<T>>(Src::Any, tag) {
            Some((wire, info)) => self.dispatch(rank, wire, info, &mut op),
            None => 0,
        }
    }

    /// Like [`Stream::operate_some`] but also reports whether *any* wire
    /// message (data or termination marker) was consumed — the progress
    /// signal multiplexers need to avoid busy-waiting.
    pub fn try_step(
        &mut self,
        rank: &mut Rank,
        mut op: impl FnMut(&mut Rank, T),
    ) -> (u64, bool) {
        assert_eq!(self.channel.my_role, Role::Consumer);
        let tag = self.channel.data_tag();
        match rank.try_recv_t::<Wire<T>>(Src::Any, tag) {
            Some((wire, info)) => (self.dispatch(rank, wire, info, &mut op), true),
            None => (0, false),
        }
    }

    /// Whether every producer has signalled termination.
    pub fn all_terminated(&self) -> bool {
        self.terms_seen >= self.channel.producers.len()
    }

    /// Release the endpoint (`MPIStream_FreeChannel`): consumes the
    /// stream, asserting it is in a clean terminal state — producers must
    /// have terminated, consumers must have drained every claimed element.
    /// Dropping a `Stream` without `free` is allowed (Rust cleans up), but
    /// `free` catches protocol bugs the way the C API's explicit call did.
    pub fn free(self, _rank: &mut Rank) {
        match self.channel.my_role {
            Role::Producer => {
                assert!(
                    self.terminated,
                    "free() on a producer endpoint that never terminated"
                );
                assert!(
                    self.agg.iter().all(|b| b.is_empty()),
                    "free() with unflushed elements"
                );
            }
            Role::Consumer => {
                assert!(
                    self.all_terminated(),
                    "free() on a consumer endpoint before all producers terminated"
                );
                assert!(
                    self.pending.is_empty(),
                    "free() with {} undelivered elements",
                    self.pending.len()
                );
                assert_eq!(
                    self.stats.elements, self.claimed,
                    "free() with unconsumed claimed elements"
                );
            }
            Role::Bystander => {}
        }
    }

    /// Pull-style consumption: block for the next element (FCFS across
    /// producers). Returns `None` once every producer has terminated and
    /// all elements were handed out. Mixing `recv_one` with `operate` on
    /// the same endpoint is supported — both drain the same buffers.
    pub fn recv_one(&mut self, rank: &mut Rank) -> Option<T> {
        assert_eq!(self.channel.my_role, Role::Consumer, "recv_one on a non-consumer endpoint");
        loop {
            if let Some(elem) = self.pending.pop_front() {
                return Some(elem);
            }
            if self.all_terminated() {
                debug_assert_eq!(self.stats.elements, self.claimed);
                return None;
            }
            let tag = self.channel.data_tag();
            let (wire, info) = rank.recv_t::<Wire<T>>(Src::Any, tag);
            match wire {
                Wire::Data(batch) => {
                    let n = batch.len() as u64;
                    self.stats.elements += n;
                    self.stats.batches += 1;
                    self.stats.bytes += info.bytes;
                    self.pending.extend(batch);
                    if self.channel.config.credits.is_some() {
                        rank.send_t(info.src, self.channel.credit_tag(), 8, n);
                    }
                }
                Wire::Term { sent } => {
                    self.terms_seen += 1;
                    self.claimed += sent;
                }
            }
        }
    }

    /// Blockingly receive and dispatch one wire message.
    fn step(&mut self, rank: &mut Rank, op: &mut impl FnMut(&mut Rank, T)) -> u64 {
        let tag = self.channel.data_tag();
        let (wire, info) = rank.recv_t::<Wire<T>>(Src::Any, tag);
        self.dispatch(rank, wire, info, op)
    }

    fn dispatch(
        &mut self,
        rank: &mut Rank,
        wire: Wire<T>,
        info: MsgInfo,
        op: &mut impl FnMut(&mut Rank, T),
    ) -> u64 {
        match wire {
            Wire::Data(batch) => {
                let n = batch.len() as u64;
                self.stats.elements += n;
                self.stats.batches += 1;
                self.stats.bytes += info.bytes;
                for elem in batch {
                    op(rank, elem);
                }
                if self.channel.config.credits.is_some() {
                    // Acknowledge the whole batch in one small message.
                    rank.send_t(info.src, self.channel.credit_tag(), 8, n);
                }
                n
            }
            Wire::Term { sent } => {
                self.terms_seen += 1;
                self.claimed += sent;
                0
            }
        }
    }
}

/// Finalizer-style avalanche hash (so consecutive keys spread evenly).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::mix64;

    #[test]
    fn mix64_spreads_consecutive_keys() {
        let n = 16u64;
        let mut buckets = vec![0usize; n as usize];
        for k in 0..1_600 {
            buckets[(mix64(k) % n) as usize] += 1;
        }
        // Each bucket should get roughly 100; no pathological clumping.
        assert!(buckets.iter().all(|&b| b > 50 && b < 200), "{buckets:?}");
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // Distinct inputs must map to distinct outputs (sampled).
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(mix64(k)));
        }
    }
}

//! The transport abstraction: what the stream runtime needs from a
//! message-passing substrate.
//!
//! The paper's MPIStream library is layered *on top of* MPI — it uses
//! point-to-point sends with tag matching, `MPI_ANY_SOURCE` receives, a
//! handful of collectives for setup, and nothing else. [`Transport`]
//! captures exactly that surface, so the stream runtime ([`crate::Stream`],
//! [`crate::StreamChannel`], [`crate::run_decoupled`], `operate2`) is
//! generic over *where* it executes:
//!
//! - [`crate::SimTransport`] (an alias for `mpisim::Rank`) runs stream
//!   programs inside the deterministic discrete-event simulator, on a
//!   virtual clock with a modelled network.
//! - `native::NativeRank` (the `crates/native` backend) runs the same
//!   programs on real OS threads with lock-and-condvar mailboxes, on the
//!   wall clock.
//!
//! The trait deliberately exposes the *semantics* both backends share and
//! nothing either is forced to fake: time is a monotone [`SimTime`] whose
//! meaning (virtual vs wall nanoseconds) belongs to the backend;
//! [`Transport::send`] returns once the message is injected (delivery is
//! asynchronous); receives match on `(source, tag)` with [`Src::Any`]
//! selecting the first *available* message — the FCFS mechanism the
//! decoupling model uses to absorb producer imbalance.

pub use desim::{SimDuration, SimTime};

use crate::wire::Wire;

/// Wire tag. User tags occupy the low 32 bits; library-internal traffic
/// (collectives, streams) sets the top bit and namespaces the rest so it
/// can never collide with application tags. The bit layout is shared by
/// every backend, so a channel's tags mean the same thing in the
/// simulator and on native threads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// A plain application tag.
    pub const fn user(t: u32) -> Tag {
        Tag(t as u64)
    }

    /// An internal tag in namespace `ns` (collectives, streams, ...) with
    /// a per-channel id and sequence number.
    pub const fn internal(ns: u8, chan: u16, seq: u32) -> Tag {
        Tag(1 << 63 | (ns as u64) << 48 | (chan as u64) << 32 | seq as u64)
    }

    /// Classify this tag for backend-independent tooling (profilers,
    /// sanitizers) that observes traffic without knowing who built the
    /// tag. Stream payload and credit tags are recognised from their
    /// namespace bits, so a blocked receive can be attributed to
    /// wait-for-data vs wait-for-credit from the tag alone.
    pub fn kind(&self) -> TagKind {
        use crate::channel::{CODE_CREDIT, CODE_DATA, NS_STREAM};
        if self.0 >> 63 == 0 {
            return TagKind::User(self.0 as u32);
        }
        let ns = ((self.0 >> 48) & 0xFF) as u8;
        let channel = ((self.0 >> 32) & 0xFFFF) as u16;
        let seq = self.0 as u32;
        match (ns, seq) {
            (NS_STREAM, CODE_DATA) => TagKind::StreamData { channel },
            (NS_STREAM, CODE_CREDIT) => TagKind::StreamCredit { channel },
            _ => TagKind::Internal { ns, channel, seq },
        }
    }
}

/// What a [`Tag`] means on the wire (see [`Tag::kind`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TagKind {
    /// A plain application tag ([`Tag::user`]).
    User(u32),
    /// Stream payload traffic on `channel`.
    StreamData { channel: u16 },
    /// Stream flow-control credits on `channel`.
    StreamCredit { channel: u16 },
    /// Library-internal traffic in some other namespace (collectives, ...).
    Internal { ns: u8, channel: u16, seq: u32 },
}

/// Source selector for receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Src {
    /// Match only messages from this world rank.
    Rank(usize),
    /// Match a message from any source — the first *available* one, which
    /// is the mechanism the decoupling model uses to absorb imbalance.
    Any,
}

/// Metadata delivered along with a received payload.
#[derive(Clone, Copy, Debug)]
pub struct MsgInfo {
    /// World rank of the sender.
    pub src: usize,
    /// The message's wire tag.
    pub tag: Tag,
    /// Modelled wire size in bytes.
    pub bytes: u64,
}

/// An ordered set of world ranks — the backend's communicator type.
///
/// Mirrors what MPI lets a library know about a group: the member list in
/// group-rank order, plus membership queries. A group obtained from
/// [`Transport::split`] is *addressable* (usable for collectives on the
/// backend that made it); [`Group::meta`] builds a metadata-only view of
/// ranks this process is **not** a member of — pure rank-list bookkeeping,
/// never a collective target.
pub trait Group: Clone {
    /// Member world ranks in group-rank order.
    fn ranks(&self) -> &[usize];

    /// Group rank of world rank `w`, if a member.
    fn rank_of(&self, w: usize) -> Option<usize>;

    /// Metadata-only group from a rank list (see the trait docs).
    fn meta(ranks: Vec<usize>) -> Self;

    /// Number of members.
    fn size(&self) -> usize {
        self.ranks().len()
    }

    /// Whether world rank `w` is a member.
    fn contains(&self, w: usize) -> bool {
        self.rank_of(w).is_some()
    }
}

/// A message-passing substrate the stream runtime can execute on.
///
/// One value of a `Transport` impl is one *process* (an MPI rank): it
/// knows its world rank, can exchange tagged point-to-point messages with
/// peers, and can take part in the small collective subset channel setup
/// needs (allgather, broadcast, barrier, allreduce, split).
///
/// ## Contract
///
/// - **Injection, not delivery.** [`Transport::send`] blocks only until
///   the message is handed to the substrate (sender-side overhead); it
///   never waits for the receiver. This is `MPI_Isend` + wait-for-buffer,
///   the call pattern the stream layer is built on.
/// - **FCFS wildcard matching.** A [`Src::Any`] receive takes the first
///   message *available* at the receiver among those matching the tag;
///   ties and ordering across sources are backend-defined (virtual arrival
///   time in the simulator, lock-acquisition order natively). Per
///   `(source, tag)` pair, message order is preserved (non-overtaking).
/// - **Monotone clock.** [`Transport::now`] never goes backwards. The
///   unit is nanoseconds; whether they are virtual or wall-clock is the
///   backend's business, and deadline receives interpret deadlines on the
///   same clock.
/// - **Collective call order.** As in MPI, every member of a group must
///   invoke the same collectives in the same order.
///
/// What the trait does **not** promise: determinism (that is a property of
/// the simulator backend, not of the abstraction), fault injection, or a
/// performance model. Code that needs those names the backend explicitly.
pub trait Transport {
    /// The backend's communicator type.
    type Group: Group;

    // ---------------------------------------------------------------
    // Identity and time
    // ---------------------------------------------------------------

    /// This process's world rank.
    fn world_rank(&self) -> usize;

    /// Total number of processes.
    fn world_size(&self) -> usize;

    /// The group of all processes (MPI_COMM_WORLD).
    fn world_group(&self) -> Self::Group;

    /// Current time on the backend's clock (virtual or wall nanoseconds).
    fn now(&self) -> SimTime;

    /// Model `secs` seconds of computation (advances the virtual clock in
    /// the simulator; burns or sleeps real time natively).
    fn compute(&mut self, secs: f64);

    // ---------------------------------------------------------------
    // Point-to-point
    // ---------------------------------------------------------------

    /// Send `value` to world rank `dst` under `tag`, with a modelled wire
    /// size of `bytes`. Returns once injected (see the trait docs).
    ///
    /// Every payload carries the [`Wire`] bound so it is representable as
    /// a length-prefixed `Tag` + bytes frame. In-memory backends bypass
    /// the codec and move the value zero-copy; process-separated backends
    /// (the `socket` crate) encode here and decode at the receiver.
    fn send<T: Wire + Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: T);

    /// Blockingly receive the first available message matching
    /// `(src, tag)`.
    fn recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo);

    /// Receive a matching message if one is already available; never
    /// blocks.
    fn try_recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(T, MsgInfo)>;

    /// Blockingly receive, giving up at `deadline` (on the backend's
    /// clock). `None` means the deadline passed with nothing deliverable.
    fn recv_deadline<T: Wire + Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)>;

    /// Metadata of the first available matching message, without
    /// consuming it; never blocks.
    fn probe(&mut self, src: Src, tag: Tag) -> Option<MsgInfo>;

    /// Suspend until this process's mailbox changes — a new message
    /// arrives or an in-flight one becomes available. May wake
    /// spuriously; callers re-check their condition. The building block
    /// for multiplexing over several message sources (see `operate2`).
    fn wait_for_mail(&mut self);

    // ---------------------------------------------------------------
    // Collective subset (channel setup + app-side reductions)
    // ---------------------------------------------------------------

    /// Synchronize all members of `group`.
    fn barrier(&mut self, group: &Self::Group);

    /// All-reduce `value` over `group` with `op` (must be associative and
    /// commutative; combine order is backend-defined).
    fn allreduce<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &Self::Group,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> T;

    /// Gather every member's `value`; all members receive the vector in
    /// group-rank order.
    fn allgatherv<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &Self::Group,
        bytes: u64,
        value: T,
    ) -> Vec<T>;

    /// Broadcast from group rank `root` (which passes `Some`, everyone
    /// else `None`).
    fn bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &Self::Group,
        root: usize,
        bytes: u64,
        value: Option<T>,
    ) -> T;

    /// Collective split of `group` (MPI_Comm_split): members with the
    /// same `color` form a new group ordered by `(key, world_rank)`;
    /// `color = None` yields `None` (MPI_UNDEFINED).
    fn split(&mut self, group: &Self::Group, color: Option<i64>, key: i64) -> Option<Self::Group>;

    /// Allocate a world-unique 16-bit id (stream channels build their tag
    /// namespace from it). Not collective — callers that need agreement
    /// allocate on one rank and broadcast.
    fn alloc_channel_id(&mut self) -> u16;

    // ---------------------------------------------------------------
    // Sanitizer hooks (no-ops unless the backend carries a checker)
    // ---------------------------------------------------------------

    /// Report a stream channel's flow-control parameters to the backend's
    /// sanitizer, if any.
    fn check_register_channel(&mut self, _id: u16, _window: Option<u64>, _credit_tag: Tag) {}

    /// Report `elems` stream elements sent towards `_consumer`.
    fn check_data_sent(&mut self, _id: u16, _consumer: usize, _elems: u64) {}

    /// Report `elems` elements' worth of credit granted to `_producer`.
    fn check_credit_issued(&mut self, _id: u16, _producer: usize, _elems: u64) {}

    // ---------------------------------------------------------------
    // Profiling hooks (no-ops unless the backend carries a profiler,
    // e.g. `streamprof::Profiled`)
    // ---------------------------------------------------------------

    /// Open a named application span (closed by [`Transport::prof_end`]).
    fn prof_begin(&mut self, _cat: &'static str) {}

    /// Close the innermost open span named `cat`.
    fn prof_end(&mut self, _cat: &'static str) {}

    /// Report `elems`/`bytes` of stream payload sent on `channel`.
    fn prof_stream_send(&mut self, _channel: u16, _elems: u64, _bytes: u64) {}

    /// Report `elems`/`bytes` of stream payload received on `channel`.
    fn prof_stream_recv(&mut self, _channel: u16, _elems: u64, _bytes: u64) {}

    /// Sample the credit window right after a send: `outstanding` of
    /// `window` elements currently un-acknowledged towards one consumer.
    fn prof_credit_occupancy(&mut self, _channel: u16, _outstanding: u64, _window: u64) {}

    /// Report one committed replication round on `channel`: a checkpoint
    /// of `bytes` reached quorum `latency_ns` after its prepare was sent
    /// (`crates/replica`; virtual nanoseconds on sim, wall clock on
    /// native).
    fn prof_repl_commit(&mut self, _channel: u16, _bytes: u64, _latency_ns: u64) {}
}

/// Run `f` under a named profiling span: `prof_begin(cat)` / `prof_end(cat)`
/// around the call. Free on unprofiled backends (the hooks are no-ops);
/// under a profiler the span lands on this rank's timeline.
pub fn prof_scoped<TP: Transport, R>(
    rank: &mut TP,
    cat: &'static str,
    f: impl FnOnce(&mut TP) -> R,
) -> R {
    rank.prof_begin(cat);
    let r = f(rank);
    rank.prof_end(cat);
    r
}

#[cfg(test)]
mod tests {
    use super::Tag;

    #[test]
    fn tag_layout_separates_user_and_internal_space() {
        assert_eq!(Tag::user(7).0, 7);
        let t = Tag::internal(2, 0x0102, 1);
        assert_eq!(t.0 >> 63, 1);
        assert_eq!((t.0 >> 48) & 0xFF, 2);
        assert_eq!((t.0 >> 32) & 0xFFFF, 0x0102);
        assert_eq!(t.0 & 0xFFFF_FFFF, 1);
        assert_ne!(Tag::user(u32::MAX).0 >> 63, 1);
    }
}

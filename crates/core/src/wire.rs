//! The wire-format boundary: a fixed little-endian codec every
//! [`Transport`](crate::Transport) payload must satisfy.
//!
//! Every value the stream runtime moves between ranks — stream batches,
//! credits, collective partials, channel-setup metadata — is representable
//! as a length-prefixed `Tag` + bytes frame. In-memory backends (the
//! simulator, native threads) never *call* the codec: they keep their
//! zero-copy `Box<dyn Any>` fast path and the bound is purely a
//! compile-time guarantee that the same program could cross a process
//! boundary. The `socket` backend is where the codec actually runs: it
//! encodes on `send` and decodes on `recv`, so the payload's memory
//! representation never leaks onto the wire.
//!
//! ## Encoding rules (DESIGN.md §16)
//!
//! - All integers are **little-endian, fixed width**. `usize`/`isize`
//!   travel as 8 bytes regardless of the host (and decode checks range),
//!   so a 32-bit peer cannot silently truncate.
//! - `bool` is one byte, `0` or `1`; anything else is malformed.
//! - `f32`/`f64` are their IEEE-754 bit patterns, little-endian.
//! - `Vec<T>` and `String` are a `u64` element count followed by the
//!   elements (UTF-8 bytes for `String`, validated on decode).
//! - `Option<T>` is a presence byte (`0`/`1`) followed by the value.
//! - Tuples and arrays are their fields in order, no framing.
//! - Structs/enums composed via [`wire_struct!`]/manual impls follow the
//!   same field-in-order rule; enums lead with a `u8` discriminant.
//!
//! Decoding is **total**: malformed input — truncated buffers, oversized
//! length prefixes, invalid presence bytes, trailing garbage — returns a
//! typed [`WireError`], never panics and never allocates proportionally
//! to an attacker-controlled length prefix (see [`MAX_WIRE_ELEMS`]).

/// Hard cap on one encoded frame, enforced by the framed backends before
/// any allocation: a length prefix above this is rejected as
/// [`WireError::FrameTooLarge`] instead of trusted.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Hard cap on a single collection's element count prefix. Decoders
/// reject larger prefixes up front so a corrupt 8-byte length cannot
/// drive a multi-gigabyte allocation before the truncation is noticed.
pub const MAX_WIRE_ELEMS: u64 = 1 << 27;

/// Why a decode failed. Every variant is a malformed-input condition a
/// remote peer could produce; none of them may panic the receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated { needed: usize, remaining: usize },
    /// A collection's length prefix exceeds [`MAX_WIRE_ELEMS`].
    LengthOverflow { len: u64 },
    /// A frame (or a frame's declared length) exceeds
    /// [`MAX_FRAME_BYTES`].
    FrameTooLarge { len: u64 },
    /// A fixed-width integer decoded outside the target type's range
    /// (e.g. a `usize` field above this host's pointer width).
    IntOutOfRange,
    /// A byte with a closed set of legal values (bool, presence byte,
    /// enum discriminant) held something else.
    BadDiscriminant { got: u8 },
    /// A `String`'s bytes were not valid UTF-8.
    InvalidUtf8,
    /// The value decoded cleanly but bytes were left over — a frame must
    /// contain exactly one value.
    TrailingBytes { remaining: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated frame: needed {needed} more bytes, {remaining} remaining")
            }
            WireError::LengthOverflow { len } => {
                write!(f, "length prefix {len} exceeds the element cap {MAX_WIRE_ELEMS}")
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the cap {MAX_FRAME_BYTES}")
            }
            WireError::IntOutOfRange => write!(f, "integer out of range for the target type"),
            WireError::BadDiscriminant { got } => {
                write!(f, "invalid discriminant byte {got:#04x}")
            }
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A payload type with a defined wire representation.
///
/// The bound every [`Transport`](crate::Transport) payload carries:
/// in-memory backends never invoke it, the socket backend calls
/// [`Wire::encode`] at `send` and [`Wire::decode`] at `recv`.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `input`, advancing it past the
    /// consumed bytes. Must never panic on malformed input.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh frame body.
    fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a frame that must contain exactly one value.
    fn from_frame(mut bytes: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut bytes)?;
        if bytes.is_empty() {
            Ok(v)
        } else {
            Err(WireError::TrailingBytes { remaining: bytes.len() })
        }
    }
}

/// Split `n` bytes off the front of `input`, or report the truncation.
#[inline]
pub fn take_bytes<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::Truncated { needed: n - input.len(), remaining: input.len() });
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// Decode a collection length prefix, enforcing [`MAX_WIRE_ELEMS`].
#[inline]
fn take_len(input: &mut &[u8]) -> Result<usize, WireError> {
    let len = u64::decode(input)?;
    if len > MAX_WIRE_ELEMS {
        return Err(WireError::LengthOverflow { len });
    }
    Ok(len as usize)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                const N: usize = std::mem::size_of::<$t>();
                let b = take_bytes(input, N)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("exact slice")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

// `usize`/`isize` travel as fixed 8-byte integers so the format does not
// depend on the host's pointer width; decode checks the range.
impl Wire for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        usize::try_from(u64::decode(input)?).map_err(|_| WireError::IntOutOfRange)
    }
}

impl Wire for isize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as i64).encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        isize::try_from(i64::decode(input)?).map_err(|_| WireError::IntOutOfRange)
    }
}

impl Wire for f64 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Wire for f32 {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::decode(input)?))
    }
}

impl Wire for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            got => Err(WireError::BadDiscriminant { got }),
        }
    }
}

impl Wire for () {
    #[inline]
    fn encode(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn decode(_input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = take_len(input)?;
        // Pre-size by what the buffer can possibly hold, not by the
        // untrusted prefix: a corrupt length fails on the first missing
        // element instead of reserving gigabytes first.
        let mut v = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            v.push(T::decode(input)?);
        }
        Ok(v)
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = take_len(input)?;
        let bytes = take_bytes(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            got => Err(WireError::BadDiscriminant { got }),
        }
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::decode(input)?);
        }
        Ok(v.try_into().unwrap_or_else(|_| unreachable!("exactly N elements decoded")))
    }
}

macro_rules! impl_wire_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    )+};
}

impl_wire_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Derive-free [`Wire`] impl for a plain struct: fields encode in the
/// order listed, decode in the same order.
///
/// ```
/// # use mpistream::wire::{Wire, WireError};
/// struct Update { rank: usize, work: u64 }
/// mpistream::wire_struct!(Update { rank, work });
/// let bytes = Update { rank: 3, work: 9 }.to_frame();
/// let back = Update::from_frame(&bytes).unwrap();
/// assert_eq!((back.rank, back.work), (3, 9));
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $( $crate::wire::Wire::encode(&self.$field, out); )+
            }
            fn decode(
                input: &mut &[u8],
            ) -> Result<Self, $crate::wire::WireError> {
                Ok(Self { $( $field: $crate::wire::Wire::decode(input)? ),+ })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_frame();
        assert_eq!(T::from_frame(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip_little_endian() {
        roundtrip(0x0123_4567_89AB_CDEFu64);
        assert_eq!(0x0102u16.to_frame(), vec![0x02, 0x01]);
        roundtrip(-5i64);
        roundtrip(usize::MAX);
        roundtrip(isize::MIN);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo"));
        roundtrip(Some(vec![1u32, 2, 3]));
        roundtrip(Option::<u8>::None);
        roundtrip([1.0f64, -2.0, 3.25]);
        roundtrip((1u32, -2i64, vec![(3usize, 4u8)]));
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut bytes = 7u64.to_frame();
        bytes.pop();
        assert!(matches!(u64::from_frame(&bytes), Err(WireError::Truncated { .. })));
        // A Vec whose length prefix claims more than the buffer holds.
        let mut v = vec![1u8, 2, 3].to_frame();
        v.truncate(9); // 8-byte length + 1 element
        assert!(matches!(Vec::<u8>::from_frame(&v), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let huge = (MAX_WIRE_ELEMS + 1).to_frame();
        assert!(matches!(Vec::<u8>::from_frame(&huge), Err(WireError::LengthOverflow { .. })));
        // A Vec<()> with a huge-but-capped length must still fail (the
        // elements are zero-sized, so only the cap stops the loop).
        assert!(Vec::<()>::from_frame(&u64::MAX.to_frame()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u32.to_frame();
        bytes.push(0);
        assert_eq!(u32::from_frame(&bytes), Err(WireError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn bad_discriminants_are_rejected() {
        assert_eq!(bool::from_frame(&[2]), Err(WireError::BadDiscriminant { got: 2 }));
        assert_eq!(Option::<u8>::from_frame(&[9]), Err(WireError::BadDiscriminant { got: 9 }));
        assert_eq!(
            String::from_frame(&[1, 0, 0, 0, 0, 0, 0, 0, 0xFF]),
            Err(WireError::InvalidUtf8)
        );
    }
}

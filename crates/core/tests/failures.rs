//! Failure detection and recovery at the stream layer: consumers that
//! complete `operate_outcome` with reported loss instead of hanging when a
//! producer dies, and producers that re-route around a dead consumer.

use std::sync::Arc;

use mpisim::{FaultPlan, MachineConfig, SimDuration, SimTime, World};
use mpistream::{ChannelConfig, ProducerState, Role, RoutePolicy, Stream, StreamChannel};
use parking_lot::Mutex;

fn ideal() -> World {
    World::new(MachineConfig::ideal())
}

/// The headline recovery scenario: one of two producers is killed
/// mid-stream. The consumer must not hang on the `Term` that will never
/// arrive — it completes `operate_outcome` and reports the dead producer
/// with partial delivery, while the surviving producer's flow is complete.
#[test]
fn consumer_completes_with_reported_loss_after_producer_kill() {
    // Rank 1 dies at 250us, roughly halfway through its 500us send loop.
    let world = ideal().with_fault_plan(FaultPlan::new(7).kill(1, SimTime(250_000)));
    let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let g = got.clone();
    let outcome_slot = Arc::new(Mutex::new(None));
    let o = outcome_slot.clone();
    let out = world.run_expect(3, move |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() < 2 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig {
                element_bytes: 256,
                failure_timeout: Some(SimDuration::from_millis(2)),
                replicas: 0,
                replication_patience: None,
                ..ChannelConfig::default()
            },
        );
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                let me = rank.world_rank() as u64;
                for i in 0..100u64 {
                    rank.compute_exact(5e-6);
                    stream.isend(rank, me << 32 | i);
                }
                stream.terminate(rank);
            }
            Role::Consumer => {
                let g = g.clone();
                let outcome = stream.operate_outcome(rank, move |_, v| g.lock().push(v));
                *o.lock() = Some(outcome);
            }
            Role::Bystander => unreachable!(),
        }
    });
    assert_eq!(out.sim.killed, vec![1]);
    let outcome = outcome_slot.lock().take().expect("consumer finished");
    assert!(!outcome.complete());
    assert_eq!(outcome.dead(), vec![1]);
    let r0 = outcome.producers[0];
    assert_eq!(r0.rank, 0);
    assert_eq!(r0.state, ProducerState::Terminated);
    assert_eq!(r0.claimed, Some(100));
    assert_eq!(r0.delivered, 100);
    assert_eq!(r0.lost(), 0);
    let r1 = outcome.producers[1];
    assert_eq!(r1.rank, 1);
    assert_eq!(r1.state, ProducerState::Dead);
    assert_eq!(r1.claimed, None, "a dead producer never got to claim a total");
    assert!(
        r1.delivered > 0 && r1.delivered < 100,
        "rank 1 died mid-stream, delivered {}",
        r1.delivered
    );
    assert_eq!(outcome.processed, 100 + r1.delivered);
    assert_eq!(got.lock().len() as u64, outcome.processed);
}

/// Producer-side recovery: under RoundRobin, a producer whose credit
/// window on a killed consumer stays exhausted past the failure timeout
/// declares it dead and re-routes everything else to the surviving
/// consumer. Nothing is abandoned (`stats.lost == 0`) and the survivor's
/// accounting is exact.
#[test]
fn round_robin_producer_reroutes_around_dead_consumer() {
    // Rank 1 (consumer index 0) dies at 100us.
    let world = ideal().with_fault_plan(FaultPlan::new(3).kill(1, SimTime(100_000)));
    let outcome_slot = Arc::new(Mutex::new(None));
    let o = outcome_slot.clone();
    let stats_slot = Arc::new(Mutex::new(None));
    let s = stats_slot.clone();
    let out = world.run_expect(3, move |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() == 0 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig {
                element_bytes: 256,
                credits: Some(4),
                route: RoutePolicy::RoundRobin,
                failure_timeout: Some(SimDuration::from_millis(2)),
                replicas: 0,
                replication_patience: None,
                ..ChannelConfig::default()
            },
        );
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..200u64 {
                    rank.compute_exact(2e-6);
                    stream.isend(rank, i);
                }
                stream.terminate(rank);
                *s.lock() = Some(stream.stats());
            }
            Role::Consumer => {
                let outcome = stream.operate_outcome(rank, |_, _| {});
                if rank.world_rank() == 2 {
                    *o.lock() = Some(outcome);
                }
            }
            Role::Bystander => unreachable!(),
        }
    });
    assert_eq!(out.sim.killed, vec![1]);
    let stats = stats_slot.lock().take().expect("producer finished");
    assert_eq!(stats.lost, 0, "RoundRobin re-routes instead of dropping");
    let outcome = outcome_slot.lock().take().expect("surviving consumer finished");
    // The survivor's view of rank 0 is clean: it terminated, and every
    // element claimed for this consumer arrived.
    assert!(outcome.complete());
    let r0 = outcome.producers[0];
    assert_eq!(r0.claimed, Some(r0.delivered));
    // Pre-kill the survivor got about half of the first ~50 elements; all
    // of the post-detection traffic lands here, so well over half of the
    // 200 total must have arrived.
    assert!(
        outcome.processed > 120,
        "expected the bulk of 200 elements after re-route, got {}",
        outcome.processed
    );
    // What was not delivered here went to the dead consumer before the
    // verdict — bounded by the pre-kill share plus the credit window.
    assert!(outcome.processed < 200);
}

/// Under Static routing elements are pinned to their consumer: when it
/// dies they cannot be re-routed, so the producer drops them and counts
/// the loss, and the other consumer sees a clean zero-element flow.
#[test]
fn static_producer_drops_and_counts_elements_for_dead_consumer() {
    // Rank 1 (consumer index 0, the Static target of producer 0) dies.
    let world = ideal().with_fault_plan(FaultPlan::new(9).kill(1, SimTime(100_000)));
    let stats_slot = Arc::new(Mutex::new(None));
    let s = stats_slot.clone();
    let other_slot = Arc::new(Mutex::new(None));
    let o = other_slot.clone();
    world.run_expect(3, move |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() == 0 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig {
                element_bytes: 256,
                credits: Some(4),
                route: RoutePolicy::Static,
                failure_timeout: Some(SimDuration::from_millis(2)),
                replicas: 0,
                replication_patience: None,
                ..ChannelConfig::default()
            },
        );
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..200u64 {
                    rank.compute_exact(2e-6);
                    stream.isend(rank, i);
                }
                stream.terminate(rank);
                *s.lock() = Some(stream.stats());
            }
            Role::Consumer => {
                let outcome = stream.operate_outcome(rank, |_, _| {});
                if rank.world_rank() == 2 {
                    *o.lock() = Some(outcome);
                }
            }
            Role::Bystander => unreachable!(),
        }
    });
    let stats = stats_slot.lock().take().expect("producer finished");
    assert!(stats.lost > 0, "pinned elements for a dead consumer are lost");
    assert_eq!(stats.elements + stats.lost, 200, "every element sent or counted lost");
    // The unrelated consumer is untouched: the producer terminates with a
    // zero claim towards it.
    let other = other_slot.lock().take().expect("other consumer finished");
    assert!(other.complete());
    assert_eq!(other.processed, 0);
    assert_eq!(other.producers[0].claimed, Some(0));
}

/// Without faults, `operate_outcome` is `operate` plus reporting: all
/// producers terminate cleanly and the accounting is exact, even with a
/// failure timeout armed.
#[test]
fn fault_free_outcome_reports_clean_completion() {
    let world = ideal();
    let outcome_slot = Arc::new(Mutex::new(None));
    let o = outcome_slot.clone();
    world.run_expect(3, move |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() < 2 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig {
                element_bytes: 128,
                aggregation: 4,
                credits: Some(16),
                failure_timeout: Some(SimDuration::from_millis(1)),
                replicas: 0,
                replication_patience: None,
                ..ChannelConfig::default()
            },
        );
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..50u64 {
                    rank.compute_exact(5e-6);
                    stream.isend(rank, i);
                }
                stream.terminate(rank);
            }
            Role::Consumer => {
                let outcome = stream.operate_outcome(rank, |_, _| {});
                *o.lock() = Some(outcome);
            }
            Role::Bystander => unreachable!(),
        }
    });
    let outcome = outcome_slot.lock().take().expect("consumer finished");
    assert!(outcome.complete());
    assert_eq!(outcome.processed, 100);
    assert_eq!(outcome.dead(), Vec::<usize>::new());
    assert_eq!(outcome.lost(), 0);
    for (i, r) in outcome.producers.iter().enumerate() {
        assert_eq!(r.rank, i);
        assert_eq!(r.state, ProducerState::Terminated);
        assert_eq!(r.claimed, Some(50));
        assert_eq!(r.delivered, 50);
    }
}

/// A producer killed *before it sends anything* still ends as a clean
/// `Dead` verdict with zero delivery — the consumer's initial grace period
/// starts at attach time, not at first contact.
#[test]
fn producer_killed_before_first_send_reports_zero_delivery() {
    let world = ideal().with_fault_plan(FaultPlan::new(1).kill(0, SimTime(10_000)));
    let outcome_slot = Arc::new(Mutex::new(None));
    let o = outcome_slot.clone();
    world.run_expect(3, move |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() < 2 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig {
                element_bytes: 128,
                failure_timeout: Some(SimDuration::from_millis(1)),
                replicas: 0,
                replication_patience: None,
                ..ChannelConfig::default()
            },
        );
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                // Rank 0 stalls past its own death; rank 1 streams fine.
                if rank.world_rank() == 0 {
                    rank.compute_exact(1e-3);
                }
                for i in 0..20u64 {
                    rank.compute_exact(5e-6);
                    stream.isend(rank, i);
                }
                stream.terminate(rank);
            }
            Role::Consumer => {
                let outcome = stream.operate_outcome(rank, |_, _| {});
                *o.lock() = Some(outcome);
            }
            Role::Bystander => unreachable!(),
        }
    });
    let outcome = outcome_slot.lock().take().expect("consumer finished");
    assert_eq!(outcome.dead(), vec![0]);
    assert_eq!(outcome.producers[0].delivered, 0);
    assert_eq!(outcome.producers[0].claimed, None);
    assert_eq!(outcome.producers[1].delivered, 20);
    assert_eq!(outcome.processed, 20);
}

//! Sim-backed integration tests of the tree-aggregation operators:
//! combiners in front of a decoupled channel and full reduction trees
//! over the simulated machine.

use std::sync::Arc;

use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{
    plan_tree, run_decoupled, tree_reduce, ChannelConfig, Combiner, CombinerStats, GroupSpec,
    Transport,
};
use parking_lot::Mutex;

fn quiet() -> World {
    World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
}

#[test]
fn combiner_amortizes_messages_and_preserves_sums() {
    // 3 producers push 40 elements each through a combiner that flushes
    // every 8: the consumer must see 3 x 5 pre-reduced elements carrying
    // the exact total.
    let got = Arc::new(Mutex::new(Vec::<u64>::new()));
    let g2 = got.clone();
    quiet().run_expect(4, move |rank| {
        let comm = rank.comm_world();
        let g3 = g2.clone();
        run_decoupled::<u64, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 4 },
            ChannelConfig::default(),
            |rank, p| {
                let mut comb = Combiner::new(p.stream, 8);
                for i in 1..=40u64 {
                    comb.push(rank, p.stream, 0, i, |acc, e| *acc += e);
                }
                let stats = comb.finish(rank, p.stream);
                assert_eq!(stats, CombinerStats { folded: 40, emitted: 5 });
                assert_eq!(stats.fold_factor(), 8.0);
            },
            move |rank, c| {
                c.stream.operate(rank, |_, e| g3.lock().push(e));
            },
        );
    });
    let got = got.lock();
    assert_eq!(got.len(), 15);
    assert_eq!(got.iter().sum::<u64>(), 3 * (40 * 41 / 2));
}

#[test]
fn combiner_partial_slots_flush_on_finish() {
    // 37 elements at flush_every 8 leaves a 5-element remainder that
    // finish() must still deliver.
    let got = Arc::new(Mutex::new(Vec::<u64>::new()));
    let g2 = got.clone();
    quiet().run_expect(2, move |rank| {
        let comm = rank.comm_world();
        let g3 = g2.clone();
        run_decoupled::<u64, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 2 },
            ChannelConfig::default(),
            |rank, p| {
                let mut comb = Combiner::new(p.stream, 8);
                for i in 1..=37u64 {
                    comb.push(rank, p.stream, 0, i, |acc, e| *acc += e);
                }
                let stats = comb.finish(rank, p.stream);
                assert_eq!(stats, CombinerStats { folded: 37, emitted: 5 });
            },
            move |rank, c| {
                c.stream.operate(rank, |_, e| g3.lock().push(e));
            },
        );
    });
    let got = got.lock();
    assert_eq!(got.len(), 5);
    assert_eq!(got.iter().sum::<u64>(), 37 * 38 / 2);
}

#[test]
fn combiner_keyed_routing_keeps_slots_separate() {
    // Two consumers; producers bucket odd/even keys to different slots.
    // Each consumer's merged elements must carry only its own keys.
    let got = Arc::new(Mutex::new(Vec::<(usize, u64)>::new()));
    let g2 = got.clone();
    quiet().run_expect(6, move |rank| {
        let comm = rank.comm_world();
        let g3 = g2.clone();
        run_decoupled::<u64, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 3 },
            ChannelConfig::default(),
            |rank, p| {
                let mut comb = Combiner::new(p.stream, 4);
                for i in 0..16u64 {
                    let slot = (i % 2) as usize;
                    // Keep parity visible in the merged value: sums of
                    // same-parity values stay in that parity class only
                    // if we track counts, so encode parity in low bit.
                    comb.push(rank, p.stream, slot, i, |acc, e| *acc += e & !1);
                }
                let stats = comb.finish(rank, p.stream);
                assert_eq!(stats, CombinerStats { folded: 16, emitted: 4 });
            },
            move |rank, c| {
                let me = rank.world_rank();
                let g4 = g3.clone();
                c.stream.operate(rank, move |_, e| g4.lock().push((me, e)));
            },
        );
    });
    let got = got.lock();
    // 4 producers (ranks 0,1,3,4) x 2 slots x 2 flushes.
    assert_eq!(got.len(), 16);
    // Static routing maps slot i -> consumer i: the odd slot's merged
    // elements keep the low bit set, the even slot's never do.
    let consumers: Vec<usize> = {
        let mut c: Vec<usize> = got.iter().map(|&(m, _)| m).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    assert_eq!(consumers.len(), 2);
    for &(me, e) in got.iter() {
        let slot = if me == consumers[0] { 0 } else { 1 };
        assert_eq!((e & 1) as usize, slot, "merged element crossed consumer slots");
    }
}

#[test]
fn tree_reduce_sums_to_the_root_at_various_shapes() {
    for (n, k) in [(2usize, 2usize), (5, 2), (8, 4), (16, 4), (27, 3), (64, 8)] {
        let roots = Arc::new(Mutex::new(Vec::<(usize, u64)>::new()));
        let r2 = roots.clone();
        quiet().run_expect(n, move |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank();
            let leaves: Vec<usize> = (0..rank.world_size()).collect();
            let got = tree_reduce(
                rank,
                &comm,
                &leaves,
                k,
                &ChannelConfig::default(),
                Some(me as u64 + 1),
                |_, acc, e| *acc += e,
            );
            if let Some(sum) = got {
                r2.lock().push((me, sum));
            }
        });
        let roots = roots.lock();
        assert_eq!(roots.len(), 1, "exactly one root at n={n} k={k}");
        let (root, sum) = roots[0];
        assert_eq!(root, 0);
        assert_eq!(sum, (n as u64) * (n as u64 + 1) / 2, "n={n} k={k}");
    }
}

#[test]
fn tree_reduce_over_sparse_leaves_with_bystanders() {
    // Only odd ranks contribute; even ranks flow through the collective
    // splits with no endpoints and must get None back.
    let results = Arc::new(Mutex::new(Vec::<(usize, Option<u64>)>::new()));
    let r2 = results.clone();
    quiet().run_expect(12, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let leaves: Vec<usize> = (0..12).filter(|r| r % 2 == 1).collect();
        let partial = leaves.contains(&me).then_some(1u64 << me);
        let got = tree_reduce(
            rank,
            &comm,
            &leaves,
            3,
            &ChannelConfig::default(),
            partial,
            |_, acc, e| *acc |= e,
        );
        r2.lock().push((me, got));
    });
    let results = results.lock();
    for &(me, got) in results.iter() {
        if me == 1 {
            // Root = first leaf; OR of one-hot partials proves every leaf
            // contributed exactly once.
            assert_eq!(got, Some(0b1010_1010_1010));
        } else {
            assert_eq!(got, None, "rank {me} must not hold a result");
        }
    }
}

#[test]
fn tree_merge_order_is_deterministic_for_noncommutative_folds() {
    // Concatenating merge: the result depends on arrival order, which the
    // per-block FCFS drain makes deterministic in the quiet simulator.
    // Two identical runs must agree.
    let run = || {
        let out = Arc::new(Mutex::new(Vec::<Vec<usize>>::new()));
        let o2 = out.clone();
        quiet().run_expect(9, move |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank();
            let leaves: Vec<usize> = (0..9).collect();
            let got = tree_reduce(
                rank,
                &comm,
                &leaves,
                3,
                &ChannelConfig::default(),
                Some(vec![me]),
                |_, acc, mut e| acc.append(&mut e),
            );
            if let Some(v) = got {
                o2.lock().push(v);
            }
        });
        let out = out.lock();
        assert_eq!(out.len(), 1);
        out[0].clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "tree merge order must be deterministic");
    let mut sorted = a.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "every leaf exactly once");
}

#[test]
fn merge_can_charge_modelled_compute() {
    // The merge closure receives the transport, so applications can bill
    // virtual seconds per merge; the root's clock must reflect them.
    let elapsed = Arc::new(Mutex::new(0.0f64));
    let e2 = elapsed.clone();
    quiet().run_expect(8, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let leaves: Vec<usize> = (0..8).collect();
        let got = tree_reduce(
            rank,
            &comm,
            &leaves,
            2,
            &ChannelConfig::default(),
            Some(1u64),
            |rank, acc, e| {
                rank.compute(1e-3);
                *acc += e;
            },
        );
        if got.is_some() {
            assert_eq!(me, 0);
            *e2.lock() = Transport::now(rank).as_secs_f64();
        }
    });
    // Root merges once per stage (fan-in 2, depth 3): at least 3 ms of
    // modelled merge time must have accrued on its critical path.
    assert!(*elapsed.lock() >= 3e-3, "merge compute not billed: {}", *elapsed.lock());
}

#[test]
fn plan_message_count_matches_observed_stream_traffic() {
    // data_messages() is the analytic count bench gates rely on: check it
    // against an actual run by counting merges at receivers (every data
    // message is either merged into an accumulator or seeds an empty
    // one; seeds only happen at non-leaf ranks, which don't exist here —
    // all receivers enter with their own partial).
    let merges = Arc::new(Mutex::new(0u64));
    let m2 = merges.clone();
    quiet().run_expect(13, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let leaves: Vec<usize> = (0..13).collect();
        let m3 = m2.clone();
        tree_reduce(
            rank,
            &comm,
            &leaves,
            4,
            &ChannelConfig::default(),
            Some(me as u64),
            move |_, acc, e| {
                *m3.lock() += 1;
                *acc += e;
            },
        );
    });
    let plan = plan_tree(&(0..13).collect::<Vec<_>>(), 4);
    assert_eq!(*merges.lock(), plan.data_messages());
    assert_eq!(plan.data_messages(), 12);
}

//! Property-based tests of the stream library: conservation, termination
//! and routing invariants under randomized configurations.

use std::sync::Arc;

use mpisim::{FaultPlan, MachineConfig, SimDuration, World};
use mpistream::{ChannelConfig, GroupSpec, Role, RoutePolicy, Stream, StreamChannel, StreamStats};
use parking_lot::Mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Every element injected by any producer is processed exactly once,
    /// across random world sizes, group fractions, aggregation factors,
    /// credit windows and routing policies.
    #[test]
    fn streams_conserve_elements(
        every in 2usize..6,
        blocks in 1usize..4,       // world = every * blocks
        per_producer in prop::collection::vec(0usize..40, 1..24),
        aggregation in 1usize..9,
        credits_raw in 0usize..4,  // 0 = unbounded, else 16*credits
        round_robin in any::<bool>(),
    ) {
        let nprocs = every * blocks;
        let credits = if credits_raw == 0 { None } else { Some(credits_raw * 16) };
        let route = if round_robin { RoutePolicy::RoundRobin } else { RoutePolicy::Static };
        // Element counts per producer (cycled if fewer entries given).
        let counts = Arc::new(per_producer);
        let received: Arc<Mutex<Vec<(usize, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let sent_total = Arc::new(Mutex::new(0u64));

        let (rcv, snt, cnt) = (received.clone(), sent_total.clone(), counts.clone());
        let world = World::new(MachineConfig::default()).with_seed(42);
        world.run_expect(nprocs, move |rank| {
            let comm = rank.comm_world();
            let spec = GroupSpec { every };
            let role = spec.role_of(rank.world_rank());
            let ch = StreamChannel::create(
                rank,
                &comm,
                role,
                ChannelConfig {
                    element_bytes: 1 << 10,
                    aggregation,
                    credits,
                    route,
                    credit_batch: 1,
                    failure_timeout: None,
                    replicas: 0,
                    replication_patience: None,
                },
            );
            let mut stream: Stream<(usize, u32)> = Stream::attach(ch);
            match role {
                Role::Producer => {
                    let me = rank.world_rank();
                    let n = cnt[me % cnt.len()];
                    for i in 0..n {
                        stream.isend(rank, (me, i as u32));
                    }
                    stream.terminate(rank);
                    *snt.lock() += n as u64;
                }
                Role::Consumer => {
                    stream.operate(rank, |_, e| rcv.lock().push(e));
                }
                Role::Bystander => unreachable!(),
            }
        });

        let got = received.lock();
        prop_assert_eq!(got.len() as u64, *sent_total.lock());
        // No duplicates.
        let mut dedup: Vec<(usize, u32)> = got.clone();
        dedup.sort_unstable();
        let before = dedup.len();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), before, "duplicate delivery detected");
    }

    /// Keyed routing sends equal keys to the same consumer regardless of
    /// how producers interleave, for any group shape.
    #[test]
    fn keyed_routing_is_stable(
        every in 2usize..5,
        blocks in 2usize..4,
        keys in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let nprocs = every * blocks;
        let keys = Arc::new(keys);
        let owner: Arc<Mutex<std::collections::HashMap<u64, usize>>> =
            Arc::new(Mutex::new(std::collections::HashMap::new()));
        let (own, ks) = (owner.clone(), keys.clone());
        let world = World::new(MachineConfig::default()).with_seed(7);
        world.run_expect(nprocs, move |rank| {
            let comm = rank.comm_world();
            let spec = GroupSpec { every };
            let role = spec.role_of(rank.world_rank());
            let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
            let mut stream: Stream<u64> = Stream::attach(ch);
            match role {
                Role::Producer => {
                    for &k in ks.iter() {
                        stream.isend_keyed(rank, k, k);
                    }
                    stream.terminate(rank);
                }
                Role::Consumer => {
                    let me = rank.world_rank();
                    stream.operate(rank, |_, k| {
                        let mut map = own.lock();
                        if let Some(prev) = map.insert(k, me) {
                            assert_eq!(prev, me, "key {k} split across consumers");
                        }
                    });
                }
                Role::Bystander => unreachable!(),
            }
        });
        // Every key was delivered somewhere.
        let owner = owner.lock();
        for k in keys.iter() {
            prop_assert!(owner.contains_key(k));
        }
    }

    /// An *empty* fault plan is inert: attaching one (whatever its seed)
    /// and arming a failure timeout must leave every endpoint's
    /// `StreamStats` byte-identical to a run without the fault layer, over
    /// random stream shapes. The fault machinery may only change behaviour
    /// when a fault actually fires.
    #[test]
    fn fault_free_plan_leaves_stream_stats_identical(
        every in 2usize..6,
        blocks in 1usize..4,
        per_producer in 0usize..60,
        aggregation in 1usize..9,
        plan_seed in any::<u64>(),
        with_timeout in any::<bool>(),
    ) {
        let nprocs = every * blocks;
        let run = |plan: Option<FaultPlan>, timeout: Option<SimDuration>| {
            let stats: Arc<Mutex<Vec<(usize, StreamStats)>>> =
                Arc::new(Mutex::new(Vec::new()));
            let st = stats.clone();
            let mut world = World::new(MachineConfig::default()).with_seed(99);
            if let Some(p) = plan {
                world = world.with_fault_plan(p);
            }
            world.run_expect(nprocs, move |rank| {
                let comm = rank.comm_world();
                let spec = GroupSpec { every };
                let role = spec.role_of(rank.world_rank());
                let ch = StreamChannel::create(
                    rank,
                    &comm,
                    role,
                    ChannelConfig {
                        element_bytes: 1 << 10,
                        aggregation,
                        credits: Some(64),
                        route: RoutePolicy::Static,
                        credit_batch: 1,
                        failure_timeout: timeout,
                        replicas: 0,
                        replication_patience: None,
                    },
                );
                let mut stream: Stream<u64> = Stream::attach(ch);
                match role {
                    Role::Producer => {
                        for i in 0..per_producer {
                            rank.compute(1e-6);
                            stream.isend(rank, i as u64);
                        }
                        stream.terminate(rank);
                    }
                    Role::Consumer => {
                        stream.operate(rank, |_, _| {});
                    }
                    Role::Bystander => unreachable!(),
                }
                st.lock().push((rank.world_rank(), stream.stats()));
            });
            let mut v = stats.lock().clone();
            v.sort_unstable_by_key(|&(r, _)| r);
            v
        };
        let timeout = if with_timeout { Some(SimDuration::from_secs(1)) } else { None };
        let bare = run(None, None);
        let planned = run(Some(FaultPlan::new(plan_seed)), timeout);
        prop_assert_eq!(bare, planned, "empty FaultPlan (seed {}) perturbed stats", plan_seed);
    }

    /// The group split is a partition consistent with `role_of`, for any
    /// spec and world that fits it.
    #[test]
    fn group_split_is_consistent(every in 2usize..9, blocks in 1usize..5) {
        let nprocs = every * blocks;
        // (world rank, is-producer, producer-group size, consumer-group size).
        type SplitObs = (usize, bool, usize, usize);
        let seen: Arc<Mutex<Vec<SplitObs>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        let world = World::new(MachineConfig::ideal());
        world.run_expect(nprocs, move |rank| {
            let comm = rank.comm_world();
            let spec = GroupSpec { every };
            let (producers, consumers, role) = spec.split(rank, &comm);
            let me = rank.world_rank();
            assert_eq!(role, spec.role_of(me));
            match role {
                Role::Producer => assert!(producers.contains(me)),
                Role::Consumer => assert!(consumers.contains(me)),
                Role::Bystander => unreachable!(),
            }
            s2.lock().push((
                me,
                role == Role::Consumer,
                producers.size(),
                consumers.size(),
            ));
        });
        let seen = seen.lock();
        let n_consumers = seen.iter().filter(|(_, c, _, _)| *c).count();
        prop_assert_eq!(n_consumers, blocks, "one consumer per block of `every`");
        for &(_, _, np, nc) in seen.iter() {
            prop_assert_eq!(np + nc, nprocs);
            prop_assert_eq!(nc, blocks);
        }
    }
}

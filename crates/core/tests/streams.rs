//! Integration tests of the stream library over the simulated machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpisim::{MachineConfig, NoiseModel, World};
use mpistream::{
    run_decoupled, ChannelConfig, GroupSpec, Role, RoutePolicy, Stream, StreamChannel,
};
use parking_lot::Mutex;

fn quiet() -> World {
    World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
}

fn ideal() -> World {
    World::new(MachineConfig::ideal())
}

#[test]
fn every_element_is_delivered_exactly_once() {
    // 6 producers, 2 consumers, static routing: full conservation.
    let got = Arc::new(Mutex::new(Vec::new()));
    let g2 = got.clone();
    quiet().run_expect(8, move |rank| {
        let comm = rank.comm_world();
        let g3 = g2.clone();
        run_decoupled::<(usize, u32), _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 4 },
            ChannelConfig::default(),
            |rank, p| {
                let me = rank.world_rank();
                for i in 0..25u32 {
                    p.stream.isend(rank, (me, i));
                }
            },
            move |rank, c| {
                c.stream.operate(rank, |_, elem| g3.lock().push(elem));
            },
        );
    });
    let mut got = got.lock().clone();
    got.sort_unstable();
    let mut expect: Vec<(usize, u32)> = Vec::new();
    for me in [0usize, 1, 2, 4, 5, 6] {
        for i in 0..25u32 {
            expect.push((me, i));
        }
    }
    expect.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn per_producer_order_is_preserved_at_a_consumer() {
    let got = Arc::new(Mutex::new(Vec::<(usize, u32)>::new()));
    let g2 = got.clone();
    quiet().run_expect(4, move |rank| {
        let comm = rank.comm_world();
        let g3 = g2.clone();
        run_decoupled::<(usize, u32), _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 4 },
            ChannelConfig::default(),
            |rank, p| {
                let me = rank.world_rank();
                for i in 0..50u32 {
                    rank.compute(1e-6);
                    p.stream.isend(rank, (me, i));
                }
            },
            move |rank, c| {
                c.stream.operate(rank, |_, e| g3.lock().push(e));
            },
        );
    });
    let got = got.lock();
    for p in 0..3usize {
        let seq: Vec<u32> = got.iter().filter(|(src, _)| *src == p).map(|(_, i)| *i).collect();
        assert_eq!(seq, (0..50).collect::<Vec<_>>(), "producer {p} order broken");
    }
}

#[test]
fn fcfs_absorbs_a_slow_producer() {
    // One producer is 100x slower per element. The consumer must keep
    // processing fast producers' elements meanwhile: the makespan should
    // track the slow producer's finish, not the sum of everyone.
    let out = quiet().run_expect(5, |rank| {
        let comm = rank.comm_world();
        run_decoupled::<u64, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 5 },
            ChannelConfig { element_bytes: 1 << 10, ..ChannelConfig::default() },
            |rank, p| {
                let slow = rank.world_rank() == 0;
                let per_elem = if slow { 1e-3 } else { 1e-5 };
                for i in 0..100 {
                    rank.compute_exact(per_elem);
                    p.stream.isend(rank, i);
                }
            },
            |rank, c| {
                c.stream.operate(rank, |rank, _| rank.compute_exact(2e-5));
            },
        );
    });
    let t = out.elapsed_secs();
    // Slow producer: 100 ms of compute. Consumer work: 400 elements x
    // 20 us = 8 ms, fully overlapped except the slow producer's tail.
    assert!(t > 0.1, "must wait for slow producer, got {t}");
    assert!(t < 0.112, "tail should be the slow producer, not queued work: {t}");
}

#[test]
fn round_robin_spreads_over_consumers() {
    let counts = Arc::new(Mutex::new(std::collections::HashMap::new()));
    let c2 = counts.clone();
    ideal().run_expect(6, move |rank| {
        let comm = rank.comm_world();
        let c3 = c2.clone();
        run_decoupled::<u32, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 3 }, // 4 producers, 2 consumers
            ChannelConfig { route: RoutePolicy::RoundRobin, ..ChannelConfig::default() },
            |rank, p| {
                for i in 0..40u32 {
                    p.stream.isend(rank, i);
                }
            },
            move |rank, c| {
                let me = rank.world_rank();
                let n = c.stream.operate(rank, |_, _| {});
                c3.lock().insert(me, n);
            },
        );
    });
    let counts = counts.lock();
    // 4 producers x 40 elements, round-robin over 2 consumers: 80 each.
    assert_eq!(counts.len(), 2);
    for (_, n) in counts.iter() {
        assert_eq!(*n, 80);
    }
}

#[test]
fn keyed_routing_is_consistent_and_covers_all() {
    // Same key must always reach the same consumer regardless of producer.
    let seen = Arc::new(Mutex::new(Vec::<(u64, usize)>::new()));
    let s2 = seen.clone();
    ideal().run_expect(8, move |rank| {
        let comm = rank.comm_world();
        let s3 = s2.clone();
        run_decoupled::<u64, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 4 },
            ChannelConfig::default(),
            |rank, p| {
                for key in 0..64u64 {
                    p.stream.isend_keyed(rank, key, key);
                }
            },
            move |rank, c| {
                let me = rank.world_rank();
                c.stream.operate(rank, |_, key| s3.lock().push((key, me)));
            },
        );
    });
    let seen = seen.lock();
    let mut owner: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for &(key, consumer) in seen.iter() {
        let prev = owner.insert(key, consumer);
        if let Some(p) = prev {
            assert_eq!(p, consumer, "key {key} routed to two consumers");
        }
    }
    // Both consumers got some share (64 keys over 2 consumers).
    let distinct: std::collections::HashSet<usize> = owner.values().copied().collect();
    assert_eq!(distinct.len(), 2);
}

#[test]
fn aggregation_reduces_message_count_but_not_elements() {
    fn run(aggregation: usize) -> (u64, u64) {
        let msgs = Arc::new(AtomicU64::new(0));
        let elems = Arc::new(AtomicU64::new(0));
        let (m2, e2) = (msgs.clone(), elems.clone());
        let out = ideal().run_expect(4, move |rank| {
            let comm = rank.comm_world();
            let (m3, e3) = (m2.clone(), e2.clone());
            run_decoupled::<u32, _, _, _>(
                rank,
                &comm,
                GroupSpec { every: 4 },
                ChannelConfig { aggregation, ..ChannelConfig::default() },
                |rank, p| {
                    for i in 0..100u32 {
                        p.stream.isend(rank, i);
                    }
                },
                move |rank, c| {
                    let n = c.stream.operate(rank, |_, _| {});
                    e3.fetch_add(n, Ordering::SeqCst);
                    m3.fetch_add(c.stream.stats().batches, Ordering::SeqCst);
                },
            );
        });
        let _ = out;
        (msgs.load(Ordering::SeqCst), elems.load(Ordering::SeqCst))
    }
    let (m1, e1) = run(1);
    let (m10, e10) = run(10);
    assert_eq!(e1, 300);
    assert_eq!(e10, 300);
    assert_eq!(m1, 300);
    assert_eq!(m10, 30);
}

#[test]
fn partial_batches_are_flushed_at_terminate() {
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    ideal().run_expect(2, move |rank| {
        let comm = rank.comm_world();
        let t3 = t2.clone();
        run_decoupled::<u32, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 2 },
            ChannelConfig { aggregation: 64, ..ChannelConfig::default() },
            |rank, p| {
                for i in 0..70u32 {
                    // 64 + partial 6
                    p.stream.isend(rank, i);
                }
            },
            move |rank, c| {
                t3.fetch_add(c.stream.operate(rank, |_, _| {}), Ordering::SeqCst);
            },
        );
    });
    assert_eq!(total.load(Ordering::SeqCst), 70);
}

#[test]
fn credit_window_bounds_consumer_queue_memory() {
    // Without credits a fast producer can park the full stream at a slow
    // consumer; with a credit window the consumer's mailbox stays bounded.
    fn run(credits: Option<usize>) -> u64 {
        let max_queued = Arc::new(AtomicU64::new(0));
        let m2 = max_queued.clone();
        quiet().run_expect(2, move |rank| {
            let comm = rank.comm_world();
            let m3 = m2.clone();
            run_decoupled::<[u8; 8], _, _, _>(
                rank,
                &comm,
                GroupSpec { every: 2 },
                ChannelConfig {
                    element_bytes: 1 << 20, // 1 MB elements
                    credits,
                    ..ChannelConfig::default()
                },
                |rank, p| {
                    for _ in 0..64 {
                        p.stream.isend(rank, [0u8; 8]); // fast producer
                    }
                },
                move |rank, c| {
                    c.stream.operate(rank, |rank, _| {
                        m3.fetch_max(rank.mailbox_bytes(), Ordering::SeqCst);
                        rank.compute_exact(1e-3); // slow consumer
                    });
                },
            );
        });
        max_queued.load(Ordering::SeqCst)
    }
    let unbounded = run(None);
    let bounded = run(Some(4));
    assert!(bounded <= 4 << 20, "credit window of 4 x 1MB must bound queue, got {bounded}");
    assert!(
        unbounded > bounded * 4,
        "unbounded queue ({unbounded}) should far exceed bounded ({bounded})"
    );
}

#[test]
fn stats_agree_between_endpoints() {
    let prod_stats = Arc::new(Mutex::new(Vec::new()));
    let cons_stats = Arc::new(Mutex::new(Vec::new()));
    let (p2, c2) = (prod_stats.clone(), cons_stats.clone());
    quiet().run_expect(4, move |rank| {
        let comm = rank.comm_world();
        let (p3, c3) = (p2.clone(), c2.clone());
        let stats = run_decoupled::<u32, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 4 },
            ChannelConfig { aggregation: 5, ..ChannelConfig::default() },
            |rank, p| {
                for i in 0..20u32 {
                    p.stream.isend(rank, i);
                }
            },
            |rank, c| {
                c.stream.operate(rank, |_, _| {});
            },
        );
        if rank.world_rank() == 3 {
            c3.lock().push(stats);
        } else {
            p3.lock().push(stats);
        }
    });
    let total_sent: u64 =
        prod_stats.lock().iter().map(|s: &mpistream::StreamStats| s.elements).sum();
    let total_recv: u64 =
        cons_stats.lock().iter().map(|s: &mpistream::StreamStats| s.elements).sum();
    assert_eq!(total_sent, 60);
    assert_eq!(total_recv, 60);
    let batches_sent: u64 = prod_stats.lock().iter().map(|s| s.batches).sum();
    let batches_recv: u64 = cons_stats.lock().iter().map(|s| s.batches).sum();
    assert_eq!(batches_sent, batches_recv);
}

#[test]
fn two_channels_coexist_without_crosstalk() {
    // A forward data channel and a reply channel with swapped roles (the
    // CG/PIC pattern). Payload types differ; ids must not collide.
    let ok = Arc::new(AtomicU64::new(0));
    let ok2 = ok.clone();
    quiet().run_expect(4, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 4 };
        let (_prod, _cons, role) = spec.split(rank, &comm);
        let fwd_role = role;
        let rev_role = match role {
            Role::Producer => Role::Consumer,
            Role::Consumer => Role::Producer,
            Role::Bystander => Role::Bystander,
        };
        let fwd = StreamChannel::create(rank, &comm, fwd_role, ChannelConfig::default());
        let rev = StreamChannel::create(rank, &comm, rev_role, ChannelConfig::default());
        match role {
            Role::Producer => {
                let mut out: Stream<u64> = Stream::attach(fwd);
                let mut back: Stream<i32> = Stream::attach(rev);
                for i in 0..10u64 {
                    out.isend(rank, i * (rank.world_rank() as u64 + 1));
                }
                out.terminate(rank);
                let n = back.operate(rank, |_, v| assert_eq!(v, -7));
                assert!(n > 0);
                ok2.fetch_add(1, Ordering::SeqCst);
            }
            Role::Consumer => {
                let mut input: Stream<u64> = Stream::attach(fwd);
                let mut reply: Stream<i32> = Stream::attach(rev);
                input.operate(rank, |_, _| {});
                // Reply to each producer explicitly.
                for c in 0..reply.channel().consumers().len() {
                    reply.isend_to(rank, c, -7);
                }
                reply.terminate(rank);
                ok2.fetch_add(1, Ordering::SeqCst);
            }
            Role::Bystander => unreachable!(),
        }
    });
    assert_eq!(ok.load(Ordering::SeqCst), 4);
}

#[test]
fn operate_some_allows_polling_consumers() {
    quiet().run_expect(2, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut stream: Stream<u32> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..10u32 {
                    rank.compute_exact(1e-4);
                    stream.isend(rank, i);
                }
                stream.terminate(rank);
            }
            Role::Consumer => {
                let mut got = 0u64;
                while !stream.all_terminated() {
                    let n = stream.operate_some(rank, |_, _| {});
                    if n == 0 {
                        got += stream.operate_while(rank, || got == 0, |_, _| {});
                        // interleave "other work"
                        rank.compute_exact(1e-5);
                    } else {
                        got += n;
                    }
                }
                assert_eq!(got, 10);
            }
            Role::Bystander => unreachable!(),
        }
    });
}

#[test]
#[should_panic(expected = "isend on a non-producer endpoint")]
fn consumer_cannot_isend() {
    ideal().run_expect(2, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut stream: Stream<u32> = Stream::attach(ch);
        match role {
            Role::Consumer => stream.isend(rank, 1), // boom
            Role::Producer => {
                stream.terminate(rank);
            }
            _ => unreachable!(),
        }
    });
}

#[test]
fn adaptive_granularity_converges_in_simulation() {
    use mpistream::AdaptiveGranularity;
    // Producer emits one element every 10us; target one wire message per
    // 1ms → controller should settle near 100 elements per batch.
    let final_batch = Arc::new(AtomicU64::new(0));
    let fb = final_batch.clone();
    quiet().run_expect(2, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(
            rank,
            &comm,
            role,
            ChannelConfig { element_bytes: 512, ..ChannelConfig::default() },
        );
        let mut stream: Stream<u32> = Stream::attach(ch);
        match role {
            Role::Producer => {
                let mut ctl = AdaptiveGranularity::new(1e-3, 1, 4096);
                let mut pending = 0usize;
                for i in 0..20_000u32 {
                    rank.compute_exact(1e-5);
                    stream.isend_to(rank, 0, i);
                    pending += 1;
                    if pending >= ctl.batch() {
                        // isend_to with aggregation=1 flushed already; we
                        // emulate adaptivity by observing flush cadence.
                        ctl.on_flush(rank.now());
                        pending = 0;
                    }
                }
                stream.terminate(rank);
                fb.store(ctl.batch() as u64, Ordering::SeqCst);
            }
            Role::Consumer => {
                stream.operate(rank, |_, _| {});
            }
            _ => unreachable!(),
        }
    });
    let b = final_batch.load(Ordering::SeqCst);
    assert!((32..=512).contains(&b), "controller should settle near 100 elems/batch, got {b}");
}

#[test]
fn operate2_multiplexes_two_channels_fcfs() {
    use mpistream::operate2;
    // 3 producers feed one consumer over two channels with different
    // element types and cadences; the consumer drains both FCFS.
    let got_a = Arc::new(AtomicU64::new(0));
    let got_b = Arc::new(AtomicU64::new(0));
    let (ga, gb) = (got_a.clone(), got_b.clone());
    quiet().run_expect(4, move |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 4 };
        let role = spec.role_of(rank.world_rank());
        let ch_a = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let ch_b = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut sa: Stream<u32> = Stream::attach(ch_a);
        let mut sb: Stream<String> = Stream::attach(ch_b);
        match role {
            Role::Producer => {
                for i in 0..20u32 {
                    rank.compute_exact(3e-6);
                    sa.isend(rank, i);
                    if i % 2 == 0 {
                        rank.compute_exact(5e-6);
                        sb.isend(rank, format!("m{i}"));
                    }
                }
                sa.terminate(rank);
                sb.terminate(rank);
            }
            Role::Consumer => {
                let (na, nb) =
                    operate2(rank, &mut sa, &mut sb, |_, _| {}, |_, s| assert!(s.starts_with('m')));
                ga.store(na, Ordering::SeqCst);
                gb.store(nb, Ordering::SeqCst);
                sa.free(rank);
                sb.free(rank);
            }
            Role::Bystander => unreachable!(),
        }
    });
    assert_eq!(got_a.load(Ordering::SeqCst), 60);
    assert_eq!(got_b.load(Ordering::SeqCst), 30);
}

#[test]
fn free_accepts_clean_shutdown() {
    ideal().run_expect(2, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut s: Stream<u8> = Stream::attach(ch);
        match role {
            Role::Producer => {
                s.isend(rank, 1);
                s.terminate(rank);
                s.free(rank);
            }
            Role::Consumer => {
                s.operate(rank, |_, _| {});
                s.free(rank);
            }
            Role::Bystander => unreachable!(),
        }
    });
}

#[test]
#[should_panic(expected = "never terminated")]
fn free_rejects_unterminated_producer() {
    ideal().run_expect(2, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut s: Stream<u8> = Stream::attach(ch);
        match role {
            Role::Producer => {
                s.isend(rank, 1); // aggregation=1: flushed immediately
                s.free(rank); // boom: not terminated
            }
            Role::Consumer => {
                s.operate_while(rank, || false, |_, _| {});
            }
            Role::Bystander => unreachable!(),
        }
    });
}

// ---------------------------------------------------------------------
// Termination edge cases
// ---------------------------------------------------------------------

/// Producers that never inject a single element still close the stream
/// cleanly: the consumer's operate returns 0 without hanging, every Term
/// claims zero, and free() accepts both ends.
#[test]
fn zero_element_producers_terminate_cleanly() {
    ideal().run_expect(3, |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() < 2 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut s: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                s.terminate(rank);
                assert_eq!(s.stats().elements, 0);
                assert_eq!(s.stats().batches, 0);
                s.free(rank);
            }
            Role::Consumer => {
                let n = s.operate(rank, |_, _| panic!("no elements were sent"));
                assert_eq!(n, 0);
                assert!(s.all_terminated());
                s.free(rank);
            }
            Role::Bystander => unreachable!(),
        }
    });
}

/// One producer terminates immediately (before sending anything) while
/// the other streams normally: the early Term must not confuse the
/// consumer's accounting.
#[test]
fn producer_terminating_before_sending_is_clean() {
    let got = Arc::new(Mutex::new(Vec::new()));
    let g = got.clone();
    ideal().run_expect(3, move |rank| {
        let comm = rank.comm_world();
        let role = if rank.world_rank() < 2 { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut s: Stream<u32> = Stream::attach(ch);
        match role {
            Role::Producer => {
                if rank.world_rank() == 0 {
                    // Quit on the spot, before any isend.
                    s.terminate(rank);
                } else {
                    for i in 0..30u32 {
                        rank.compute_exact(1e-6);
                        s.isend(rank, i);
                    }
                    s.terminate(rank);
                }
                s.free(rank);
            }
            Role::Consumer => {
                let g = g.clone();
                let n = s.operate(rank, move |_, v| g.lock().push(v));
                assert_eq!(n, 30);
                s.free(rank);
            }
            Role::Bystander => unreachable!(),
        }
    });
    let mut v = got.lock().clone();
    v.sort_unstable();
    assert_eq!(v, (0..30).collect::<Vec<_>>());
}

/// terminate() is idempotent: a second call is a no-op — no duplicate
/// Term on the wire, no stats movement — and the consumer's accounting
/// stays exact.
#[test]
fn double_terminate_is_idempotent() {
    ideal().run_expect(2, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let ch = StreamChannel::create(rank, &comm, role, ChannelConfig::default());
        let mut s: Stream<u8> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..5u8 {
                    s.isend(rank, i);
                }
                s.terminate(rank);
                assert!(s.is_terminated());
                let stats = s.stats();
                let t = rank.now();
                s.terminate(rank); // idempotent no-op
                assert_eq!(s.stats(), stats, "second terminate must not move stats");
                assert_eq!(rank.now(), t, "second terminate must not spend time");
                s.free(rank);
            }
            Role::Consumer => {
                let n = s.operate(rank, |_, _| {});
                assert_eq!(n, 5);
                // Exactly one Term was consumed; a duplicate would leave
                // terms_seen past the producer count or traffic behind.
                assert!(s.all_terminated());
                let (extra, progressed) = s.try_step(rank, |_, _| {});
                assert_eq!((extra, progressed), (0, false), "no duplicate Term on the wire");
                s.free(rank);
            }
            Role::Bystander => unreachable!(),
        }
    });
}

/// An invalid channel configuration surfaces as a typed error from
/// `try_run_decoupled` — on every rank, before any group is split or any
/// channel id consumed — instead of a panic mid-collective.
#[test]
fn invalid_config_returns_typed_error_before_any_communication() {
    use mpistream::{try_run_decoupled, ConfigError};
    ideal().run_expect(4, |rank| {
        let comm = rank.comm_world();
        let t0 = rank.now();
        let err = try_run_decoupled::<u32, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 2 },
            ChannelConfig { aggregation: 0, ..ChannelConfig::default() },
            |_rank, _p| panic!("producer body must not run"),
            |_rank, _c| panic!("consumer body must not run"),
        )
        .expect_err("aggregation = 0 must be rejected");
        assert_eq!(err, ConfigError::ZeroAggregation);
        assert_eq!(rank.now(), t0, "validation must not communicate or spend time");

        // The same world can immediately run a valid configuration: the
        // failed attempt consumed no channel id and left no group state.
        let stats = try_run_decoupled::<u32, _, _, _>(
            rank,
            &comm,
            GroupSpec { every: 2 },
            ChannelConfig::default(),
            |rank, p| {
                for i in 0..3u32 {
                    p.stream.isend(rank, i);
                }
            },
            |rank, c| {
                let n = c.stream.operate(rank, |_, _| {});
                assert_eq!(n, 3); // 2 producers x 3, split over 2 consumers
            },
        )
        .expect("valid config runs");
        assert!(stats.elements > 0);
    });
}

/// `StreamChannel::try_create` rejects a bad config with the same typed
/// error on every member rank, collectively, before the id broadcast.
#[test]
fn try_create_rejects_invalid_config_on_every_rank() {
    use mpistream::ConfigError;
    ideal().run_expect(2, |rank| {
        let comm = rank.comm_world();
        let spec = GroupSpec { every: 2 };
        let role = spec.role_of(rank.world_rank());
        let err = StreamChannel::try_create(
            rank,
            &comm,
            role,
            ChannelConfig { credits: Some(0), ..ChannelConfig::default() },
        )
        .expect_err("zero credit window must be rejected");
        assert_eq!(err, ConfigError::ZeroCreditWindow);
    });
}

/// `credit_batch` validation: zero is rejected, a batch above the credit
/// window's stall margin (`credits - aggregation + 1`) is rejected, and the
/// margin itself is the largest accepted value.
#[test]
fn credit_batch_validation_bounds() {
    use mpistream::ConfigError;
    let base = ChannelConfig { credits: Some(8), aggregation: 2, ..ChannelConfig::default() };

    let err = ChannelConfig { credit_batch: 0, ..base.clone() }.validate().unwrap_err();
    assert_eq!(err, ConfigError::ZeroCreditBatch);

    // Stall margin: 8 - 2 + 1 = 7. Eight must be rejected, seven accepted.
    let err = ChannelConfig { credit_batch: 8, ..base.clone() }.validate().unwrap_err();
    assert_eq!(err, ConfigError::CreditBatchAboveWindow { batch: 8, credits: 8, aggregation: 2 });
    ChannelConfig { credit_batch: 7, ..base }.validate().expect("margin itself is valid");

    // Without credits no acknowledgement flows at all, so any batch is fine.
    ChannelConfig { credits: None, credit_batch: 1_000_000, ..ChannelConfig::default() }
        .validate()
        .expect("credit_batch is ignored when credits are unbounded");
}

/// A credit-batched stream delivers exactly the same elements as an
/// unbatched one and terminates cleanly — the sim sanitizer (orphan scan +
/// credit audit) stays silent even though the consumer now accumulates
/// acknowledgements and drops the remainder at `Term`.
#[test]
fn credit_batching_conserves_elements_on_sim() {
    for batch in [1usize, 3, 7] {
        let received: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let rcv = received.clone();
        ideal().run_expect(4, move |rank| {
            let comm = rank.comm_world();
            let spec = GroupSpec { every: 2 };
            let role = spec.role_of(rank.world_rank());
            let ch = StreamChannel::create(
                rank,
                &comm,
                role,
                ChannelConfig {
                    credits: Some(8),
                    aggregation: 2,
                    credit_batch: batch,
                    ..ChannelConfig::default()
                },
            );
            let mut stream: Stream<u32> = Stream::attach(ch);
            match role {
                Role::Producer => {
                    let me = rank.world_rank() as u32;
                    for i in 0..50u32 {
                        stream.isend(rank, me * 1000 + i);
                    }
                    stream.terminate(rank);
                }
                Role::Consumer => {
                    stream.operate(rank, |_, e| rcv.lock().push(e));
                }
                Role::Bystander => unreachable!(),
            }
        });
        let mut got = received.lock().clone();
        got.sort_unstable();
        // Producers are world ranks 0 and 2 under every=2.
        let want: Vec<u32> = (0..50u32).chain((0..50u32).map(|i| 2000 + i)).collect();
        assert_eq!(got, want, "credit_batch={batch} lost or duplicated elements");
    }
}

//! Property tests of the `Wire` codec: encode/decode is the identity on
//! every payload shape the apps use, and *every* malformed frame —
//! truncations at arbitrary byte offsets, oversized length prefixes,
//! trailing garbage, bad discriminants — decodes to a typed
//! [`WireError`], never a panic and never an attacker-sized allocation.

use mpistream::{Wire, WireError, MAX_WIRE_ELEMS};
use proptest::prelude::*;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_frame();
    let back = T::from_frame(&bytes);
    prop_assert_eq!(back.as_ref().ok(), Some(v), "decode failed: {:?}", back.as_ref().err());
}

/// Decoding any strict prefix of a valid frame must fail with a typed
/// error — `from_frame` additionally rejects strict *extensions*.
fn total_on_prefixes<T: Wire + std::fmt::Debug>(v: &T) {
    let bytes = v.to_frame();
    for cut in 0..bytes.len() {
        if let Ok(short) = T::from_frame(&bytes[..cut]) {
            // A prefix may decode (e.g. a tuple of units) only if the
            // full frame is empty too — otherwise it must error.
            prop_assert!(bytes.is_empty(), "prefix {cut} decoded: {short:?}");
        }
    }
    let mut extended = bytes.clone();
    extended.push(0);
    prop_assert!(
        matches!(T::from_frame(&extended), Err(WireError::TrailingBytes { .. })),
        "extended frame must report trailing bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn integers_round_trip(a in any::<u64>(), b in any::<i64>(), c in any::<u32>(), d in any::<u8>()) {
        roundtrip(&a);
        roundtrip(&b);
        roundtrip(&c);
        roundtrip(&d);
        roundtrip(&(a as usize));
        roundtrip(&(b as isize));
        total_on_prefixes(&a);
    }

    #[test]
    fn floats_round_trip_bit_exact(bits in any::<u64>(), f in any::<bool>()) {
        // Go through raw bits so NaN payloads and signed zeros are
        // covered; equality is on the bit pattern.
        let v = f64::from_bits(bits);
        let back = f64::from_frame(&v.to_frame()).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
        roundtrip(&f);
    }

    #[test]
    fn collections_round_trip(
        v in prop::collection::vec(any::<u64>(), 0..64),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..32),
        raw in prop::collection::vec(any::<u8>(), 0..48),
        present in any::<bool>(),
    ) {
        roundtrip(&v);
        roundtrip(&pairs);                      // the mapreduce KvChunk shape
        let s = String::from_utf8_lossy(&raw).into_owned();
        roundtrip(&s);
        let opt = present.then(|| v.clone());
        roundtrip(&opt);
        total_on_prefixes(&pairs);
    }

    #[test]
    fn app_payload_shapes_round_trip(
        iter in any::<u64>(),
        dir in any::<i64>(),
        vals in prop::collection::vec(any::<u64>(), 0..16),
    ) {
        // The cg halo shape: (usize, isize, Vec<f64>) nested in a Vec.
        let values: Vec<f64> = vals.iter().map(|&b| f64::from_bits(b | 1)).collect();
        let faces = vec![(iter as usize, dir as isize, values)];
        roundtrip(&faces);
        // The particle shape: fixed-size f64 arrays in a tuple.
        let p = ([1.0f64, -2.5, 3.25], [0.5f64, 0.0, -0.125]);
        roundtrip(&p);
        total_on_prefixes(&faces);
    }

    #[test]
    fn truncations_never_panic_and_always_error(
        v in prop::collection::vec((any::<u32>(), any::<u64>()), 1..16),
        cut_seed in any::<u64>(),
    ) {
        let bytes = v.to_frame();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let r = Vec::<(u32, u64)>::from_frame(&bytes[..cut]);
        prop_assert!(r.is_err(), "truncated frame decoded");
        prop_assert!(
            matches!(r, Err(WireError::Truncated { .. })),
            "truncation must be typed as Truncated, got {:?}", r.err()
        );
    }

    #[test]
    fn corrupted_length_prefixes_error_without_allocating(extra in any::<u64>()) {
        // Claim an element count above the cap: rejected before any
        // allocation proportional to the claim.
        let claimed = MAX_WIRE_ELEMS + 1 + (extra % 1024);
        let r = Vec::<u64>::from_frame(&claimed.to_frame());
        prop_assert!(matches!(r, Err(WireError::LengthOverflow { .. })));
        // Claim a count *below* the cap but far beyond the buffer: the
        // decode fails on the first missing element instead of reserving
        // for the claim.
        let under_cap = 1 + (extra % MAX_WIRE_ELEMS);
        let r = Vec::<u64>::from_frame(&under_cap.to_frame());
        prop_assert!(matches!(r, Err(WireError::Truncated { .. })));
    }
}

#[test]
fn zero_sized_elements_cannot_spin_the_decoder() {
    // `Vec<()>` elements consume zero bytes each, so only the element
    // cap bounds the decode loop — a huge claimed count must be
    // rejected up front, not iterated.
    let r = Vec::<()>::from_frame(&u64::MAX.to_frame());
    assert!(matches!(r, Err(WireError::LengthOverflow { .. })));
    // At or under the cap a Vec<()> is legal (if degenerate).
    let v = vec![(), (), ()];
    assert_eq!(Vec::<()>::from_frame(&v.to_frame()).unwrap(), v);
}

#[test]
fn discriminant_and_utf8_corruption_is_typed() {
    assert_eq!(bool::from_frame(&[7]), Err(WireError::BadDiscriminant { got: 7 }));
    assert_eq!(Option::<u64>::from_frame(&[2]), Err(WireError::BadDiscriminant { got: 2 }));
    let mut s = String::from("ok").to_frame();
    let last = s.len() - 1;
    s[last] = 0xFF;
    assert_eq!(String::from_frame(&s), Err(WireError::InvalidUtf8));
}

#[test]
fn wire_struct_macro_encodes_fields_in_order() {
    #[derive(PartialEq, Debug)]
    struct Update {
        rank: usize,
        step: usize,
        work: u64,
    }
    mpistream::wire_struct!(Update { rank, step, work });
    let v = Update { rank: 3, step: 9, work: 0xDEAD };
    let bytes = v.to_frame();
    // Field order is the declaration order: three LE u64 words.
    assert_eq!(bytes.len(), 24);
    assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 3);
    assert_eq!(u64::from_le_bytes(bytes[8..16].try_into().unwrap()), 9);
    assert_eq!(Update::from_frame(&bytes).unwrap(), v);
    // And the same totality guarantee as the built-ins.
    for cut in 0..bytes.len() {
        assert!(Update::from_frame(&bytes[..cut]).is_err());
    }
}

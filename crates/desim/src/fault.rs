//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a *seeded, declarative schedule* of failures for one
//! simulation run: process kills at a virtual time, pause/resume windows,
//! and per-link message faults (delay spikes and probabilistic drops).
//! Because the plan is data — and every probabilistic decision is a pure
//! hash of `(plan seed, link, message sequence)` — a run with a given
//! `(SimConfig, FaultPlan)` is exactly reproducible, which is what makes
//! seeded chaos testing (à la deterministic simulation testing) possible.
//!
//! The pieces plug in at three levels:
//!
//! - **Kills and pauses** are executed by the kernel: `Simulation::run`
//!   spawns a hidden `fault-injector` process that calls [`Kernel::kill`]
//!   at each kill time, and the scheduler defers events that fall inside a
//!   pause window. Killed processes unwind cleanly and are reported in
//!   [`SimOutcome::killed`](crate::SimOutcome::killed).
//! - **Link faults** are *queried* by messaging layers built on top (the
//!   `mpisim` crate): at send time the sender asks
//!   [`FaultPlan::link_disposition`] whether this particular message is
//!   delivered late or dropped.
//! - **Trace spans** tagged `"fault-kill"` / `"fault-pause"` are recorded
//!   on the victim's timeline when tracing is enabled.
//!
//! An empty plan (the default) injects nothing and adds no overhead: no
//! injector process is spawned and no per-message checks run.
//!
//! [`Kernel::kill`]: crate::Kernel::kill

use crate::kernel::Pid;
use crate::time::{SimDuration, SimTime};

/// A scheduled message fault on the directed link `src -> dst`.
///
/// While virtual time is inside `[from, until)`, every message injected on
/// the link has `extra_delay` added to its delivery time and is dropped
/// with probability `drop_prob`. Drop decisions are a pure function of the
/// plan seed and the message's per-link sequence number, so they do not
/// depend on evaluation order.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFault {
    /// Sending process.
    pub src: Pid,
    /// Receiving process.
    pub dst: Pid,
    /// Start of the fault window (inclusive).
    pub from: SimTime,
    /// End of the fault window (exclusive). Defaults to "forever".
    pub until: SimTime,
    /// Added to the delivery time of every affected message.
    pub extra_delay: SimDuration,
    /// Probability in `[0, 1]` that an affected message is silently lost.
    pub drop_prob: f64,
}

impl LinkFault {
    /// A fault on `src -> dst` that covers the whole run and, until
    /// configured further, has no effect.
    pub fn new(src: Pid, dst: Pid) -> Self {
        LinkFault {
            src,
            dst,
            from: SimTime::ZERO,
            until: SimTime(u64::MAX),
            extra_delay: SimDuration::ZERO,
            drop_prob: 0.0,
        }
    }

    /// Restrict the fault to `[from, until)`.
    pub fn window(mut self, from: SimTime, until: SimTime) -> Self {
        assert!(from <= until, "LinkFault window ends before it starts");
        self.from = from;
        self.until = until;
        self
    }

    /// Delay every affected message by an extra `d`.
    pub fn delay(mut self, d: SimDuration) -> Self {
        self.extra_delay = d;
        self
    }

    /// Drop each affected message independently with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0, 1]");
        self.drop_prob = p;
        self
    }
}

/// What the fault layer decided for one message on one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkDisposition {
    /// Deliver the message, `extra` later than the fault-free time.
    Deliver {
        /// Additional delay on top of the modelled delivery time.
        extra: SimDuration,
    },
    /// Silently lose the message.
    Drop,
}

/// One timed entry of a plan's process-fault schedule (kills and pause
/// starts), in firing order. Produced by [`FaultPlan::timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultAction {
    /// Virtual time at which the action fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The kind of a [`FaultAction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill process `pid`: it unwinds at its next scheduling point and is
    /// reported in `SimOutcome::killed`.
    Kill(Pid),
    /// Pause process `pid` until `until`: events addressed to it inside
    /// the window are deferred to the window's end.
    Pause {
        /// The paused process.
        pid: Pid,
        /// When it resumes.
        until: SimTime,
    },
}

/// A seeded, declarative failure schedule for one simulation run.
///
/// Build one with the fluent methods, hand it to
/// [`SimConfig::fault_plan`](crate::SimConfig), and the kernel plus any
/// fault-aware messaging layer on top do the rest. See the
/// [module docs](self) for the execution model.
///
/// ```
/// use desim::{FaultPlan, LinkFault, SimTime, SimDuration};
///
/// let plan = FaultPlan::new(42)
///     .kill(3, SimTime(5_000_000))
///     .pause(1, SimTime(1_000), SimDuration::from_micros(50))
///     .link(LinkFault::new(0, 2).drop_prob(0.1));
/// assert!(plan.has_process_faults() && plan.has_link_faults());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    kills: Vec<(Pid, SimTime)>,
    element_kills: Vec<(Pid, u64)>,
    pauses: Vec<(Pid, SimTime, SimDuration)>,
    links: Vec<LinkFault>,
}

impl FaultPlan {
    /// An empty plan whose probabilistic decisions (message drops) will be
    /// derived from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            kills: Vec::new(),
            element_kills: Vec::new(),
            pauses: Vec::new(),
            links: Vec::new(),
        }
    }

    /// The seed all probabilistic fault decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Kill process `pid` at virtual time `at`.
    pub fn kill(mut self, pid: Pid, at: SimTime) -> Self {
        self.kills.push((pid, at));
        self
    }

    /// Kill process `pid` when it has processed `element` application
    /// elements.
    ///
    /// Unlike [`FaultPlan::kill`], which fires at a virtual *time*, an
    /// element kill is *consulted* by the application layer: a process that
    /// counts the elements it consumes checks
    /// [`FaultPlan::element_kill`] and unwinds itself via
    /// [`Ctx::exit_killed`](crate::Ctx::exit_killed) at the exact cursor.
    /// This makes replay oracles deterministic regardless of timing model
    /// changes — the victim always dies with the same prefix consumed. No
    /// injector process is involved.
    pub fn kill_at_element(mut self, pid: Pid, element: u64) -> Self {
        self.element_kills.push((pid, element));
        self
    }

    /// The smallest scheduled element-kill cursor for `pid`, if any.
    pub fn element_kill(&self, pid: Pid) -> Option<u64> {
        self.element_kills.iter().filter(|(p, _)| *p == pid).map(|&(_, n)| n).min()
    }

    /// Pause process `pid` for `dur` starting at `at`: events addressed to
    /// it in `[at, at + dur)` are deferred to the window's end.
    pub fn pause(mut self, pid: Pid, at: SimTime, dur: SimDuration) -> Self {
        self.pauses.push((pid, at, dur));
        self
    }

    /// Add a message fault on one directed link.
    pub fn link(mut self, fault: LinkFault) -> Self {
        self.links.push(fault);
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.element_kills.is_empty()
            && self.pauses.is_empty()
            && self.links.is_empty()
    }

    /// True when the plan kills or pauses processes *by time* (requires the
    /// injector process). Element kills are executed by the application
    /// layer itself and need no injector.
    pub fn has_process_faults(&self) -> bool {
        !self.kills.is_empty() || !self.pauses.is_empty()
    }

    /// True when the plan has link faults (messaging layers must consult
    /// [`FaultPlan::link_disposition`] per message).
    pub fn has_link_faults(&self) -> bool {
        !self.links.is_empty()
    }

    /// The earliest scheduled kill time for `pid`, if any.
    pub fn kill_time(&self, pid: Pid) -> Option<SimTime> {
        self.kills.iter().filter(|(p, _)| *p == pid).map(|&(_, at)| at).min()
    }

    /// Pause windows as `(pid, from_ns, until_ns)` for the scheduler.
    pub(crate) fn pause_windows(&self) -> Vec<(Pid, u64, u64)> {
        self.pauses.iter().map(|&(pid, at, dur)| (pid, at.0, at.0.saturating_add(dur.0))).collect()
    }

    /// The process-fault schedule in firing order (stable on ties), as
    /// executed by the hidden injector process.
    pub fn timeline(&self) -> Vec<FaultAction> {
        let mut out: Vec<FaultAction> = self
            .pauses
            .iter()
            .map(|&(pid, at, dur)| FaultAction {
                at,
                kind: FaultKind::Pause { pid, until: at + dur },
            })
            .chain(
                self.kills.iter().map(|&(pid, at)| FaultAction { at, kind: FaultKind::Kill(pid) }),
            )
            .collect();
        out.sort_by_key(|a| a.at);
        out
    }

    /// Decide the fate of the `msg_seq`-th message ever injected on the
    /// link `src -> dst`, at injection time `at`.
    ///
    /// The decision is a pure function of `(plan, src, dst, msg_seq)`:
    /// callers may evaluate it in any order (or repeatedly) and get the
    /// same answer, which keeps fault-injected runs deterministic. Extra
    /// delays from overlapping windows accumulate; any window whose drop
    /// test fires loses the message.
    pub fn link_disposition(
        &self,
        src: Pid,
        dst: Pid,
        at: SimTime,
        msg_seq: u64,
    ) -> LinkDisposition {
        let mut extra = SimDuration::ZERO;
        for (idx, f) in self.links.iter().enumerate() {
            if f.src != src || f.dst != dst || at < f.from || at >= f.until {
                continue;
            }
            if f.drop_prob > 0.0 {
                let u = unit_hash(self.seed, idx as u64, src as u64, dst as u64, msg_seq);
                if u < f.drop_prob {
                    return LinkDisposition::Drop;
                }
            }
            extra += f.extra_delay;
        }
        LinkDisposition::Deliver { extra }
    }
}

/// Uniform value in `[0, 1)` from a stateless SplitMix64-style hash of the
/// inputs; the basis of order-independent drop decisions.
fn unit_hash(seed: u64, idx: u64, src: u64, dst: u64, seq: u64) -> f64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [idx, src, dst, seq] {
        z ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(23);
        z = splitmix_step(z);
    }
    ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

fn splitmix_step(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.has_process_faults());
        assert!(!plan.has_link_faults());
        assert_eq!(
            plan.link_disposition(0, 1, SimTime(5), 7),
            LinkDisposition::Deliver { extra: SimDuration::ZERO }
        );
    }

    #[test]
    fn timeline_is_sorted_and_complete() {
        let plan = FaultPlan::new(1)
            .kill(2, SimTime(300))
            .pause(0, SimTime(100), SimDuration(50))
            .kill(1, SimTime(100));
        let tl = plan.timeline();
        assert_eq!(tl.len(), 3);
        assert!(tl.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(tl[2].kind, FaultKind::Kill(2));
        assert_eq!(plan.kill_time(1), Some(SimTime(100)));
        assert_eq!(plan.kill_time(0), None);
    }

    #[test]
    fn link_disposition_is_deterministic_and_windowed() {
        let plan = FaultPlan::new(99).link(
            LinkFault::new(0, 1)
                .window(SimTime(10), SimTime(20))
                .delay(SimDuration(5))
                .drop_prob(0.5),
        );
        // Outside the window: untouched.
        assert_eq!(
            plan.link_disposition(0, 1, SimTime(9), 0),
            LinkDisposition::Deliver { extra: SimDuration::ZERO }
        );
        assert_eq!(
            plan.link_disposition(0, 1, SimTime(20), 0),
            LinkDisposition::Deliver { extra: SimDuration::ZERO }
        );
        // Other links: untouched.
        assert_eq!(
            plan.link_disposition(1, 0, SimTime(15), 0),
            LinkDisposition::Deliver { extra: SimDuration::ZERO }
        );
        // Inside the window: the same (seq) always gets the same fate.
        for seq in 0..64 {
            let a = plan.link_disposition(0, 1, SimTime(15), seq);
            let b = plan.link_disposition(0, 1, SimTime(15), seq);
            assert_eq!(a, b);
            if let LinkDisposition::Deliver { extra } = a {
                assert_eq!(extra, SimDuration(5));
            }
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::new(7).link(LinkFault::new(3, 4).drop_prob(0.3));
        let n = 20_000u64;
        let dropped = (0..n)
            .filter(|&seq| plan.link_disposition(3, 4, SimTime(0), seq) == LinkDisposition::Drop)
            .count() as f64;
        let rate = dropped / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate} far from 0.3");
    }

    #[test]
    fn different_seeds_give_different_drop_patterns() {
        let a = FaultPlan::new(1).link(LinkFault::new(0, 1).drop_prob(0.5));
        let b = FaultPlan::new(2).link(LinkFault::new(0, 1).drop_prob(0.5));
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..128)
                .map(|seq| p.link_disposition(0, 1, SimTime(0), seq) == LinkDisposition::Drop)
                .collect()
        };
        assert_ne!(pattern(&a), pattern(&b));
    }

    #[test]
    fn overlapping_delay_windows_accumulate() {
        let plan = FaultPlan::new(0)
            .link(LinkFault::new(0, 1).delay(SimDuration(3)))
            .link(LinkFault::new(0, 1).delay(SimDuration(4)));
        assert_eq!(
            plan.link_disposition(0, 1, SimTime(0), 0),
            LinkDisposition::Deliver { extra: SimDuration(7) }
        );
    }

    #[test]
    fn element_kills_are_queryable_but_need_no_injector() {
        let plan = FaultPlan::new(3).kill_at_element(2, 40).kill_at_element(2, 25);
        assert!(!plan.is_empty());
        // The application layer executes element kills itself: no hidden
        // injector process must be spawned for them.
        assert!(!plan.has_process_faults());
        assert_eq!(plan.element_kill(2), Some(25));
        assert_eq!(plan.element_kill(0), None);
        assert!(plan.timeline().is_empty());
    }

    #[test]
    fn pause_windows_saturate() {
        let plan = FaultPlan::new(0).pause(2, SimTime(10), SimDuration(u64::MAX));
        assert_eq!(plan.pause_windows(), vec![(2, 10, u64::MAX)]);
    }
}

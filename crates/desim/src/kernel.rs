//! The simulation kernel: virtual clock, event heap and coroutine scheduling.
//!
//! # Execution model
//!
//! Every simulated process is backed by a real OS thread, but **exactly one
//! simulated process executes at any moment**. Control is handed from one
//! process to the next by *token passing*: the currently running process,
//! when it suspends, pops the next event from the heap, advances the virtual
//! clock to that event's timestamp, unparks the event's owner and then parks
//! itself. This gives a sequential, fully deterministic simulation (events
//! at equal timestamps fire in schedule order) while letting process bodies
//! be written as ordinary imperative Rust.
//!
//! # Wake-up semantics
//!
//! An event is nothing more than "wake process *p* at time *t*". A process
//! may be woken spuriously (e.g. a stale wake-up scheduled by a sender whose
//! message the process already consumed), so **every blocking primitive must
//! re-check its predicate in a loop** after [`Kernel::suspend`] returns.
//! This is the same discipline as condition variables.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated process (dense, assigned in spawn order).
pub type Pid = usize;

/// A scheduled wake-up: `(time, seq, pid)` ordered by time then FIFO.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    pid: Pid,
}

/// One-slot token used to park/unpark a process thread without the
/// spurious-wakeup hazards of bare `thread::park`.
struct Token {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Token {
    fn new() -> Self {
        Token { flag: Mutex::new(false), cv: Condvar::new() }
    }

    fn set(&self) {
        let mut f = self.flag.lock();
        *f = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut f = self.flag.lock();
        while !*f {
            self.cv.wait(&mut f);
        }
        *f = false;
    }
}

/// The most recent trace span a process opened (and possibly closed),
/// remembered even when no trace sink is recording so deadlock reports can
/// show where each process last was without re-running under trace.
#[derive(Clone, Copy)]
struct SpanNote {
    tag: &'static str,
    start: u64,
    /// `None` while the span is still open.
    end: Option<u64>,
}

struct ProcMeta {
    name: String,
    token: Arc<Token>,
    done: bool,
    /// Set by [`Kernel::kill`]; the process unwinds with [`ProcKill`] at
    /// its next scheduling point.
    killed: bool,
    /// Human-readable description of what the process is blocked on,
    /// reported on deadlock.
    blocked_on: &'static str,
    /// Most recent trace span, for deadlock diagnosis.
    last_span: Option<SpanNote>,
}

struct Sched {
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcMeta>,
    live: usize,
    /// Fault-plan pause windows as `(pid, from_ns, until_ns)`: events for
    /// `pid` inside the window are deferred to `until_ns`.
    pauses: Vec<(Pid, u64, u64)>,
}

impl Sched {
    /// Pop the next deliverable event, advance the clock to it and return
    /// its owner. Skips events of exited processes and defers events that
    /// fall in a pause window (kill wake-ups are exempt so a paused process
    /// can still be killed promptly).
    fn pop_runnable(&mut self) -> Option<Pid> {
        loop {
            let Reverse(ev) = self.heap.pop()?;
            if self.procs[ev.pid].done {
                continue; // stale event for an exited process
            }
            if !self.procs[ev.pid].killed {
                if let Some(resume) = self.pause_resume(ev.pid, ev.time) {
                    let seq = self.seq;
                    self.seq += 1;
                    self.heap.push(Reverse(Event { time: resume, seq, pid: ev.pid }));
                    continue;
                }
            }
            debug_assert!(ev.time >= self.now, "event heap went backwards");
            self.now = ev.time;
            return Some(ev.pid);
        }
    }

    /// If `t` falls inside a pause window of `pid`, the time it resumes.
    fn pause_resume(&self, pid: Pid, t: u64) -> Option<u64> {
        let mut resume: Option<u64> = None;
        for &(p, from, until) in &self.pauses {
            if p == pid && from <= t && t < until {
                resume = Some(resume.map_or(until, |u| u.max(until)));
            }
        }
        resume
    }
}

/// Shared simulation kernel. One per [`crate::Simulation`]; handed to every
/// process through its [`crate::Ctx`].
pub struct Kernel {
    state: Mutex<Sched>,
    main_token: Token,
    aborted: AtomicBool,
    abort_reason: Mutex<Option<String>>,
    /// External diagnostic sources appended to deadlock reports (e.g. the
    /// mpisim sanitizer's in-flight credit table). Each callback must not
    /// touch kernel state: it runs while a deadlock is being reported.
    diagnostics: Mutex<Vec<DiagnosticSource>>,
}

/// A callback contributing extra lines to deadlock reports; returns `None`
/// when it has nothing to say.
pub type DiagnosticSource = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Panic payload used to unwind parked process threads when the simulation
/// aborts (deadlock or a sibling process panicked). `Simulation::run`
/// recognises it and converts it into a single, readable error.
pub(crate) struct SimAbort;

/// Panic payload used to unwind a single process killed by fault injection
/// (see [`Kernel::kill`]). `Simulation::run` recognises it and treats the
/// unwind as a clean (but killed) exit rather than a failure.
pub(crate) struct ProcKill;

impl Kernel {
    pub(crate) fn new() -> Arc<Kernel> {
        Arc::new(Kernel {
            state: Mutex::new(Sched {
                now: 0,
                seq: 0,
                heap: BinaryHeap::new(),
                procs: Vec::new(),
                live: 0,
                pauses: Vec::new(),
            }),
            main_token: Token::new(),
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
            diagnostics: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn register_proc(&self, name: String) -> Pid {
        let mut s = self.state.lock();
        let pid = s.procs.len();
        let token = Arc::new(Token::new());
        s.procs.push(ProcMeta {
            name,
            token,
            done: false,
            killed: false,
            blocked_on: "start",
            last_span: None,
        });
        s.live += 1;
        pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.state.lock().now)
    }

    /// Number of registered processes.
    pub fn num_procs(&self) -> usize {
        self.state.lock().procs.len()
    }

    /// Schedule a wake-up for `pid` at absolute time `at`. May be called
    /// from any running process (or from `Simulation::run` before start).
    pub fn schedule_at(&self, at: SimTime, pid: Pid) {
        let mut s = self.state.lock();
        // Floating-point cost models can round a hair into the past; clamp
        // to `now` so the heap never goes backwards.
        let seq = s.seq;
        s.seq += 1;
        let time = at.0.max(s.now);
        s.heap.push(Reverse(Event { time, seq, pid }));
    }

    /// Schedule a wake-up for `pid` after `delay`.
    pub fn schedule_after(&self, delay: SimDuration, pid: Pid) {
        let mut s = self.state.lock();
        let seq = s.seq;
        s.seq += 1;
        let time = s.now + delay.0;
        s.heap.push(Reverse(Event { time, seq, pid }));
    }

    /// Suspend the calling process `me` until some event wakes it.
    ///
    /// The caller transfers control to the owner of the next event in the
    /// heap. Returns when `me` is next unparked — which may be *spurious*;
    /// callers must loop on their predicate. `why` is reported if a deadlock
    /// is detected while `me` is suspended here.
    pub fn suspend(&self, me: Pid, why: &'static str) {
        self.check_abort();
        let next = {
            let mut s = self.state.lock();
            s.procs[me].blocked_on = why;
            s.pop_runnable()
        };
        match next {
            Some(p) if p == me => {
                // Our own wake-up is the next event: keep running.
            }
            Some(p) => {
                let token = {
                    let s = self.state.lock();
                    s.procs[p].token.clone()
                };
                token.set();
                self.park(me);
            }
            None => {
                // No event can ever fire again and `me` is about to block:
                // every live process is now parked with nothing to wake it.
                self.abort(format!(
                    "deadlock: no scheduled events and all processes blocked\n{}",
                    self.blocked_report()
                ));
            }
        }
        self.check_abort();
    }

    /// Advance the calling process's local time by `dt` (a "compute" step).
    /// Other processes run during the interval.
    pub fn advance(&self, me: Pid, dt: SimDuration) {
        if dt == SimDuration::ZERO {
            return;
        }
        let target = {
            let s = self.state.lock();
            s.now + dt.0
        };
        self.schedule_at(SimTime(target), me);
        loop {
            self.suspend(me, "advance");
            if self.state.lock().now >= target {
                return;
            }
        }
    }

    /// Called by the process wrapper when the body returns. Transfers
    /// control onwards; when the last process exits, wakes the runner.
    pub(crate) fn proc_exit(&self, me: Pid) {
        let live = {
            let mut s = self.state.lock();
            s.procs[me].done = true;
            s.live -= 1;
            s.live
        };
        if live == 0 {
            self.main_token.set();
            return;
        }
        // Hand the token to the next event's owner, if any.
        let next = {
            let mut s = self.state.lock();
            s.pop_runnable()
        };
        match next {
            Some(p) => {
                let token = {
                    let s = self.state.lock();
                    s.procs[p].token.clone()
                };
                token.set();
            }
            None => self.abort(format!(
                "deadlock: process `{}` exited with {} live processes \
                 blocked and no scheduled events\n{}",
                self.proc_name(me),
                live,
                self.blocked_report()
            )),
        }
    }

    /// Kick off the simulation: wake the owner of the earliest event, then
    /// block until all processes have exited (or the simulation aborted).
    pub(crate) fn run_to_completion(&self) {
        let first = {
            let mut s = self.state.lock();
            if s.live == 0 {
                return;
            }
            s.pop_runnable()
        };
        match first {
            Some(p) => {
                let token = {
                    let s = self.state.lock();
                    s.procs[p].token.clone()
                };
                token.set();
            }
            None => {
                // Cannot happen through `Simulation::run` (it schedules a
                // t=0 activation per process), but fail gracefully: this is
                // the runner thread, so record the failure without
                // unwinding through the caller.
                self.mark_failed(
                    "simulation started with live processes but no initial events".into(),
                );
                return;
            }
        }
        self.main_token.wait();
    }

    /// Park a process thread until its activation token is set; used for
    /// the initial t=0 activation of each process.
    pub(crate) fn entry_wait(&self, pid: Pid) {
        self.park(pid);
    }

    fn park(&self, me: Pid) {
        let token = {
            let s = self.state.lock();
            s.procs[me].token.clone()
        };
        token.wait();
        self.check_abort();
        self.check_killed(me);
    }

    /// Mark `victim` for death. It unwinds with [`ProcKill`] the next time
    /// it is scheduled (a wake-up at the current virtual time is queued so
    /// a parked victim dies "now" in virtual time); `Simulation::run`
    /// records it as killed rather than failed. Killing an already-exited
    /// process is a no-op. This is the primitive behind
    /// [`FaultPlan::kill`](crate::FaultPlan::kill), exposed for custom
    /// harnesses that inject failures from a supervising process.
    pub fn kill(&self, victim: Pid) {
        let mut s = self.state.lock();
        assert!(victim < s.procs.len(), "kill of unknown pid {victim}");
        if s.procs[victim].done || s.procs[victim].killed {
            return;
        }
        s.procs[victim].killed = true;
        let seq = s.seq;
        s.seq += 1;
        let now = s.now;
        s.heap.push(Reverse(Event { time: now, seq, pid: victim }));
    }

    /// Install the fault plan's pause windows; called once before the run.
    pub(crate) fn set_pauses(&self, pauses: Vec<(Pid, u64, u64)>) {
        self.state.lock().pauses = pauses;
    }

    /// Unwind the calling process if it has been killed.
    fn check_killed(&self, me: Pid) {
        if self.state.lock().procs[me].killed {
            std::panic::panic_any(ProcKill);
        }
    }

    /// Mark the simulation aborted, wake every thread so it can unwind, and
    /// unwind the caller.
    pub(crate) fn abort(&self, reason: String) -> ! {
        {
            let mut r = self.abort_reason.lock();
            if r.is_none() {
                *r = Some(reason);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        let tokens: Vec<Arc<Token>> = {
            let s = self.state.lock();
            s.procs.iter().filter(|p| !p.done).map(|p| p.token.clone()).collect()
        };
        for t in tokens {
            t.set();
        }
        self.main_token.set();
        std::panic::panic_any(SimAbort);
    }

    pub(crate) fn check_abort(&self) {
        if self.aborted.load(Ordering::SeqCst) {
            std::panic::panic_any(SimAbort);
        }
    }

    pub(crate) fn abort_reason(&self) -> Option<String> {
        self.abort_reason.lock().clone()
    }

    pub(crate) fn mark_failed(&self, reason: String) {
        {
            let mut r = self.abort_reason.lock();
            if r.is_none() {
                *r = Some(reason);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        let tokens: Vec<Arc<Token>> = {
            let s = self.state.lock();
            s.procs.iter().filter(|p| !p.done).map(|p| p.token.clone()).collect()
        };
        for t in tokens {
            t.set();
        }
        self.main_token.set();
    }

    /// Remember `pid`'s most recent trace span. Called by
    /// [`crate::Ctx::trace_begin`]/[`crate::Ctx::trace_end`] whether or not a
    /// trace sink is recording, so deadlock reports can show where each
    /// process last was without re-running under trace.
    pub(crate) fn note_span(&self, pid: Pid, tag: &'static str, start: u64, end: Option<u64>) {
        self.state.lock().procs[pid].last_span = Some(SpanNote { tag, start, end });
    }

    /// Register a diagnostic source whose output is appended to deadlock
    /// reports. The callback runs while a deadlock is being reported and must
    /// not call back into the kernel; returning `None` contributes nothing.
    pub fn add_diagnostics(&self, source: Arc<dyn Fn() -> Option<String> + Send + Sync>) {
        self.diagnostics.lock().push(source);
    }

    fn proc_name(&self, pid: Pid) -> String {
        self.state.lock().procs[pid].name.clone()
    }

    fn blocked_report(&self) -> String {
        let mut out = String::new();
        {
            let s = self.state.lock();
            for (pid, p) in s.procs.iter().enumerate() {
                if !p.done {
                    let span = match p.last_span {
                        None => String::from("none"),
                        Some(SpanNote { tag, start, end: None }) => {
                            format!("{tag} (open since {})", SimTime(start))
                        }
                        Some(SpanNote { tag, start, end: Some(end) }) => {
                            format!("{tag} ({} .. {})", SimTime(start), SimTime(end))
                        }
                    };
                    out.push_str(&format!(
                        "  pid {} `{}` blocked on: {} [last span: {span}]\n",
                        pid, p.name, p.blocked_on
                    ));
                }
            }
        }
        for source in self.diagnostics.lock().iter() {
            if let Some(text) = source() {
                for line in text.lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

//! The simulation kernel: virtual clock, event heap and coroutine scheduling.
//!
//! # Execution model
//!
//! Every simulated process is backed by a real OS thread, but **exactly one
//! simulated process executes at any moment**. Control is handed from one
//! process to the next by *token passing*: the currently running process,
//! when it suspends, pops the next event from the heap, advances the virtual
//! clock to that event's timestamp, unparks the event's owner and then parks
//! itself. This gives a sequential, fully deterministic simulation (events
//! at equal timestamps fire in schedule order) while letting process bodies
//! be written as ordinary imperative Rust.
//!
//! # Wake-up semantics
//!
//! An event is nothing more than "wake process *p* at time *t*". A process
//! may be woken spuriously (e.g. a stale wake-up scheduled by a sender whose
//! message the process already consumed), so **every blocking primitive must
//! re-check its predicate in a loop** after [`Kernel::suspend`] returns.
//! This is the same discipline as condition variables.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated process (dense, assigned in spawn order).
pub type Pid = usize;

/// A scheduled wake-up: `(time, seq, pid)` ordered by time then FIFO.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    pid: Pid,
}

/// Event-traffic counters of one run — the denominator of the engine's
/// efficiency metric (events per delivered message, see `engine_bench`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Wake-ups accepted into the heap.
    pub scheduled: u64,
    /// Wake-ups coalesced away because an identical `(time, pid)` event
    /// was already pending (lazy-deduplicated heap).
    pub coalesced: u64,
    /// Events actually popped and delivered to a process.
    pub fired: u64,
}

/// One-slot token used to park/unpark a process thread without the
/// spurious-wakeup hazards of bare `thread::park`.
struct Token {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Token {
    fn new() -> Self {
        Token { flag: Mutex::new(false), cv: Condvar::new() }
    }

    fn set(&self) {
        let mut f = self.flag.lock();
        *f = true;
        self.cv.notify_one();
    }

    fn wait(&self) {
        let mut f = self.flag.lock();
        while !*f {
            self.cv.wait(&mut f);
        }
        *f = false;
    }
}

/// The most recent trace span a process opened (and possibly closed),
/// remembered even when no trace sink is recording so deadlock reports can
/// show where each process last was without re-running under trace.
#[derive(Clone, Copy)]
struct SpanNote {
    tag: &'static str,
    start: u64,
    /// `None` while the span is still open.
    end: Option<u64>,
}

struct ProcMeta {
    name: String,
    token: Arc<Token>,
    done: bool,
    /// Set by [`Kernel::kill`]; the process unwinds with [`ProcKill`] at
    /// its next scheduling point.
    killed: bool,
    /// Human-readable description of what the process is blocked on,
    /// reported on deadlock.
    blocked_on: &'static str,
    /// Most recent trace span, for deadlock diagnosis.
    last_span: Option<SpanNote>,
}

struct Sched {
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<Event>>,
    /// `(time, pid)` pairs currently in the heap. A second wake-up for an
    /// identical pair is coalesced away (wake-ups are spurious-tolerant,
    /// so one delivery is as good as two). Membership checks only — never
    /// iterated, so its ordering cannot leak into simulation behavior.
    pending: HashSet<(u64, Pid)>,
    procs: Vec<ProcMeta>,
    live: usize,
    /// Fault-plan pause windows as `(pid, from_ns, until_ns)`: events for
    /// `pid` inside the window are deferred to `until_ns`.
    pauses: Vec<(Pid, u64, u64)>,
    stats: EventStats,
}

impl Sched {
    /// Pop the next deliverable event, advance the clock to it and return
    /// its owner. Skips events of exited processes and defers events that
    /// fall in a pause window (kill wake-ups are exempt so a paused process
    /// can still be killed promptly).
    fn pop_runnable(&mut self) -> Option<Pid> {
        loop {
            let Reverse(ev) = self.heap.pop()?;
            self.pending.remove(&(ev.time, ev.pid));
            if self.procs[ev.pid].done {
                continue; // stale event for an exited process
            }
            if !self.pauses.is_empty() && !self.procs[ev.pid].killed {
                if let Some(resume) = self.pause_resume(ev.pid, ev.time) {
                    self.push_event(resume, ev.pid);
                    continue;
                }
            }
            debug_assert!(ev.time >= self.now, "event heap went backwards");
            self.now = ev.time;
            self.stats.fired += 1;
            return Some(ev.pid);
        }
    }

    /// Append a wake-up event for `pid` at `time` (callers clamp `time` to
    /// `now` themselves where needed). A `(time, pid)` pair already in the
    /// heap is coalesced: one wake-up at that instant is indistinguishable
    /// from two under the spurious-wake-up discipline.
    fn push_event(&mut self, time: u64, pid: Pid) {
        if !self.pending.insert((time, pid)) {
            self.stats.coalesced += 1;
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.stats.scheduled += 1;
        self.heap.push(Reverse(Event { time, seq, pid }));
    }

    /// If `t` falls inside a pause window of `pid`, the time it resumes.
    fn pause_resume(&self, pid: Pid, t: u64) -> Option<u64> {
        let mut resume: Option<u64> = None;
        for &(p, from, until) in &self.pauses {
            if p == pid && from <= t && t < until {
                resume = Some(resume.map_or(until, |u| u.max(until)));
            }
        }
        resume
    }
}

/// Shared simulation kernel. One per [`crate::Simulation`]; handed to every
/// process through its [`crate::Ctx`].
pub struct Kernel {
    state: Mutex<Sched>,
    /// Mirror of `Sched::now`, published (Release) at every clock advance
    /// while the state lock is held and read (Acquire) by [`Kernel::now`].
    /// Only the token-holding process observes it between hand-offs, and the
    /// token transfer orders the store before the next holder's loads, so
    /// readers always see the clock of the event that woke them.
    now_cache: AtomicU64,
    /// High-water mark of decoupled local clocks (see `Ctx::advance` in lazy
    /// mode): each process raises it to its final local time on exit, so the
    /// outcome's end time covers work that never became heap events. Plain
    /// `fetch_max`; no other state depends on it.
    horizon: AtomicU64,
    main_token: Token,
    aborted: AtomicBool,
    abort_reason: Mutex<Option<String>>,
    /// External diagnostic sources appended to deadlock reports (e.g. the
    /// mpisim sanitizer's in-flight credit table). Each callback must not
    /// touch kernel state: it runs while a deadlock is being reported.
    diagnostics: Mutex<Vec<DiagnosticSource>>,
}

/// A callback contributing extra lines to deadlock reports; returns `None`
/// when it has nothing to say.
pub type DiagnosticSource = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Panic payload used to unwind parked process threads when the simulation
/// aborts (deadlock or a sibling process panicked). `Simulation::run`
/// recognises it and converts it into a single, readable error.
pub(crate) struct SimAbort;

/// Panic payload used to unwind a single process killed by fault injection
/// (see [`Kernel::kill`]). `Simulation::run` recognises it and treats the
/// unwind as a clean (but killed) exit rather than a failure.
pub(crate) struct ProcKill;

impl Kernel {
    pub(crate) fn new() -> Arc<Kernel> {
        Arc::new(Kernel {
            state: Mutex::new(Sched {
                now: 0,
                seq: 0,
                heap: BinaryHeap::new(),
                pending: HashSet::new(),
                procs: Vec::new(),
                live: 0,
                pauses: Vec::new(),
                stats: EventStats::default(),
            }),
            now_cache: AtomicU64::new(0),
            horizon: AtomicU64::new(0),
            main_token: Token::new(),
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
            diagnostics: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn register_proc(&self, name: String) -> Pid {
        let mut s = self.state.lock();
        let pid = s.procs.len();
        let token = Arc::new(Token::new());
        s.procs.push(ProcMeta {
            name,
            token,
            done: false,
            killed: false,
            blocked_on: "start",
            last_span: None,
        });
        s.live += 1;
        pid
    }

    /// Current virtual time. Lock-free: reads the published clock mirror
    /// (see `now_cache`), which is exact for the token-holding process.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_cache.load(Ordering::Acquire))
    }

    /// Number of registered processes.
    pub fn num_procs(&self) -> usize {
        self.state.lock().procs.len()
    }

    /// Schedule a wake-up for `pid` at absolute time `at`. May be called
    /// from any running process (or from `Simulation::run` before start).
    pub fn schedule_at(&self, at: SimTime, pid: Pid) {
        let mut s = self.state.lock();
        // Floating-point cost models can round a hair into the past; clamp
        // to `now` so the heap never goes backwards.
        let time = at.0.max(s.now);
        s.push_event(time, pid);
    }

    /// Schedule a wake-up for `pid` after `delay`.
    pub fn schedule_after(&self, delay: SimDuration, pid: Pid) {
        let mut s = self.state.lock();
        let time = s.now + delay.0;
        s.push_event(time, pid);
    }

    /// Event-traffic counters so far (see [`EventStats`]).
    pub fn event_stats(&self) -> EventStats {
        self.state.lock().stats
    }

    /// Raise the lazy-clock high-water mark to at least `t` (monotone).
    pub(crate) fn raise_horizon(&self, t: u64) {
        self.horizon.fetch_max(t, Ordering::Relaxed);
    }

    /// The lazy-clock high-water mark (0 unless lazy local clocks ran).
    pub(crate) fn horizon(&self) -> u64 {
        self.horizon.load(Ordering::Relaxed)
    }

    /// Suspend the calling process `me` until some event wakes it.
    ///
    /// The caller transfers control to the owner of the next event in the
    /// heap. Returns when `me` is next unparked — which may be *spurious*;
    /// callers must loop on their predicate. `why` is reported if a deadlock
    /// is detected while `me` is suspended here.
    pub fn suspend(&self, me: Pid, why: &'static str) {
        self.check_abort();
        // One lock section: record why we block, pop the next event, publish
        // the clock, and clone both tokens for the hand-off. When our own
        // wake-up is next we return without ever touching a condvar.
        let hand = {
            let mut s = self.state.lock();
            s.procs[me].blocked_on = why;
            match s.pop_runnable() {
                Some(p) => {
                    self.now_cache.store(s.now, Ordering::Release);
                    if p == me {
                        None // our own wake-up is the next event: keep running
                    } else {
                        Some((s.procs[p].token.clone(), s.procs[me].token.clone()))
                    }
                }
                None => {
                    // No event can ever fire again and `me` is about to
                    // block: every live process is now parked with nothing
                    // to wake it.
                    drop(s);
                    self.abort(format!(
                        "deadlock: no scheduled events and all processes blocked\n{}",
                        self.blocked_report()
                    ));
                }
            }
        };
        if let Some((next_token, my_token)) = hand {
            next_token.set();
            my_token.wait();
            self.check_abort();
            self.check_killed(me);
        }
        self.check_abort();
    }

    /// Advance the calling process's local time by `dt` (a "compute" step).
    /// Other processes run during the interval.
    pub fn advance(&self, me: Pid, dt: SimDuration) {
        if dt == SimDuration::ZERO {
            return;
        }
        enum Step {
            Done,
            Again,
            Hand(Arc<Token>, Arc<Token>),
            Dead,
        }
        self.check_abort();
        let mut target: Option<u64> = None;
        loop {
            let step = {
                let mut s = self.state.lock();
                let t = match target {
                    Some(t) => t,
                    None => {
                        // First iteration: schedule the wake-up under the
                        // same lock that pops the next event, so the common
                        // case (our own wake-up is next) is one lock round
                        // trip with zero condvar traffic.
                        let t = s.now + dt.0;
                        s.push_event(t, me);
                        s.procs[me].blocked_on = "advance";
                        target = Some(t);
                        t
                    }
                };
                match s.pop_runnable() {
                    Some(p) => {
                        self.now_cache.store(s.now, Ordering::Release);
                        if p != me {
                            Step::Hand(s.procs[p].token.clone(), s.procs[me].token.clone())
                        } else if s.now >= t {
                            Step::Done
                        } else {
                            Step::Again // spurious early wake-up for `me`
                        }
                    }
                    None => Step::Dead,
                }
            };
            match step {
                Step::Done => return,
                Step::Again => continue,
                Step::Hand(next_token, my_token) => {
                    next_token.set();
                    my_token.wait();
                    self.check_abort();
                    self.check_killed(me);
                    if self.now_cache.load(Ordering::Acquire) >= target.unwrap() {
                        return;
                    }
                }
                Step::Dead => self.abort(format!(
                    "deadlock: no scheduled events and all processes blocked\n{}",
                    self.blocked_report()
                )),
            }
        }
    }

    /// Called by the process wrapper when the body returns. Transfers
    /// control onwards; when the last process exits, wakes the runner.
    pub(crate) fn proc_exit(&self, me: Pid) {
        enum Exit {
            LastOut,
            Hand(Arc<Token>),
            Dead(usize),
        }
        let exit = {
            let mut s = self.state.lock();
            s.procs[me].done = true;
            s.live -= 1;
            if s.live == 0 {
                Exit::LastOut
            } else {
                // Hand the token to the next event's owner, if any.
                match s.pop_runnable() {
                    Some(p) => {
                        self.now_cache.store(s.now, Ordering::Release);
                        Exit::Hand(s.procs[p].token.clone())
                    }
                    None => Exit::Dead(s.live),
                }
            }
        };
        match exit {
            Exit::LastOut => self.main_token.set(),
            Exit::Hand(token) => token.set(),
            Exit::Dead(live) => self.abort(format!(
                "deadlock: process `{}` exited with {} live processes \
                 blocked and no scheduled events\n{}",
                self.proc_name(me),
                live,
                self.blocked_report()
            )),
        }
    }

    /// Kick off the simulation: wake the owner of the earliest event, then
    /// block until all processes have exited (or the simulation aborted).
    pub(crate) fn run_to_completion(&self) {
        let first = {
            let mut s = self.state.lock();
            if s.live == 0 {
                return;
            }
            match s.pop_runnable() {
                Some(p) => {
                    self.now_cache.store(s.now, Ordering::Release);
                    Some(s.procs[p].token.clone())
                }
                None => None,
            }
        };
        match first {
            Some(token) => token.set(),
            None => {
                // Cannot happen through `Simulation::run` (it schedules a
                // t=0 activation per process), but fail gracefully: this is
                // the runner thread, so record the failure without
                // unwinding through the caller.
                self.mark_failed(
                    "simulation started with live processes but no initial events".into(),
                );
                return;
            }
        }
        self.main_token.wait();
    }

    /// Park a process thread until its activation token is set; used for
    /// the initial t=0 activation of each process.
    pub(crate) fn entry_wait(&self, pid: Pid) {
        self.park(pid);
    }

    fn park(&self, me: Pid) {
        let token = {
            let s = self.state.lock();
            s.procs[me].token.clone()
        };
        token.wait();
        self.check_abort();
        self.check_killed(me);
    }

    /// Mark `victim` for death. It unwinds with [`ProcKill`] the next time
    /// it is scheduled (a wake-up at the current virtual time is queued so
    /// a parked victim dies "now" in virtual time); `Simulation::run`
    /// records it as killed rather than failed. Killing an already-exited
    /// process is a no-op. This is the primitive behind
    /// [`FaultPlan::kill`](crate::FaultPlan::kill), exposed for custom
    /// harnesses that inject failures from a supervising process.
    pub fn kill(&self, victim: Pid) {
        let mut s = self.state.lock();
        assert!(victim < s.procs.len(), "kill of unknown pid {victim}");
        if s.procs[victim].done || s.procs[victim].killed {
            return;
        }
        s.procs[victim].killed = true;
        let now = s.now;
        s.push_event(now, victim);
    }

    /// Install the fault plan's pause windows; called once before the run.
    pub(crate) fn set_pauses(&self, pauses: Vec<(Pid, u64, u64)>) {
        self.state.lock().pauses = pauses;
    }

    /// Unwind the calling process if it has been killed.
    fn check_killed(&self, me: Pid) {
        if self.state.lock().procs[me].killed {
            std::panic::panic_any(ProcKill);
        }
    }

    /// Mark the simulation aborted, wake every thread so it can unwind, and
    /// unwind the caller.
    pub(crate) fn abort(&self, reason: String) -> ! {
        {
            let mut r = self.abort_reason.lock();
            if r.is_none() {
                *r = Some(reason);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        let tokens: Vec<Arc<Token>> = {
            let s = self.state.lock();
            s.procs.iter().filter(|p| !p.done).map(|p| p.token.clone()).collect()
        };
        for t in tokens {
            t.set();
        }
        self.main_token.set();
        std::panic::panic_any(SimAbort);
    }

    pub(crate) fn check_abort(&self) {
        if self.aborted.load(Ordering::SeqCst) {
            std::panic::panic_any(SimAbort);
        }
    }

    pub(crate) fn abort_reason(&self) -> Option<String> {
        self.abort_reason.lock().clone()
    }

    pub(crate) fn mark_failed(&self, reason: String) {
        {
            let mut r = self.abort_reason.lock();
            if r.is_none() {
                *r = Some(reason);
            }
        }
        self.aborted.store(true, Ordering::SeqCst);
        let tokens: Vec<Arc<Token>> = {
            let s = self.state.lock();
            s.procs.iter().filter(|p| !p.done).map(|p| p.token.clone()).collect()
        };
        for t in tokens {
            t.set();
        }
        self.main_token.set();
    }

    /// Remember `pid`'s most recent trace span. Called by
    /// [`crate::Ctx::trace_begin`]/[`crate::Ctx::trace_end`] whether or not a
    /// trace sink is recording, so deadlock reports can show where each
    /// process last was without re-running under trace.
    pub(crate) fn note_span(&self, pid: Pid, tag: &'static str, start: u64, end: Option<u64>) {
        self.state.lock().procs[pid].last_span = Some(SpanNote { tag, start, end });
    }

    /// Register a diagnostic source whose output is appended to deadlock
    /// reports. The callback runs while a deadlock is being reported and must
    /// not call back into the kernel; returning `None` contributes nothing.
    pub fn add_diagnostics(&self, source: Arc<dyn Fn() -> Option<String> + Send + Sync>) {
        self.diagnostics.lock().push(source);
    }

    fn proc_name(&self, pid: Pid) -> String {
        self.state.lock().procs[pid].name.clone()
    }

    fn blocked_report(&self) -> String {
        let mut out = String::new();
        {
            let s = self.state.lock();
            for (pid, p) in s.procs.iter().enumerate() {
                if !p.done {
                    let span = match p.last_span {
                        None => String::from("none"),
                        Some(SpanNote { tag, start, end: None }) => {
                            format!("{tag} (open since {})", SimTime(start))
                        }
                        Some(SpanNote { tag, start, end: Some(end) }) => {
                            format!("{tag} ({} .. {})", SimTime(start), SimTime(end))
                        }
                    };
                    out.push_str(&format!(
                        "  pid {} `{}` blocked on: {} [last span: {span}]\n",
                        pid, p.name, p.blocked_on
                    ));
                }
            }
        }
        for source in self.diagnostics.lock().iter() {
            if let Some(text) = source() {
                for line in text.lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }
}

//! # desim — deterministic discrete-event simulation engine
//!
//! The execution substrate for the `mpistream-rs` reproduction of
//! *"Preparing HPC Applications for the Exascale Era: A Decoupling
//! Strategy"* (Peng et al., ICPP 2017).
//!
//! Simulated processes are written as ordinary imperative Rust closures and
//! run on dedicated OS threads, but the kernel executes **exactly one at a
//! time** in virtual-time order (sequential DES with coroutine-style token
//! passing). This gives:
//!
//! - **Determinism** — equal-time events fire in schedule order, every
//!   process has a seed-derived RNG, so a run is a pure function of its
//!   configuration. Scaling experiments are exactly reproducible.
//! - **Scale** — thousands of simulated MPI ranks on a single host core;
//!   virtual time is decoupled from wall time.
//! - **Real data** — processes exchange real values through simulated
//!   communication, so the applications built on top are numerically
//!   genuine; only *timing* is modelled.
//!
//! ## Quick example
//!
//! ```
//! use desim::{Simulation, SimConfig, SimDuration};
//! use desim::sync::SimChannel;
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let ch: SimChannel<u64> = SimChannel::new();
//! let tx = ch.clone();
//! sim.spawn("producer", move |ctx| {
//!     for i in 0..3 {
//!         ctx.advance(SimDuration::from_micros(5)); // "compute"
//!         tx.send(ctx, i);
//!     }
//!     tx.close(ctx);
//! });
//! let rx = ch.clone();
//! sim.spawn("consumer", move |ctx| {
//!     let mut sum = 0;
//!     while let Some(v) = rx.recv(ctx) {
//!         sum += v;
//!     }
//!     assert_eq!(sum, 3);
//! });
//! let out = sim.run_expect();
//! assert_eq!(out.end_time.as_nanos(), 15_000);
//! ```

pub mod fault;
pub mod kernel;
mod raw_thread;
pub mod resource;
pub mod sim;
pub mod sweep;
pub mod sync;
pub mod time;
pub mod trace;

pub use fault::{FaultAction, FaultKind, FaultPlan, LinkDisposition, LinkFault};
pub use kernel::{EventStats, Kernel, Pid};
pub use resource::{FifoServer, LinkClock};
pub use sim::{Ctx, ProcStats, SimConfig, SimError, SimOutcome, Simulation};
pub use sync::{SimBarrier, SimChannel, SimMutex, SimSemaphore, WaitSet};
pub use time::{SimDuration, SimTime};
pub use trace::{Span, Trace, TraceSink};

//! Raw `pthread_create` spawn path for very large simulated worlds.
//!
//! A `std::thread` on Linux costs ~4 virtual memory areas: the glibc
//! stack mapping is split in two by its guard page, and the Rust runtime
//! installs a per-thread sigaltstack for stack-overflow reporting — its
//! own mapping plus another guard. Hosts cap VMAs via `vm.max_map_count`
//! (commonly 65,530), so thread-per-rank simulation hits a hard wall at
//! ~16,384 threads — exactly the scale the extended weak-scaling sweeps
//! need to *reach*. Spawning rank threads directly through
//! `pthread_create` skips the sigaltstack, halving the per-thread VMA
//! cost and doubling the rank ceiling to ~32K (where `kernel.pid_max`
//! becomes the next wall). The trade: a rank that overflows its stack
//! dies with a raw SIGSEGV instead of Rust's "thread ... has overflowed
//! its stack" message. That is only worth it for huge worlds, so
//! [`Simulation::run`](crate::sim::Simulation::run) switches to this
//! path at [`RAW_THREAD_MIN_WORLD`] processes and keeps `std::thread`
//! (with its friendlier diagnostics) below it.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// World size at which `Simulation::run` switches from `std::thread` to
/// the raw spawn path. Low enough that the CI extended-scale fig5 smoke
/// (1,024 ranks) exercises raw threads on every run; high enough that
/// unit tests and the chaos sweeps keep std's stack-overflow reporting.
pub(crate) const RAW_THREAD_MIN_WORLD: usize = 1024;

/// Whether a world of `nprocs` processes should use the raw spawn path.
pub(crate) fn use_raw_threads(nprocs: usize) -> bool {
    cfg!(target_os = "linux") && nprocs >= RAW_THREAD_MIN_WORLD
}

type BoxedBody = Box<dyn FnOnce() + Send + 'static>;

#[cfg(target_os = "linux")]
mod imp {
    use super::*;
    use std::ffi::c_void;

    // Declared locally instead of through the `libc` crate: desim does
    // not otherwise depend on it, and four symbols do not justify a
    // dependency. `pthread_t` is `unsigned long` on linux-gnu; the attr
    // struct is 56 bytes on x86_64 glibc (64 here for slack — glibc only
    // ever writes inside its own sizeof).
    #[allow(non_camel_case_types)]
    type pthread_t = usize;

    #[repr(C, align(8))]
    struct PthreadAttr {
        _size: [u8; 64],
    }

    extern "C" {
        fn pthread_create(
            thread: *mut pthread_t,
            attr: *const PthreadAttr,
            start: extern "C" fn(*mut c_void) -> *mut c_void,
            arg: *mut c_void,
        ) -> i32;
        fn pthread_join(thread: pthread_t, retval: *mut *mut c_void) -> i32;
        fn pthread_attr_init(attr: *mut PthreadAttr) -> i32;
        fn pthread_attr_destroy(attr: *mut PthreadAttr) -> i32;
        fn pthread_attr_setstacksize(attr: *mut PthreadAttr, size: usize) -> i32;
    }

    /// Entry point for raw threads. The simulation body closure wraps
    /// itself in `catch_unwind` already; this outer catch is defence
    /// against anything else unwinding across the `extern "C"` frame,
    /// which would abort the whole process.
    extern "C" fn trampoline(arg: *mut c_void) -> *mut c_void {
        let body = unsafe { Box::from_raw(arg as *mut BoxedBody) };
        let _ = catch_unwind(AssertUnwindSafe(body));
        std::ptr::null_mut()
    }

    pub(crate) struct RawJoinHandle(pthread_t);

    // A pthread_t is an id to join on, not a pointer into this thread.
    unsafe impl Send for RawJoinHandle {}

    impl RawJoinHandle {
        /// Block until the thread exits. Panics in the thread were
        /// contained by the trampoline, so there is no payload to
        /// propagate (the simulation records failures via the kernel).
        pub(crate) fn join(self) {
            unsafe {
                pthread_join(self.0, std::ptr::null_mut());
            }
        }
    }

    pub(crate) fn spawn(stack_size: usize, body: BoxedBody) -> io::Result<RawJoinHandle> {
        // PTHREAD_STACK_MIN is 16 KiB on x86_64/aarch64 glibc; glibc
        // rejects smaller stacks with EINVAL.
        let stack_size = stack_size.max(16 * 1024);
        let arg = Box::into_raw(Box::new(body));
        let mut tid: pthread_t = 0;
        unsafe {
            let mut attr = PthreadAttr { _size: [0; 64] };
            if pthread_attr_init(&mut attr) != 0 {
                drop(Box::from_raw(arg));
                return Err(io::Error::last_os_error());
            }
            pthread_attr_setstacksize(&mut attr, stack_size);
            let rc = pthread_create(&mut tid, &attr, trampoline, arg as *mut c_void);
            pthread_attr_destroy(&mut attr);
            if rc != 0 {
                drop(Box::from_raw(arg));
                return Err(io::Error::from_raw_os_error(rc));
            }
        }
        Ok(RawJoinHandle(tid))
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    // Non-Linux hosts never select this path (`use_raw_threads` is
    // false), but keep it compiling as a thin std wrapper.
    pub(crate) struct RawJoinHandle(std::thread::JoinHandle<()>);

    impl RawJoinHandle {
        pub(crate) fn join(self) {
            let _ = self.0.join();
        }
    }

    pub(crate) fn spawn(stack_size: usize, body: BoxedBody) -> io::Result<RawJoinHandle> {
        std::thread::Builder::new().stack_size(stack_size).spawn(body).map(RawJoinHandle)
    }
}

pub(crate) use imp::{spawn, RawJoinHandle};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn raw_threads_run_and_join() {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<RawJoinHandle> = (0..32)
            .map(|i| {
                let counter = counter.clone();
                spawn(
                    64 * 1024,
                    Box::new(move || {
                        counter.fetch_add(i + 1, Ordering::SeqCst);
                    }),
                )
                .expect("raw spawn failed")
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (1..=32).sum::<usize>());
    }

    #[test]
    fn raw_thread_contains_panics() {
        // A panic in a raw thread must not cross the extern "C" frame
        // (which would abort the process) and must not poison join.
        let h = spawn(
            64 * 1024,
            Box::new(|| {
                std::panic::panic_any(42_u32);
            }),
        )
        .expect("raw spawn failed");
        h.join();
    }

    #[test]
    fn tiny_stack_request_is_clamped() {
        // Below PTHREAD_STACK_MIN the request is clamped, not EINVAL'd.
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        let h = spawn(
            1,
            Box::new(move || {
                d.store(1, Ordering::SeqCst);
            }),
        )
        .expect("clamped spawn failed");
        h.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}

//! Deterministic FIFO service resources.
//!
//! A [`FifoServer`] models a device that serves requests at a fixed rate —
//! a NIC, an I/O server, a metadata server. Requests are served in arrival
//! order; because the completion time of a request is fully determined at
//! request time (no preemption, no priorities), the server can compute it
//! immediately and the requester simply advances (or records) to it. This
//! keeps the model *open-loop fast*: no extra scheduler events per request.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::sim::Ctx;
use crate::time::{SimDuration, SimTime};

/// A `k`-server FIFO queueing station with a per-server byte rate and a
/// fixed per-request overhead.
///
/// `k = 1` models a strictly serial device (a metadata server, a file
/// lock-like bottleneck); `k > 1` models striped devices (e.g. OSTs of a
/// parallel filesystem, served round-robin by earliest-free).
#[derive(Clone)]
pub struct FifoServer {
    inner: Arc<Mutex<ServerInner>>,
    /// Bytes per second each server lane sustains.
    rate: f64,
    /// Fixed setup cost charged per request (seek, RPC, lock grant...).
    per_request: SimDuration,
}

struct ServerInner {
    /// Earliest time each lane becomes free, as a min-heap.
    free_at: BinaryHeap<Reverse<u64>>,
    /// Total bytes ever accepted (for conservation checks).
    bytes_served: u64,
    requests: u64,
}

impl FifoServer {
    /// Create a station with `lanes` parallel servers, each serving at
    /// `bytes_per_sec`, charging `per_request` setup per request.
    pub fn new(lanes: usize, bytes_per_sec: f64, per_request: SimDuration) -> Self {
        assert!(lanes > 0, "need at least one lane");
        assert!(bytes_per_sec > 0.0, "rate must be positive");
        let mut free_at = BinaryHeap::with_capacity(lanes);
        for _ in 0..lanes {
            free_at.push(Reverse(0));
        }
        FifoServer {
            inner: Arc::new(Mutex::new(ServerInner { free_at, bytes_served: 0, requests: 0 })),
            rate: bytes_per_sec,
            per_request,
        }
    }

    /// Submit a request of `bytes` at time `now`; returns the completion
    /// time. Does **not** block the caller — callers decide whether to wait
    /// (blocking I/O) or just remember the completion (asynchronous DMA).
    pub fn submit(&self, now: SimTime, bytes: u64) -> SimTime {
        let mut inner = self.inner.lock();
        let Reverse(free) = inner.free_at.pop().expect("server has lanes");
        let start = free.max(now.as_nanos());
        let service = self.per_request + SimDuration::from_bytes_at(bytes, self.rate);
        let done = start + service.as_nanos();
        inner.free_at.push(Reverse(done));
        inner.bytes_served += bytes;
        inner.requests += 1;
        SimTime(done)
    }

    /// Submit and block the calling process until the request completes.
    ///
    /// Service order is call order, so any lazy local lead is committed
    /// first (see [`Ctx::commit_lag`]); callers using raw
    /// [`FifoServer::submit`] under a lazy config must do the same.
    pub fn serve(&self, ctx: &mut Ctx, bytes: u64) -> SimTime {
        ctx.commit_lag();
        let done = self.submit(ctx.now(), bytes);
        let wait = done.since(ctx.now());
        ctx.advance(wait);
        done
    }

    /// Total bytes accepted so far.
    pub fn bytes_served(&self) -> u64 {
        self.inner.lock().bytes_served
    }

    /// Total requests accepted so far.
    pub fn requests(&self) -> u64 {
        self.inner.lock().requests
    }

    /// Earliest time any lane is free (diagnostic).
    pub fn earliest_free(&self) -> SimTime {
        SimTime(self.inner.lock().free_at.peek().map(|Reverse(t)| *t).unwrap_or(0))
    }
}

/// A running tally of availability for a *single* serial device, cheaper
/// than [`FifoServer`] when `k = 1` and contention bookkeeping is done by
/// the caller. Used for per-rank NIC tx/rx serialization.
///
/// Unlike a plain high-water mark, the clock remembers recent *idle gaps*
/// so that a request arriving out of call order — a decoupled local clock
/// (see `SimConfig::lazy_time`) lets a process book future occupancy before
/// a peer books an earlier slot — is served in the gap where a causally
/// ordered execution would have served it, instead of queueing behind work
/// that arrives later in virtual time. With in-call-order arrivals the gap
/// list is never hit on the fast path and results match the plain tally.
/// The gap list is bounded ([`LinkClock::GAP_CAP`]); the oldest gaps are
/// forgotten (treated as busy), which only ever delays a booking, keeps
/// memory constant, and stays deterministic.
#[derive(Debug, Default, Clone)]
pub struct LinkClock {
    free_at: u64,
    /// Idle intervals `(start, end)` strictly before `free_at`, ascending
    /// and disjoint by construction (new gaps open at the old `free_at`).
    gaps: Vec<(u64, u64)>,
}

impl LinkClock {
    /// Most idle gaps remembered; beyond this the oldest is forgotten.
    ///
    /// Sized generously: under a lazy clock one process can book its
    /// *entire* flow before a peer executes at all, so the calendar must
    /// cover a whole flow's worth of idle slivers or the peer's early
    /// traffic queues behind the far future (and per-sender non-overtaking
    /// then drags the rest of its flow along). 1024 gaps is 16 KiB per
    /// link, and the list only grows while the link is idle at booking
    /// time — saturated links never lengthen it.
    const GAP_CAP: usize = 1024;

    pub fn new() -> Self {
        Self::default()
    }

    /// Occupy the link for `service` starting no earlier than `now`;
    /// returns the completion time.
    pub fn occupy(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let n = now.as_nanos();
        let s = service.as_nanos();
        // Earliest remembered gap that can hold the request.
        for i in 0..self.gaps.len() {
            let (gs, ge) = self.gaps[i];
            let start = gs.max(n);
            if start + s <= ge {
                match (start > gs, start + s < ge) {
                    (false, false) => {
                        self.gaps.remove(i);
                    }
                    (false, true) => self.gaps[i] = (start + s, ge),
                    (true, false) => self.gaps[i] = (gs, start),
                    (true, true) => {
                        self.gaps[i] = (gs, start);
                        self.gaps.insert(i + 1, (start + s, ge));
                    }
                }
                return SimTime(start + s);
            }
        }
        // Tail: after everything booked so far.
        if n > self.free_at {
            if self.gaps.len() == Self::GAP_CAP {
                self.gaps.remove(0);
            }
            self.gaps.push((self.free_at, n));
        }
        let start = self.free_at.max(n);
        self.free_at = start + s;
        SimTime(self.free_at)
    }

    /// When the link next becomes free (ignoring remembered gaps).
    #[inline]
    pub fn free_at(&self) -> SimTime {
        SimTime(self.free_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulation};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_lane_serializes_requests() {
        let srv = FifoServer::new(1, 1e9, SimDuration::ZERO); // 1 GB/s
        let t1 = srv.submit(SimTime(0), 1_000_000); // 1 MB -> 1 ms
        let t2 = srv.submit(SimTime(0), 1_000_000);
        assert_eq!(t1, SimTime(1_000_000));
        assert_eq!(t2, SimTime(2_000_000));
        assert_eq!(srv.bytes_served(), 2_000_000);
    }

    #[test]
    fn two_lanes_serve_in_parallel() {
        let srv = FifoServer::new(2, 1e9, SimDuration::ZERO);
        let t1 = srv.submit(SimTime(0), 1_000_000);
        let t2 = srv.submit(SimTime(0), 1_000_000);
        let t3 = srv.submit(SimTime(0), 1_000_000);
        assert_eq!(t1, SimTime(1_000_000));
        assert_eq!(t2, SimTime(1_000_000));
        assert_eq!(t3, SimTime(2_000_000)); // queues behind the earliest lane
    }

    #[test]
    fn per_request_overhead_is_charged() {
        let srv = FifoServer::new(1, 1e9, SimDuration::from_micros(50));
        let t = srv.submit(SimTime(0), 0);
        assert_eq!(t, SimTime(50_000));
    }

    #[test]
    fn idle_server_starts_at_request_time() {
        let srv = FifoServer::new(1, 1e9, SimDuration::ZERO);
        let t = srv.submit(SimTime(5_000_000), 1_000);
        assert_eq!(t, SimTime(5_001_000));
    }

    #[test]
    fn serve_blocks_the_calling_process() {
        let mut sim = Simulation::new(SimConfig::default());
        let srv = FifoServer::new(1, 1e9, SimDuration::ZERO);
        let finish = Arc::new(AtomicU64::new(0));
        for i in 0..2 {
            let srv = srv.clone();
            let finish = finish.clone();
            sim.spawn(format!("c{i}"), move |ctx| {
                srv.serve(ctx, 1_000_000);
                finish.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            });
        }
        sim.run_expect();
        // Two 1 MB requests on a serial 1 GB/s device: last finishes at 2 ms.
        assert_eq!(finish.load(Ordering::SeqCst), 2_000_000);
    }

    #[test]
    fn link_clock_accumulates_busy_time() {
        let mut link = LinkClock::new();
        let t1 = link.occupy(SimTime(0), SimDuration::from_micros(10));
        let t2 = link.occupy(SimTime(0), SimDuration::from_micros(10));
        let t3 = link.occupy(SimTime(100_000), SimDuration::from_micros(10));
        assert_eq!(t1, SimTime(10_000));
        assert_eq!(t2, SimTime(20_000));
        assert_eq!(t3, SimTime(110_000)); // link idle 20us..100us
    }

    #[test]
    fn link_clock_books_late_arrivals_into_idle_gaps() {
        let mut link = LinkClock::new();
        // A future booking leaves the link idle before it.
        let t1 = link.occupy(SimTime(100_000), SimDuration::from_micros(10));
        assert_eq!(t1, SimTime(110_000));
        // An earlier arrival (a lazily-clocked peer ran behind in execution
        // order) is served in the idle gap, not queued behind the future.
        let t2 = link.occupy(SimTime(5_000), SimDuration::from_micros(10));
        assert_eq!(t2, SimTime(15_000));
        // A request too large for the remaining gap queues at the tail.
        let t3 = link.occupy(SimTime(20_000), SimDuration::from_micros(90));
        assert_eq!(t3, SimTime(200_000));
        // The split leftovers are themselves reusable.
        let t4 = link.occupy(SimTime(16_000), SimDuration::from_micros(4));
        assert_eq!(t4, SimTime(20_000));
    }

    #[test]
    fn link_clock_forgets_oldest_gaps_beyond_cap() {
        let mut link = LinkClock::new();
        // Create GAP_CAP + 8 disjoint gaps of 1us each.
        let mut t = 0u64;
        for _ in 0..(LinkClock::GAP_CAP + 8) {
            t += 2_000;
            link.occupy(SimTime(t), SimDuration::from_micros(1));
            t += 1_000;
        }
        // The earliest surviving gap starts at 8 * 3000 (the first eight
        // were forgotten); a very early arrival lands there rather than at
        // the forgotten front.
        let t_early = link.occupy(SimTime(0), SimDuration::from_micros(1));
        assert_eq!(t_early, SimTime(8 * 3_000 + 1_000));
    }
}

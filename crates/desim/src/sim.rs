//! Simulation construction and execution, plus the per-process [`Ctx`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::{FaultKind, FaultPlan};
use crate::kernel::{Kernel, Pid, ProcKill, SimAbort};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Span, Trace, TraceSink};

/// Configuration knobs for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; each process derives its own RNG from `(seed, pid)`.
    pub seed: u64,
    /// Record tagged spans (see [`Ctx::trace_begin`]).
    pub trace: bool,
    /// Stack size for process threads. Simulated ranks mostly keep data on
    /// the heap, so the default is small to allow thousands of processes.
    pub stack_size: usize,
    /// Seeded failure schedule (see [`FaultPlan`]). The default empty plan
    /// injects nothing and costs nothing.
    pub fault_plan: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_1234,
            trace: false,
            stack_size: 512 * 1024,
            fault_plan: FaultPlan::default(),
        }
    }
}

/// Per-process statistics gathered during the run.
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    pub name: String,
    /// Virtual time spent in `advance` (modelled computation / service).
    pub busy: SimDuration,
    /// Virtual time at which the process body returned.
    pub finished_at: SimTime,
    /// True when the process was removed by fault injection rather than
    /// returning from its body.
    pub killed: bool,
}

/// The result of a completed simulation.
#[derive(Clone, Debug, Default)]
pub struct SimOutcome {
    /// Virtual time when the last process exited.
    pub end_time: SimTime,
    /// Per-process stats, indexed by pid.
    pub proc_stats: Vec<ProcStats>,
    /// Pids removed by fault injection, in pid order.
    pub killed: Vec<Pid>,
    /// Recorded spans (empty unless `SimConfig::trace`).
    pub trace: Trace,
}

/// A failed simulation: deadlock or a panicking process.
#[derive(Clone, Debug)]
pub struct SimError(pub String);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation failed: {}", self.0)
    }
}

impl std::error::Error for SimError {}

type ProcBody = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// A discrete-event simulation under construction. Spawn processes, then
/// [`Simulation::run`].
pub struct Simulation {
    kernel: Arc<Kernel>,
    config: SimConfig,
    trace: TraceSink,
    pending: Vec<(Pid, String, ProcBody)>,
}

impl Simulation {
    pub fn new(config: SimConfig) -> Self {
        let trace = TraceSink::new(config.trace);
        Simulation { kernel: Kernel::new(), config, trace, pending: Vec::new() }
    }

    /// Shared kernel handle (usable to pre-build primitives that need it).
    pub fn kernel(&self) -> Arc<Kernel> {
        self.kernel.clone()
    }

    /// Register a simulated process. Bodies start at virtual time zero in
    /// spawn order. Returns the process id.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> Pid {
        let name = name.into();
        let pid = self.kernel.register_proc(name.clone());
        self.pending.push((pid, name, Box::new(body)));
        pid
    }

    /// Spawn the hidden process that executes the fault plan's kills (and
    /// records fault trace spans). Pause windows are handled inside the
    /// scheduler; kills need an actor that is *at* the kill time, which is
    /// exactly what a simulated process is. The injector gets the highest
    /// pid, so application pids are unaffected.
    fn install_fault_injector(&mut self) {
        let plan = self.config.fault_plan.clone();
        if !plan.has_process_faults() {
            return;
        }
        let trace = self.trace.clone();
        self.spawn("fault-injector", move |ctx| {
            for action in plan.timeline() {
                while ctx.now() < action.at {
                    ctx.wake_self_at(action.at);
                    ctx.suspend("fault-injector: waiting for next fault time");
                }
                match action.kind {
                    FaultKind::Kill(pid) => {
                        ctx.kernel().kill(pid);
                        let now = ctx.now();
                        trace.record(Span { pid, tag: "fault-kill", start: now, end: now });
                    }
                    FaultKind::Pause { pid, until } => {
                        trace.record(Span {
                            pid,
                            tag: "fault-pause",
                            start: ctx.now(),
                            end: until,
                        });
                    }
                }
            }
        });
    }

    /// Execute the simulation to completion.
    pub fn run(mut self) -> Result<SimOutcome, SimError> {
        install_quiet_abort_hook();
        self.install_fault_injector();
        let Simulation { kernel, config, trace, pending } = self;
        kernel.set_pauses(config.fault_plan.pause_windows());
        let nprocs = pending.len();
        if nprocs == 0 {
            return Ok(SimOutcome::default());
        }
        let stats: Arc<Mutex<Vec<ProcStats>>> =
            Arc::new(Mutex::new(vec![ProcStats::default(); nprocs]));

        let mut handles = Vec::with_capacity(nprocs);
        for (pid, name, body) in pending {
            // Every process gets an initial wake-up at t=0, fired in spawn
            // order by the FIFO tie-break.
            kernel.schedule_at(SimTime::ZERO, pid);
            let kernel = kernel.clone();
            let trace = trace.clone();
            let stats = stats.clone();
            let seed = config.seed;
            let thread_name = format!("sim-{pid}-{name}");
            let handle = std::thread::Builder::new()
                .name(thread_name)
                .stack_size(config.stack_size)
                .spawn(move || {
                    // Wait for our t=0 activation before touching anything.
                    let entry = catch_unwind(AssertUnwindSafe(|| {
                        kernel.entry_wait(pid);
                    }));
                    if let Err(payload) = entry {
                        if payload.downcast_ref::<ProcKill>().is_some() {
                            // Killed before the body ever ran.
                            {
                                let mut st = stats.lock();
                                st[pid] = ProcStats {
                                    name,
                                    busy: SimDuration::ZERO,
                                    finished_at: kernel.now(),
                                    killed: true,
                                };
                            }
                            kernel.proc_exit(pid);
                        }
                        return; // aborted (or killed) before start
                    }
                    let mut ctx = Ctx {
                        kernel: kernel.clone(),
                        pid,
                        nprocs,
                        rng: derive_rng(seed, pid),
                        trace,
                        busy: SimDuration::ZERO,
                        open_spans: Vec::new(),
                    };
                    let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
                    match result {
                        Ok(()) => {
                            {
                                let mut st = stats.lock();
                                st[pid] = ProcStats {
                                    name,
                                    busy: ctx.busy,
                                    finished_at: kernel.now(),
                                    killed: false,
                                };
                            }
                            // May unwind with SimAbort on deadlock; the
                            // quiet hook keeps that silent.
                            kernel.proc_exit(pid);
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<ProcKill>().is_some() {
                                // Removed by fault injection: a clean (if
                                // abrupt) exit, not a failure.
                                {
                                    let mut st = stats.lock();
                                    st[pid] = ProcStats {
                                        name,
                                        busy: ctx.busy,
                                        finished_at: kernel.now(),
                                        killed: true,
                                    };
                                }
                                kernel.proc_exit(pid);
                                return;
                            }
                            if payload.downcast_ref::<SimAbort>().is_some() {
                                // Simulation-wide abort already in progress.
                                return;
                            }
                            let msg = panic_message(payload.as_ref());
                            kernel.mark_failed(format!("process {pid} `{name}` panicked: {msg}"));
                        }
                    }
                })
                .expect("failed to spawn simulation thread");
            handles.push(handle);
        }

        kernel.run_to_completion();
        for h in handles {
            // Threads that unwound with SimAbort report Err; that is fine.
            let _ = h.join();
        }
        if let Some(reason) = kernel.abort_reason() {
            return Err(SimError(reason));
        }
        let proc_stats =
            Arc::try_unwrap(stats).map(|m| m.into_inner()).unwrap_or_else(|arc| arc.lock().clone());
        let killed =
            proc_stats.iter().enumerate().filter(|(_, s)| s.killed).map(|(pid, _)| pid).collect();
        Ok(SimOutcome { end_time: kernel.now(), proc_stats, killed, trace: trace.take() })
    }

    /// [`Simulation::run`], panicking on failure. Convenient in tests.
    pub fn run_expect(self) -> SimOutcome {
        match self.run() {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }
}

fn derive_rng(seed: u64, pid: Pid) -> StdRng {
    // SplitMix64-style mix so neighbouring pids get unrelated streams.
    let mut z = seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Install (once) a panic hook that silences the internal [`SimAbort`] and
/// [`ProcKill`] unwinds used to tear simulations (and killed processes)
/// down, while delegating every other panic to the previous hook.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_none()
                && info.payload().downcast_ref::<ProcKill>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Handle through which a process body interacts with the simulation.
///
/// A `Ctx` is exclusive to its process: it is handed to the body as
/// `&mut Ctx` and carries the process's RNG, busy-time accounting and open
/// trace spans.
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: Pid,
    nprocs: usize,
    rng: StdRng,
    trace: TraceSink,
    busy: SimDuration,
    open_spans: Vec<(&'static str, SimTime)>,
}

impl Ctx {
    /// This process's id (dense, spawn order).
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Total number of processes in the simulation.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.nprocs
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Spend `dt` of virtual time computing (other processes run meanwhile).
    pub fn advance(&mut self, dt: SimDuration) {
        self.busy += dt;
        self.kernel.advance(self.pid, dt);
    }

    /// [`Ctx::advance`] with float seconds.
    pub fn advance_secs(&mut self, secs: f64) {
        self.advance(SimDuration::from_secs_f64(secs));
    }

    /// Suspend until some event wakes this process. May wake spuriously;
    /// callers loop on their predicate. `why` shows up in deadlock reports.
    pub fn suspend(&mut self, why: &'static str) {
        self.kernel.suspend(self.pid, why);
    }

    /// Schedule a wake-up for this process at absolute virtual time `at`.
    pub fn wake_self_at(&self, at: SimTime) {
        self.kernel.schedule_at(at, self.pid);
    }

    /// Schedule a wake-up for `pid` at absolute virtual time `at`.
    pub fn wake_at(&self, at: SimTime, pid: Pid) {
        self.kernel.schedule_at(at, pid);
    }

    /// The shared kernel (for building synchronization primitives).
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Deterministic per-process random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Virtual time this process has spent in [`Ctx::advance`] so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Open a trace span tagged `tag`. Nestable; close with
    /// [`Ctx::trace_end`] in LIFO order.
    ///
    /// Span begin/end times are always noted to the kernel (so deadlock
    /// reports can show each process's most recent span); the span is
    /// *recorded* only when the simulation runs with `SimConfig::trace`.
    pub fn trace_begin(&mut self, tag: &'static str) {
        let now = self.now();
        self.open_spans.push((tag, now));
        self.kernel.note_span(self.pid, tag, now.0, None);
    }

    /// Close the innermost open span with tag `tag` and record it.
    pub fn trace_end(&mut self, tag: &'static str) {
        let idx = self
            .open_spans
            .iter()
            .rposition(|(t, _)| *t == tag)
            .unwrap_or_else(|| panic!("trace_end(\"{tag}\") without matching trace_begin"));
        let (_, start) = self.open_spans.remove(idx);
        let now = self.now();
        self.kernel.note_span(self.pid, tag, start.0, Some(now.0));
        if self.trace.enabled() {
            self.trace.record(Span { pid: self.pid, tag, start, end: now });
        }
    }

    /// Run `f` inside a span tagged `tag`.
    pub fn traced<R>(&mut self, tag: &'static str, f: impl FnOnce(&mut Ctx) -> R) -> R {
        self.trace_begin(tag);
        let r = f(self);
        self.trace_end(tag);
        r
    }
}

//! Simulation construction and execution, plus the per-process [`Ctx`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fault::{FaultKind, FaultPlan};
use crate::kernel::{EventStats, Kernel, Pid, ProcKill, SimAbort};
use crate::raw_thread;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Span, Trace, TraceSink};

/// Configuration knobs for one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; each process derives its own RNG from `(seed, pid)`.
    pub seed: u64,
    /// Record tagged spans (see [`Ctx::trace_begin`]).
    pub trace: bool,
    /// Stack size for process threads. Simulated ranks mostly keep data on
    /// the heap, so the default is small to allow thousands of processes.
    pub stack_size: usize,
    /// Seeded failure schedule (see [`FaultPlan`]). The default empty plan
    /// injects nothing and costs nothing.
    pub fault_plan: FaultPlan,
    /// Decouple each process's local clock from the event heap: `advance`
    /// accumulates a local lead ("lag") instead of scheduling a wake-up, and
    /// the lead is reconciled at the next suspension point. Virtual-time
    /// results are preserved wherever inter-process ordering is mediated by
    /// timestamps (messages with availability times, timed wake-ups); what
    /// changes is the *execution* interleaving of independent compute
    /// stretches — and the per-advance heap event they no longer cost.
    /// Ignored (forced off) when the fault plan kills or pauses processes,
    /// since preempting a process mid-`advance` requires its local time to
    /// be on the heap.
    pub lazy_time: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed_1234,
            trace: false,
            stack_size: 512 * 1024,
            fault_plan: FaultPlan::default(),
            lazy_time: false,
        }
    }
}

/// Per-process statistics gathered during the run.
#[derive(Clone, Debug, Default)]
pub struct ProcStats {
    pub name: String,
    /// Virtual time spent in `advance` (modelled computation / service).
    pub busy: SimDuration,
    /// Virtual time at which the process body returned.
    pub finished_at: SimTime,
    /// True when the process was removed by fault injection rather than
    /// returning from its body.
    pub killed: bool,
}

/// The result of a completed simulation.
#[derive(Clone, Debug, Default)]
pub struct SimOutcome {
    /// Virtual time when the last process exited.
    pub end_time: SimTime,
    /// Per-process stats, indexed by pid.
    pub proc_stats: Vec<ProcStats>,
    /// Pids removed by fault injection, in pid order.
    pub killed: Vec<Pid>,
    /// Recorded spans (empty unless `SimConfig::trace`).
    pub trace: Trace,
    /// Kernel event-traffic counters (heap scheduling efficiency).
    pub events: EventStats,
}

/// A failed simulation: deadlock or a panicking process.
#[derive(Clone, Debug)]
pub struct SimError(pub String);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation failed: {}", self.0)
    }
}

impl std::error::Error for SimError {}

type ProcBody = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// A discrete-event simulation under construction. Spawn processes, then
/// [`Simulation::run`].
pub struct Simulation {
    kernel: Arc<Kernel>,
    config: SimConfig,
    trace: TraceSink,
    pending: Vec<(Pid, String, ProcBody)>,
}

impl Simulation {
    pub fn new(config: SimConfig) -> Self {
        let trace = TraceSink::new(config.trace);
        Simulation { kernel: Kernel::new(), config, trace, pending: Vec::new() }
    }

    /// Shared kernel handle (usable to pre-build primitives that need it).
    pub fn kernel(&self) -> Arc<Kernel> {
        self.kernel.clone()
    }

    /// Register a simulated process. Bodies start at virtual time zero in
    /// spawn order. Returns the process id.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        body: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> Pid {
        let name = name.into();
        let pid = self.kernel.register_proc(name.clone());
        self.pending.push((pid, name, Box::new(body)));
        pid
    }

    /// Spawn the hidden process that executes the fault plan's kills (and
    /// records fault trace spans). Pause windows are handled inside the
    /// scheduler; kills need an actor that is *at* the kill time, which is
    /// exactly what a simulated process is. The injector gets the highest
    /// pid, so application pids are unaffected.
    fn install_fault_injector(&mut self) {
        let plan = self.config.fault_plan.clone();
        if !plan.has_process_faults() {
            return;
        }
        let trace = self.trace.clone();
        self.spawn("fault-injector", move |ctx| {
            for action in plan.timeline() {
                while ctx.now() < action.at {
                    ctx.wake_self_at(action.at);
                    ctx.suspend("fault-injector: waiting for next fault time");
                }
                match action.kind {
                    FaultKind::Kill(pid) => {
                        ctx.kernel().kill(pid);
                        let now = ctx.now();
                        trace.record(Span { pid, tag: "fault-kill", start: now, end: now });
                    }
                    FaultKind::Pause { pid, until } => {
                        trace.record(Span {
                            pid,
                            tag: "fault-pause",
                            start: ctx.now(),
                            end: until,
                        });
                    }
                }
            }
        });
    }

    /// Execute the simulation to completion.
    pub fn run(mut self) -> Result<SimOutcome, SimError> {
        install_quiet_abort_hook();
        self.install_fault_injector();
        let Simulation { kernel, config, trace, pending } = self;
        kernel.set_pauses(config.fault_plan.pause_windows());
        let nprocs = pending.len();
        if nprocs == 0 {
            return Ok(SimOutcome::default());
        }
        let stats: Arc<Mutex<Vec<ProcStats>>> =
            Arc::new(Mutex::new(vec![ProcStats::default(); nprocs]));
        // Kills and pauses preempt processes at heap-event granularity, which
        // lazy local clocks deliberately skip — so they force eventful mode.
        let lazy = config.lazy_time && !config.fault_plan.has_process_faults();

        // Every process gets its t=0 activation up front, in pid order: the
        // heap's FIFO tie-break is what starts bodies in spawn order, so OS
        // thread creation below need not be ordered — or even finished —
        // before the simulation starts (an activation token set before its
        // thread first waits stays set until consumed).
        for (pid, _, _) in &pending {
            kernel.schedule_at(SimTime::ZERO, *pid);
        }

        // Large worlds create their threads from a small helper pool that
        // overlaps with the running simulation; small worlds spawn inline.
        // Worlds at raw-thread scale also switch spawn paths — see
        // `raw_thread` for the VMA arithmetic that makes 16K+ ranks fit.
        let raw = raw_thread::use_raw_threads(nprocs);
        let spawners = spawner_threads(nprocs);
        let mut handles = Vec::with_capacity(nprocs);
        let spawner_handles = if spawners <= 1 {
            for (pid, name, body) in pending {
                handles.push(spawn_proc_thread(
                    kernel.clone(),
                    trace.clone(),
                    stats.clone(),
                    config.seed,
                    nprocs,
                    config.stack_size,
                    lazy,
                    raw,
                    pid,
                    name,
                    body,
                ));
            }
            Vec::new()
        } else {
            let chunk_len = nprocs.div_ceil(spawners);
            let mut rest = pending;
            let mut spawner_handles = Vec::with_capacity(spawners);
            while !rest.is_empty() {
                let tail = rest.split_off(rest.len().min(chunk_len));
                let chunk = std::mem::replace(&mut rest, tail);
                let kernel = kernel.clone();
                let trace = trace.clone();
                let stats = stats.clone();
                let seed = config.seed;
                let stack_size = config.stack_size;
                spawner_handles.push(std::thread::spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(pid, name, body)| {
                            spawn_proc_thread(
                                kernel.clone(),
                                trace.clone(),
                                stats.clone(),
                                seed,
                                nprocs,
                                stack_size,
                                lazy,
                                raw,
                                pid,
                                name,
                                body,
                            )
                        })
                        .collect::<Vec<_>>()
                }));
            }
            spawner_handles
        };

        kernel.run_to_completion();
        for sh in spawner_handles {
            handles.extend(sh.join().expect("spawner thread panicked"));
        }
        for h in handles {
            h.join();
        }
        if let Some(reason) = kernel.abort_reason() {
            return Err(SimError(reason));
        }
        let proc_stats =
            Arc::try_unwrap(stats).map(|m| m.into_inner()).unwrap_or_else(|arc| arc.lock().clone());
        let killed =
            proc_stats.iter().enumerate().filter(|(_, s)| s.killed).map(|(pid, _)| pid).collect();
        Ok(SimOutcome {
            // The horizon covers lazy local clocks that outran the heap.
            end_time: SimTime(kernel.now().0.max(kernel.horizon())),
            proc_stats,
            killed,
            trace: trace.take(),
            events: kernel.event_stats(),
        })
    }

    /// [`Simulation::run`], panicking on failure. Convenient in tests.
    pub fn run_expect(self) -> SimOutcome {
        match self.run() {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }
}

/// How many helper threads to use for OS-thread creation. Inline spawning
/// is fine for small worlds; thousand-rank worlds spend most of their
/// startup in serial `thread::spawn` calls, so those get a pool bounded by
/// the host's parallelism.
fn spawner_threads(nprocs: usize) -> usize {
    if nprocs < 256 {
        return 1;
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.min(8).min(nprocs.div_ceil(64)).max(1)
}

/// One simulated process's backing OS thread, on either spawn path.
enum ProcHandle {
    Std(std::thread::JoinHandle<()>),
    Raw(raw_thread::RawJoinHandle),
}

impl ProcHandle {
    fn join(self) {
        match self {
            // Std threads that unwound with SimAbort report Err; that is
            // fine. Raw threads contain their panics internally.
            ProcHandle::Std(h) => drop(h.join()),
            ProcHandle::Raw(h) => h.join(),
        }
    }
}

/// Create the OS thread backing one simulated process. The thread parks on
/// the process token until its t=0 activation (or a later hand-off) wakes
/// it, so thread creation order is irrelevant to simulation order. `raw`
/// selects the `pthread_create` path that halves per-thread VMA cost for
/// huge worlds (see `raw_thread`); the process body is identical on both.
#[allow(clippy::too_many_arguments)]
fn spawn_proc_thread(
    kernel: Arc<Kernel>,
    trace: TraceSink,
    stats: Arc<Mutex<Vec<ProcStats>>>,
    seed: u64,
    nprocs: usize,
    stack_size: usize,
    lazy: bool,
    raw: bool,
    pid: Pid,
    name: String,
    body: ProcBody,
) -> ProcHandle {
    let thread_name = format!("sim-{pid}-{name}");
    let run = move || {
        // Wait for our t=0 activation before touching anything.
        let entry = catch_unwind(AssertUnwindSafe(|| {
            kernel.entry_wait(pid);
        }));
        if let Err(payload) = entry {
            if payload.downcast_ref::<ProcKill>().is_some() {
                // Killed before the body ever ran.
                {
                    let mut st = stats.lock();
                    st[pid] = ProcStats {
                        name,
                        busy: SimDuration::ZERO,
                        finished_at: kernel.now(),
                        killed: true,
                    };
                }
                kernel.proc_exit(pid);
            }
            return; // aborted (or killed) before start
        }
        let mut ctx = Ctx {
            kernel: kernel.clone(),
            pid,
            nprocs,
            rng: derive_rng(seed, pid),
            trace,
            busy: SimDuration::ZERO,
            open_spans: Vec::new(),
            lag: 0,
            lazy,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
        match result {
            Ok(()) => {
                // `ctx.now()` includes any unreconciled lazy lead; fold
                // it into the outcome's end time via the horizon.
                let finished_at = ctx.now();
                kernel.raise_horizon(finished_at.0);
                {
                    let mut st = stats.lock();
                    st[pid] = ProcStats { name, busy: ctx.busy, finished_at, killed: false };
                }
                // May unwind with SimAbort on deadlock; the quiet hook
                // keeps that silent.
                kernel.proc_exit(pid);
            }
            Err(payload) => {
                if payload.downcast_ref::<ProcKill>().is_some() {
                    // Removed by fault injection: a clean (if abrupt)
                    // exit, not a failure.
                    {
                        let mut st = stats.lock();
                        st[pid] = ProcStats {
                            name,
                            busy: ctx.busy,
                            finished_at: kernel.now(),
                            killed: true,
                        };
                    }
                    kernel.proc_exit(pid);
                    return;
                }
                if payload.downcast_ref::<SimAbort>().is_some() {
                    // Simulation-wide abort already in progress.
                    return;
                }
                let msg = panic_message(payload.as_ref());
                kernel.mark_failed(format!("process {pid} `{name}` panicked: {msg}"));
            }
        }
    };
    if raw {
        return ProcHandle::Raw(
            raw_thread::spawn(stack_size, Box::new(run))
                .expect("failed to spawn simulation thread"),
        );
    }
    ProcHandle::Std(
        std::thread::Builder::new()
            .name(thread_name)
            .stack_size(stack_size)
            .spawn(run)
            .expect("failed to spawn simulation thread"),
    )
}

fn derive_rng(seed: u64, pid: Pid) -> StdRng {
    // SplitMix64-style mix so neighbouring pids get unrelated streams.
    let mut z = seed ^ (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Install (once) a panic hook that silences the internal [`SimAbort`] and
/// [`ProcKill`] unwinds used to tear simulations (and killed processes)
/// down, while delegating every other panic to the previous hook.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_none()
                && info.payload().downcast_ref::<ProcKill>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Handle through which a process body interacts with the simulation.
///
/// A `Ctx` is exclusive to its process: it is handed to the body as
/// `&mut Ctx` and carries the process's RNG, busy-time accounting and open
/// trace spans.
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: Pid,
    nprocs: usize,
    rng: StdRng,
    trace: TraceSink,
    busy: SimDuration,
    open_spans: Vec<(&'static str, SimTime)>,
    /// Local lead over the kernel clock accumulated by `advance` in lazy
    /// mode ("decoupled local clock"): this process is at `kernel.now() +
    /// lag` while the heap never saw the intermediate steps. Always zero in
    /// eventful mode.
    lag: u64,
    /// Lazy local clocks on for this run (see `SimConfig::lazy_time`).
    lazy: bool,
}

impl Ctx {
    /// This process's id (dense, spawn order).
    #[inline]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Total number of processes in the simulation.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.nprocs
    }

    /// Current virtual time (this process's local clock: the kernel clock
    /// plus any lazy lead).
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.kernel.now().0 + self.lag)
    }

    /// Spend `dt` of virtual time computing (other processes run meanwhile).
    pub fn advance(&mut self, dt: SimDuration) {
        self.busy += dt;
        if self.lazy {
            // Decoupled local clock: no heap event, no hand-off — just run
            // ahead locally. Reconciled at the next `suspend`.
            self.lag += dt.0;
        } else {
            self.kernel.advance(self.pid, dt);
        }
    }

    /// [`Ctx::advance`] with float seconds.
    pub fn advance_secs(&mut self, secs: f64) {
        self.advance(SimDuration::from_secs_f64(secs));
    }

    /// Convert any lazily accumulated local lead into a real kernel advance,
    /// so the kernel clock catches up to this process's local clock (other
    /// processes run during the interval, exactly as under eventful time).
    ///
    /// Primitives mediated by *timestamps* (message availability, timed
    /// wake-ups, the gap-aware [`crate::LinkClock`]) tolerate lazy clocks
    /// as-is. Primitives mediated by *call order* — locks, FIFO grant
    /// queues, [`crate::FifoServer`] — must call this first, or a lazily
    /// leading process books/acquires ahead of peers that are earlier in
    /// virtual time. No-op in eventful mode or when there is no lead.
    pub fn commit_lag(&mut self) {
        if self.lag > 0 {
            let lead = std::mem::take(&mut self.lag);
            self.kernel.advance(self.pid, SimDuration(lead));
        }
    }

    /// Suspend until some event wakes this process. May wake spuriously;
    /// callers loop on their predicate. `why` shows up in deadlock reports.
    pub fn suspend(&mut self, why: &'static str) {
        if self.lag == 0 {
            self.kernel.suspend(self.pid, why);
            return;
        }
        // Reconcile the lazy lead commit-free: waiting and computing overlap
        // from this process's point of view. If the wake-up lands before our
        // local clock (kernel still behind `local`), the wait was already
        // covered by locally-accounted time and the remainder stays as lag;
        // if it lands after, the local clock snaps forward to the wake-up.
        // Crucially the lead is *not* converted into a kernel `advance`
        // first: that would deliver (and swallow) the very wake-up events
        // this suspension is waiting for.
        let local = self.kernel.now().0 + self.lag;
        self.kernel.suspend(self.pid, why);
        self.lag = local.saturating_sub(self.kernel.now().0);
    }

    /// Schedule a wake-up for this process at absolute virtual time `at`.
    pub fn wake_self_at(&self, at: SimTime) {
        self.kernel.schedule_at(at, self.pid);
    }

    /// Terminate this process *as if killed by a fault*: it unwinds
    /// immediately and is reported in
    /// [`SimOutcome::killed`](crate::SimOutcome::killed), exactly like a
    /// [`FaultPlan::kill`](crate::FaultPlan::kill) victim.
    ///
    /// This is the execution half of
    /// [`FaultPlan::kill_at_element`](crate::FaultPlan::kill_at_element):
    /// an application layer that counts consumed elements calls this at
    /// the scheduled cursor, giving deterministic element-granular deaths
    /// with no injector involvement.
    pub fn exit_killed(&mut self) -> ! {
        std::panic::panic_any(ProcKill)
    }

    /// Schedule a wake-up for `pid` at absolute virtual time `at`.
    pub fn wake_at(&self, at: SimTime, pid: Pid) {
        self.kernel.schedule_at(at, pid);
    }

    /// The shared kernel (for building synchronization primitives).
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Deterministic per-process random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Virtual time this process has spent in [`Ctx::advance`] so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Open a trace span tagged `tag`. Nestable; close with
    /// [`Ctx::trace_end`] in LIFO order.
    ///
    /// Span begin/end times are always noted to the kernel (so deadlock
    /// reports can show each process's most recent span); the span is
    /// *recorded* only when the simulation runs with `SimConfig::trace`.
    pub fn trace_begin(&mut self, tag: &'static str) {
        let now = self.now();
        self.open_spans.push((tag, now));
        self.kernel.note_span(self.pid, tag, now.0, None);
    }

    /// Close the innermost open span with tag `tag` and record it.
    pub fn trace_end(&mut self, tag: &'static str) {
        let idx = self
            .open_spans
            .iter()
            .rposition(|(t, _)| *t == tag)
            .unwrap_or_else(|| panic!("trace_end(\"{tag}\") without matching trace_begin"));
        let (_, start) = self.open_spans.remove(idx);
        let now = self.now();
        self.kernel.note_span(self.pid, tag, start.0, Some(now.0));
        if self.trace.enabled() {
            self.trace.record(Span { pid: self.pid, tag, start, end: now });
        }
    }

    /// Run `f` inside a span tagged `tag`.
    pub fn traced<R>(&mut self, tag: &'static str, f: impl FnOnce(&mut Ctx) -> R) -> R {
        self.trace_begin(tag);
        let r = f(self);
        self.trace_end(tag);
        r
    }
}

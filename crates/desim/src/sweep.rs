//! Deterministic parallel parameter sweeps.
//!
//! A sweep runs many *independent* simulations — one per seed, per scale
//! point, per fault plan — and each run is a pure function of its
//! configuration (see the crate docs). Runs therefore parallelize across
//! OS threads without touching determinism: [`par_map`] preserves input
//! order in its output and every run computes exactly what it would have
//! computed serially, so per-seed results (fingerprints, makespans,
//! schedules) are byte-identical at any job count.
//!
//! The worker count comes from the `SWEEP_JOBS` environment variable via
//! [`jobs`]; harnesses (the chaos suite, the figure sweeps) read it once
//! and fan out with [`par_map`]. Only *whole runs* are parallelized —
//! inside one simulation the kernel still executes exactly one process at
//! a time.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Worker threads a sweep should use.
///
/// Reads `SWEEP_JOBS` (clamped to at least 1); when unset or unparsable,
/// defaults to the host's available parallelism capped at 8 — sweeps are
/// CPU-bound, and each simulation already multiplexes its ranks over
/// dedicated OS threads, so oversubscribing buys nothing.
pub fn jobs() -> usize {
    match std::env::var("SWEEP_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(8),
    }
}

/// Map `f` over `items` on [`jobs`] worker threads, returning results in
/// input order.
///
/// Items are claimed from a shared atomic cursor, so scheduling is
/// first-come-first-served, but each result lands at its item's index —
/// output order (and content, for pure `f`) is independent of the job
/// count and of thread timing. With one job (or one item) no threads are
/// spawned at all. A panic in `f` propagates to the caller, so `assert!`s
/// inside sweep bodies keep working under parallel execution.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i].lock().take().expect("each index is claimed once");
                *slots[i].lock() = Some(f(item));
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().expect("worker filled every slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let out = par_map((0..100u64).collect(), |x| x * x);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_runs_simulations_identically_at_any_job_count() {
        use crate::sim::{SimConfig, Simulation};
        use crate::time::SimDuration;
        use rand::Rng;
        let run = |seed: u64| {
            let mut sim = Simulation::new(SimConfig { seed, ..SimConfig::default() });
            for p in 0..4u64 {
                sim.spawn(format!("p{p}"), move |ctx| {
                    for _ in 0..8 {
                        let jitter = ctx.rng().gen_range(0u64..1_000);
                        ctx.advance(SimDuration::from_nanos(1_000 + jitter));
                    }
                });
            }
            sim.run_expect().end_time.as_nanos()
        };
        let serial: Vec<u64> = (0..8u64).map(run).collect();
        let parallel = par_map((0..8u64).collect(), run);
        assert_eq!(serial, parallel);
    }
}

//! Synchronization primitives for simulated processes.
//!
//! All primitives follow the kernel's wake-up discipline: a waiter registers
//! itself, suspends, and re-checks its predicate on every wake-up. Wakers
//! schedule wake-up events at the current virtual time (or later), never
//! touching the waiter's stack directly.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{Kernel, Pid};
use crate::sim::Ctx;
use crate::time::SimTime;

/// A set of suspended processes that can be woken as a group. The building
/// block for every other primitive in this module.
#[derive(Clone, Default)]
pub struct WaitSet {
    waiters: Arc<Mutex<Vec<Pid>>>,
}

impl WaitSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register the calling process; it will be woken by the next
    /// [`WaitSet::wake_all`] / [`WaitSet::wake_one`].
    pub fn register(&self, ctx: &Ctx) {
        let mut w = self.waiters.lock();
        if !w.contains(&ctx.pid()) {
            w.push(ctx.pid());
        }
    }

    /// Wake every registered process at the current virtual time.
    pub fn wake_all(&self, kernel: &Kernel) {
        let pids: Vec<Pid> = std::mem::take(&mut *self.waiters.lock());
        let now = kernel.now();
        for pid in pids {
            kernel.schedule_at(now, pid);
        }
    }

    /// Wake the longest-waiting registered process, if any.
    pub fn wake_one(&self, kernel: &Kernel) {
        let pid = {
            let mut w = self.waiters.lock();
            if w.is_empty() {
                None
            } else {
                Some(w.remove(0))
            }
        };
        if let Some(pid) = pid {
            kernel.schedule_at(kernel.now(), pid);
        }
    }

    /// Block until `pred` returns `Some(R)`. The predicate is evaluated
    /// before every suspension and after every wake-up.
    pub fn wait_until<R>(
        &self,
        ctx: &mut Ctx,
        why: &'static str,
        mut pred: impl FnMut() -> Option<R>,
    ) -> R {
        loop {
            if let Some(r) = pred() {
                return r;
            }
            self.register(ctx);
            ctx.suspend(why);
        }
    }
}

/// A FIFO mutual-exclusion lock in virtual time. Unlike a host mutex, a
/// `SimMutex` models *contention*: a process that finds the lock held
/// suspends and resumes only when its turn comes, with virtual time having
/// advanced past the previous holders' critical sections.
pub struct SimMutex {
    inner: Mutex<MutexInner>,
}

struct MutexInner {
    held: bool,
    queue: VecDeque<Pid>,
}

impl Default for SimMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMutex {
    pub fn new() -> Self {
        SimMutex { inner: Mutex::new(MutexInner { held: false, queue: VecDeque::new() }) }
    }

    /// Acquire the lock, suspending in FIFO order while it is held.
    ///
    /// Grant order is execution order, so any lazy local lead is committed
    /// first (see [`Ctx::commit_lag`]); critical-section `advance`s under a
    /// lazy config should likewise be followed by `commit_lag` so the
    /// release happens at the right kernel time.
    pub fn lock(&self, ctx: &mut Ctx) {
        ctx.commit_lag();
        let me = ctx.pid();
        {
            let mut inner = self.inner.lock();
            if !inner.held && inner.queue.is_empty() {
                inner.held = true;
                return;
            }
            inner.queue.push_back(me);
        }
        loop {
            ctx.suspend("sim-mutex");
            let mut inner = self.inner.lock();
            if !inner.held && inner.queue.front() == Some(&me) {
                inner.queue.pop_front();
                inner.held = true;
                return;
            }
        }
    }

    /// Release the lock and wake the next waiter (if any).
    pub fn unlock(&self, ctx: &Ctx) {
        let next = {
            let mut inner = self.inner.lock();
            assert!(inner.held, "unlock of a SimMutex that is not held");
            inner.held = false;
            inner.queue.front().copied()
        };
        if let Some(pid) = next {
            let kernel = ctx.kernel();
            kernel.schedule_at(kernel.now(), pid);
        }
    }

    /// Run `f` while holding the lock.
    pub fn with<R>(&self, ctx: &mut Ctx, f: impl FnOnce(&mut Ctx) -> R) -> R {
        self.lock(ctx);
        let r = f(ctx);
        self.unlock(ctx);
        r
    }
}

/// An unbounded FIFO message queue between simulated processes, with an
/// optional per-message delivery delay. Receivers see a message only once
/// its delivery time has been reached.
pub struct SimChannel<T> {
    inner: Arc<Mutex<ChannelInner<T>>>,
    waiters: WaitSet,
}

struct ChannelInner<T> {
    queue: VecDeque<(SimTime, T)>,
    closed: bool,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel { inner: self.inner.clone(), waiters: self.waiters.clone() }
    }
}

impl<T: Send + 'static> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> SimChannel<T> {
    pub fn new() -> Self {
        SimChannel {
            inner: Arc::new(Mutex::new(ChannelInner { queue: VecDeque::new(), closed: false })),
            waiters: WaitSet::new(),
        }
    }

    /// Enqueue `msg`, visible to receivers at `now + delay` (delay given as
    /// the absolute availability time).
    pub fn send_at(&self, ctx: &Ctx, available_at: SimTime, msg: T) {
        {
            let mut inner = self.inner.lock();
            assert!(!inner.closed, "send on closed SimChannel");
            inner.queue.push_back((available_at, msg));
        }
        // Wake waiters *at the availability time* so they re-check then.
        let kernel = ctx.kernel();
        let at = available_at.max(kernel.now());
        let pids: Vec<Pid> = std::mem::take(&mut *self.waiters.waiters.lock());
        for pid in pids {
            kernel.schedule_at(at, pid);
        }
    }

    /// Enqueue `msg` for immediate availability.
    pub fn send(&self, ctx: &Ctx, msg: T) {
        self.send_at(ctx, ctx.now(), msg);
    }

    /// Close the channel: pending messages stay receivable, further `recv`
    /// on an empty queue returns `None`.
    pub fn close(&self, ctx: &Ctx) {
        self.inner.lock().closed = true;
        self.waiters.wake_all(ctx.kernel());
    }

    /// Take the head message if it is available now.
    pub fn try_recv(&self, ctx: &Ctx) -> Option<T> {
        let now = ctx.now();
        let mut inner = self.inner.lock();
        if let Some((at, _)) = inner.queue.front() {
            if *at <= now {
                return inner.queue.pop_front().map(|(_, m)| m);
            }
        }
        None
    }

    /// Block until a message is available (returns `Some`) or the channel is
    /// closed and drained (returns `None`).
    pub fn recv(&self, ctx: &mut Ctx) -> Option<T> {
        loop {
            let now = ctx.now();
            {
                let mut inner = self.inner.lock();
                match inner.queue.front() {
                    Some((at, _)) if *at <= now => {
                        return inner.queue.pop_front().map(|(_, m)| m);
                    }
                    Some((at, _)) => {
                        // Head in flight: make sure we wake when it lands.
                        let at = *at;
                        drop(inner);
                        self.waiters.register(ctx);
                        ctx.wake_self_at(at);
                    }
                    None if inner.closed => return None,
                    None => {
                        drop(inner);
                        self.waiters.register(ctx);
                    }
                }
            }
            ctx.suspend("channel-recv");
        }
    }

    /// Number of enqueued messages (available or in flight).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A counting semaphore in virtual time: `acquire` suspends while no
/// permits are free, FIFO among waiters. Useful for modelling bounded
/// resources whose service time the *caller* spends (I/O slots, memory
/// budgets) — in contrast to [`crate::FifoServer`], which owns the rate.
pub struct SimSemaphore {
    inner: Mutex<SemInner>,
}

struct SemInner {
    permits: usize,
    queue: VecDeque<Pid>,
}

impl SimSemaphore {
    pub fn new(permits: usize) -> Self {
        SimSemaphore { inner: Mutex::new(SemInner { permits, queue: VecDeque::new() }) }
    }

    /// Take one permit, suspending FIFO while none is free.
    ///
    /// Grant order is execution order; lazy local leads are committed first
    /// (see [`Ctx::commit_lag`]).
    pub fn acquire(&self, ctx: &mut Ctx) {
        ctx.commit_lag();
        let me = ctx.pid();
        {
            let mut inner = self.inner.lock();
            if inner.permits > 0 && inner.queue.is_empty() {
                inner.permits -= 1;
                return;
            }
            inner.queue.push_back(me);
        }
        loop {
            ctx.suspend("sim-semaphore");
            let mut inner = self.inner.lock();
            if inner.permits > 0 && inner.queue.front() == Some(&me) {
                inner.queue.pop_front();
                inner.permits -= 1;
                // Two releases may both have woken us (the then-front);
                // pass any leftover permit on to the next waiter.
                if inner.permits > 0 {
                    if let Some(&next) = inner.queue.front() {
                        let kernel = ctx.kernel();
                        kernel.schedule_at(kernel.now(), next);
                    }
                }
                return;
            }
        }
    }

    /// Return one permit and wake the head waiter, if any.
    pub fn release(&self, ctx: &Ctx) {
        let next = {
            let mut inner = self.inner.lock();
            inner.permits += 1;
            inner.queue.front().copied()
        };
        if let Some(pid) = next {
            let kernel = ctx.kernel();
            kernel.schedule_at(kernel.now(), pid);
        }
    }

    /// Currently free permits (diagnostics).
    pub fn available(&self) -> usize {
        self.inner.lock().permits
    }
}

/// A simple counting barrier: the `n`-th arriving process releases everyone.
pub struct SimBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    waiters: WaitSet,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl SimBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier size must be positive");
        SimBarrier {
            n,
            state: Mutex::new(BarrierState { arrived: 0, generation: 0 }),
            waiters: WaitSet::new(),
        }
    }

    /// Block until `n` processes have arrived.
    ///
    /// The releasing wake happens at the last arriver's kernel time, so
    /// lazy local leads are committed first (see [`Ctx::commit_lag`]).
    pub fn wait(&self, ctx: &mut Ctx) {
        ctx.commit_lag();
        let gen = {
            let mut st = self.state.lock();
            st.arrived += 1;
            if st.arrived == self.n {
                st.arrived = 0;
                st.generation += 1;
                drop(st);
                self.waiters.wake_all(ctx.kernel());
                return;
            }
            st.generation
        };
        loop {
            self.waiters.register(ctx);
            {
                let st = self.state.lock();
                if st.generation != gen {
                    return;
                }
            }
            ctx.suspend("barrier");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulation};
    use crate::time::SimDuration;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_delivers_in_order_with_delay() {
        let mut sim = Simulation::new(SimConfig::default());
        let ch: SimChannel<u32> = SimChannel::new();
        let tx = ch.clone();
        sim.spawn("sender", move |ctx| {
            tx.send_at(ctx, SimTime(1_000), 1);
            tx.send_at(ctx, SimTime(2_000), 2);
            tx.close(ctx);
        });
        let rx = ch.clone();
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), Some(1));
            assert_eq!(ctx.now(), SimTime(1_000));
            assert_eq!(rx.recv(ctx), Some(2));
            assert_eq!(ctx.now(), SimTime(2_000));
            assert_eq!(rx.recv(ctx), None);
        });
        sim.run_expect();
    }

    #[test]
    fn mutex_serializes_critical_sections_fifo() {
        let mut sim = Simulation::new(SimConfig::default());
        let mx = Arc::new(SimMutex::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4usize {
            let mx = mx.clone();
            let order = order.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                // Stagger arrivals so the FIFO order is deterministic.
                ctx.advance(SimDuration::from_nanos(i as u64 * 10));
                mx.lock(ctx);
                order.lock().push((i, ctx.now()));
                ctx.advance(SimDuration::from_micros(1));
                mx.unlock(ctx);
            });
        }
        sim.run_expect();
        let order = order.lock();
        let ids: Vec<usize> = order.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Each holder entered only after the previous one's full critical
        // section (1 us) elapsed.
        for w in order.windows(2) {
            assert!(w[1].1 >= w[0].1 + SimDuration::from_micros(1));
        }
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut sim = Simulation::new(SimConfig::default());
        let bar = Arc::new(SimBarrier::new(3));
        let released = Arc::new(AtomicUsize::new(0));
        for i in 0..3usize {
            let bar = bar.clone();
            let released = released.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                ctx.advance(SimDuration::from_micros(i as u64));
                bar.wait(ctx);
                // Everyone resumes at the last arrival time (2 us).
                assert_eq!(ctx.now(), SimTime(2_000));
                released.fetch_add(1, Ordering::SeqCst);
            });
        }
        sim.run_expect();
        assert_eq!(released.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn waitset_wake_one_is_fifo() {
        let mut sim = Simulation::new(SimConfig::default());
        let ws = WaitSet::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3usize {
            let ws = ws.clone();
            let order = order.clone();
            sim.spawn(format!("w{i}"), move |ctx| {
                // Register in pid order (staggered arrivals), then suspend
                // until the waker pops us. No stray events exist in this
                // scenario, so a single suspend is exact.
                ctx.advance(SimDuration::from_nanos(i as u64));
                ws.register(ctx);
                ctx.suspend("waitset-test");
                order.lock().push((i, ctx.now()));
            });
        }
        {
            let ws = ws.clone();
            sim.spawn("waker", move |ctx| {
                for _ in 0..3 {
                    ctx.advance(SimDuration::from_micros(1));
                    ws.wake_one(ctx.kernel());
                }
            });
        }
        sim.run_expect();
        let order = order.lock();
        assert_eq!(*order, vec![(0, SimTime(1_000)), (1, SimTime(2_000)), (2, SimTime(3_000)),]);
    }
}

#[cfg(test)]
mod semaphore_tests {
    use super::*;
    use crate::sim::{SimConfig, Simulation};
    use crate::time::{SimDuration, SimTime};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn semaphore_bounds_concurrency() {
        // 4 workers, 2 permits, 1 ms critical sections: finish in 2 waves.
        let mut sim = Simulation::new(SimConfig::default());
        let sem = Arc::new(SimSemaphore::new(2));
        let last = Arc::new(AtomicU64::new(0));
        for i in 0..4usize {
            let (sem, last) = (sem.clone(), last.clone());
            sim.spawn(format!("w{i}"), move |ctx| {
                sem.acquire(ctx);
                ctx.advance(SimDuration::from_millis(1));
                sem.release(ctx);
                last.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            });
        }
        sim.run_expect();
        assert_eq!(last.load(Ordering::SeqCst), 2_000_000);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_grants_fifo() {
        let mut sim = Simulation::new(SimConfig::default());
        let sem = Arc::new(SimSemaphore::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3usize {
            let (sem, order) = (sem.clone(), order.clone());
            sim.spawn(format!("w{i}"), move |ctx| {
                ctx.advance(SimDuration::from_nanos(i as u64));
                sem.acquire(ctx);
                order.lock().push((i, ctx.now()));
                ctx.advance(SimDuration::from_micros(10));
                sem.release(ctx);
            });
        }
        sim.run_expect();
        let order = order.lock();
        assert_eq!(order[0].0, 0);
        assert_eq!(order[1], (1, SimTime(10_000)));
        assert_eq!(order[2], (2, SimTime(20_000)));
    }
}

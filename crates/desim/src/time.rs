//! Virtual time types.
//!
//! Simulated time is an unsigned count of **nanoseconds** since the start of
//! the simulation. Integer nanoseconds keep event ordering exact and
//! platform-independent (no floating-point comparison hazards in the event
//! heap) while still covering ~584 years of simulated time, far beyond any
//! experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "SimTime::since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from integer nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a duration from integer microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from integer milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from float seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero — model code
    /// frequently computes `max(0, x)`-style slack and a tiny negative
    /// rounding residue must not panic a whole simulation.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// The time it takes to move `bytes` bytes at `bytes_per_sec`.
    #[inline]
    pub fn from_bytes_at(bytes: u64, bytes_per_sec: f64) -> Self {
        debug_assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Self::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_nanos(), 1_500_000_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        let u = t + SimDuration::from_millis(500);
        assert_eq!((u - t).as_nanos(), 500_000_000);
        assert_eq!(u.since(t), SimDuration::from_millis(500));
        assert!(u > t);
    }

    #[test]
    fn bytes_at_bandwidth() {
        // 8 MB at 8 GB/s = 1 ms.
        let d = SimDuration::from_bytes_at(8 << 20, 8e9);
        assert_eq!(d.as_nanos(), 1_048_576);
    }

    #[test]
    fn duration_scaling_and_sum() {
        let d = SimDuration::from_micros(10) * 3;
        assert_eq!(d.as_nanos(), 30_000);
        assert_eq!((d / 3).as_nanos(), 10_000);
        let s: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(s.as_nanos(), 90_000);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_nanos(4));
    }
}

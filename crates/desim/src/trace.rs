//! Span tracing in virtual time.
//!
//! Processes record `(pid, tag, start, end)` spans; after the run the
//! collected [`Trace`] can be queried, dumped as CSV or rendered as an
//! ASCII Gantt chart — the moral equivalent of the HPCToolkit timelines in
//! Figure 2 of the paper.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::Pid;
use crate::time::{SimDuration, SimTime};

/// One recorded interval on one process's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    pub pid: Pid,
    /// Static category tag, e.g. `"comp"`, `"comm"`, `"io"`, `"idle"`.
    pub tag: &'static str,
    pub start: SimTime,
    pub end: SimTime,
}

impl Span {
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

#[derive(Default)]
struct TraceShared {
    // `enabled` is fixed at construction (there is no set-enabled API), so
    // a relaxed load is all the disabled fast path ever pays — the span
    // mutex is only touched when tracing is actually on. `trace_begin`/
    // `trace_end` sit on the engine hot path measured by `engine_bench`.
    enabled: AtomicBool,
    spans: Mutex<Vec<Span>>,
}

/// Shared trace recorder. Lock-free no-op unless enabled.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Arc<TraceShared>,
}

impl TraceSink {
    pub fn new(enabled: bool) -> Self {
        TraceSink {
            inner: Arc::new(TraceShared {
                enabled: AtomicBool::new(enabled),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    pub fn record(&self, span: Span) {
        if self.enabled() {
            self.inner.spans.lock().push(span);
        }
    }

    /// Drain the recording into a [`Trace`] (spans sorted by
    /// `(pid, start, end)`).
    pub fn take(&self) -> Trace {
        let mut spans = std::mem::take(&mut *self.inner.spans.lock());
        spans.sort_by_key(|s| (s.pid, s.start.as_nanos(), s.end.as_nanos()));
        Trace { spans }
    }
}

/// The finished trace of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All spans recorded by one process, in time order.
    pub fn for_pid(&self, pid: Pid) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.pid == pid).collect()
    }

    /// Total time each tag accounts for on each process.
    pub fn totals_by_tag(&self) -> HashMap<(Pid, &'static str), SimDuration> {
        let mut map: HashMap<(Pid, &'static str), SimDuration> = HashMap::new();
        for s in &self.spans {
            *map.entry((s.pid, s.tag)).or_default() += s.duration();
        }
        map
    }

    /// Latest end time over all spans.
    pub fn horizon(&self) -> SimTime {
        self.spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO)
    }

    /// Per-process utilization summary: for each pid, the fraction of the
    /// trace horizon covered by each tag. The Fig. 2-style headline
    /// numbers ("compute ranks are busy 95% of the time") fall out of
    /// this directly.
    pub fn utilization(&self) -> Vec<(Pid, Vec<(&'static str, f64)>)> {
        let horizon = self.horizon().as_secs_f64().max(f64::MIN_POSITIVE);
        let totals = self.totals_by_tag();
        let npids = self.spans.iter().map(|s| s.pid + 1).max().unwrap_or(0);
        let mut out = Vec::with_capacity(npids);
        for pid in 0..npids {
            let mut tags: Vec<(&'static str, f64)> = totals
                .iter()
                .filter(|((p, _), _)| *p == pid)
                .map(|((_, tag), d)| (*tag, d.as_secs_f64() / horizon))
                .collect();
            tags.sort_by(|a, b| a.0.cmp(b.0));
            out.push((pid, tags));
        }
        out
    }

    /// Dump as CSV (`pid,tag,start_s,end_s`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("pid,tag,start_s,end_s\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.9}",
                s.pid,
                s.tag,
                s.start.as_secs_f64(),
                s.end.as_secs_f64()
            );
        }
        out
    }

    /// Render an ASCII Gantt chart, one row per pid, `width` columns across
    /// the full time horizon. Gaps are `.`; glyphs come from `glyph_of`.
    pub fn to_gantt_with(&self, width: usize, glyph_of: impl Fn(&str) -> char) -> String {
        let horizon = self.horizon().as_nanos().max(1);
        let npids = self.spans.iter().map(|s| s.pid + 1).max().unwrap_or(0);
        let mut out = String::new();
        for pid in 0..npids {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.pid == pid) {
                let a = (s.start.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let b = (s.end.as_nanos() as u128 * width as u128 / horizon as u128) as usize;
                let glyph = glyph_of(s.tag);
                for cell in row.iter_mut().take(b.min(width - 1) + 1).skip(a.min(width - 1)) {
                    *cell = glyph;
                }
            }
            let _ = writeln!(out, "P{:<3} |{}|", pid, row.iter().collect::<String>());
        }
        out
    }

    /// [`Trace::to_gantt_with`] using a default glyph scheme: the common
    /// HPC tags get distinct letters (`comp` → `C`, `comm` → `M`,
    /// `io` → `I`), anything else its capitalised first character.
    pub fn to_gantt(&self, width: usize) -> String {
        self.to_gantt_with(width, |tag| match tag {
            "comp" => 'C',
            "comm" => 'M',
            "io" => 'I',
            other => other.chars().next().unwrap_or('?').to_ascii_uppercase(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: Pid, tag: &'static str, a: u64, b: u64) -> Span {
        Span { pid, tag, start: SimTime(a), end: SimTime(b) }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new(false);
        sink.record(span(0, "comp", 0, 10));
        assert!(sink.take().is_empty());
    }

    #[test]
    fn totals_accumulate_per_pid_and_tag() {
        let sink = TraceSink::new(true);
        sink.record(span(0, "comp", 0, 10));
        sink.record(span(0, "comp", 20, 25));
        sink.record(span(1, "comm", 0, 7));
        let trace = sink.take();
        let totals = trace.totals_by_tag();
        assert_eq!(totals[&(0, "comp")], SimDuration::from_nanos(15));
        assert_eq!(totals[&(1, "comm")], SimDuration::from_nanos(7));
        assert_eq!(trace.horizon(), SimTime(25));
    }

    #[test]
    fn csv_and_gantt_render() {
        let sink = TraceSink::new(true);
        sink.record(span(0, "comp", 0, 500));
        sink.record(span(1, "comm", 500, 1000));
        let trace = sink.take();
        let csv = trace.to_csv();
        assert!(csv.starts_with("pid,tag,start_s,end_s"));
        assert_eq!(csv.lines().count(), 3);
        let gantt = trace.to_gantt(20);
        assert!(gantt.contains('C'));
        assert_eq!(gantt.lines().count(), 2);
    }

    #[test]
    fn for_pid_filters_and_sorts() {
        let sink = TraceSink::new(true);
        sink.record(span(1, "b", 10, 20));
        sink.record(span(1, "a", 0, 10));
        sink.record(span(0, "x", 0, 5));
        let trace = sink.take();
        let p1 = trace.for_pid(1);
        assert_eq!(p1.len(), 2);
        assert_eq!(p1[0].tag, "a");
        assert_eq!(p1[1].tag, "b");
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;

    #[test]
    fn utilization_fractions_are_relative_to_horizon() {
        let sink = TraceSink::new(true);
        sink.record(Span { pid: 0, tag: "comp", start: SimTime(0), end: SimTime(80) });
        sink.record(Span { pid: 0, tag: "comm", start: SimTime(80), end: SimTime(100) });
        sink.record(Span { pid: 1, tag: "comp", start: SimTime(0), end: SimTime(50) });
        let trace = sink.take();
        let util = trace.utilization();
        assert_eq!(util.len(), 2);
        let p0: std::collections::HashMap<_, _> = util[0].1.iter().copied().collect();
        assert!((p0["comp"] - 0.8).abs() < 1e-12);
        assert!((p0["comm"] - 0.2).abs() < 1e-12);
        let p1: std::collections::HashMap<_, _> = util[1].1.iter().copied().collect();
        assert!((p1["comp"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_trace_is_empty() {
        let trace = TraceSink::new(true).take();
        assert!(trace.utilization().is_empty());
    }
}

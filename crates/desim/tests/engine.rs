//! Engine-level integration tests: determinism, failure handling, scale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use desim::sync::{SimBarrier, SimChannel};
use desim::{FaultPlan, SimConfig, SimDuration, SimTime, Simulation};
use parking_lot::Mutex;
use rand::Rng;

#[test]
fn empty_simulation_completes_at_time_zero() {
    let sim = Simulation::new(SimConfig::default());
    let out = sim.run().unwrap();
    assert_eq!(out.end_time, SimTime::ZERO);
    assert!(out.proc_stats.is_empty());
}

#[test]
fn processes_start_at_time_zero_in_spawn_order() {
    let mut sim = Simulation::new(SimConfig::default());
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..5usize {
        let order = order.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            order.lock().push(i);
        });
    }
    sim.run_expect();
    assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn advance_interleaves_processes_by_virtual_time() {
    let mut sim = Simulation::new(SimConfig::default());
    let log = Arc::new(Mutex::new(Vec::new()));
    // p0 steps 3x10us, p1 steps 2x15us: interleaving must follow the clock.
    for (i, step, count) in [(0usize, 10u64, 3usize), (1, 15, 2)] {
        let log = log.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            for _ in 0..count {
                ctx.advance(SimDuration::from_micros(step));
                log.lock().push((i, ctx.now().as_nanos() / 1_000));
            }
        });
    }
    sim.run_expect();
    // At t=30 both processes have events; ties break FIFO by *schedule*
    // time, and p1 scheduled its t=30 wake-up at t=15, before p0's at t=20.
    assert_eq!(*log.lock(), vec![(0, 10), (1, 15), (0, 20), (1, 30), (0, 30)]);
}

#[test]
fn outcome_reports_busy_time_and_finish_time() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn("worker", |ctx| {
        ctx.advance(SimDuration::from_millis(3));
    });
    sim.spawn("idler", |_ctx| {});
    let out = sim.run_expect();
    assert_eq!(out.end_time, SimTime(3_000_000));
    assert_eq!(out.proc_stats[0].busy, SimDuration::from_millis(3));
    assert_eq!(out.proc_stats[0].finished_at, SimTime(3_000_000));
    assert_eq!(out.proc_stats[1].busy, SimDuration::ZERO);
    assert_eq!(out.proc_stats[1].finished_at, SimTime::ZERO);
}

#[test]
fn deadlock_is_detected_and_reported() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn("stuck", |ctx| {
        ctx.suspend("waiting for godot");
    });
    let err = sim.run().unwrap_err();
    assert!(err.0.contains("deadlock"), "got: {}", err.0);
    assert!(err.0.contains("waiting for godot"), "got: {}", err.0);
    assert!(err.0.contains("stuck"), "got: {}", err.0);
}

#[test]
fn deadlock_with_partner_processes_is_detected() {
    // Two processes each waiting for the other to wake them.
    let mut sim = Simulation::new(SimConfig::default());
    for i in 0..2 {
        sim.spawn(format!("p{i}"), |ctx| {
            ctx.suspend("mutual wait");
        });
    }
    let err = sim.run().unwrap_err();
    assert!(err.0.contains("deadlock"));
}

#[test]
fn process_panic_fails_the_simulation_with_message() {
    let mut sim = Simulation::new(SimConfig::default());
    sim.spawn("ok", |ctx| {
        ctx.advance(SimDuration::from_secs(1));
    });
    sim.spawn("bad", |ctx| {
        ctx.advance(SimDuration::from_micros(1));
        panic!("boom at {:?}", ctx.now());
    });
    let err = sim.run().unwrap_err();
    assert!(err.0.contains("boom"), "got: {}", err.0);
    assert!(err.0.contains("bad"), "got: {}", err.0);
}

#[test]
fn identical_seeds_give_identical_outcomes() {
    fn run_once(seed: u64) -> (u64, Vec<u64>) {
        let mut sim = Simulation::new(SimConfig { seed, ..SimConfig::default() });
        let ch: SimChannel<u64> = SimChannel::new();
        let samples = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8usize {
            let tx = ch.clone();
            let samples = samples.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                for _ in 0..20 {
                    let jitter: f64 = ctx.rng().gen_range(0.0..1e-4);
                    samples.lock().push((jitter * 1e9) as u64);
                    ctx.advance_secs(1e-5 + jitter);
                    tx.send(ctx, ctx.now().as_nanos());
                }
            });
        }
        let out = sim.run_expect();
        let s = samples.lock().clone();
        (out.end_time.as_nanos(), s)
    }
    let a = run_once(42);
    let b = run_once(42);
    let c = run_once(43);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a.0, c.0, "different seed should perturb timing");
}

#[test]
fn different_pids_get_decorrelated_rngs() {
    let mut sim = Simulation::new(SimConfig::default());
    let draws = Arc::new(Mutex::new(Vec::new()));
    for i in 0..4usize {
        let draws = draws.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            let v: u64 = ctx.rng().gen();
            draws.lock().push(v);
        });
    }
    sim.run_expect();
    let draws = draws.lock();
    let mut dedup = draws.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), draws.len(), "per-pid RNG streams collided");
}

#[test]
fn trace_records_spans_in_virtual_time() {
    let mut sim = Simulation::new(SimConfig { trace: true, ..SimConfig::default() });
    sim.spawn("p", |ctx| {
        ctx.traced("comp", |ctx| ctx.advance(SimDuration::from_micros(10)));
        ctx.traced("comm", |ctx| ctx.advance(SimDuration::from_micros(5)));
    });
    let out = sim.run_expect();
    let spans = out.trace.spans();
    assert_eq!(spans.len(), 2);
    assert_eq!(spans[0].tag, "comp");
    assert_eq!(spans[0].start, SimTime::ZERO);
    assert_eq!(spans[0].end, SimTime(10_000));
    assert_eq!(spans[1].tag, "comm");
    assert_eq!(spans[1].end, SimTime(15_000));
}

#[test]
fn nested_trace_spans_close_lifo() {
    let mut sim = Simulation::new(SimConfig { trace: true, ..SimConfig::default() });
    sim.spawn("p", |ctx| {
        ctx.trace_begin("outer");
        ctx.advance(SimDuration::from_micros(1));
        ctx.trace_begin("inner");
        ctx.advance(SimDuration::from_micros(2));
        ctx.trace_end("inner");
        ctx.advance(SimDuration::from_micros(1));
        ctx.trace_end("outer");
    });
    let out = sim.run_expect();
    let totals = out.trace.totals_by_tag();
    assert_eq!(totals[&(0, "outer")], SimDuration::from_micros(4));
    assert_eq!(totals[&(0, "inner")], SimDuration::from_micros(2));
}

#[test]
fn barrier_synchronises_thousand_processes() {
    const N: usize = 1_000;
    let mut sim = Simulation::new(SimConfig::default());
    let bar = Arc::new(SimBarrier::new(N));
    let max_t = Arc::new(AtomicU64::new(0));
    for i in 0..N {
        let bar = bar.clone();
        let max_t = max_t.clone();
        sim.spawn(format!("p{i}"), move |ctx| {
            ctx.advance(SimDuration::from_nanos(i as u64));
            bar.wait(ctx);
            max_t.fetch_max(ctx.now().as_nanos(), Ordering::SeqCst);
            assert!(ctx.now() >= SimTime(N as u64 - 1));
        });
    }
    sim.run_expect();
    assert_eq!(max_t.load(Ordering::SeqCst), N as u64 - 1);
}

/// The big one: the Fig. 5-8 experiments need 8,192 simulated ranks. Verify
/// the engine can host that many coroutine threads and push a meaningful
/// number of events through them.
#[test]
fn scales_to_8192_processes() {
    const N: usize = 8_192;
    let mut sim = Simulation::new(SimConfig::default());
    let ch: SimChannel<usize> = SimChannel::new();
    let done = Arc::new(AtomicU64::new(0));
    for i in 0..N {
        let ch = ch.clone();
        let done = done.clone();
        sim.spawn(format!("r{i}"), move |ctx| {
            for _ in 0..4 {
                ctx.advance(SimDuration::from_micros(1));
                ch.send(ctx, i);
                // Keep the queue from growing unboundedly.
                let _ = ch.try_recv(ctx);
            }
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    let out = sim.run_expect();
    assert_eq!(done.load(Ordering::SeqCst), N as u64);
    assert_eq!(out.end_time, SimTime(4_000));
    assert_eq!(out.proc_stats.len(), N);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[test]
fn killed_process_is_removed_and_reported() {
    let mut sim = Simulation::new(SimConfig {
        fault_plan: FaultPlan::new(1).kill(1, SimTime(5_000)),
        ..SimConfig::default()
    });
    let survivor_done = Arc::new(AtomicU64::new(0));
    {
        let survivor_done = survivor_done.clone();
        sim.spawn("survivor", move |ctx| {
            ctx.advance(SimDuration::from_micros(20));
            survivor_done.store(1, Ordering::SeqCst);
        });
    }
    let victim_progress = Arc::new(AtomicU64::new(0));
    {
        let victim_progress = victim_progress.clone();
        sim.spawn("victim", move |ctx| {
            for _ in 0..100 {
                ctx.advance(SimDuration::from_micros(1));
                victim_progress.store(ctx.now().as_nanos(), Ordering::SeqCst);
            }
        });
    }
    let out = sim.run().unwrap();
    assert_eq!(out.killed, vec![1]);
    assert!(out.proc_stats[1].killed);
    assert!(!out.proc_stats[0].killed);
    assert_eq!(survivor_done.load(Ordering::SeqCst), 1, "survivor must finish");
    // The victim stopped at the kill time, far short of its 100us of work.
    // Its step *completing* at t=5000 is pre-empted by the kill (scheduled
    // earlier), so the last completed step is the one at t=4000.
    assert_eq!(victim_progress.load(Ordering::SeqCst), 4_000);
    assert_eq!(out.end_time, SimTime(20_000));
}

#[test]
fn kill_at_time_zero_removes_process_before_it_runs() {
    let mut sim = Simulation::new(SimConfig {
        fault_plan: FaultPlan::new(1).kill(0, SimTime::ZERO),
        ..SimConfig::default()
    });
    let ran = Arc::new(AtomicU64::new(0));
    {
        let ran = ran.clone();
        sim.spawn("victim", move |ctx| {
            // The t=0 kill beats any advance; at most the first statements
            // at t=0 may run depending on activation order, so count loop
            // iterations rather than asserting nothing ran.
            for _ in 0..10 {
                ctx.advance(SimDuration::from_micros(1));
                ran.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    sim.spawn("bystander", |ctx| ctx.advance(SimDuration::from_micros(1)));
    let out = sim.run().unwrap();
    assert_eq!(out.killed, vec![0]);
    assert_eq!(ran.load(Ordering::SeqCst), 0);
}

/// Regression: when every live process is blocked on a process that fault
/// injection killed, the deadlock detector must fire (a readable error),
/// not hang the host test process.
#[test]
fn deadlock_detector_fires_when_blocked_on_killed_process() {
    let mut sim = Simulation::new(SimConfig {
        fault_plan: FaultPlan::new(1).kill(0, SimTime(1_000)),
        ..SimConfig::default()
    });
    let ch: SimChannel<u64> = SimChannel::new();
    let tx = ch.clone();
    sim.spawn("producer", move |ctx| {
        // Would send at t=10us, but is killed at t=1us.
        ctx.advance(SimDuration::from_micros(10));
        tx.send(ctx, 7);
    });
    let rx = ch.clone();
    sim.spawn("consumer", move |ctx| {
        // Blocks forever: the message never arrives.
        let _ = rx.recv(ctx);
    });
    let err = sim.run().unwrap_err();
    assert!(err.0.contains("deadlock"), "got: {}", err.0);
    assert!(err.0.contains("consumer"), "got: {}", err.0);
}

#[test]
fn paused_process_defers_events_until_resume() {
    // The victim advances in 10us steps; a 50us pause starting at 15us
    // stretches its second step's wake-up from t=20us to t=65us.
    let run = |plan: FaultPlan| {
        let mut sim = Simulation::new(SimConfig { fault_plan: plan, ..SimConfig::default() });
        let times = Arc::new(Mutex::new(Vec::new()));
        let t2 = times.clone();
        sim.spawn("victim", move |ctx| {
            for _ in 0..3 {
                ctx.advance(SimDuration::from_micros(10));
                t2.lock().push(ctx.now().as_nanos());
            }
        });
        sim.run().unwrap();
        let v = times.lock().clone();
        v
    };
    assert_eq!(run(FaultPlan::default()), vec![10_000, 20_000, 30_000]);
    let paused = run(FaultPlan::new(1).pause(0, SimTime(15_000), SimDuration::from_micros(50)));
    assert_eq!(paused, vec![10_000, 65_000, 75_000]);
}

#[test]
fn fault_spans_appear_in_trace() {
    let mut sim = Simulation::new(SimConfig {
        trace: true,
        fault_plan: FaultPlan::new(1).kill(0, SimTime(2_000)).pause(
            1,
            SimTime(1_000),
            SimDuration::from_micros(3),
        ),
        ..SimConfig::default()
    });
    for i in 0..2 {
        sim.spawn(format!("p{i}"), |ctx| {
            for _ in 0..10 {
                ctx.advance(SimDuration::from_micros(1));
            }
        });
    }
    let out = sim.run().unwrap();
    let kills: Vec<_> = out.trace.spans().iter().filter(|s| s.tag == "fault-kill").collect();
    let pauses: Vec<_> = out.trace.spans().iter().filter(|s| s.tag == "fault-pause").collect();
    assert_eq!(kills.len(), 1);
    assert_eq!(kills[0].pid, 0);
    assert_eq!(kills[0].start, SimTime(2_000));
    assert_eq!(pauses.len(), 1);
    assert_eq!(pauses[0].pid, 1);
    assert_eq!(pauses[0].start, SimTime(1_000));
    assert_eq!(pauses[0].end, SimTime(4_000));
}

#[test]
fn fault_injected_runs_replay_identically() {
    let run = || {
        let mut sim = Simulation::new(SimConfig {
            seed: 77,
            fault_plan: FaultPlan::new(9).kill(2, SimTime(40_000)).pause(
                0,
                SimTime(10_000),
                SimDuration::from_micros(25),
            ),
            ..SimConfig::default()
        });
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4usize {
            let log = log.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                for _ in 0..30 {
                    let jitter: f64 = ctx.rng().gen_range(0.0..1e-5);
                    ctx.advance_secs(1e-6 + jitter);
                    log.lock().push((i, ctx.now().as_nanos()));
                }
            });
        }
        let out = sim.run().unwrap();
        let events = log.lock().clone();
        (out.end_time, out.killed.clone(), events)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds and plans must replay bit-identically");
    assert_eq!(a.1, vec![2]);
}

#[test]
fn empty_fault_plan_changes_nothing() {
    let run = |plan: FaultPlan| {
        let mut sim = Simulation::new(SimConfig { fault_plan: plan, ..SimConfig::default() });
        for i in 0..3usize {
            sim.spawn(format!("p{i}"), move |ctx| {
                for _ in 0..5 {
                    ctx.advance(SimDuration::from_micros(i as u64 + 1));
                }
            });
        }
        let out = sim.run().unwrap();
        assert!(out.killed.is_empty());
        // No hidden injector process with an empty plan.
        assert_eq!(out.proc_stats.len(), 3);
        out.end_time
    };
    // A non-default plan seed must not perturb a fault-free run either.
    assert_eq!(run(FaultPlan::default()), run(FaultPlan::new(0xDEAD_BEEF)));
}

#[test]
fn lazy_time_matches_eventful_end_time() {
    // Pure-compute programs never touch the heap under a lazy clock; the
    // run's end time must still cover every local lead (via the horizon).
    let run = |lazy: bool| {
        let mut sim = Simulation::new(SimConfig { lazy_time: lazy, ..SimConfig::default() });
        for i in 0..4u64 {
            sim.spawn(format!("p{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_micros(i + 1));
                }
            });
        }
        let out = sim.run_expect();
        (out.end_time, out.proc_stats.iter().map(|p| p.finished_at).collect::<Vec<_>>())
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn lazy_lead_survives_a_suspend() {
    // A process 10us ahead of the kernel suspends on a 5us wake: the wake
    // is in its local past, so the local clock must stay at 10us — waiting
    // and computing overlap, they do not add.
    let mut sim = Simulation::new(SimConfig { lazy_time: true, ..SimConfig::default() });
    sim.spawn("p", |ctx| {
        ctx.advance(SimDuration::from_micros(10));
        ctx.wake_self_at(SimTime(5_000));
        ctx.suspend("test-nap");
        assert_eq!(ctx.now(), SimTime(10_000));
        // A wake strictly past the local lead does advance the clock.
        ctx.wake_self_at(SimTime(25_000));
        ctx.suspend("test-nap");
        assert_eq!(ctx.now(), SimTime(25_000));
    });
    assert_eq!(sim.run_expect().end_time, SimTime(25_000));
}

#[test]
fn lazy_time_is_forced_off_under_process_faults() {
    // A kill plan needs committed time (the victim must die mid-compute,
    // not after lazily finishing its whole body), so `lazy_time` must not
    // change a faulty run's outcome.
    let run = |lazy: bool| {
        let plan = FaultPlan::new(7).kill(1, SimTime(25_000));
        let mut sim = Simulation::new(SimConfig {
            lazy_time: lazy,
            fault_plan: plan,
            ..SimConfig::default()
        });
        for i in 0..3usize {
            sim.spawn(format!("p{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.advance(SimDuration::from_micros(i as u64 + 4));
                }
            });
        }
        let out = sim.run_expect();
        (out.end_time, out.killed.clone())
    };
    let (end, killed) = run(true);
    assert_eq!(killed, vec![1]);
    assert_eq!((end, killed), run(false));
}

//! Property-based tests of engine invariants.

use std::sync::Arc;

use desim::sync::SimChannel;
use desim::{FifoServer, SimConfig, SimDuration, SimTime, Simulation};
use parking_lot::Mutex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Virtual time observed by any single process is monotonically
    /// non-decreasing across arbitrary advance patterns.
    #[test]
    fn per_process_clock_is_monotone(steps in prop::collection::vec(
        prop::collection::vec(0u64..50_000, 1..20), 1..8)
    ) {
        let mut sim = Simulation::new(SimConfig::default());
        let violations = Arc::new(Mutex::new(0usize));
        for (i, proc_steps) in steps.into_iter().enumerate() {
            let violations = violations.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                let mut last = ctx.now();
                for ns in proc_steps {
                    ctx.advance(SimDuration::from_nanos(ns));
                    if ctx.now() < last {
                        *violations.lock() += 1;
                    }
                    last = ctx.now();
                }
            });
        }
        sim.run_expect();
        prop_assert_eq!(*violations.lock(), 0);
    }

    /// End time equals the max total advance over processes when they do
    /// not interact.
    #[test]
    fn end_time_is_max_of_independent_processes(durs in prop::collection::vec(0u64..1_000_000, 1..20)) {
        let mut sim = Simulation::new(SimConfig::default());
        for (i, d) in durs.iter().enumerate() {
            let d = *d;
            sim.spawn(format!("p{i}"), move |ctx| {
                ctx.advance(SimDuration::from_nanos(d));
            });
        }
        let out = sim.run_expect();
        prop_assert_eq!(out.end_time.as_nanos(), durs.into_iter().max().unwrap());
    }

    /// Channels conserve messages: everything sent is received exactly once
    /// and in send order per producer (single consumer).
    #[test]
    fn channel_conserves_messages(
        payloads in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..30), 1..6)
    ) {
        let mut sim = Simulation::new(SimConfig::default());
        let ch: SimChannel<(usize, u32)> = SimChannel::new();
        let n_producers = payloads.len();
        let expected: Vec<Vec<u32>> = payloads.clone();
        let remaining = Arc::new(Mutex::new(n_producers));
        for (i, items) in payloads.into_iter().enumerate() {
            let ch = ch.clone();
            let remaining = remaining.clone();
            sim.spawn(format!("prod{i}"), move |ctx| {
                for v in items {
                    ctx.advance(SimDuration::from_nanos(1));
                    ch.send(ctx, (i, v));
                }
                let mut r = remaining.lock();
                *r -= 1;
                if *r == 0 {
                    drop(r);
                    ch.close(ctx);
                }
            });
        }
        let got = Arc::new(Mutex::new(vec![Vec::new(); n_producers]));
        {
            let ch = ch.clone();
            let got = got.clone();
            sim.spawn("consumer", move |ctx| {
                while let Some((i, v)) = ch.recv(ctx) {
                    got.lock()[i].push(v);
                }
            });
        }
        sim.run_expect();
        prop_assert_eq!(&*got.lock(), &expected);
    }

    /// A FIFO server never serves more than `lanes * rate * horizon` bytes:
    /// bandwidth conservation.
    #[test]
    fn fifo_server_respects_aggregate_bandwidth(
        sizes in prop::collection::vec(1u64..5_000_000, 1..40),
        lanes in 1usize..4,
    ) {
        let rate = 1e9; // 1 GB/s per lane
        let srv = FifoServer::new(lanes, rate, SimDuration::ZERO);
        let mut t_done = SimTime::ZERO;
        for s in &sizes {
            t_done = t_done.max(srv.submit(SimTime::ZERO, *s));
        }
        let total: u64 = sizes.iter().sum();
        let horizon = t_done.as_secs_f64();
        let max_bytes = lanes as f64 * rate * horizon;
        prop_assert!(total as f64 <= max_bytes * 1.0001 + 1.0,
            "served {total} bytes in {horizon}s on {lanes} lanes");
        prop_assert_eq!(srv.bytes_served(), total);
    }

    /// Simulations are reproducible: running the same random scenario twice
    /// yields the identical end time.
    #[test]
    fn random_scenarios_are_reproducible(
        seed in any::<u64>(),
        n in 2usize..12,
        iters in 1usize..10,
    ) {
        fn run(seed: u64, n: usize, iters: usize) -> u64 {
            let mut sim = Simulation::new(SimConfig { seed, ..SimConfig::default() });
            let ch: SimChannel<u64> = SimChannel::new();
            for i in 0..n {
                let ch = ch.clone();
                sim.spawn(format!("p{i}"), move |ctx| {
                    use rand::Rng;
                    for _ in 0..iters {
                        let w: u64 = ctx.rng().gen_range(1..10_000);
                        ctx.advance(SimDuration::from_nanos(w));
                        if i % 2 == 0 {
                            ch.send(ctx, w);
                        } else {
                            let _ = ch.try_recv(ctx);
                        }
                    }
                });
            }
            sim.run_expect().end_time.as_nanos()
        }
        prop_assert_eq!(run(seed, n, iters), run(seed, n, iters));
    }
}

//! Anchor crate for the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`); see the target declarations in this
//! crate's `Cargo.toml`. It exports nothing of its own.

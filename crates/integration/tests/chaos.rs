//! Deterministic chaos testing (DST) of the decoupled stream pipeline.
//!
//! Every test here derives a random fault schedule — producer kills, link
//! drops on the victims' links, bounded delay spikes — from a seed, runs a
//! producer/consumer streaming pipeline under it, and checks three
//! invariants:
//!
//! 1. **No deadlock**: the run completes; every rank either finishes its
//!    body or is killed by the plan.
//! 2. **Conservation for survivors**: every element a surviving producer
//!    injected is delivered exactly once — per consumer, `delivered`
//!    equals the producer's `Term` claim, and the claims across consumers
//!    sum to the producer's element count. Killed producers end as `Dead`
//!    verdicts with partial delivery and no claim.
//! 3. **Replay determinism**: the same seed reproduces the identical
//!    fingerprint — end time, kill list, drop count, per-producer
//!    accounting and an order-insensitive payload checksum.
//!
//! The sweep size is tunable for CI smoke runs: `CHAOS_SEEDS` (count) and
//! `CHAOS_SEED_START` (first seed) — see `ci.sh`. Seeds run in parallel
//! on `SWEEP_JOBS` threads (see [`desim::sweep`]); each run is a pure
//! function of its seed, so fingerprints are byte-identical at any job
//! count and invariants are still checked in seed order.

use std::ops::ControlFlow;
use std::sync::Arc;

use mpisim::{FaultPlan, LinkFault, MachineConfig, NoiseModel, SimDuration, SimTime, World};
use mpistream::{ChannelConfig, ProducerState, Role, RoutePolicy, Stream, StreamChannel};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use replica::{run_replicated, ReplicaRole, ReplicatedProducer};

/// Elements stream for at least `PER_ELEM_SECS * MIN_ELEMS` = 1.5ms of
/// virtual time; kills land strictly inside [100us, 1ms], so a victim is
/// always killed mid-stream (before it can send its `Term`).
const PER_ELEM_SECS: f64 = 10e-6;
const MIN_ELEMS: u64 = 150;
const MAX_ELEMS: u64 = 400;

/// No link fault opens before this: channel creation (an untimed
/// collective at t=0) completes within a few microseconds on the quiet
/// machine, and faulting its handshake would model a mid-bootstrap crash
/// this harness does not target.
const CREATE_GRACE_NS: u64 = 50_000;

/// Failure-detection timeout. Consumer patience is twice this, and it must
/// exceed the longest *legitimate* silence: under Static routing a
/// producer pinned to the other consumer sends a given consumer nothing
/// until its final `Term` at ~4ms (`MAX_ELEMS * PER_ELEM_SECS` plus delay
/// spikes), which must not read as death. 2 * 3ms = 6ms clears that with
/// margin, while victims (killed by 1ms) are still detected.
const FAILURE_TIMEOUT_MS: u64 = 3;

/// One seed's randomized world + fault schedule.
#[derive(Clone, Debug)]
struct Schedule {
    n_producers: usize,
    n_consumers: usize,
    per_producer: u64,
    aggregation: usize,
    credits: Option<usize>,
    route: RoutePolicy,
    plan: FaultPlan,
    /// Producer ranks the plan kills (sorted).
    kills: Vec<usize>,
}

fn schedule(seed: u64) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD57_C0DE);
    let n_producers = rng.gen_range(2usize..=5);
    let n_consumers = rng.gen_range(1usize..=2);
    let per_producer = rng.gen_range(MIN_ELEMS..=MAX_ELEMS);
    let aggregation = rng.gen_range(1usize..=4);
    let credits = if rng.gen_bool(0.5) { None } else { Some(rng.gen_range(8usize..=64)) };
    let route = if rng.gen_bool(0.5) { RoutePolicy::RoundRobin } else { RoutePolicy::Static };

    let mut plan = FaultPlan::new(seed);
    let n_kills = rng.gen_range(0usize..=2).min(n_producers - 1); // >= 1 survivor
    let mut victims: Vec<usize> = (0..n_producers).collect();
    let mut kills = Vec::new();
    for _ in 0..n_kills {
        let v = victims.swap_remove(rng.gen_range(0..victims.len()));
        let at = SimTime(rng.gen_range(100_000u64..=1_000_000));
        plan = plan.kill(v, at);
        // Half the victims also die "messily": part of their stream data
        // is randomly dropped. The drop window opens only after
        // `CREATE_GRACE` — channel creation is an untimed collective, so
        // losing its handshake traffic would hang the world, which is a
        // test-harness artifact rather than a protocol defect. Only
        // victims' links lose data, so surviving producers keep an exact
        // conservation obligation.
        if rng.gen_bool(0.5) {
            let from = SimTime(rng.gen_range(CREATE_GRACE_NS..at.0));
            for c in 0..n_consumers {
                plan = plan.link(
                    LinkFault::new(v, n_producers + c)
                        .window(from, SimTime(u64::MAX))
                        .drop_prob(rng.gen_range(0.05f64..0.5)),
                );
            }
        }
        kills.push(v);
    }
    // Bounded delay spikes on arbitrary data links: far below the
    // consumer patience (see `FAILURE_TIMEOUT_MS`), so they slow the
    // stream without ever causing a false death verdict. Again windowed
    // past channel creation: a spike there could stall the collective
    // beyond a kill time and hang it.
    for _ in 0..rng.gen_range(0usize..=2) {
        let p = rng.gen_range(0..n_producers);
        let c = n_producers + rng.gen_range(0..n_consumers);
        let from = rng.gen_range(CREATE_GRACE_NS..1_500_000);
        let until = from + rng.gen_range(50_000u64..=300_000);
        plan = plan.link(
            LinkFault::new(p, c)
                .window(SimTime(from), SimTime(until))
                .delay(SimDuration::from_micros(rng.gen_range(10u64..=150))),
        );
    }
    kills.sort_unstable();
    Schedule { n_producers, n_consumers, per_producer, aggregation, credits, route, plan, kills }
}

/// Everything observable about one run, totally ordered for replay
/// comparison.
#[derive(Clone, Debug, PartialEq)]
struct Fingerprint {
    end_ns: u64,
    killed: Vec<usize>,
    msgs_dropped: u64,
    /// (consumer rank, producer rank, delivered, claim, died) — sorted.
    reports: Vec<(usize, usize, u64, Option<u64>, bool)>,
    /// (consumer rank, processed, order-insensitive checksum) — sorted.
    consumed: Vec<(usize, u64, u64)>,
    /// Producer ranks whose `terminate()` returned (survivors) — sorted.
    clean: Vec<usize>,
    /// Sanitizer finding codes (SC101/SC102/SC103) — sorted.
    san_codes: Vec<&'static str>,
}

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

fn run_chaos(seed: u64) -> (Schedule, Fingerprint) {
    let s = schedule(seed);
    // The happens-before sanitizer rides along on every chaos run: the
    // stream protocol must produce zero reports on fault-free schedules,
    // and never a race or credit overrun even under kills and link drops
    // (orphans from a victim's in-flight messages are legitimate).
    let world = World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(seed)
        .with_fault_plan(s.plan.clone())
        .with_check();
    let nprocs = s.n_producers + s.n_consumers;
    let (n_producers, per_producer) = (s.n_producers, s.per_producer);
    let config = ChannelConfig {
        element_bytes: 512,
        aggregation: s.aggregation,
        credits: s.credits,
        route: s.route,
        credit_batch: 1,
        failure_timeout: Some(SimDuration::from_millis(FAILURE_TIMEOUT_MS)),
        replicas: 0,
        replication_patience: None,
    };
    let clean: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    // Per consumer: (rank, processed, checksum, per-producer reports).
    type ConsumerLog = Vec<(usize, u64, u64, Vec<(usize, u64, Option<u64>, bool)>)>;
    let consumer_log: Arc<Mutex<ConsumerLog>> = Arc::new(Mutex::new(Vec::new()));
    let (cl, co) = (clean.clone(), consumer_log.clone());
    let out = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let role = if me < n_producers { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config.clone());
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..per_producer {
                    rank.compute_exact(PER_ELEM_SECS);
                    stream.isend(rank, (me as u64) << 32 | i);
                }
                stream.terminate(rank);
                // Only survivors reach this line; a killed producer
                // unwinds out of the loop above.
                cl.lock().push(me);
            }
            Role::Consumer => {
                let mut processed = 0u64;
                let mut checksum = 0u64;
                let outcome = stream.operate_outcome(rank, |_, v| {
                    processed += 1;
                    checksum = checksum.wrapping_add(mix64(v));
                });
                assert_eq!(outcome.processed, processed);
                let reports = outcome
                    .producers
                    .iter()
                    .map(|r| (r.rank, r.delivered, r.claimed, r.state == ProducerState::Dead))
                    .collect();
                co.lock().push((me, processed, checksum, reports));
            }
            Role::Bystander => unreachable!(),
        }
    });
    let mut clean = clean.lock().clone();
    clean.sort_unstable();
    let mut reports = Vec::new();
    let mut consumed = Vec::new();
    for (c, processed, checksum, rs) in consumer_log.lock().iter() {
        consumed.push((*c, *processed, *checksum));
        for &(p, delivered, claim, died) in rs {
            reports.push((*c, p, delivered, claim, died));
        }
    }
    reports.sort_unstable();
    consumed.sort_unstable();
    let mut killed = out.sim.killed.clone();
    killed.sort_unstable();
    let mut san_codes: Vec<&'static str> = out.san_reports.iter().map(|r| r.code()).collect();
    san_codes.sort_unstable();
    (
        s,
        Fingerprint {
            end_ns: out.sim.end_time.as_nanos(),
            killed,
            msgs_dropped: out.msgs_dropped,
            reports,
            consumed,
            clean,
            san_codes,
        },
    )
}

/// Check invariants 1 and 2 for one seed's run.
fn check_invariants(seed: u64, s: &Schedule, fp: &Fingerprint) {
    // 1. Completion: every rank accounted for — killed exactly per plan,
    //    every survivor's terminate() returned, every consumer reported.
    assert_eq!(fp.killed, s.kills, "seed {seed}: kill list mismatch");
    let survivors: Vec<usize> = (0..s.n_producers).filter(|p| !s.kills.contains(p)).collect();
    assert_eq!(fp.clean, survivors, "seed {seed}: survivors must terminate cleanly");
    assert_eq!(fp.consumed.len(), s.n_consumers, "seed {seed}: every consumer completes");

    // 2. Conservation. Per consumer: survivors are Terminated with
    //    delivered == claimed; victims are Dead with no claim and at most
    //    their pre-kill output delivered.
    let mut delivered_from_survivor = vec![0u64; s.n_producers];
    for &(c, p, delivered, claim, died) in &fp.reports {
        if survivors.contains(&p) {
            assert!(!died, "seed {seed}: consumer {c} declared live producer {p} dead");
            let claim = claim.unwrap_or_else(|| {
                panic!("seed {seed}: consumer {c} missing Term claim of survivor {p}")
            });
            assert_eq!(
                delivered, claim,
                "seed {seed}: consumer {c} lost elements of surviving producer {p}"
            );
            delivered_from_survivor[p] += delivered;
        } else {
            assert!(died, "seed {seed}: consumer {c} never detected killed producer {p}");
            assert_eq!(claim, None, "seed {seed}: a victim cannot have claimed a total");
            assert!(
                delivered < s.per_producer,
                "seed {seed}: victim {p} was killed mid-stream yet delivered everything"
            );
        }
    }
    for &p in &survivors {
        assert_eq!(
            delivered_from_survivor[p], s.per_producer,
            "seed {seed}: surviving producer {p}'s elements not conserved"
        );
    }
    // Per consumer, the processed total is exactly the sum of attributed
    // deliveries (nothing double-counted, nothing unattributed).
    for &(c, processed, _) in &fp.consumed {
        let attributed: u64 =
            fp.reports.iter().filter(|&&(rc, ..)| rc == c).map(|&(_, _, d, _, _)| d).sum();
        assert_eq!(processed, attributed, "seed {seed}: consumer {c} attribution gap");
    }

    // 3. Sanitizer: the stream protocol must never trip the happens-before
    //    checker — no wildcard races (internal receives are protocol-
    //    ordered) and no credit overruns, under any fault schedule. On a
    //    fault-free schedule there are no findings at all; with faults,
    //    only orphans (a victim's undrained in-flight traffic) may remain.
    assert!(
        !fp.san_codes.iter().any(|&c| c == "SC101" || c == "SC103"),
        "seed {seed}: sanitizer flagged the protocol: {:?}",
        fp.san_codes
    );
    if s.plan.is_empty() {
        assert!(
            fp.san_codes.is_empty(),
            "seed {seed}: fault-free run has sanitizer findings: {:?}",
            fp.san_codes
        );
    }
}

fn sweep_range() -> (u64, u64) {
    let start = std::env::var("CHAOS_SEED_START").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let count = std::env::var("CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(250);
    (start, count)
}

/// The main sweep: hundreds of seeded fault schedules, each checked for
/// completion and conservation.
#[test]
fn chaos_sweep_holds_invariants_across_seeds() {
    let (start, count) = sweep_range();
    let seeds: Vec<u64> = (start..start + count).collect();
    let runs = desim::sweep::par_map(seeds, |seed| (seed, run_chaos(seed)));
    let mut runs_with_kills = 0u64;
    let mut runs_with_drops = 0u64;
    for (seed, (s, fp)) in &runs {
        check_invariants(*seed, s, fp);
        runs_with_kills += u64::from(!fp.killed.is_empty());
        runs_with_drops += u64::from(fp.msgs_dropped > 0);
    }
    // Meta-check on full sweeps: the harness must actually exercise
    // faults, or the invariants above pass vacuously.
    if count >= 100 {
        assert!(runs_with_kills > count / 4, "suspiciously few kill schedules");
        assert!(runs_with_drops > count / 20, "suspiciously few lossy schedules");
    }
}

/// Invariant 3: identical seeds replay to identical fingerprints —
/// including virtual end time, kill/drop accounting and payload checksums.
#[test]
fn chaos_runs_replay_identically() {
    let (start, count) = sweep_range();
    // A slice of the sweep, re-run and compared bit-for-bit. The two
    // replays of a seed deliberately land on *different* worker threads
    // (all first runs, then all second runs), so this also certifies that
    // parallel dispatch leaves fingerprints untouched.
    let seeds: Vec<u64> = (start..start + count).step_by((count as usize / 10).max(1)).collect();
    let first = desim::sweep::par_map(seeds.clone(), |seed| run_chaos(seed).1);
    let second = desim::sweep::par_map(seeds.clone(), |seed| run_chaos(seed).1);
    for ((seed, a), b) in seeds.iter().zip(first).zip(second) {
        assert_eq!(a, b, "seed {seed}: fingerprint diverged between replays");
    }
}

/// Fault-free seeds (no kill, no link fault) must conserve *everything*:
/// all producers terminate, nothing is dropped, and both consumers'
/// accounting matches the injected totals exactly.
#[test]
fn chaos_fault_free_schedules_conserve_everything() {
    let (start, count) = sweep_range();
    // Schedules are a cheap pure function of the seed, so fault-free
    // seeds are selected up front and only those runs are paid for.
    let seeds: Vec<u64> = (start..start + count).filter(|&s| schedule(s).plan.is_empty()).collect();
    let seen = seeds.len() as u64;
    let runs = desim::sweep::par_map(seeds, |seed| (seed, run_chaos(seed)));
    for (seed, (s, fp)) in &runs {
        assert_eq!(fp.msgs_dropped, 0, "seed {seed}");
        assert_eq!(fp.killed, Vec::<usize>::new(), "seed {seed}");
        assert_eq!(fp.san_codes, Vec::<&str>::new(), "seed {seed}: sanitizer findings");
        let total: u64 = fp.consumed.iter().map(|&(_, p, _)| p).sum();
        assert_eq!(total, s.per_producer * s.n_producers as u64, "seed {seed}");
    }
    // With the default range a healthy share of schedules is fault-free.
    if count >= 100 {
        assert!(seen > 0, "no fault-free schedule in the sweep range");
    }
}

// ---------------------------------------------------------------------------
// Consumer-death chaos.
//
// An *unreplicated* channel reacts to a consumer kill with bounded loss:
// producers convict the silent consumer after the failure timeout, drop
// (Static) or re-route (RoundRobin) its traffic, and terminate cleanly —
// the pipeline never hangs, but the victim's elements die with it. That
// contract is pinned first. `crates/replica` upgrades the same kill to
// exactly-once: the replica-group sweep below asserts that for every
// seeded kill schedule the survivors' folded state equals the full
// payload multiset — nothing lost, nothing folded twice.
//
// Replicated runs do not enable the happens-before sanitizer: its
// per-link credit ledger assumes the rank that received a batch is the
// rank that acknowledges it, which a takeover violates by design.
// ---------------------------------------------------------------------------

/// Order-insensitive checksum of the full expected payload multiset.
fn expected_checksum(n_producers: usize, per_producer: u64) -> u64 {
    let mut sum = 0u64;
    for p in 0..n_producers as u64 {
        for i in 0..per_producer {
            sum = sum.wrapping_add(mix64(p << 32 | i));
        }
    }
    sum
}

/// Regression pin for unreplicated channels: a consumer killed at an
/// exact element cursor terminates the pipeline instead of hanging it,
/// and the loss accounting matches the route policy — Static drops the
/// victim's pinned tail into `StreamStats::lost`, RoundRobin re-routes
/// it to the survivor and loses only what was in flight at the kill.
#[test]
fn chaos_unreplicated_consumer_kill_terminates_with_bounded_loss() {
    for route in [RoutePolicy::Static, RoutePolicy::RoundRobin] {
        let (n_producers, n_consumers, per_producer) = (3usize, 2usize, 200u64);
        let victim = n_producers + 1; // consumer index 1
        let plan = FaultPlan::new(40).kill_at_element(victim, 25);
        let world =
            World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
                .with_seed(40)
                .with_fault_plan(plan);
        let config = ChannelConfig {
            element_bytes: 512,
            aggregation: 2,
            credits: Some(8),
            route,
            credit_batch: 1,
            failure_timeout: Some(SimDuration::from_millis(FAILURE_TIMEOUT_MS)),
            replicas: 0,
            replication_patience: None,
        };
        // Per producer: elements dropped on the floor after conviction.
        let lost: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        // Survivor consumer: (processed, per-producer (delivered, claim, died)).
        type SurvivorLog = Vec<(u64, Vec<(u64, Option<u64>, bool)>)>;
        let survived: Arc<Mutex<SurvivorLog>> = Arc::new(Mutex::new(Vec::new()));
        let (lo, su) = (lost.clone(), survived.clone());
        let out = world.run_expect(n_producers + n_consumers, move |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank();
            let role = if me < n_producers { Role::Producer } else { Role::Consumer };
            let ch = StreamChannel::create(rank, &comm, role, config.clone());
            let mut stream: Stream<u64> = Stream::attach(ch);
            match role {
                Role::Producer => {
                    for i in 0..per_producer {
                        rank.compute_exact(PER_ELEM_SECS);
                        stream.isend(rank, (me as u64) << 32 | i);
                    }
                    stream.terminate(rank);
                    lo.lock().push((me, stream.stats().lost));
                }
                Role::Consumer => {
                    let mut processed = 0u64;
                    let outcome = stream.operate_outcome(rank, |r, _| {
                        processed += 1;
                        if r.fault_plan().element_kill(r.world_rank()) == Some(processed) {
                            r.exit_killed();
                        }
                    });
                    let reports = outcome
                        .producers
                        .iter()
                        .map(|p| (p.delivered, p.claimed, p.state == ProducerState::Dead))
                        .collect();
                    su.lock().push((outcome.processed, reports));
                }
                Role::Bystander => unreachable!(),
            }
        });
        // The run completed — that is the headline regression — with
        // exactly the planned kill and every producer terminating.
        assert_eq!(out.sim.killed, vec![victim], "{route:?}");
        let lost = lost.lock().clone();
        assert_eq!(lost.len(), n_producers, "{route:?}: every producer must terminate");
        let survivor = survived.lock().clone();
        assert_eq!(survivor.len(), 1, "{route:?}: only the surviving consumer reports");
        // No producer died, so the survivor's accounting must balance
        // exactly: everything addressed to it arrived.
        let (processed, reports) = &survivor[0];
        for &(delivered, claim, died) in reports {
            assert!(!died, "{route:?}: no producer was killed");
            assert_eq!(Some(delivered), claim, "{route:?}: survivor lost addressed elements");
        }
        // The victim's share is gone: the stream conserves strictly less
        // than the injected total.
        let total = per_producer * n_producers as u64;
        assert!(*processed < total, "{route:?}: the victim's elements cannot all survive");
        let dropped: u64 = lost.iter().map(|&(_, l)| l).sum();
        match route {
            // Producer 1 is pinned to the dead consumer: its tail is
            // dropped and accounted, not silently vanished.
            RoutePolicy::Static => assert!(dropped > 0, "Static must account dropped elements"),
            // Re-routing forwards the tail to the survivor instead.
            RoutePolicy::RoundRobin => {
                assert_eq!(dropped, 0, "RoundRobin re-routes, it never drops")
            }
        }
    }
}

/// What a replicated seed's fault schedule kills.
#[derive(Clone, Copy, Debug, PartialEq)]
enum RepKill {
    Nothing,
    /// The view-0 primary, at this exact folded-element cursor.
    Primary {
        at_element: u64,
    },
    /// A standby (group offset 1 or 2), at a wall-clock instant inside
    /// the streaming window.
    Standby {
        offset: usize,
    },
}

/// One seed's randomized replicated world + kill schedule.
#[derive(Clone, Debug)]
struct RepSchedule {
    n_producers: usize,
    per_producer: u64,
    aggregation: usize,
    credits: usize,
    kill: RepKill,
    plan: FaultPlan,
}

fn rep_schedule(seed: u64) -> RepSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_C0DE);
    let n_producers = rng.gen_range(2usize..=4);
    let per_producer = rng.gen_range(MIN_ELEMS..=MAX_ELEMS);
    let aggregation = rng.gen_range(1usize..=4);
    let credits = rng.gen_range(8usize..=64);
    let primary = n_producers; // consumers[0] is the view-0 primary
    let total = per_producer * n_producers as u64;
    let (kill, plan) = match rng.gen_range(0u32..4) {
        0 => (RepKill::Nothing, FaultPlan::new(seed)),
        // A standby death must be invisible (quorum stays 2 of 3). The
        // kill instant lands inside the streaming window: producers
        // stream for at least MIN_ELEMS * PER_ELEM_SECS = 1.5ms.
        1 => {
            let offset = rng.gen_range(1usize..=2);
            let at = SimTime(rng.gen_range(100_000u64..=1_000_000));
            (RepKill::Standby { offset }, FaultPlan::new(seed).kill(primary + offset, at))
        }
        // The headline case: the primary dies at an exact element
        // cursor, mid-stream, and the successor must replay from the
        // last committed checkpoint.
        _ => {
            let at_element = rng.gen_range(1..=total * 3 / 4);
            (
                RepKill::Primary { at_element },
                FaultPlan::new(seed).kill_at_element(primary, at_element),
            )
        }
    };
    RepSchedule { n_producers, per_producer, aggregation, credits, kill, plan }
}

/// Everything observable about one replicated run, totally ordered.
/// (rank, role code, view, folded state, commits).
type RepOutcomeRow = (usize, u8, u64, u64, u64);
/// (rank, sent, resent, takeovers, view).
type RepFinishRow = (usize, u64, u64, u64, u64);

#[derive(Clone, Debug, PartialEq)]
struct RepFingerprint {
    end_ns: u64,
    killed: Vec<usize>,
    /// Sorted by rank.
    outcomes: Vec<RepOutcomeRow>,
    /// Sorted by rank.
    finishes: Vec<RepFinishRow>,
}

fn run_replicated_chaos(seed: u64) -> (RepSchedule, RepFingerprint) {
    let s = rep_schedule(seed);
    let world = World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(seed)
        .with_fault_plan(s.plan.clone());
    let nprocs = s.n_producers + 3;
    let (n_producers, per_producer) = (s.n_producers, s.per_producer);
    let config = ChannelConfig {
        element_bytes: 512,
        aggregation: s.aggregation,
        credits: Some(s.credits),
        route: RoutePolicy::Static,
        credit_batch: 1,
        failure_timeout: Some(SimDuration::from_millis(FAILURE_TIMEOUT_MS)),
        replicas: 2,
        replication_patience: None,
    };
    let outcomes: Arc<Mutex<Vec<RepOutcomeRow>>> = Arc::new(Mutex::new(Vec::new()));
    let finishes: Arc<Mutex<Vec<RepFinishRow>>> = Arc::new(Mutex::new(Vec::new()));
    let (oc, fin) = (outcomes.clone(), finishes.clone());
    let out = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let role = if me < n_producers { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config.clone());
        match role {
            Role::Producer => {
                let mut p: ReplicatedProducer<u64> = ReplicatedProducer::new(ch);
                for i in 0..per_producer {
                    rank.compute_exact(PER_ELEM_SECS);
                    p.push(rank, (me as u64) << 32 | i);
                }
                let f = p.finish(rank);
                fin.lock().push((me, f.sent, f.resent, f.takeovers, f.view));
            }
            Role::Consumer => {
                let mut folded = 0u64;
                let o = run_replicated::<u64, u64, _, _>(rank, &ch, 0, |r, acc, v| {
                    folded += 1;
                    if r.fault_plan().element_kill(r.world_rank()) == Some(folded) {
                        r.exit_killed();
                    }
                    *acc = acc.wrapping_add(mix64(v));
                    ControlFlow::Continue(())
                });
                let role_code = match o.role {
                    ReplicaRole::Primary => 1u8,
                    ReplicaRole::Standby => 2,
                    ReplicaRole::Died => 3,
                };
                oc.lock().push((me, role_code, o.view, o.state, o.commits));
            }
            Role::Bystander => unreachable!(),
        }
    });
    let mut killed = out.sim.killed.clone();
    killed.sort_unstable();
    let mut outcomes = outcomes.lock().clone();
    outcomes.sort_unstable();
    let mut finishes = finishes.lock().clone();
    finishes.sort_unstable();
    (s, RepFingerprint { end_ns: out.sim.end_time.as_nanos(), killed, outcomes, finishes })
}

/// Exactly-once invariants for one replicated seed.
fn check_rep_invariants(seed: u64, s: &RepSchedule, fp: &RepFingerprint) {
    let expect = expected_checksum(s.n_producers, s.per_producer);
    let primary = s.n_producers;
    // Which consumer must end as primary, in which view, and who died.
    let (planned_kills, head, view) = match s.kill {
        RepKill::Nothing => (vec![], primary, 0),
        RepKill::Standby { offset } => (vec![primary + offset], primary, 0),
        RepKill::Primary { .. } => (vec![primary], primary + 1, 1),
    };
    assert_eq!(fp.killed, planned_kills, "seed {seed}: kill list mismatch");
    assert_eq!(fp.outcomes.len(), 3 - planned_kills.len(), "seed {seed}: survivor count");
    for &(rank, role_code, v, state, commits) in &fp.outcomes {
        assert_eq!(v, view, "seed {seed}: rank {rank} finished in the wrong view");
        assert_eq!(
            state, expect,
            "seed {seed}: rank {rank} diverges from the payload multiset — \
             an element was lost or folded twice"
        );
        if rank == head {
            assert_eq!(role_code, 1, "seed {seed}: rank {rank} must end as primary");
            assert!(commits > 0, "seed {seed}: a primary must commit checkpoints");
        } else {
            assert_eq!(role_code, 2, "seed {seed}: rank {rank} must end as a standby");
        }
    }
    // Every producer injected its full flow and followed the takeover.
    let mut resent = 0u64;
    for &(p, sent, re, takeovers, v) in &fp.finishes {
        assert_eq!(sent, s.per_producer, "seed {seed}: producer {p} short flow");
        assert_eq!(v, view, "seed {seed}: producer {p} missed the view change");
        if view == 0 {
            assert_eq!(takeovers, 0, "seed {seed}: producer {p} saw a phantom takeover");
            assert_eq!(re, 0, "seed {seed}: nothing to replay without a takeover");
        }
        resent += re;
    }
    assert_eq!(fp.finishes.len(), s.n_producers, "seed {seed}: every producer finishes");
    if matches!(s.kill, RepKill::Primary { .. }) {
        // The element being folded at the kill was received but not yet
        // committed, so its batch was never credited: at least that much
        // must have been replayed to the successor.
        assert!(resent > 0, "seed {seed}: a mid-fold kill must leave a tail to replay");
    }
}

/// The replicated sweep: for every seeded consumer-kill schedule the
/// surviving replicas fold *exactly* the injected payload multiset.
#[test]
fn chaos_replicated_consumer_kills_replay_exactly_once() {
    let (start, count) = sweep_range();
    let seeds: Vec<u64> = (start..start + count).collect();
    let runs = desim::sweep::par_map(seeds, |seed| (seed, run_replicated_chaos(seed)));
    let mut primary_kills = 0u64;
    let mut standby_kills = 0u64;
    for (seed, (s, fp)) in &runs {
        check_rep_invariants(*seed, s, fp);
        primary_kills += u64::from(matches!(s.kill, RepKill::Primary { .. }));
        standby_kills += u64::from(matches!(s.kill, RepKill::Standby { .. }));
    }
    // Meta-check on full sweeps: the schedule generator must actually
    // exercise both failover and quorum-loss-tolerance.
    if count >= 100 {
        assert!(primary_kills > count / 4, "suspiciously few primary kills");
        assert!(standby_kills > count / 8, "suspiciously few standby kills");
    }
}

/// Replicated runs replay identically: failover timing, replayed tails
/// and committed state are a pure function of the seed.
#[test]
fn chaos_replicated_runs_replay_identically() {
    let (start, count) = sweep_range();
    let seeds: Vec<u64> = (start..start + count).step_by((count as usize / 10).max(1)).collect();
    let first = desim::sweep::par_map(seeds.clone(), |seed| run_replicated_chaos(seed).1);
    let second = desim::sweep::par_map(seeds.clone(), |seed| run_replicated_chaos(seed).1);
    for ((seed, a), b) in seeds.iter().zip(first).zip(second) {
        assert_eq!(a, b, "seed {seed}: replicated fingerprint diverged between replays");
    }
}

//! Deterministic chaos testing (DST) of the decoupled stream pipeline.
//!
//! Every test here derives a random fault schedule — producer kills, link
//! drops on the victims' links, bounded delay spikes — from a seed, runs a
//! producer/consumer streaming pipeline under it, and checks three
//! invariants:
//!
//! 1. **No deadlock**: the run completes; every rank either finishes its
//!    body or is killed by the plan.
//! 2. **Conservation for survivors**: every element a surviving producer
//!    injected is delivered exactly once — per consumer, `delivered`
//!    equals the producer's `Term` claim, and the claims across consumers
//!    sum to the producer's element count. Killed producers end as `Dead`
//!    verdicts with partial delivery and no claim.
//! 3. **Replay determinism**: the same seed reproduces the identical
//!    fingerprint — end time, kill list, drop count, per-producer
//!    accounting and an order-insensitive payload checksum.
//!
//! The sweep size is tunable for CI smoke runs: `CHAOS_SEEDS` (count) and
//! `CHAOS_SEED_START` (first seed) — see `ci.sh`. Seeds run in parallel
//! on `SWEEP_JOBS` threads (see [`desim::sweep`]); each run is a pure
//! function of its seed, so fingerprints are byte-identical at any job
//! count and invariants are still checked in seed order.

use std::sync::Arc;

use mpisim::{FaultPlan, LinkFault, MachineConfig, NoiseModel, SimDuration, SimTime, World};
use mpistream::{ChannelConfig, ProducerState, Role, RoutePolicy, Stream, StreamChannel};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Elements stream for at least `PER_ELEM_SECS * MIN_ELEMS` = 1.5ms of
/// virtual time; kills land strictly inside [100us, 1ms], so a victim is
/// always killed mid-stream (before it can send its `Term`).
const PER_ELEM_SECS: f64 = 10e-6;
const MIN_ELEMS: u64 = 150;
const MAX_ELEMS: u64 = 400;

/// No link fault opens before this: channel creation (an untimed
/// collective at t=0) completes within a few microseconds on the quiet
/// machine, and faulting its handshake would model a mid-bootstrap crash
/// this harness does not target.
const CREATE_GRACE_NS: u64 = 50_000;

/// Failure-detection timeout. Consumer patience is twice this, and it must
/// exceed the longest *legitimate* silence: under Static routing a
/// producer pinned to the other consumer sends a given consumer nothing
/// until its final `Term` at ~4ms (`MAX_ELEMS * PER_ELEM_SECS` plus delay
/// spikes), which must not read as death. 2 * 3ms = 6ms clears that with
/// margin, while victims (killed by 1ms) are still detected.
const FAILURE_TIMEOUT_MS: u64 = 3;

/// One seed's randomized world + fault schedule.
#[derive(Clone, Debug)]
struct Schedule {
    n_producers: usize,
    n_consumers: usize,
    per_producer: u64,
    aggregation: usize,
    credits: Option<usize>,
    route: RoutePolicy,
    plan: FaultPlan,
    /// Producer ranks the plan kills (sorted).
    kills: Vec<usize>,
}

fn schedule(seed: u64) -> Schedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD57_C0DE);
    let n_producers = rng.gen_range(2usize..=5);
    let n_consumers = rng.gen_range(1usize..=2);
    let per_producer = rng.gen_range(MIN_ELEMS..=MAX_ELEMS);
    let aggregation = rng.gen_range(1usize..=4);
    let credits = if rng.gen_bool(0.5) { None } else { Some(rng.gen_range(8usize..=64)) };
    let route = if rng.gen_bool(0.5) { RoutePolicy::RoundRobin } else { RoutePolicy::Static };

    let mut plan = FaultPlan::new(seed);
    let n_kills = rng.gen_range(0usize..=2).min(n_producers - 1); // >= 1 survivor
    let mut victims: Vec<usize> = (0..n_producers).collect();
    let mut kills = Vec::new();
    for _ in 0..n_kills {
        let v = victims.swap_remove(rng.gen_range(0..victims.len()));
        let at = SimTime(rng.gen_range(100_000u64..=1_000_000));
        plan = plan.kill(v, at);
        // Half the victims also die "messily": part of their stream data
        // is randomly dropped. The drop window opens only after
        // `CREATE_GRACE` — channel creation is an untimed collective, so
        // losing its handshake traffic would hang the world, which is a
        // test-harness artifact rather than a protocol defect. Only
        // victims' links lose data, so surviving producers keep an exact
        // conservation obligation.
        if rng.gen_bool(0.5) {
            let from = SimTime(rng.gen_range(CREATE_GRACE_NS..at.0));
            for c in 0..n_consumers {
                plan = plan.link(
                    LinkFault::new(v, n_producers + c)
                        .window(from, SimTime(u64::MAX))
                        .drop_prob(rng.gen_range(0.05f64..0.5)),
                );
            }
        }
        kills.push(v);
    }
    // Bounded delay spikes on arbitrary data links: far below the
    // consumer patience (see `FAILURE_TIMEOUT_MS`), so they slow the
    // stream without ever causing a false death verdict. Again windowed
    // past channel creation: a spike there could stall the collective
    // beyond a kill time and hang it.
    for _ in 0..rng.gen_range(0usize..=2) {
        let p = rng.gen_range(0..n_producers);
        let c = n_producers + rng.gen_range(0..n_consumers);
        let from = rng.gen_range(CREATE_GRACE_NS..1_500_000);
        let until = from + rng.gen_range(50_000u64..=300_000);
        plan = plan.link(
            LinkFault::new(p, c)
                .window(SimTime(from), SimTime(until))
                .delay(SimDuration::from_micros(rng.gen_range(10u64..=150))),
        );
    }
    kills.sort_unstable();
    Schedule { n_producers, n_consumers, per_producer, aggregation, credits, route, plan, kills }
}

/// Everything observable about one run, totally ordered for replay
/// comparison.
#[derive(Clone, Debug, PartialEq)]
struct Fingerprint {
    end_ns: u64,
    killed: Vec<usize>,
    msgs_dropped: u64,
    /// (consumer rank, producer rank, delivered, claim, died) — sorted.
    reports: Vec<(usize, usize, u64, Option<u64>, bool)>,
    /// (consumer rank, processed, order-insensitive checksum) — sorted.
    consumed: Vec<(usize, u64, u64)>,
    /// Producer ranks whose `terminate()` returned (survivors) — sorted.
    clean: Vec<usize>,
    /// Sanitizer finding codes (SC101/SC102/SC103) — sorted.
    san_codes: Vec<&'static str>,
}

#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

fn run_chaos(seed: u64) -> (Schedule, Fingerprint) {
    let s = schedule(seed);
    // The happens-before sanitizer rides along on every chaos run: the
    // stream protocol must produce zero reports on fault-free schedules,
    // and never a race or credit overrun even under kills and link drops
    // (orphans from a victim's in-flight messages are legitimate).
    let world = World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
        .with_seed(seed)
        .with_fault_plan(s.plan.clone())
        .with_check();
    let nprocs = s.n_producers + s.n_consumers;
    let (n_producers, per_producer) = (s.n_producers, s.per_producer);
    let config = ChannelConfig {
        element_bytes: 512,
        aggregation: s.aggregation,
        credits: s.credits,
        route: s.route,
        credit_batch: 1,
        failure_timeout: Some(SimDuration::from_millis(FAILURE_TIMEOUT_MS)),
    };
    let clean: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    // Per consumer: (rank, processed, checksum, per-producer reports).
    type ConsumerLog = Vec<(usize, u64, u64, Vec<(usize, u64, Option<u64>, bool)>)>;
    let consumer_log: Arc<Mutex<ConsumerLog>> = Arc::new(Mutex::new(Vec::new()));
    let (cl, co) = (clean.clone(), consumer_log.clone());
    let out = world.run_expect(nprocs, move |rank| {
        let comm = rank.comm_world();
        let me = rank.world_rank();
        let role = if me < n_producers { Role::Producer } else { Role::Consumer };
        let ch = StreamChannel::create(rank, &comm, role, config.clone());
        let mut stream: Stream<u64> = Stream::attach(ch);
        match role {
            Role::Producer => {
                for i in 0..per_producer {
                    rank.compute_exact(PER_ELEM_SECS);
                    stream.isend(rank, (me as u64) << 32 | i);
                }
                stream.terminate(rank);
                // Only survivors reach this line; a killed producer
                // unwinds out of the loop above.
                cl.lock().push(me);
            }
            Role::Consumer => {
                let mut processed = 0u64;
                let mut checksum = 0u64;
                let outcome = stream.operate_outcome(rank, |_, v| {
                    processed += 1;
                    checksum = checksum.wrapping_add(mix64(v));
                });
                assert_eq!(outcome.processed, processed);
                let reports = outcome
                    .producers
                    .iter()
                    .map(|r| (r.rank, r.delivered, r.claimed, r.state == ProducerState::Dead))
                    .collect();
                co.lock().push((me, processed, checksum, reports));
            }
            Role::Bystander => unreachable!(),
        }
    });
    let mut clean = clean.lock().clone();
    clean.sort_unstable();
    let mut reports = Vec::new();
    let mut consumed = Vec::new();
    for (c, processed, checksum, rs) in consumer_log.lock().iter() {
        consumed.push((*c, *processed, *checksum));
        for &(p, delivered, claim, died) in rs {
            reports.push((*c, p, delivered, claim, died));
        }
    }
    reports.sort_unstable();
    consumed.sort_unstable();
    let mut killed = out.sim.killed.clone();
    killed.sort_unstable();
    let mut san_codes: Vec<&'static str> = out.san_reports.iter().map(|r| r.code()).collect();
    san_codes.sort_unstable();
    (
        s,
        Fingerprint {
            end_ns: out.sim.end_time.as_nanos(),
            killed,
            msgs_dropped: out.msgs_dropped,
            reports,
            consumed,
            clean,
            san_codes,
        },
    )
}

/// Check invariants 1 and 2 for one seed's run.
fn check_invariants(seed: u64, s: &Schedule, fp: &Fingerprint) {
    // 1. Completion: every rank accounted for — killed exactly per plan,
    //    every survivor's terminate() returned, every consumer reported.
    assert_eq!(fp.killed, s.kills, "seed {seed}: kill list mismatch");
    let survivors: Vec<usize> = (0..s.n_producers).filter(|p| !s.kills.contains(p)).collect();
    assert_eq!(fp.clean, survivors, "seed {seed}: survivors must terminate cleanly");
    assert_eq!(fp.consumed.len(), s.n_consumers, "seed {seed}: every consumer completes");

    // 2. Conservation. Per consumer: survivors are Terminated with
    //    delivered == claimed; victims are Dead with no claim and at most
    //    their pre-kill output delivered.
    let mut delivered_from_survivor = vec![0u64; s.n_producers];
    for &(c, p, delivered, claim, died) in &fp.reports {
        if survivors.contains(&p) {
            assert!(!died, "seed {seed}: consumer {c} declared live producer {p} dead");
            let claim = claim.unwrap_or_else(|| {
                panic!("seed {seed}: consumer {c} missing Term claim of survivor {p}")
            });
            assert_eq!(
                delivered, claim,
                "seed {seed}: consumer {c} lost elements of surviving producer {p}"
            );
            delivered_from_survivor[p] += delivered;
        } else {
            assert!(died, "seed {seed}: consumer {c} never detected killed producer {p}");
            assert_eq!(claim, None, "seed {seed}: a victim cannot have claimed a total");
            assert!(
                delivered < s.per_producer,
                "seed {seed}: victim {p} was killed mid-stream yet delivered everything"
            );
        }
    }
    for &p in &survivors {
        assert_eq!(
            delivered_from_survivor[p], s.per_producer,
            "seed {seed}: surviving producer {p}'s elements not conserved"
        );
    }
    // Per consumer, the processed total is exactly the sum of attributed
    // deliveries (nothing double-counted, nothing unattributed).
    for &(c, processed, _) in &fp.consumed {
        let attributed: u64 =
            fp.reports.iter().filter(|&&(rc, ..)| rc == c).map(|&(_, _, d, _, _)| d).sum();
        assert_eq!(processed, attributed, "seed {seed}: consumer {c} attribution gap");
    }

    // 3. Sanitizer: the stream protocol must never trip the happens-before
    //    checker — no wildcard races (internal receives are protocol-
    //    ordered) and no credit overruns, under any fault schedule. On a
    //    fault-free schedule there are no findings at all; with faults,
    //    only orphans (a victim's undrained in-flight traffic) may remain.
    assert!(
        !fp.san_codes.iter().any(|&c| c == "SC101" || c == "SC103"),
        "seed {seed}: sanitizer flagged the protocol: {:?}",
        fp.san_codes
    );
    if s.plan.is_empty() {
        assert!(
            fp.san_codes.is_empty(),
            "seed {seed}: fault-free run has sanitizer findings: {:?}",
            fp.san_codes
        );
    }
}

fn sweep_range() -> (u64, u64) {
    let start = std::env::var("CHAOS_SEED_START").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    let count = std::env::var("CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(250);
    (start, count)
}

/// The main sweep: hundreds of seeded fault schedules, each checked for
/// completion and conservation.
#[test]
fn chaos_sweep_holds_invariants_across_seeds() {
    let (start, count) = sweep_range();
    let seeds: Vec<u64> = (start..start + count).collect();
    let runs = desim::sweep::par_map(seeds, |seed| (seed, run_chaos(seed)));
    let mut runs_with_kills = 0u64;
    let mut runs_with_drops = 0u64;
    for (seed, (s, fp)) in &runs {
        check_invariants(*seed, s, fp);
        runs_with_kills += u64::from(!fp.killed.is_empty());
        runs_with_drops += u64::from(fp.msgs_dropped > 0);
    }
    // Meta-check on full sweeps: the harness must actually exercise
    // faults, or the invariants above pass vacuously.
    if count >= 100 {
        assert!(runs_with_kills > count / 4, "suspiciously few kill schedules");
        assert!(runs_with_drops > count / 20, "suspiciously few lossy schedules");
    }
}

/// Invariant 3: identical seeds replay to identical fingerprints —
/// including virtual end time, kill/drop accounting and payload checksums.
#[test]
fn chaos_runs_replay_identically() {
    let (start, count) = sweep_range();
    // A slice of the sweep, re-run and compared bit-for-bit. The two
    // replays of a seed deliberately land on *different* worker threads
    // (all first runs, then all second runs), so this also certifies that
    // parallel dispatch leaves fingerprints untouched.
    let seeds: Vec<u64> = (start..start + count).step_by((count as usize / 10).max(1)).collect();
    let first = desim::sweep::par_map(seeds.clone(), |seed| run_chaos(seed).1);
    let second = desim::sweep::par_map(seeds.clone(), |seed| run_chaos(seed).1);
    for ((seed, a), b) in seeds.iter().zip(first).zip(second) {
        assert_eq!(a, b, "seed {seed}: fingerprint diverged between replays");
    }
}

/// Fault-free seeds (no kill, no link fault) must conserve *everything*:
/// all producers terminate, nothing is dropped, and both consumers'
/// accounting matches the injected totals exactly.
#[test]
fn chaos_fault_free_schedules_conserve_everything() {
    let (start, count) = sweep_range();
    // Schedules are a cheap pure function of the seed, so fault-free
    // seeds are selected up front and only those runs are paid for.
    let seeds: Vec<u64> = (start..start + count).filter(|&s| schedule(s).plan.is_empty()).collect();
    let seen = seeds.len() as u64;
    let runs = desim::sweep::par_map(seeds, |seed| (seed, run_chaos(seed)));
    for (seed, (s, fp)) in &runs {
        assert_eq!(fp.msgs_dropped, 0, "seed {seed}");
        assert_eq!(fp.killed, Vec::<usize>::new(), "seed {seed}");
        assert_eq!(fp.san_codes, Vec::<&str>::new(), "seed {seed}: sanitizer findings");
        let total: u64 = fp.consumed.iter().map(|&(_, p, _)| p).sum();
        assert_eq!(total, s.per_producer * s.n_producers as u64, "seed {seed}");
    }
    // With the default range a healthy share of schedules is fault-free.
    if count >= 100 {
        assert!(seen > 0, "no fault-free schedule in the sweep range");
    }
}

//! Cartesian process topologies (MPI_Cart_create / MPI_Dims_create).

use crate::comm::Comm;

/// A Cartesian view over a communicator: row-major coordinates, optional
/// periodicity per dimension, neighbour lookup.
#[derive(Clone, Debug)]
pub struct CartComm {
    comm: Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl CartComm {
    /// Impose a Cartesian topology of shape `dims` on `comm`. The product
    /// of `dims` must equal the communicator size.
    pub fn new(comm: Comm, dims: Vec<usize>, periodic: Vec<bool>) -> CartComm {
        assert_eq!(
            dims.iter().product::<usize>(),
            comm.size(),
            "dims {:?} do not tile a communicator of size {}",
            dims,
            comm.size()
        );
        assert_eq!(dims.len(), periodic.len());
        assert!(dims.iter().all(|&d| d > 0));
        CartComm { comm, dims, periodic }
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Coordinates of communicator rank `r` (row-major: last dim fastest).
    pub fn coords(&self, r: usize) -> Vec<usize> {
        assert!(r < self.comm.size());
        let mut rem = r;
        let mut out = vec![0; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            out[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        out
    }

    /// Communicator rank at `coords`.
    pub fn rank_at(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut r = 0;
        for (&dim, &c) in self.dims.iter().zip(coords) {
            assert!(c < dim, "coordinate out of range");
            r = r * dim + c;
        }
        r
    }

    /// Neighbour of rank `r` displaced by `disp` along dimension `dim`
    /// (like MPI_Cart_shift). `None` at a non-periodic boundary.
    pub fn shift(&self, r: usize, dim: usize, disp: isize) -> Option<usize> {
        let mut c = self.coords(r);
        let extent = self.dims[dim] as isize;
        let pos = c[dim] as isize + disp;
        let new = if self.periodic[dim] {
            pos.rem_euclid(extent)
        } else if (0..extent).contains(&pos) {
            pos
        } else {
            return None;
        };
        c[dim] = new as usize;
        Some(self.rank_at(&c))
    }

    /// The (dim, direction) neighbour pairs of `r`: up to `2 * ndims`
    /// entries of `(dim, disp, neighbour_rank)`.
    pub fn neighbors(&self, r: usize) -> Vec<(usize, isize, usize)> {
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for d in 0..self.dims.len() {
            for disp in [-1isize, 1] {
                if let Some(n) = self.shift(r, d, disp) {
                    if n != r {
                        out.push((d, disp, n));
                    }
                }
            }
        }
        out
    }
}

/// Balanced factorization of `n` into `ndims` factors, mimicking
/// `MPI_Dims_create`: factors are as close to each other as possible and
/// sorted in non-increasing order.
pub fn dims_create(n: usize, ndims: usize) -> Vec<usize> {
    assert!(n > 0 && ndims > 0);
    let mut dims = vec![1usize; ndims];
    let mut factors = prime_factors(n);
    // Distribute factors largest-first onto the currently smallest dim.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..ndims).min_by_key(|&i| dims[i]).unwrap();
        dims[i] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(n: usize) -> Comm {
        Comm::new(0, (0..n).collect())
    }

    #[test]
    fn coords_roundtrip() {
        let cart = CartComm::new(comm(24), vec![2, 3, 4], vec![false; 3]);
        for r in 0..24 {
            assert_eq!(cart.rank_at(&cart.coords(r)), r);
        }
        assert_eq!(cart.coords(0), vec![0, 0, 0]);
        assert_eq!(cart.coords(23), vec![1, 2, 3]);
    }

    #[test]
    fn shift_respects_boundaries() {
        let cart = CartComm::new(comm(8), vec![2, 2, 2], vec![false, false, true]);
        // Non-periodic dim 0.
        assert_eq!(cart.shift(0, 0, -1), None);
        assert_eq!(cart.shift(0, 0, 1), Some(4));
        // Periodic dim 2 wraps.
        assert_eq!(cart.shift(0, 2, -1), Some(1));
        assert_eq!(cart.shift(1, 2, 1), Some(0));
    }

    #[test]
    fn neighbors_in_3d_interior_and_corner() {
        let cart = CartComm::new(comm(27), vec![3, 3, 3], vec![false; 3]);
        let center = cart.rank_at(&[1, 1, 1]);
        assert_eq!(cart.neighbors(center).len(), 6);
        let corner = cart.rank_at(&[0, 0, 0]);
        assert_eq!(cart.neighbors(corner).len(), 3);
    }

    #[test]
    fn periodic_size_one_dims_have_no_self_neighbors() {
        let cart = CartComm::new(comm(4), vec![4, 1], vec![true, true]);
        for r in 0..4 {
            let n = cart.neighbors(r);
            assert!(n.iter().all(|&(_, _, nb)| nb != r), "self-loop in {n:?}");
        }
    }

    #[test]
    fn dims_create_is_balanced() {
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(64, 3), vec![4, 4, 4]);
        assert_eq!(dims_create(24, 3), vec![4, 3, 2]);
        assert_eq!(dims_create(17, 2), vec![17, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
        // Product always preserved.
        for n in 1..200 {
            for nd in 1..4 {
                assert_eq!(dims_create(n, nd).iter().product::<usize>(), n);
            }
        }
    }

    #[test]
    fn dims_create_8192_is_paper_scale_cube() {
        // 8192 = 2^13 -> 32 x 16 x 16.
        assert_eq!(dims_create(8192, 3), vec![32, 16, 16]);
    }
}

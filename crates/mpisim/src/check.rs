//! The happens-before sanitizer — the dynamic pass of `streamcheck`.
//!
//! A vector-clock race detector layered into the simulator's send/receive
//! paths. The report types in this module are always compiled (so outcomes
//! can carry them unconditionally), but the instrumentation call sites in
//! [`crate::Rank`] and [`crate::World`] only exist under the `check`
//! feature, and even then only run when a run opts in with
//! [`crate::World::with_check`] — the fault-free, check-free hot path pays
//! nothing.
//!
//! What it detects:
//!
//! - **Wildcard-receive races** (`SC101`): an [`Src::Any`](crate::Src)
//!   receive on a *user* tag matched one message while a causally
//!   *concurrent* message from a different source was also available. The
//!   match order is then timing-dependent — exactly the nondeterminism that
//!   makes wildcard receives dangerous in MPI codes. Internal stream and
//!   collective traffic uses wildcard receives by design (FCFS across
//!   producers is the mechanism that absorbs imbalance, §II-C) and is
//!   excluded.
//! - **Orphan messages** (`SC102`): messages still parked in a mailbox when
//!   the simulation finalizes. Stream credit messages are excluded — a
//!   producer's terminate drains credits opportunistically and late credits
//!   legitimately linger.
//! - **Credit-protocol violations** (`SC103`): a producer put more elements
//!   in flight to one consumer than the channel's credit window admits,
//!   breaking the memory bound of §II-D. The stream library reports its
//!   sends and credit grants through the [`crate::Rank::check_data_sent`] /
//!   [`crate::Rank::check_credit_issued`] hooks.

#[cfg(feature = "check")]
use std::collections::{HashMap, HashSet};
#[cfg(feature = "check")]
use std::sync::Arc;

#[cfg(feature = "check")]
use parking_lot::Mutex;

use crate::msg::Tag;

/// One structured sanitizer finding. Codes live in the same `SCxxx`
/// namespace as the static lints (SC0xx static, SC1xx dynamic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SanReport {
    /// Two causally unordered messages were both available to one
    /// wildcard receive: the match is timing-dependent.
    WildcardRace {
        receiver: usize,
        tag: Tag,
        /// Source whose message the receive actually matched.
        chosen_src: usize,
        /// Source of a concurrent message that could equally have matched.
        rival_src: usize,
        time_ns: u64,
    },
    /// A message was never matched by any receive before finalize.
    Orphan { dst: usize, src: usize, tag: Tag, bytes: u64, available_ns: u64 },
    /// A stream producer exceeded a channel's credit window.
    CreditOverrun {
        channel: u16,
        producer: usize,
        consumer: usize,
        /// Elements in flight *after* the offending send.
        in_flight: u64,
        window: u64,
        time_ns: u64,
    },
}

impl SanReport {
    /// Lint-catalogue code of this finding (see DESIGN.md §9).
    pub fn code(&self) -> &'static str {
        match self {
            SanReport::WildcardRace { .. } => "SC101",
            SanReport::Orphan { .. } => "SC102",
            SanReport::CreditOverrun { .. } => "SC103",
        }
    }

    /// Machine-readable rendering (one JSON object, no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            SanReport::WildcardRace { receiver, tag, chosen_src, rival_src, time_ns } => format!(
                "{{\"code\":\"SC101\",\"kind\":\"wildcard_race\",\"receiver\":{receiver},\
                 \"tag\":{},\"chosen_src\":{chosen_src},\"rival_src\":{rival_src},\
                 \"time_ns\":{time_ns}}}",
                tag.0
            ),
            SanReport::Orphan { dst, src, tag, bytes, available_ns } => format!(
                "{{\"code\":\"SC102\",\"kind\":\"orphan\",\"dst\":{dst},\"src\":{src},\
                 \"tag\":{},\"bytes\":{bytes},\"available_ns\":{available_ns}}}",
                tag.0
            ),
            SanReport::CreditOverrun {
                channel,
                producer,
                consumer,
                in_flight,
                window,
                time_ns,
            } => {
                format!(
                    "{{\"code\":\"SC103\",\"kind\":\"credit_overrun\",\"channel\":{channel},\
                     \"producer\":{producer},\"consumer\":{consumer},\"in_flight\":{in_flight},\
                     \"window\":{window},\"time_ns\":{time_ns}}}"
                )
            }
        }
    }
}

impl std::fmt::Display for SanReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SanReport::WildcardRace { receiver, tag, chosen_src, rival_src, time_ns } => write!(
                f,
                "SC101 wildcard-receive race: rank {receiver} matched tag {:#x} from rank \
                 {chosen_src} while a causally concurrent message from rank {rival_src} was \
                 also available (t={time_ns}ns)",
                tag.0
            ),
            SanReport::Orphan { dst, src, tag, bytes, available_ns } => write!(
                f,
                "SC102 orphan message: {bytes} bytes from rank {src} to rank {dst} \
                 (tag {:#x}, available at t={available_ns}ns) never matched by a receive",
                tag.0
            ),
            SanReport::CreditOverrun {
                channel,
                producer,
                consumer,
                in_flight,
                window,
                time_ns,
            } => {
                write!(
                    f,
                    "SC103 credit overrun: channel {channel} producer rank {producer} has \
                     {in_flight} elements in flight to consumer rank {consumer}, window is \
                     {window} (t={time_ns}ns)"
                )
            }
        }
    }
}

/// Stream-channel metadata registered by the stream library's `check` hooks.
#[cfg(feature = "check")]
#[derive(Clone, Copy)]
struct ChanMeta {
    window: Option<u64>,
    credit_tag: Tag,
}

#[cfg(feature = "check")]
struct SanInner {
    /// `clocks[r]` is rank `r`'s vector clock; ticked on send, joined and
    /// ticked on receive.
    clocks: Vec<Vec<u64>>,
    reports: Vec<SanReport>,
    /// Deduplication of race reports per (receiver, tag, src pair).
    seen_races: HashSet<(usize, u64, usize, usize)>,
    channels: HashMap<u16, ChanMeta>,
    /// Elements in flight (sent, not yet credited) per
    /// `(channel, producer rank, consumer rank)`.
    inflight: HashMap<(u16, usize, usize), u64>,
    /// Overruns already reported, so a sustained violation yields one
    /// report per (channel, producer, consumer) rather than one per send.
    seen_overruns: HashSet<(u16, usize, usize)>,
}

/// Shared state of one run's dynamic pass. Created by
/// [`crate::World::with_check`]; every instrumented call site funnels here.
#[cfg(feature = "check")]
pub(crate) struct Sanitizer {
    inner: Mutex<SanInner>,
}

/// `a` happens-before-or-equals `b` under vector-clock order.
#[cfg(feature = "check")]
fn le(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

#[cfg(feature = "check")]
impl Sanitizer {
    pub fn new(nprocs: usize) -> Sanitizer {
        Sanitizer {
            inner: Mutex::new(SanInner {
                clocks: vec![vec![0; nprocs]; nprocs],
                reports: Vec::new(),
                seen_races: HashSet::new(),
                channels: HashMap::new(),
                inflight: HashMap::new(),
                seen_overruns: HashSet::new(),
            }),
        }
    }

    /// Tick `src`'s clock for a send event and return the snapshot the
    /// message carries.
    pub fn on_send(&self, src: usize) -> Arc<Vec<u64>> {
        let mut inner = self.inner.lock();
        inner.clocks[src][src] += 1;
        Arc::new(inner.clocks[src].clone())
    }

    /// Join the sender's snapshot into `dst`'s clock (receive event).
    pub fn on_recv(&self, dst: usize, clock: Option<&Arc<Vec<u64>>>) {
        let mut inner = self.inner.lock();
        if let Some(c) = clock {
            for (mine, theirs) in inner.clocks[dst].iter_mut().zip(c.iter()) {
                *mine = (*mine).max(*theirs);
            }
        }
        inner.clocks[dst][dst] += 1;
    }

    /// A wildcard receive matched `chosen_src`'s message while `rivals`
    /// (same tag, different sources) were also available. Report each rival
    /// whose send is causally concurrent with the chosen one.
    pub fn on_wildcard_match(
        &self,
        receiver: usize,
        tag: Tag,
        chosen_src: usize,
        chosen_clock: Option<&Arc<Vec<u64>>>,
        rivals: &[(usize, Option<Arc<Vec<u64>>>)],
        time_ns: u64,
    ) {
        let Some(chosen) = chosen_clock else { return };
        let mut inner = self.inner.lock();
        for (rival_src, rival_clock) in rivals {
            let Some(rival) = rival_clock else { continue };
            if le(chosen, rival) || le(rival, chosen) {
                continue; // causally ordered: the match is deterministic
            }
            let (a, b) = (chosen_src.min(*rival_src), chosen_src.max(*rival_src));
            if inner.seen_races.insert((receiver, tag.0, a, b)) {
                inner.reports.push(SanReport::WildcardRace {
                    receiver,
                    tag,
                    chosen_src,
                    rival_src: *rival_src,
                    time_ns,
                });
            }
        }
    }

    /// Register a stream channel's flow-control parameters (idempotent;
    /// every member rank registers on creation).
    pub fn register_channel(&self, id: u16, window: Option<u64>, credit_tag: Tag) {
        self.inner.lock().channels.entry(id).or_insert(ChanMeta { window, credit_tag });
    }

    /// A producer put `elems` more elements in flight to `consumer`.
    pub fn data_sent(&self, id: u16, producer: usize, consumer: usize, elems: u64, time_ns: u64) {
        let mut inner = self.inner.lock();
        let key = (id, producer, consumer);
        let in_flight = {
            let e = inner.inflight.entry(key).or_insert(0);
            *e += elems;
            *e
        };
        let window = inner.channels.get(&id).and_then(|m| m.window);
        if let Some(w) = window {
            if in_flight > w && inner.seen_overruns.insert(key) {
                inner.reports.push(SanReport::CreditOverrun {
                    channel: id,
                    producer,
                    consumer,
                    in_flight,
                    window: w,
                    time_ns,
                });
            }
        }
    }

    /// A consumer granted `elems` credits back to `producer`.
    pub fn credit_issued(&self, id: u16, consumer: usize, producer: usize, elems: u64) {
        let mut inner = self.inner.lock();
        let e = inner.inflight.entry((id, producer, consumer)).or_insert(0);
        *e = e.saturating_sub(elems);
    }

    /// A message still parked in `dst`'s mailbox at finalize. Credit
    /// messages of registered channels are skipped (see module docs).
    pub fn orphan(&self, dst: usize, src: usize, tag: Tag, bytes: u64, available_ns: u64) {
        let mut inner = self.inner.lock();
        if inner.channels.values().any(|m| m.credit_tag == tag) {
            return;
        }
        inner.reports.push(SanReport::Orphan { dst, src, tag, bytes, available_ns });
    }

    /// Everything reported so far.
    pub fn reports(&self) -> Vec<SanReport> {
        self.inner.lock().reports.clone()
    }

    /// Diagnostic dump of the per-pair in-flight credit state, appended to
    /// desim deadlock reports. `None` when no credited channel has traffic.
    pub fn deadlock_diag(&self) -> Option<String> {
        let inner = self.inner.lock();
        let mut lines: Vec<String> = Vec::new();
        let mut pairs: Vec<_> = inner.inflight.iter().collect();
        pairs.sort_by_key(|(&k, _)| k);
        for (&(id, p, c), &n) in pairs {
            if n == 0 {
                continue;
            }
            match inner.channels.get(&id).and_then(|m| m.window) {
                Some(w) => lines.push(format!(
                    "channel {id}: rank {p} -> rank {c}: {n}/{w} elements in flight{}",
                    if n >= w { " (window full)" } else { "" }
                )),
                None => lines.push(format!(
                    "channel {id}: rank {p} -> rank {c}: {n} elements in flight (unbounded)"
                )),
            }
        }
        if lines.is_empty() {
            None
        } else {
            Some(format!("streamcheck sanitizer credit state:\n{}", lines.join("\n")))
        }
    }
}

#[cfg(all(test, feature = "check"))]
mod tests {
    use super::*;

    #[test]
    fn concurrent_sends_race_ordered_sends_do_not() {
        let san = Sanitizer::new(3);
        // Ranks 1 and 2 send to 0 with no causal link: concurrent.
        let c1 = san.on_send(1);
        let c2 = san.on_send(2);
        san.on_wildcard_match(0, Tag::user(7), 1, Some(&c1), &[(2, Some(c2))], 10);
        assert_eq!(san.reports().len(), 1);
        assert_eq!(san.reports()[0].code(), "SC101");

        // Now order them: 1 sends to 2, 2 receives (joins), then sends.
        let san = Sanitizer::new(3);
        let c1 = san.on_send(1);
        san.on_recv(2, Some(&c1));
        let c2 = san.on_send(2);
        let c1b = san.on_send(1);
        // c1b happened before... no: c1b concurrent with c2? 1's second send
        // does not see 2's state, but c1 <= c2 holds for the *first* pair.
        san.on_wildcard_match(0, Tag::user(7), 1, Some(&c1), &[(2, Some(c2.clone()))], 10);
        assert!(san.reports().is_empty(), "ordered pair must not race");
        // The second send from 1 *is* concurrent with 2's send.
        san.on_wildcard_match(0, Tag::user(7), 1, Some(&c1b), &[(2, Some(c2))], 11);
        assert_eq!(san.reports().len(), 1);
    }

    #[test]
    fn credit_overrun_detected_once_per_pair() {
        let san = Sanitizer::new(4);
        san.register_channel(0, Some(8), Tag::internal(2, 0, 1));
        san.data_sent(0, 1, 3, 6, 100);
        assert!(san.reports().is_empty());
        san.credit_issued(0, 3, 1, 6);
        san.data_sent(0, 1, 3, 8, 200);
        assert!(san.reports().is_empty(), "window exactly full is legal");
        san.data_sent(0, 1, 3, 1, 300);
        san.data_sent(0, 1, 3, 1, 400);
        let reports = san.reports();
        assert_eq!(reports.len(), 1, "sustained overrun reports once");
        assert_eq!(reports[0].code(), "SC103");
        assert!(san.deadlock_diag().unwrap().contains("channel 0"));
    }

    #[test]
    fn orphans_skip_registered_credit_tags() {
        let san = Sanitizer::new(2);
        let credit = Tag::internal(2, 5, 1);
        san.register_channel(5, Some(4), credit);
        san.orphan(0, 1, credit, 8, 50);
        assert!(san.reports().is_empty());
        san.orphan(0, 1, Tag::user(3), 64, 60);
        assert_eq!(san.reports().len(), 1);
        assert_eq!(san.reports()[0].code(), "SC102");
    }
}

//! Collective operations, implemented with real point-to-point messages.
//!
//! All collectives use classic binomial-tree algorithms (the MPICH
//! defaults for small/medium payloads), so their cost scales as
//! `O(log P)` rounds and `O(P)` messages and their *semantics* are exact:
//! data is really combined, leaves really exit early, and a late rank
//! really delays exactly the subtree that waits on it — the imbalance
//! behaviour at the heart of the paper.
//!
//! Non-blocking variants follow the progress model of mainstream MPI
//! without progress threads: a rank contributes what it can at `start`
//! (leaf sends are posted immediately and overlap with whatever the caller
//! does next), and the remaining tree steps run inside `wait`.

use crate::comm::Comm;
use crate::msg::{Src, Tag};
use crate::rank::Rank;

/// Namespace byte for collective tags.
const NS_COLL: u8 = 1;

/// Binomial-tree topology helper in *virtual* rank space (root at 0).
#[derive(Debug, Clone)]
struct Binomial {
    /// Virtual ranks we receive from, in combining order.
    children: Vec<usize>,
    /// Virtual rank we send our partial to (None for the root).
    parent: Option<usize>,
}

fn binomial(vrank: usize, size: usize) -> Binomial {
    let mut children = Vec::new();
    let mut parent = None;
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            parent = Some(vrank & !mask);
            break;
        }
        let child = vrank | mask;
        if child < size {
            children.push(child);
        }
        mask <<= 1;
    }
    Binomial { children, parent }
}

#[inline]
fn to_vrank(crank: usize, root: usize, size: usize) -> usize {
    (crank + size - root) % size
}

#[inline]
fn from_vrank(vrank: usize, root: usize, size: usize) -> usize {
    (vrank + root) % size
}

/// Non-blocking reduce in progress. See [`Rank::ireduce_start`].
#[must_use = "ireduce must be completed with ireduce_wait"]
pub struct IReduceReq<T> {
    comm: Comm,
    tag: Tag,
    bytes: u64,
    tree: Binomial,
    root: usize,
    /// Our value if it was not already sent at start (interior/root), or
    /// None for leaves (value already in flight).
    pending: Option<T>,
    leaf_send: Option<crate::rank::SendReq>,
}

/// Non-blocking allgatherv in progress. See [`Rank::iallgatherv_start`].
#[must_use = "iallgatherv must be completed with iallgatherv_wait"]
pub struct IAllgathervReq<T> {
    comm: Comm,
    tag: Tag,
    bytes: u64,
    own: Option<T>,
    send: Option<crate::rank::SendReq>,
}

impl Rank<'_> {
    fn coll_tag(&mut self, comm: &Comm) -> Tag {
        let seq = self.next_seq(comm);
        Tag::internal(NS_COLL, comm.id(), seq)
    }

    fn crank(&self, comm: &Comm) -> usize {
        comm.rank_of(self.world_rank())
            .unwrap_or_else(|| panic!("rank {} not in comm {}", self.world_rank(), comm.id()))
    }

    /// Reduce `value` over `comm` onto communicator rank `root` using `op`
    /// (must be associative; applied in deterministic tree order). Returns
    /// `Some(result)` at the root, `None` elsewhere.
    pub fn reduce<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> Option<T> {
        let tag = self.coll_tag(comm);
        self.reduce_with_tag(comm, root, bytes, value, op, tag)
    }

    fn reduce_with_tag<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
        tag: Tag,
    ) -> Option<T> {
        let n = comm.size();
        let me = self.crank(comm);
        let vr = to_vrank(me, root, n);
        let tree = binomial(vr, n);
        let mut acc = value;
        for &child_vr in &tree.children {
            let child = comm.world_rank(from_vrank(child_vr, root, n));
            let (part, _) = self.recv_tagged::<T>(Src::Rank(child), tag);
            op(&mut acc, &part);
        }
        match tree.parent {
            Some(parent_vr) => {
                let parent = comm.world_rank(from_vrank(parent_vr, root, n));
                let req = self.isend_tagged(parent, tag, bytes, Box::new(acc));
                self.wait_send(req);
                None
            }
            None => Some(acc),
        }
    }

    /// Broadcast from communicator rank `root`. The root passes
    /// `Some(value)`, all others `None`; everyone returns the value.
    pub fn bcast<T: Clone + Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        let tag = self.coll_tag(comm);
        self.bcast_with_tag(comm, root, bytes, value, tag)
    }

    fn bcast_with_tag<T: Clone + Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        value: Option<T>,
        tag: Tag,
    ) -> T {
        let n = comm.size();
        let me = self.crank(comm);
        let vr = to_vrank(me, root, n);
        let val = if vr == 0 {
            value.expect("bcast root must supply a value")
        } else {
            // Find the bit at which we receive from our parent.
            let mut mask = 1usize;
            while mask < n && vr & mask == 0 {
                mask <<= 1;
            }
            let parent = comm.world_rank(from_vrank(vr & !mask, root, n));
            let (v, _) = self.recv_tagged::<T>(Src::Rank(parent), tag);
            v
        };
        // Forward down the tree: highest bit below our own set bit first.
        let mut mask = 1usize;
        while mask < n && vr & mask == 0 {
            mask <<= 1;
        }
        mask >>= 1;
        let mut reqs = Vec::new();
        while mask > 0 {
            let child_vr = vr | mask;
            if child_vr < n {
                let child = comm.world_rank(from_vrank(child_vr, root, n));
                reqs.push(self.isend_tagged(child, tag, bytes, Box::new(val.clone())));
            }
            mask >>= 1;
        }
        self.wait_send_all(reqs);
        val
    }

    /// Allreduce: reduce to rank 0, then broadcast.
    pub fn allreduce<T: Clone + Send + 'static>(
        &mut self,
        comm: &Comm,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> T {
        let tag_r = self.coll_tag(comm);
        let tag_b = self.coll_tag(comm);
        let part = self.reduce_with_tag(comm, 0, bytes, value, op, tag_r);
        self.bcast_with_tag(comm, 0, bytes, part, tag_b)
    }

    /// Synchronize all members of `comm` (binomial gather + broadcast of
    /// empty messages).
    pub fn barrier(&mut self, comm: &Comm) {
        let tag_r = self.coll_tag(comm);
        let tag_b = self.coll_tag(comm);
        let token = self.reduce_with_tag(comm, 0, 0, (), |_, _| (), tag_r);
        let _: () = self.bcast_with_tag(comm, 0, 0, token, tag_b);
    }

    /// Gather each member's `value` at communicator rank `root` (flat
    /// algorithm — every rank sends directly to the root, which is both
    /// what naive applications do and the source of the incast the paper
    /// discusses). Returns values in communicator-rank order at the root.
    pub fn gatherv<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        value: T,
    ) -> Option<Vec<T>> {
        let tag = self.coll_tag(comm);
        let n = comm.size();
        let me = self.crank(comm);
        if me == root {
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            slots[me] = Some(value);
            for _ in 0..n - 1 {
                // First-come-first-served assembly.
                let (v, info) = self.recv_tagged::<T>(Src::Any, tag);
                let cr = comm.rank_of(info.src).expect("sender is a member");
                debug_assert!(slots[cr].is_none(), "duplicate gather contribution");
                slots[cr] = Some(v);
            }
            Some(slots.into_iter().map(|s| s.expect("all contributions arrived")).collect())
        } else {
            let dst = comm.world_rank(root);
            let req = self.isend_tagged(dst, tag, bytes, Box::new(value));
            self.wait_send(req);
            None
        }
    }

    /// Allgatherv: flat gather at rank 0, then binomial broadcast of the
    /// concatenated vector.
    pub fn allgatherv<T: Clone + Send + 'static>(
        &mut self,
        comm: &Comm,
        bytes: u64,
        value: T,
    ) -> Vec<T> {
        let tag_b = self.coll_tag(comm);
        let total = bytes * comm.size() as u64;
        let gathered = self.gatherv(comm, 0, bytes, value);
        self.bcast_with_tag(comm, 0, total, gathered, tag_b)
    }

    /// Start a non-blocking reduce towards communicator rank 0. Leaf ranks
    /// inject their contribution immediately (overlapping whatever the
    /// caller does until [`Rank::ireduce_wait`]); interior ranks combine at
    /// wait time, matching the progress behaviour of MPI implementations
    /// without asynchronous progress.
    pub fn ireduce_start<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        bytes: u64,
        value: T,
    ) -> IReduceReq<T> {
        let tag = self.coll_tag(comm);
        let n = comm.size();
        let me = self.crank(comm);
        let vr = to_vrank(me, 0, n);
        let tree = binomial(vr, n);
        if let (true, Some(parent_vr)) = (tree.children.is_empty(), tree.parent) {
            let parent = comm.world_rank(from_vrank(parent_vr, 0, n));
            let req = self.isend_tagged(parent, tag, bytes, Box::new(value));
            IReduceReq {
                comm: comm.clone(),
                tag,
                bytes,
                tree,
                root: 0,
                pending: None,
                leaf_send: Some(req),
            }
        } else {
            IReduceReq {
                comm: comm.clone(),
                tag,
                bytes,
                tree,
                root: 0,
                pending: Some(value),
                leaf_send: None,
            }
        }
    }

    /// Complete a non-blocking reduce. Returns `Some(result)` at
    /// communicator rank 0.
    pub fn ireduce_wait<T: Send + 'static>(
        &mut self,
        req: IReduceReq<T>,
        op: impl Fn(&mut T, &T),
    ) -> Option<T> {
        let IReduceReq { comm, tag, bytes, tree, root, pending, leaf_send } = req;
        if let Some(send) = leaf_send {
            self.wait_send(send);
            return None;
        }
        let n = comm.size();
        let mut acc = pending.expect("interior rank holds its value");
        for &child_vr in &tree.children {
            let child = comm.world_rank(from_vrank(child_vr, root, n));
            let (part, _) = self.recv_tagged::<T>(Src::Rank(child), tag);
            op(&mut acc, &part);
        }
        match tree.parent {
            Some(parent_vr) => {
                let parent = comm.world_rank(from_vrank(parent_vr, root, n));
                let s = self.isend_tagged(parent, tag, bytes, Box::new(acc));
                self.wait_send(s);
                None
            }
            None => Some(acc),
        }
    }

    /// Start a non-blocking allgatherv: non-root ranks inject their block
    /// towards rank 0 immediately.
    pub fn iallgatherv_start<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        bytes: u64,
        value: T,
    ) -> IAllgathervReq<T> {
        let tag = self.coll_tag(comm);
        let me = self.crank(comm);
        if me == 0 {
            IAllgathervReq { comm: comm.clone(), tag, bytes, own: Some(value), send: None }
        } else {
            let dst = comm.world_rank(0);
            let send = self.isend_tagged(dst, tag, bytes, Box::new(value));
            IAllgathervReq { comm: comm.clone(), tag, bytes, own: None, send: Some(send) }
        }
    }

    /// Complete a non-blocking allgatherv: rank 0 assembles, then a
    /// binomial broadcast distributes the concatenation.
    pub fn iallgatherv_wait<T: Clone + Send + 'static>(
        &mut self,
        req: IAllgathervReq<T>,
    ) -> Vec<T> {
        let IAllgathervReq { comm, tag, bytes, own, send } = req;
        let n = comm.size();
        let me = self.crank(&comm);
        let total = bytes * n as u64;
        let tag_b = Tag(tag.0 ^ (1 << 47)); // distinct broadcast phase tag
        if me == 0 {
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            slots[0] = own;
            for _ in 0..n - 1 {
                let (v, info) = self.recv_tagged::<T>(Src::Any, tag);
                let cr = comm.rank_of(info.src).expect("sender is a member");
                slots[cr] = Some(v);
            }
            let all: Vec<T> = slots.into_iter().map(|s| s.expect("all blocks arrived")).collect();
            self.bcast_with_tag(&comm, 0, total, Some(all), tag_b)
        } else {
            if let Some(s) = send {
                self.wait_send(s);
            }
            self.bcast_with_tag::<Vec<T>>(&comm, 0, total, None, tag_b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_tree_shape_is_consistent() {
        for size in 1..40usize {
            let mut indegree = vec![0usize; size];
            for vr in 0..size {
                let b = binomial(vr, size);
                if vr == 0 {
                    assert!(b.parent.is_none());
                } else {
                    assert!(b.parent.is_some());
                }
                for &c in &b.children {
                    assert!(c < size);
                    let cb = binomial(c, size);
                    assert_eq!(cb.parent, Some(vr), "child's parent must be us");
                    indegree[c] += 1;
                }
            }
            // Every non-root has exactly one parent referencing it.
            for (vr, deg) in indegree.iter().enumerate() {
                assert_eq!(*deg, usize::from(vr != 0), "vr={vr} size={size}");
            }
        }
    }

    #[test]
    fn vrank_roundtrip() {
        for size in 1..16 {
            for root in 0..size {
                for r in 0..size {
                    assert_eq!(from_vrank(to_vrank(r, root, size), root, size), r);
                }
                assert_eq!(to_vrank(root, root, size), 0);
            }
        }
    }
}

//! Additional collectives and point-to-point combinators beyond the core
//! set in [`crate::coll`]: scatter/gather with uniform blocks, exclusive
//! prefix scan, sparse all-to-all, and paired send-receive.
//!
//! Like the core collectives these move real data over real messages;
//! algorithms are the textbook ones so costs scale faithfully.

use crate::comm::Comm;
use crate::msg::{Src, Tag};
use crate::rank::Rank;

/// Namespace byte for extended-collective tags.
const NS_COLL_EXT: u8 = 3;

impl Rank<'_> {
    fn coll_ext_tag(&mut self, comm: &Comm) -> Tag {
        let seq = self.next_seq(comm);
        Tag::internal(NS_COLL_EXT, comm.id(), seq)
    }

    /// Paired exchange with two (possibly different) partners — the
    /// classic deadlock-free halo building block. Sends `value` to `dst`
    /// and receives one message from `src`, both under `tag`.
    pub fn sendrecv<T: Send + 'static>(
        &mut self,
        dst: usize,
        src: usize,
        tag: u32,
        bytes: u64,
        value: T,
    ) -> T {
        let req = self.isend(dst, tag, bytes, value);
        let (got, _) = self.recv::<T>(Src::Rank(src), tag);
        self.wait_send(req);
        got
    }

    /// Scatter: communicator rank `root` supplies one item per member
    /// (in communicator-rank order); everyone receives theirs. Flat
    /// algorithm (root sends P−1 messages), like small-message MPICH.
    pub fn scatter<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        items: Option<Vec<T>>,
    ) -> T {
        let tag = self.coll_ext_tag(comm);
        let me = comm.rank_of(self.world_rank()).expect("member");
        if me == root {
            let mut items = items.expect("scatter root must supply items");
            assert_eq!(items.len(), comm.size(), "one item per member");
            let mut reqs = Vec::new();
            let mut mine = None;
            // Send from the back so removal is O(1) and order is fixed.
            for r in (0..comm.size()).rev() {
                let item = items.pop().expect("length checked");
                if r == root {
                    mine = Some(item);
                } else {
                    reqs.push(self.isend_tagged(comm.world_rank(r), tag, bytes, Box::new(item)));
                }
            }
            self.wait_send_all(reqs);
            mine.expect("root keeps its own item")
        } else {
            let w = comm.world_rank(root);
            let (v, _) = self.recv_tagged::<T>(Src::Rank(w), tag);
            v
        }
    }

    /// Gather with uniform blocks (flat to the root); the counterpart of
    /// [`Rank::scatter`]. Returns items in communicator-rank order at the
    /// root.
    pub fn gather<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        bytes: u64,
        value: T,
    ) -> Option<Vec<T>> {
        // Uniform gather is just gatherv with equal blocks.
        self.gatherv(comm, root, bytes, value)
    }

    /// Exclusive prefix scan: rank `i` receives `op` folded over the
    /// values of ranks `0..i` (`None` at rank 0). Linear-chain algorithm —
    /// O(P) latency like naive MPI_Exscan, which is fine for setup-time
    /// uses (offsets into shared files, global displacements).
    pub fn exscan<T: Clone + Send + 'static>(
        &mut self,
        comm: &Comm,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> Option<T> {
        let tag = self.coll_ext_tag(comm);
        let me = comm.rank_of(self.world_rank()).expect("member");
        let n = comm.size();
        let prefix = if me == 0 {
            None
        } else {
            let w = comm.world_rank(me - 1);
            let (v, _) = self.recv_tagged::<T>(Src::Rank(w), tag);
            Some(v)
        };
        if me + 1 < n {
            let mut next = value;
            if let Some(p) = &prefix {
                let mine = next;
                next = p.clone();
                op(&mut next, &mine);
            }
            let w = comm.world_rank(me + 1);
            let req = self.isend_tagged(w, tag, bytes, Box::new(next));
            self.wait_send(req);
        }
        prefix
    }

    /// Sparse personalized all-to-all: each rank supplies `(dest, bytes,
    /// payload)` triples; returns everything addressed to it as
    /// `(src, payload)` pairs, in arrival (FCFS) order. The message
    /// *counts* are agreed with an allreduce first (the standard
    /// sparse-alltoall metadata exchange), so its cost includes the
    /// synchronizing collective the paper's reference codes pay.
    pub fn alltoallv_sparse<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        sends: Vec<(usize, u64, T)>,
    ) -> Vec<(usize, T)> {
        let tag = self.coll_ext_tag(comm);
        let n = comm.size();
        let me = comm.rank_of(self.world_rank()).expect("member");
        // Count vector: how many messages each member will receive.
        let mut counts = vec![0u64; n];
        for (dest, _, _) in &sends {
            assert!(*dest < n, "alltoallv destination out of range");
            counts[*dest] += 1;
        }
        let totals = self.allreduce(comm, 8 * n as u64, counts, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        });
        let expect = totals[me];
        let mut reqs = Vec::new();
        for (dest, bytes, payload) in sends {
            reqs.push(self.isend_tagged(comm.world_rank(dest), tag, bytes, Box::new(payload)));
        }
        let mut out = Vec::with_capacity(expect as usize);
        for _ in 0..expect {
            let (v, info) = self.recv_tagged::<T>(Src::Any, tag);
            let src = comm.rank_of(info.src).expect("sender is a member");
            out.push((src, v));
        }
        self.wait_send_all(reqs);
        out
    }

    /// Complete whichever of the given receive requests matches first
    /// (by message availability), returning `(index, payload, info)`.
    pub fn waitany<T: Send + 'static>(
        &mut self,
        reqs: &[crate::rank::RecvReq],
    ) -> (usize, T, crate::msg::MsgInfo) {
        assert!(!reqs.is_empty(), "waitany needs at least one request");
        loop {
            for (i, r) in reqs.iter().enumerate() {
                if let Some((v, info)) = self.try_recv_req::<T>(r) {
                    return (i, v, info);
                }
            }
            // Nothing ready: block until the mailbox changes, then rescan.
            self.park_on_mailbox();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::world::World;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn ideal() -> World {
        World::new(MachineConfig::ideal())
    }

    #[test]
    fn sendrecv_ring_rotates_values() {
        ideal().run_expect(5, |rank| {
            let n = rank.world_size();
            let me = rank.world_rank();
            let right = (me + 1) % n;
            let left = (me + n - 1) % n;
            let got = rank.sendrecv(right, left, 3, 8, me);
            assert_eq!(got, left);
        });
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        for root in [0usize, 2, 5] {
            ideal().run_expect(6, move |rank| {
                let comm = rank.comm_world();
                let items = if rank.world_rank() == root {
                    Some((0..6).map(|i| i * 100).collect())
                } else {
                    None
                };
                let mine = rank.scatter(&comm, root, 8, items);
                assert_eq!(mine, rank.world_rank() * 100);
            });
        }
    }

    #[test]
    fn gather_is_the_inverse_of_scatter() {
        ideal().run_expect(4, |rank| {
            let comm = rank.comm_world();
            let items = if rank.world_rank() == 1 { Some(vec!["a", "b", "c", "d"]) } else { None };
            let mine = rank.scatter(&comm, 1, 1, items);
            let back = rank.gather(&comm, 1, 1, mine);
            if rank.world_rank() == 1 {
                assert_eq!(back.unwrap(), vec!["a", "b", "c", "d"]);
            } else {
                assert!(back.is_none());
            }
        });
    }

    #[test]
    fn exscan_computes_exclusive_prefix_sums() {
        ideal().run_expect(7, |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank() as u64;
            let got = rank.exscan(&comm, 8, me + 1, |a, b| *a += b);
            if me == 0 {
                assert_eq!(got, None);
            } else {
                // Sum of (1..=me).
                assert_eq!(got, Some(me * (me + 1) / 2));
            }
        });
    }

    #[test]
    fn exscan_supports_noncommutative_ops() {
        ideal().run_expect(4, |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank();
            let s = format!("{me}");
            let got = rank.exscan(&comm, 1, s, |a, b| a.push_str(b));
            match me {
                0 => assert_eq!(got, None),
                1 => assert_eq!(got.as_deref(), Some("0")),
                2 => assert_eq!(got.as_deref(), Some("01")),
                _ => assert_eq!(got.as_deref(), Some("012")),
            }
        });
    }

    #[test]
    fn alltoallv_sparse_delivers_exactly_the_addressed_messages() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = got.clone();
        ideal().run_expect(5, move |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank();
            // Rank r sends r messages, to destinations r+1, r+2, ... (mod n).
            let sends: Vec<(usize, u64, (usize, usize))> =
                (0..me).map(|k| ((me + k + 1) % 5, 16, (me, k))).collect();
            let recvd = rank.alltoallv_sparse(&comm, sends);
            for (src, (from, k)) in recvd {
                assert_eq!(src, from);
                g2.lock().push((from, k, me));
            }
        });
        let mut got = got.lock().clone();
        got.sort_unstable();
        // Total messages: 0+1+2+3+4 = 10, each unique.
        assert_eq!(got.len(), 10);
        got.dedup();
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn alltoallv_sparse_with_no_traffic_still_synchronizes() {
        ideal().run_expect(3, |rank| {
            let comm = rank.comm_world();
            let recvd = rank.alltoallv_sparse::<u8>(&comm, Vec::new());
            assert!(recvd.is_empty());
        });
    }

    #[test]
    fn waitany_returns_the_first_available_match() {
        let world = World::new(MachineConfig {
            noise: crate::config::NoiseModel::none(),
            ..MachineConfig::default()
        });
        world.run_expect(3, |rank| {
            match rank.world_rank() {
                0 => {
                    rank.compute_exact(5e-3); // late
                    rank.send(2, 10, 8, 0u32);
                }
                1 => {
                    rank.compute_exact(1e-3); // early
                    rank.send(2, 11, 8, 1u32);
                }
                _ => {
                    let reqs = vec![rank.irecv(Src::Rank(0), 10), rank.irecv(Src::Rank(1), 11)];
                    let (idx, v, info) = rank.waitany::<u32>(&reqs);
                    assert_eq!(idx, 1, "rank 1's message lands first");
                    assert_eq!(v, 1);
                    assert_eq!(info.src, 1);
                    let (idx2, v2, _) = rank.waitany::<u32>(&reqs);
                    assert_eq!((idx2, v2), (0, 0));
                }
            }
        });
    }
}

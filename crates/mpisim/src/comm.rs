//! Communicators: ordered groups of world ranks.

use std::sync::Arc;

/// Immutable communicator metadata. Cheap to clone (an `Arc` inside).
#[derive(Clone, Debug)]
pub struct Comm {
    inner: Arc<CommMeta>,
}

#[derive(Debug)]
struct CommMeta {
    id: u16,
    /// World ranks of the members, in communicator-rank order.
    ranks: Vec<usize>,
}

impl Comm {
    /// Construct communicator metadata directly. Normal code receives
    /// communicators from [`crate::World`] / [`crate::Rank::split`]; this
    /// constructor exists for topology math outside a simulation (e.g.
    /// serial oracles building a [`crate::CartComm`]).
    pub fn new(id: u16, ranks: Vec<usize>) -> Comm {
        debug_assert!(!ranks.is_empty(), "empty communicator");
        Comm { inner: Arc::new(CommMeta { id, ranks }) }
    }

    /// Dense id of this communicator within its world.
    pub fn id(&self) -> u16 {
        self.inner.id
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.inner.ranks.len()
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank(&self, r: usize) -> usize {
        self.inner.ranks[r]
    }

    /// Communicator rank of world rank `w`, if a member.
    pub fn rank_of(&self, w: usize) -> Option<usize> {
        // Membership lists are small and setup-time only; linear scan is
        // fine and keeps the struct lean.
        self.inner.ranks.iter().position(|&x| x == w)
    }

    /// Member world ranks in communicator order.
    pub fn ranks(&self) -> &[usize] {
        &self.inner.ranks
    }

    /// Whether world rank `w` is a member.
    pub fn contains(&self, w: usize) -> bool {
        self.rank_of(w).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_mapping_roundtrips() {
        let c = Comm::new(3, vec![10, 4, 7]);
        assert_eq!(c.size(), 3);
        assert_eq!(c.world_rank(0), 10);
        assert_eq!(c.world_rank(2), 7);
        assert_eq!(c.rank_of(4), Some(1));
        assert_eq!(c.rank_of(5), None);
        assert!(c.contains(7));
        assert!(!c.contains(11));
        assert_eq!(c.id(), 3);
    }
}

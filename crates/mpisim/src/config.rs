//! Machine model configuration.
//!
//! The defaults are loosely calibrated to the paper's testbed — *Beskow*, a
//! Cray XC40 with Aries interconnect and two 16-core Haswell sockets per
//! node — at the level of fidelity the experiments need: microsecond-scale
//! MPI latency, ~10 GB/s NIC bandwidth, sub-microsecond per-message software
//! overhead, and an OS-noise process that perturbs compute phases.

use desim::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// Interconnect + node parameters for a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// One-way network latency between different nodes.
    pub inter_latency: SimDuration,
    /// One-way latency between ranks on the same node (shared memory).
    pub intra_latency: SimDuration,
    /// Per-rank NIC injection (tx) bandwidth, bytes/s.
    pub tx_bandwidth: f64,
    /// Per-rank NIC drain (rx) bandwidth, bytes/s. Incast congestion — many
    /// senders targeting one rank — emerges from this serialization.
    pub rx_bandwidth: f64,
    /// Intra-node copy bandwidth, bytes/s.
    pub intra_bandwidth: f64,
    /// Sender CPU overhead per message (the `o` of LogP).
    pub send_overhead: SimDuration,
    /// Receiver CPU overhead per matched message.
    pub recv_overhead: SimDuration,
    /// Ranks per node (for the intra/inter distinction).
    pub ranks_per_node: usize,
    /// OS noise / system interference injected into compute phases.
    pub noise: NoiseModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            inter_latency: SimDuration::from_nanos(1_400),
            intra_latency: SimDuration::from_nanos(400),
            tx_bandwidth: 10e9,
            rx_bandwidth: 10e9,
            intra_bandwidth: 30e9,
            send_overhead: SimDuration::from_nanos(400),
            recv_overhead: SimDuration::from_nanos(400),
            ranks_per_node: 32,
            noise: NoiseModel::default(),
        }
    }
}

impl MachineConfig {
    /// A machine with zero latency/overhead and (practically) infinite
    /// bandwidth and no noise: useful to unit-test communication *logic*
    /// separately from timing.
    pub fn ideal() -> Self {
        MachineConfig {
            inter_latency: SimDuration::ZERO,
            intra_latency: SimDuration::ZERO,
            tx_bandwidth: 1e18,
            rx_bandwidth: 1e18,
            intra_bandwidth: 1e18,
            send_overhead: SimDuration::ZERO,
            recv_overhead: SimDuration::ZERO,
            ranks_per_node: 32,
            noise: NoiseModel::none(),
        }
    }

    /// The node index hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1)
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// (latency, bandwidth) applicable between two ranks.
    #[inline]
    pub fn link(&self, a: usize, b: usize) -> (SimDuration, f64) {
        if self.same_node(a, b) {
            (self.intra_latency, self.intra_bandwidth)
        } else {
            (self.inter_latency, self.tx_bandwidth)
        }
    }
}

/// A two-component OS-noise model, after the classic characterisations of
/// system interference on large machines (Petrini et al., SC'03, cited as
/// [3] in the paper):
///
/// - **Jitter**: every compute phase is stretched by a multiplicative
///   log-normal factor with coefficient of variation `jitter_cv` —
///   capturing fine-grained interference (cache/bandwidth sharing, DVFS,
///   temperature).
/// - **Spikes**: Poisson-arriving detours (daemons, kernel ticks) with rate
///   `spike_rate_hz` and exponentially distributed duration of mean
///   `spike_mean`.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    /// Coefficient of variation of the multiplicative jitter (0 = off).
    pub jitter_cv: f64,
    /// Expected number of noise spikes per second of compute.
    pub spike_rate_hz: f64,
    /// Mean duration of one spike.
    pub spike_mean: SimDuration,
}

impl Default for NoiseModel {
    fn default() -> Self {
        // Mild but visible noise: ~2% CV jitter plus 10 spikes/s of 50us.
        NoiseModel {
            jitter_cv: 0.02,
            spike_rate_hz: 10.0,
            spike_mean: SimDuration::from_micros(50),
        }
    }
}

impl NoiseModel {
    /// No noise at all.
    pub fn none() -> Self {
        NoiseModel { jitter_cv: 0.0, spike_rate_hz: 0.0, spike_mean: SimDuration::ZERO }
    }

    /// Scale both noise components by `f` (ablation knob).
    pub fn scaled(&self, f: f64) -> Self {
        NoiseModel {
            jitter_cv: self.jitter_cv * f,
            spike_rate_hz: self.spike_rate_hz * f,
            spike_mean: self.spike_mean,
        }
    }

    /// Perturb a nominal compute duration. Deterministic given the RNG
    /// state; always >= a small fraction of the nominal work.
    pub fn perturb(&self, nominal: SimDuration, rng: &mut StdRng) -> SimDuration {
        let mut secs = nominal.as_secs_f64();
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        if self.jitter_cv > 0.0 {
            // Log-normal with mean 1 and cv jitter_cv:
            // sigma^2 = ln(1 + cv^2), mu = -sigma^2/2.
            let sigma2 = (1.0 + self.jitter_cv * self.jitter_cv).ln();
            let sigma = sigma2.sqrt();
            let z = gaussian(rng);
            secs *= (sigma * z - sigma2 / 2.0).exp();
        }
        if self.spike_rate_hz > 0.0 && self.spike_mean > SimDuration::ZERO {
            let expected = secs * self.spike_rate_hz;
            let spikes = poisson(expected, rng);
            for _ in 0..spikes {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                secs += -u.ln() * self.spike_mean.as_secs_f64();
            }
        }
        SimDuration::from_secs_f64(secs.max(nominal.as_secs_f64() * 0.01))
    }
}

/// Standard normal via Box–Muller (we avoid extra dependencies).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Poisson sample; inversion for small means, normal approximation above.
pub(crate) fn poisson(mean: f64, rng: &mut StdRng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        let z = gaussian(rng);
        (mean + mean.sqrt() * z).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn node_mapping_groups_consecutive_ranks() {
        let cfg = MachineConfig { ranks_per_node: 4, ..MachineConfig::default() };
        assert_eq!(cfg.node_of(0), 0);
        assert_eq!(cfg.node_of(3), 0);
        assert_eq!(cfg.node_of(4), 1);
        assert!(cfg.same_node(0, 3));
        assert!(!cfg.same_node(3, 4));
        let (lat_in, _) = cfg.link(0, 1);
        let (lat_out, _) = cfg.link(0, 5);
        assert!(lat_in < lat_out);
    }

    #[test]
    fn no_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = NoiseModel::none();
        let d = SimDuration::from_millis(5);
        assert_eq!(n.perturb(d, &mut rng), d);
    }

    #[test]
    fn noise_is_unbiased_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = NoiseModel { jitter_cv: 0.05, spike_rate_hz: 0.0, spike_mean: SimDuration::ZERO };
        let d = SimDuration::from_millis(1);
        let total: f64 = (0..20_000).map(|_| n.perturb(d, &mut rng).as_secs_f64()).sum();
        let mean = total / 20_000.0;
        assert!((mean / d.as_secs_f64() - 1.0).abs() < 0.01, "mean ratio {mean}");
    }

    #[test]
    fn spikes_add_time_on_average() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = NoiseModel {
            jitter_cv: 0.0,
            spike_rate_hz: 100.0,
            spike_mean: SimDuration::from_micros(100),
        };
        let d = SimDuration::from_millis(10); // expect ~1 spike of 100us
        let total: f64 = (0..5_000).map(|_| n.perturb(d, &mut rng).as_secs_f64()).sum();
        let mean = total / 5_000.0;
        let expected = d.as_secs_f64() + 1.0 * 100e-6;
        assert!((mean / expected - 1.0).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum_small = 0u64;
        let mut sum_large = 0u64;
        for _ in 0..10_000 {
            sum_small += poisson(2.0, &mut rng);
            sum_large += poisson(50.0, &mut rng);
        }
        let mean_small = sum_small as f64 / 10_000.0;
        let mean_large = sum_large as f64 / 10_000.0;
        assert!((mean_small - 2.0).abs() < 0.1, "{mean_small}");
        assert!((mean_large - 50.0).abs() < 1.0, "{mean_large}");
    }

    #[test]
    fn gaussian_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let z = gaussian(&mut rng);
            s += z;
            s2 += z * z;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

//! # mpisim — an MPI-flavoured message-passing layer on a simulated machine
//!
//! Provides the substrate the paper's evaluation ran on: a cluster of
//! ranks with a LogGP-style interconnect (per-NIC tx/rx serialization,
//! per-message software overheads, intra- vs inter-node links), OS noise,
//! binomial-tree collectives carried by real messages, Cartesian
//! topologies, and first-come-first-served `AnySource` receives — the
//! mechanism the decoupling strategy uses to absorb process imbalance.
//!
//! Payloads are real Rust values; *only time is modelled*. An application
//! run under `mpisim` computes genuine results while its makespan comes
//! from the machine model.
//!
//! ```
//! use mpisim::{MachineConfig, Src, World};
//!
//! let world = World::new(MachineConfig::default());
//! let out = world.run_expect(4, |rank| {
//!     let comm = rank.comm_world();
//!     let sum = rank.allreduce(&comm, 8, rank.world_rank() as u64, |a, b| *a += b);
//!     assert_eq!(sum, 0 + 1 + 2 + 3);
//!     if rank.world_rank() == 0 {
//!         rank.send(1, 7, 64, String::from("hello"));
//!     } else if rank.world_rank() == 1 {
//!         let (msg, info) = rank.recv::<String>(Src::Rank(0), 7);
//!         assert_eq!(msg, "hello");
//!         assert_eq!(info.bytes, 64);
//!     }
//! });
//! assert!(out.elapsed_secs() > 0.0);
//! ```

pub mod cart;
pub mod check;
pub mod coll;
pub mod coll_ext;
pub mod comm;
pub mod config;
pub mod msg;
pub mod rank;
pub mod world;

pub use cart::{dims_create, CartComm};
pub use check::SanReport;
pub use coll::{IAllgathervReq, IReduceReq};
pub use comm::Comm;
pub use config::{MachineConfig, NoiseModel};
pub use msg::{MsgInfo, Src, Tag};
pub use rank::{Rank, RecvReq, SendReq};
pub use world::{World, WorldOutcome};

pub use desim::{FaultPlan, LinkDisposition, LinkFault, SimDuration, SimTime};

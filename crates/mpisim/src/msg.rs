//! Messages, tags and per-rank mailboxes.
//!
//! Payloads travel as `Box<dyn Any + Send>` carrying *real* Rust values —
//! the applications built on the simulator compute on genuine data — while
//! the *modelled* wire size is carried separately in [`Envelope::bytes`] and
//! drives all timing.

use std::any::Any;
use std::collections::VecDeque;

use desim::{Ctx, Pid, SimTime};
use parking_lot::Mutex;

/// Wire tag. User tags occupy the low 32 bits; library-internal traffic
/// (collectives, streams) uses the upper bits so it can never collide with
/// application tags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// A plain application tag.
    pub const fn user(t: u32) -> Tag {
        Tag(t as u64)
    }

    /// An internal tag in namespace `ns` (collectives, streams, ...) with a
    /// per-communicator id and sequence number.
    pub const fn internal(ns: u8, comm: u16, seq: u32) -> Tag {
        Tag(1 << 63 | (ns as u64) << 48 | (comm as u64) << 32 | seq as u64)
    }
}

/// Source selector for receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Src {
    /// Match only messages from this world rank.
    Rank(usize),
    /// Match a message from any source — the first *available* one, which
    /// is the mechanism the decoupling model uses to absorb imbalance.
    Any,
}

/// Metadata delivered along with a received payload.
#[derive(Clone, Copy, Debug)]
pub struct MsgInfo {
    pub src: usize,
    pub tag: Tag,
    /// Modelled wire size in bytes.
    pub bytes: u64,
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    pub bytes: u64,
    /// When the last byte has been drained by the receiver NIC.
    pub available_at: SimTime,
    pub payload: Box<dyn Any + Send>,
    /// Sender's vector clock at send time, stamped by the happens-before
    /// sanitizer (`None` when the run does not check).
    #[cfg(feature = "check")]
    pub clock: Option<std::sync::Arc<Vec<u64>>>,
}

#[derive(Default)]
struct MailboxInner {
    queue: VecDeque<Envelope>,
    waiters: Vec<Pid>,
}

/// A rank's incoming message queue with `(src, tag)` matching.
#[derive(Default)]
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an envelope and schedule wake-ups for current waiters at the
    /// envelope's availability time.
    pub fn push(&self, ctx: &Ctx, env: Envelope) {
        let at = env.available_at;
        let waiters: Vec<Pid> = {
            let mut inner = self.inner.lock();
            inner.queue.push_back(env);
            std::mem::take(&mut inner.waiters)
        };
        let kernel = ctx.kernel();
        let at = at.max(kernel.now());
        for pid in waiters {
            kernel.schedule_at(at, pid);
        }
    }

    /// Index of the first matching envelope that is available at `now`,
    /// in queue (arrival) order; if none is available yet, the matching
    /// envelope with the earliest availability. Returning the first
    /// *available* match rather than the globally earliest keeps the hot
    /// path O(1) under incast (a master rank with a deep queue would
    /// otherwise rescan the whole backlog per receive, turning an N-message
    /// drain into O(N²)); queue order is NIC drain order, so the FCFS
    /// semantics are preserved.
    fn find(
        &self,
        inner: &MailboxInner,
        now: SimTime,
        src: Src,
        tag: Tag,
    ) -> Option<(usize, SimTime)> {
        let mut best: Option<(usize, SimTime)> = None;
        for (i, env) in inner.queue.iter().enumerate() {
            if env.tag != tag {
                continue;
            }
            if let Src::Rank(r) = src {
                if env.src != r {
                    continue;
                }
            }
            if env.available_at <= now {
                return Some((i, env.available_at));
            }
            match best {
                Some((_, t)) if t <= env.available_at => {}
                _ => best = Some((i, env.available_at)),
            }
        }
        best
    }

    /// Take a matching envelope if one is available at `now`.
    pub fn try_take(&self, now: SimTime, src: Src, tag: Tag) -> Option<Envelope> {
        let mut inner = self.inner.lock();
        match self.find(&inner, now, src, tag) {
            Some((i, at)) if at <= now => inner.queue.remove(i),
            _ => None,
        }
    }

    /// Blocking receive: waits until a matching envelope is available.
    pub fn take(&self, ctx: &mut Ctx, src: Src, tag: Tag) -> Envelope {
        loop {
            {
                let mut inner = self.inner.lock();
                match self.find(&inner, ctx.now(), src, tag) {
                    Some((i, at)) if at <= ctx.now() => {
                        return inner.queue.remove(i).expect("index valid under lock");
                    }
                    Some((_, at)) => {
                        // In flight: wake when it lands (and stay registered
                        // in case an earlier match arrives meanwhile).
                        let me = ctx.pid();
                        if !inner.waiters.contains(&me) {
                            inner.waiters.push(me);
                        }
                        drop(inner);
                        ctx.wake_self_at(at);
                    }
                    None => {
                        let me = ctx.pid();
                        if !inner.waiters.contains(&me) {
                            inner.waiters.push(me);
                        }
                    }
                }
            }
            ctx.suspend("mpi-recv");
        }
    }

    /// Blocking receive with an absolute deadline: waits until a matching
    /// envelope is available or virtual time reaches `deadline`, whichever
    /// comes first. A message that is available exactly at the deadline is
    /// still delivered; `None` means the deadline passed with no match.
    /// This is the failure-detection primitive: a consumer that stops
    /// hearing from a producer can bound its wait instead of hanging.
    pub fn take_deadline(
        &self,
        ctx: &mut Ctx,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<Envelope> {
        loop {
            {
                let mut inner = self.inner.lock();
                let now = ctx.now();
                match self.find(&inner, now, src, tag) {
                    Some((i, at)) if at <= now => {
                        return Some(inner.queue.remove(i).expect("index valid under lock"));
                    }
                    Some((_, at)) => {
                        if now >= deadline {
                            return None;
                        }
                        let me = ctx.pid();
                        if !inner.waiters.contains(&me) {
                            inner.waiters.push(me);
                        }
                        drop(inner);
                        ctx.wake_self_at(at.min(deadline));
                    }
                    None => {
                        if now >= deadline {
                            return None;
                        }
                        let me = ctx.pid();
                        if !inner.waiters.contains(&me) {
                            inner.waiters.push(me);
                        }
                        drop(inner);
                        ctx.wake_self_at(deadline);
                    }
                }
            }
            ctx.suspend("mpi-recv-deadline");
        }
    }

    /// Register the calling process for a wake-up on the next mailbox
    /// change (new arrival, or an in-flight message becoming available),
    /// then suspend once. Spurious wake-ups possible; callers rescan.
    pub fn park_until_change(&self, ctx: &mut Ctx) {
        {
            let mut inner = self.inner.lock();
            let me = ctx.pid();
            if !inner.waiters.contains(&me) {
                inner.waiters.push(me);
            }
            // If something is already in flight, make sure we wake when it
            // lands even if no new send occurs.
            let now = ctx.now();
            if let Some(at) = inner.queue.iter().map(|e| e.available_at).filter(|&a| a > now).min()
            {
                drop(inner);
                ctx.wake_self_at(at);
            }
        }
        ctx.suspend("mpi-waitany");
    }

    /// Whether a matching message is available at `now` (non-destructive).
    pub fn probe(&self, now: SimTime, src: Src, tag: Tag) -> Option<MsgInfo> {
        let inner = self.inner.lock();
        match self.find(&inner, now, src, tag) {
            Some((i, at)) if at <= now => {
                let env = &inner.queue[i];
                Some(MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes })
            }
            _ => None,
        }
    }

    /// Sources (and send clocks) of every *other* available envelope
    /// matching `tag` — the rival candidates a wildcard receive could
    /// equally have matched. Used by the happens-before sanitizer right
    /// after an `Src::Any` match.
    #[cfg(feature = "check")]
    pub fn available_rivals(
        &self,
        now: SimTime,
        tag: Tag,
        exclude_src: usize,
    ) -> Vec<(usize, Option<std::sync::Arc<Vec<u64>>>)> {
        let inner = self.inner.lock();
        inner
            .queue
            .iter()
            .filter(|e| e.tag == tag && e.src != exclude_src && e.available_at <= now)
            .map(|e| (e.src, e.clock.clone()))
            .collect()
    }

    /// Drain the queue, returning `(src, tag, bytes, available_at)` of
    /// every parked envelope — the sanitizer's orphan scan at finalize.
    #[cfg(feature = "check")]
    pub fn drain_meta(&self) -> Vec<(usize, Tag, u64, SimTime)> {
        let mut inner = self.inner.lock();
        inner.queue.drain(..).map(|e| (e.src, e.tag, e.bytes, e.available_at)).collect()
    }

    /// Queue depth (diagnostics / memory accounting).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Total modelled bytes parked in the queue (memory accounting).
    pub fn queued_bytes(&self) -> u64 {
        self.inner.lock().queue.iter().map(|e| e.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_never_collide_across_namespaces() {
        let user = Tag::user(7);
        let coll = Tag::internal(1, 0, 7);
        let stream = Tag::internal(2, 0, 7);
        assert_ne!(user, coll);
        assert_ne!(coll, stream);
        // Same namespace, different seq/comm differ too.
        assert_ne!(Tag::internal(1, 0, 1), Tag::internal(1, 0, 2));
        assert_ne!(Tag::internal(1, 1, 1), Tag::internal(1, 0, 1));
    }

    #[test]
    fn find_prefers_earliest_available_match() {
        let mb = Mailbox::new();
        let mk = |src: usize, at: u64| Envelope {
            src,
            tag: Tag::user(1),
            bytes: 8,
            available_at: SimTime(at),
            payload: Box::new(src),
            #[cfg(feature = "check")]
            clock: None,
        };
        {
            let mut inner = mb.inner.lock();
            inner.queue.push_back(mk(3, 500));
            inner.queue.push_back(mk(1, 100));
            inner.queue.push_back(mk(2, 300));
        }
        let env = mb.try_take(SimTime(1_000), Src::Any, Tag::user(1)).unwrap();
        assert_eq!(env.src, 3, "first available in queue (arrival) order wins FCFS");
        let env = mb.try_take(SimTime(1_000), Src::Rank(2), Tag::user(1)).unwrap();
        assert_eq!(env.src, 2);
        // src 1's message is not yet available at t=0.
        assert!(mb.try_take(SimTime(0), Src::Any, Tag::user(1)).is_none());
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn probe_is_nondestructive() {
        let mb = Mailbox::new();
        {
            let mut inner = mb.inner.lock();
            inner.queue.push_back(Envelope {
                src: 4,
                tag: Tag::user(9),
                bytes: 128,
                available_at: SimTime(10),
                payload: Box::new(()),
                #[cfg(feature = "check")]
                clock: None,
            });
        }
        assert!(mb.probe(SimTime(5), Src::Any, Tag::user(9)).is_none());
        let info = mb.probe(SimTime(10), Src::Any, Tag::user(9)).unwrap();
        assert_eq!(info.src, 4);
        assert_eq!(info.bytes, 128);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.queued_bytes(), 128);
    }
}

//! Messages, tags and per-rank mailboxes.
//!
//! Payloads travel as `Box<dyn Any + Send>` carrying *real* Rust values —
//! the applications built on the simulator compute on genuine data — while
//! the *modelled* wire size is carried separately in [`Envelope::bytes`] and
//! drives all timing.
//!
//! # Matching semantics (the contract every index must preserve)
//!
//! A receive for `(src, tag)` at virtual time `now` matches the **first
//! envelope in arrival order that is available** (`available_at <= now`).
//! If every matching envelope is still in flight, the receive parks and is
//! woken at the earliest `available_at` among them (ties broken by earliest
//! arrival). Arrival order is NIC drain order, so this is FCFS — the
//! mechanism the decoupling model uses to absorb imbalance.
//!
//! # Indexing
//!
//! The seed implementation kept one `VecDeque` and linearly scanned it per
//! receive. Under incast (the Fig. 5 master draining thousands of
//! rx-serialized producers) almost every receive found *nothing available
//! yet* and rescanned the entire backlog to compute the earliest
//! availability — an O(N²) drain. This version maintains:
//!
//! - `envs`: live envelopes keyed by a monotonically increasing arrival
//!   seq (arrival order == seq order). Never iterated on hot paths, and
//!   any full iteration (orphan drain, index rebuilds) sorts by seq, so
//!   map ordering never leaks into simulation behavior.
//! - `by_tag`: per-`Tag` index with a `ready` set (landed envelopes, by
//!   seq — `first()` is the FCFS match) and a `pending` min-heap of
//!   `(available_at, seq)` (earliest landing first). Queries promote
//!   newly landed entries `pending → ready`; virtual time is monotone, so
//!   promotion is one-way.
//! - `by_src_tag`: per-`(src, tag)` arrival-order seq list. Per-link
//!   delivery is non-overtaking — [`MailboxInner::insert`] clamps each
//!   envelope's availability to a per-source floor, covering both the
//!   gap-calendar `LinkClock` (which can book an out-of-call-order request
//!   into an earlier idle slot) and fault-window delays — so the front is
//!   simultaneously the FCFS match *and* the earliest-available one — no
//!   second heap needed.
//! - `inflight`: mailbox-wide `(available_at, seq)` min-heap answering
//!   `park_until_change`'s "when does the next in-flight message land?".
//!
//! # Wake-up protocol
//!
//! Parked receivers stay registered (with the earliest wake hint already
//! scheduled for them) until they deregister themselves on resolution;
//! `push` schedules a kernel wake only when a new envelope's availability
//! *improves* a waiter's hint. Persistence is a lazy-clock correctness
//! requirement and the hint check is the incast cheapener — see the
//! comment on `MailboxInner::waiters` and DESIGN.md §10.
//!
//! Removals touching a structure that cannot delete in O(1) leave a
//! tombstone (the seq is simply gone from `envs`); tombstones are dropped
//! lazily during queries and each structure is rebuilt when more than half
//! of it is stale, keeping amortized cost O(log n) and memory O(live).
//! Index map entries are garbage-collected when they empty out —
//! collective tags are unique per call, so the maps would otherwise grow
//! without bound.
//!
//! A proptest (`indexed_mailbox_matches_naive_reference`) drives this
//! implementation and the seed's linear scan through randomized
//! interleavings — including in-flight (`available_at > now`) cases — and
//! asserts identical matches, wake hints and final queue states.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};

use desim::{Ctx, Pid, SimTime};
use parking_lot::Mutex;

/// Wire tag. User tags occupy the low 32 bits; library-internal traffic
/// (collectives, streams) uses the upper bits so it can never collide with
/// application tags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// A plain application tag.
    pub const fn user(t: u32) -> Tag {
        Tag(t as u64)
    }

    /// An internal tag in namespace `ns` (collectives, streams, ...) with a
    /// per-communicator id and sequence number.
    pub const fn internal(ns: u8, comm: u16, seq: u32) -> Tag {
        Tag(1 << 63 | (ns as u64) << 48 | (comm as u64) << 32 | seq as u64)
    }
}

/// Source selector for receives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Src {
    /// Match only messages from this world rank.
    Rank(usize),
    /// Match a message from any source — the first *available* one, which
    /// is the mechanism the decoupling model uses to absorb imbalance.
    Any,
}

/// Metadata delivered along with a received payload.
#[derive(Clone, Copy, Debug)]
pub struct MsgInfo {
    pub src: usize,
    pub tag: Tag,
    /// Modelled wire size in bytes.
    pub bytes: u64,
}

pub(crate) struct Envelope {
    pub src: usize,
    pub tag: Tag,
    pub bytes: u64,
    /// When the last byte has been drained by the receiver NIC.
    pub available_at: SimTime,
    pub payload: Box<dyn Any + Send>,
    /// Sender's vector clock at send time, stamped by the happens-before
    /// sanitizer (`None` when the run does not check).
    #[cfg(feature = "check")]
    pub clock: Option<std::sync::Arc<Vec<u64>>>,
}

/// Per-`Tag` index (serves `Src::Any`).
#[derive(Default)]
struct TagIndex {
    /// Seqs of matching envelopes known to have landed. `first()` is the
    /// earliest arrival — the FCFS match. Kept tombstone-free: removals
    /// that find their seq here delete it eagerly (O(log n)).
    ready: BTreeSet<u64>,
    /// `(available_at, seq)` of matching envelopes not yet promoted to
    /// `ready`. The top is the earliest landing, ties by earliest arrival.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
    /// Tombstones currently buried in `pending`.
    stale: usize,
}

/// Per-`(src, tag)` index (serves `Src::Rank`). Arrival seqs in order;
/// per-link non-overtaking delivery makes the front both the FCFS match
/// and the earliest-available one.
#[derive(Default)]
struct SrcTagIndex {
    seqs: VecDeque<u64>,
    /// Tombstones currently buried in `seqs` (behind the front).
    stale: usize,
}

/// Outcome of a match query.
enum Found {
    /// This seq is the match, available now.
    Ready(u64),
    /// Matches exist but all are in flight; earliest lands at this time.
    InFlight(SimTime),
    /// No matching envelope queued at all.
    Missing,
}

#[derive(Default)]
struct MailboxInner {
    /// Live envelopes by arrival seq. Membership lookups only — every
    /// iteration sorts by seq before anything observable happens.
    envs: HashMap<u64, Envelope>,
    next_seq: u64,
    by_tag: HashMap<Tag, TagIndex>,
    by_src_tag: HashMap<(usize, Tag), SrcTagIndex>,
    /// `(available_at, seq)` of possibly-in-flight envelopes, lazily
    /// pruned (landed and tombstoned entries drop during queries/inserts).
    inflight: BinaryHeap<Reverse<(u64, u64)>>,
    /// Maintained sum of live envelopes' modelled bytes.
    bytes: u64,
    /// Parked receivers as `(pid, earliest wake hint scheduled for it)`,
    /// kept sorted by pid (insertion via binary search — O(log n)
    /// membership and a deterministic wake order). Registrations persist
    /// until the waiter explicitly deregisters: under a lazy clock
    /// (`SimConfig::lazy_time`) pushes execute out of virtual-time order,
    /// so a push may carry a far-future availability while a virtually
    /// earlier one arrives later in execution order — consuming the
    /// registration on the first push would leave the second with nobody
    /// to wake, and the waiter's local clock would snap to the stale
    /// far-future hint when it finally fires. The hint (`u64::MAX` when
    /// none is scheduled) lets a push skip the kernel entirely unless it
    /// genuinely improves the waiter's earliest wake-up.
    waiters: Vec<(Pid, u64)>,
    /// Per-source availability floor enforcing non-overtaking delivery:
    /// each source's pushes arrive in its program order, and clamping
    /// `available_at` to the source's previous one keeps `by_src_tag`'s
    /// front-is-earliest invariant even when the rx link's gap calendar
    /// (see `desim::LinkClock`) books a later message into an earlier idle
    /// slot. A no-op whenever rx occupancy completes in send order.
    src_floor: HashMap<usize, u64>,
}

impl MailboxInner {
    /// Append an envelope, updating every index. O(log n) amortized.
    /// Returns the (possibly floor-clamped) availability time.
    fn insert(&mut self, now: SimTime, mut env: Envelope) -> SimTime {
        let floor = self.src_floor.entry(env.src).or_insert(0);
        env.available_at = SimTime(env.available_at.0.max(*floor));
        *floor = env.available_at.0;
        let at = env.available_at;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += env.bytes;
        self.by_tag.entry(env.tag).or_default().pending.push(Reverse((env.available_at.0, seq)));
        self.by_src_tag.entry((env.src, env.tag)).or_default().seqs.push_back(seq);
        if env.available_at > now {
            self.inflight.push(Reverse((env.available_at.0, seq)));
        }
        // The inflight heap is only consumed by `park_until_change`; if
        // nobody calls that, prune here so it tracks O(live) memory.
        if self.inflight.len() > 2 * self.envs.len() + 32 {
            let keep: Vec<_> = self
                .inflight
                .drain()
                .filter(|&Reverse((at, s))| at > now.0 && self.envs.contains_key(&s))
                .collect();
            self.inflight = keep.into();
        }
        self.envs.insert(seq, env);
        at
    }

    /// Move every landed `pending` entry of `ti` into `ready`, dropping
    /// tombstones on the way. One-way because virtual time is monotone.
    fn promote(envs: &HashMap<u64, Envelope>, ti: &mut TagIndex, now: SimTime) {
        while let Some(&Reverse((at, seq))) = ti.pending.peek() {
            if !envs.contains_key(&seq) {
                ti.pending.pop();
                ti.stale -= 1;
            } else if at <= now.0 {
                ti.pending.pop();
                ti.ready.insert(seq);
            } else {
                break;
            }
        }
    }

    /// The match for `(src, tag)` at `now` — see the module docs for the
    /// exact semantics. Compacts tombstones and garbage-collects emptied
    /// index entries as a side effect.
    fn find(&mut self, now: SimTime, src: Src, tag: Tag) -> Found {
        match src {
            Src::Any => {
                let Some(ti) = self.by_tag.get_mut(&tag) else { return Found::Missing };
                Self::promote(&self.envs, ti, now);
                if let Some(&seq) = ti.ready.first() {
                    return Found::Ready(seq);
                }
                match ti.pending.peek() {
                    Some(&Reverse((at, _))) => Found::InFlight(SimTime(at)),
                    None => {
                        self.by_tag.remove(&tag);
                        Found::Missing
                    }
                }
            }
            Src::Rank(r) => {
                let Some(sti) = self.by_src_tag.get_mut(&(r, tag)) else { return Found::Missing };
                while let Some(&seq) = sti.seqs.front() {
                    if let Some(env) = self.envs.get(&seq) {
                        return if env.available_at <= now {
                            Found::Ready(seq)
                        } else {
                            Found::InFlight(env.available_at)
                        };
                    }
                    sti.seqs.pop_front();
                    sti.stale -= 1;
                }
                self.by_src_tag.remove(&(r, tag));
                Found::Missing
            }
        }
    }

    /// Remove `seq` from every structure (tombstoning where O(1) deletion
    /// is impossible) and return its envelope.
    fn take_seq(&mut self, seq: u64) -> Envelope {
        let env = self.envs.remove(&seq).expect("seq valid under lock");
        self.bytes -= env.bytes;
        let mut gc_tag = false;
        if let Some(ti) = self.by_tag.get_mut(&env.tag) {
            if !ti.ready.remove(&seq) {
                ti.stale += 1;
                if ti.stale * 2 > ti.pending.len() {
                    let envs = &self.envs;
                    let keep: Vec<_> = ti
                        .pending
                        .drain()
                        .filter(|&Reverse((_, s))| envs.contains_key(&s))
                        .collect();
                    ti.pending = keep.into();
                    ti.stale = 0;
                }
            }
            gc_tag = ti.ready.is_empty() && ti.pending.is_empty();
        }
        if gc_tag {
            self.by_tag.remove(&env.tag);
        }
        let mut gc_src_tag = false;
        if let Some(sti) = self.by_src_tag.get_mut(&(env.src, env.tag)) {
            if sti.seqs.front() == Some(&seq) {
                sti.seqs.pop_front();
            } else {
                sti.stale += 1;
                if sti.stale * 2 > sti.seqs.len() {
                    let envs = &self.envs;
                    sti.seqs.retain(|s| envs.contains_key(s));
                    sti.stale = 0;
                }
            }
            gc_src_tag = sti.seqs.is_empty();
        }
        if gc_src_tag {
            self.by_src_tag.remove(&(env.src, env.tag));
        }
        env
    }

    /// Register `me` for wake-ups on mailbox changes. Idempotent; an
    /// existing registration keeps its hint.
    fn register_waiter(&mut self, me: Pid) {
        if let Err(at) = self.waiters.binary_search_by_key(&me, |&(p, _)| p) {
            self.waiters.insert(at, (me, u64::MAX));
        }
    }

    /// Drop `me`'s registration (no-op when absent). Called by the waiter
    /// itself once its receive resolves or it stops parking here.
    fn deregister_waiter(&mut self, me: Pid) {
        if let Ok(at) = self.waiters.binary_search_by_key(&me, |&(p, _)| p) {
            self.waiters.remove(at);
        }
    }

    /// Record that a wake-up at `at` was scheduled for `me`, so later
    /// pushes with worse (later) availabilities skip the kernel.
    fn note_hint(&mut self, me: Pid, at: u64) {
        if let Ok(i) = self.waiters.binary_search_by_key(&me, |&(p, _)| p) {
            let h = &mut self.waiters[i].1;
            *h = (*h).min(at);
        }
    }

    /// Forget `me`'s hint (the event backing it was consumed by a wake).
    fn clear_hint(&mut self, me: Pid) {
        if let Ok(i) = self.waiters.binary_search_by_key(&me, |&(p, _)| p) {
            self.waiters[i].1 = u64::MAX;
        }
    }

    /// Earliest `available_at` strictly after `now` among live envelopes.
    fn next_landing(&mut self, now: SimTime) -> Option<SimTime> {
        while let Some(&Reverse((at, seq))) = self.inflight.peek() {
            if at <= now.0 || !self.envs.contains_key(&seq) {
                self.inflight.pop();
            } else {
                return Some(SimTime(at));
            }
        }
        None
    }
}

/// A rank's incoming message queue with `(src, tag)` matching.
#[derive(Default)]
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an envelope and schedule wake-ups at its availability time
    /// for every registered waiter whose current hint it improves.
    /// Registrations persist (see `MailboxInner::waiters`): the waiters
    /// deregister themselves once their receives resolve.
    pub fn push(&self, ctx: &Ctx, env: Envelope) {
        let kernel = ctx.kernel();
        let now = kernel.now();
        let (at, wake): (SimTime, Vec<Pid>) = {
            let mut inner = self.inner.lock();
            let at = inner.insert(now, env);
            let mut wake = Vec::new();
            for (pid, hint) in inner.waiters.iter_mut() {
                if at.0 < *hint {
                    *hint = at.0;
                    wake.push(*pid);
                }
            }
            (at, wake)
        };
        let at = at.max(now);
        for pid in wake {
            kernel.schedule_at(at, pid);
        }
    }

    /// Take a matching envelope if one is available at `now`.
    pub fn try_take(&self, now: SimTime, src: Src, tag: Tag) -> Option<Envelope> {
        let mut inner = self.inner.lock();
        match inner.find(now, src, tag) {
            Found::Ready(seq) => Some(inner.take_seq(seq)),
            _ => None,
        }
    }

    /// Blocking receive: waits until a matching envelope is available.
    pub fn take(&self, ctx: &mut Ctx, src: Src, tag: Tag) -> Envelope {
        let me = ctx.pid();
        loop {
            {
                let mut inner = self.inner.lock();
                // Any event backing our previous hint has fired (or will
                // fire spuriously); start the hint bookkeeping afresh.
                inner.clear_hint(me);
                match inner.find(ctx.now(), src, tag) {
                    Found::Ready(seq) => {
                        inner.deregister_waiter(me);
                        return inner.take_seq(seq);
                    }
                    Found::InFlight(at) => {
                        // In flight: wake when it lands (and stay registered
                        // in case an earlier match arrives meanwhile).
                        inner.register_waiter(me);
                        inner.note_hint(me, at.0);
                        drop(inner);
                        ctx.wake_self_at(at);
                    }
                    Found::Missing => inner.register_waiter(me),
                }
            }
            ctx.suspend("mpi-recv");
        }
    }

    /// Blocking receive with an absolute deadline: waits until a matching
    /// envelope is available or virtual time reaches `deadline`, whichever
    /// comes first. A message that is available exactly at the deadline is
    /// still delivered; `None` means the deadline passed with no match.
    /// This is the failure-detection primitive: a consumer that stops
    /// hearing from a producer can bound its wait instead of hanging.
    pub fn take_deadline(
        &self,
        ctx: &mut Ctx,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<Envelope> {
        let me = ctx.pid();
        loop {
            {
                let mut inner = self.inner.lock();
                inner.clear_hint(me);
                let now = ctx.now();
                match inner.find(now, src, tag) {
                    Found::Ready(seq) => {
                        inner.deregister_waiter(me);
                        return Some(inner.take_seq(seq));
                    }
                    Found::InFlight(at) => {
                        if now >= deadline {
                            inner.deregister_waiter(me);
                            return None;
                        }
                        inner.register_waiter(me);
                        let wake = at.min(deadline);
                        inner.note_hint(me, wake.0);
                        drop(inner);
                        ctx.wake_self_at(wake);
                    }
                    Found::Missing => {
                        if now >= deadline {
                            inner.deregister_waiter(me);
                            return None;
                        }
                        inner.register_waiter(me);
                        inner.note_hint(me, deadline.0);
                        drop(inner);
                        ctx.wake_self_at(deadline);
                    }
                }
            }
            ctx.suspend("mpi-recv-deadline");
        }
    }

    /// Register the calling process for a wake-up on the next mailbox
    /// change (new arrival, or an in-flight message becoming available),
    /// then suspend once. Spurious wake-ups possible; callers rescan.
    pub fn park_until_change(&self, ctx: &mut Ctx) {
        let me = ctx.pid();
        {
            let mut inner = self.inner.lock();
            inner.register_waiter(me);
            inner.clear_hint(me);
            // If something is already in flight, make sure we wake when it
            // lands even if no new send occurs.
            if let Some(at) = inner.next_landing(ctx.now()) {
                inner.note_hint(me, at.0);
                drop(inner);
                ctx.wake_self_at(at);
            }
        }
        ctx.suspend("mpi-waitany");
        // The caller rescans its predicate now and re-parks if needed;
        // processes are token-passing, so nothing can push between this
        // deregistration and a re-registration.
        self.inner.lock().deregister_waiter(me);
    }

    /// Whether a matching message is available at `now` (non-destructive).
    pub fn probe(&self, now: SimTime, src: Src, tag: Tag) -> Option<MsgInfo> {
        let mut inner = self.inner.lock();
        match inner.find(now, src, tag) {
            Found::Ready(seq) => {
                let env = &inner.envs[&seq];
                Some(MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes })
            }
            _ => None,
        }
    }

    /// Sources (and send clocks) of every *other* available envelope
    /// matching `tag` — the rival candidates a wildcard receive could
    /// equally have matched. Used by the happens-before sanitizer right
    /// after an `Src::Any` match.
    #[cfg(feature = "check")]
    pub fn available_rivals(
        &self,
        now: SimTime,
        tag: Tag,
        exclude_src: usize,
    ) -> Vec<(usize, Option<std::sync::Arc<Vec<u64>>>)> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let Some(ti) = inner.by_tag.get_mut(&tag) else { return Vec::new() };
        let envs = &inner.envs;
        MailboxInner::promote(envs, ti, now);
        // `ready` iterates in seq (arrival) order — the order the old
        // linear scan reported rivals in.
        ti.ready
            .iter()
            .map(|seq| &envs[seq])
            .filter(|e| e.src != exclude_src)
            .map(|e| (e.src, e.clock.clone()))
            .collect()
    }

    /// Drain the queue, returning `(src, tag, bytes, available_at)` of
    /// every parked envelope in arrival order — the sanitizer's orphan
    /// scan at finalize.
    #[cfg(feature = "check")]
    pub fn drain_meta(&self) -> Vec<(usize, Tag, u64, SimTime)> {
        let mut inner = self.inner.lock();
        let mut metas: Vec<(u64, (usize, Tag, u64, SimTime))> = inner
            .envs
            .drain()
            .map(|(seq, e)| (seq, (e.src, e.tag, e.bytes, e.available_at)))
            .collect();
        metas.sort_unstable_by_key(|&(seq, _)| seq);
        inner.by_tag.clear();
        inner.by_src_tag.clear();
        inner.inflight.clear();
        inner.bytes = 0;
        metas.into_iter().map(|(_, m)| m).collect()
    }

    /// Queue depth (diagnostics / memory accounting). O(1).
    pub fn len(&self) -> usize {
        self.inner.lock().envs.len()
    }

    /// Total modelled bytes parked in the queue (memory accounting). O(1)
    /// via a maintained counter.
    pub fn queued_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Test-only insert that bypasses the kernel (no waiter wake-ups).
    #[cfg(test)]
    fn push_raw(&self, env: Envelope) {
        self.inner.lock().insert(SimTime::ZERO, env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(src: usize, tag: Tag, bytes: u64, at: u64) -> Envelope {
        Envelope {
            src,
            tag,
            bytes,
            available_at: SimTime(at),
            payload: Box::new(src),
            #[cfg(feature = "check")]
            clock: None,
        }
    }

    #[test]
    fn tags_never_collide_across_namespaces() {
        let user = Tag::user(7);
        let coll = Tag::internal(1, 0, 7);
        let stream = Tag::internal(2, 0, 7);
        assert_ne!(user, coll);
        assert_ne!(coll, stream);
        // Same namespace, different seq/comm differ too.
        assert_ne!(Tag::internal(1, 0, 1), Tag::internal(1, 0, 2));
        assert_ne!(Tag::internal(1, 1, 1), Tag::internal(1, 0, 1));
    }

    #[test]
    fn find_prefers_earliest_available_match() {
        let mb = Mailbox::new();
        mb.push_raw(mk(3, Tag::user(1), 8, 500));
        mb.push_raw(mk(1, Tag::user(1), 8, 100));
        mb.push_raw(mk(2, Tag::user(1), 8, 300));
        let env = mb.try_take(SimTime(1_000), Src::Any, Tag::user(1)).unwrap();
        assert_eq!(env.src, 3, "first available in queue (arrival) order wins FCFS");
        let env = mb.try_take(SimTime(1_000), Src::Rank(2), Tag::user(1)).unwrap();
        assert_eq!(env.src, 2);
        // src 1's message was available all along (monotone virtual time
        // means real queries never go backwards, but landed stays landed).
        let env = mb.try_take(SimTime(1_000), Src::Any, Tag::user(1)).unwrap();
        assert_eq!(env.src, 1);
        assert_eq!(mb.len(), 0);
    }

    #[test]
    fn in_flight_messages_do_not_match_yet() {
        let mb = Mailbox::new();
        mb.push_raw(mk(1, Tag::user(1), 8, 100));
        assert!(mb.try_take(SimTime(0), Src::Any, Tag::user(1)).is_none());
        assert!(mb.try_take(SimTime(99), Src::Rank(1), Tag::user(1)).is_none());
        assert_eq!(mb.len(), 1);
        assert!(mb.try_take(SimTime(100), Src::Any, Tag::user(1)).is_some());
    }

    #[test]
    fn probe_is_nondestructive() {
        let mb = Mailbox::new();
        mb.push_raw(mk(4, Tag::user(9), 128, 10));
        assert!(mb.probe(SimTime(5), Src::Any, Tag::user(9)).is_none());
        let info = mb.probe(SimTime(10), Src::Any, Tag::user(9)).unwrap();
        assert_eq!(info.src, 4);
        assert_eq!(info.bytes, 128);
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.queued_bytes(), 128);
    }

    #[test]
    fn counters_track_pushes_and_takes() {
        let mb = Mailbox::new();
        mb.push_raw(mk(1, Tag::user(1), 100, 0));
        mb.push_raw(mk(2, Tag::user(2), 50, 0));
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.queued_bytes(), 150);
        mb.try_take(SimTime(1), Src::Any, Tag::user(1)).unwrap();
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.queued_bytes(), 50);
        mb.try_take(SimTime(1), Src::Rank(2), Tag::user(2)).unwrap();
        assert_eq!(mb.len(), 0);
        assert_eq!(mb.queued_bytes(), 0);
    }

    #[test]
    fn index_entries_are_garbage_collected() {
        let mb = Mailbox::new();
        // Unique tags per push, like collectives: the index maps must not
        // accumulate empty entries after the messages are consumed.
        for i in 0..100u32 {
            mb.push_raw(mk(1, Tag::internal(1, 0, i), 8, 0));
        }
        for i in 0..100u32 {
            assert!(mb.try_take(SimTime(1), Src::Any, Tag::internal(1, 0, i)).is_some());
        }
        let inner = mb.inner.lock();
        assert!(inner.by_tag.is_empty(), "by_tag leaked {} entries", inner.by_tag.len());
        assert!(inner.by_src_tag.is_empty(), "by_src_tag leaked entries");
        assert!(inner.envs.is_empty());
    }

    #[test]
    fn cross_index_removals_leave_consistent_state() {
        let mb = Mailbox::new();
        let t = Tag::user(1);
        // Interleave takes through both the Any and the Rank path so each
        // index sees removals it did not perform itself.
        for i in 0..50 {
            mb.push_raw(mk(i % 5, t, 8, i as u64));
        }
        let mut got = 0;
        for round in 0..50u64 {
            let env = if round % 2 == 0 {
                mb.try_take(SimTime(1_000), Src::Any, t)
            } else {
                mb.try_take(SimTime(1_000), Src::Rank((got % 5) as usize), t)
            };
            if env.is_some() {
                got += 1;
            }
        }
        // Drain whatever remains via the wildcard path.
        while mb.try_take(SimTime(1_000), Src::Any, t).is_some() {
            got += 1;
        }
        assert_eq!(got, 50);
        assert_eq!(mb.len(), 0);
        assert_eq!(mb.queued_bytes(), 0);
    }

    /// The seed's linear-scan mailbox, kept verbatim as the reference
    /// oracle for the equivalence proptest below.
    mod naive {
        use super::super::{Src, Tag};
        use desim::SimTime;
        use std::collections::VecDeque;

        pub struct Env {
            pub src: usize,
            pub tag: Tag,
            pub available_at: SimTime,
            pub id: u64,
        }

        #[derive(Default)]
        pub struct NaiveMailbox {
            pub queue: VecDeque<Env>,
        }

        impl NaiveMailbox {
            pub fn find(&self, now: SimTime, src: Src, tag: Tag) -> Option<(usize, SimTime)> {
                let mut best: Option<(usize, SimTime)> = None;
                for (i, env) in self.queue.iter().enumerate() {
                    if env.tag != tag {
                        continue;
                    }
                    if let Src::Rank(r) = src {
                        if env.src != r {
                            continue;
                        }
                    }
                    if env.available_at <= now {
                        return Some((i, env.available_at));
                    }
                    match best {
                        Some((_, t)) if t <= env.available_at => {}
                        _ => best = Some((i, env.available_at)),
                    }
                }
                best
            }

            pub fn try_take(&mut self, now: SimTime, src: Src, tag: Tag) -> Option<Env> {
                match self.find(now, src, tag) {
                    Some((i, at)) if at <= now => self.queue.remove(i),
                    _ => None,
                }
            }

            /// The wake-up time a blocking take would use: `Some(at)` when
            /// every match is still in flight, `None` when nothing matches.
            pub fn wake_hint(&self, now: SimTime, src: Src, tag: Tag) -> Option<SimTime> {
                match self.find(now, src, tag) {
                    Some((_, at)) if at > now => Some(at),
                    _ => None,
                }
            }
        }
    }

    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        /// Push from `src` with `tag_idx`; availability is `now + delta`
        /// per-src-monotone (the production invariant: per-link delivery
        /// is non-overtaking).
        Push {
            src: usize,
            tag_idx: usize,
            delta: u64,
        },
        /// Advance virtual time (queries are monotone, like the kernel).
        Advance {
            by: u64,
        },
        TryTakeAny {
            tag_idx: usize,
        },
        TryTakeRank {
            src: usize,
            tag_idx: usize,
        },
        Probe {
            src_sel: usize,
            tag_idx: usize,
        },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0usize..4, 0usize..3, 0u64..2_000).prop_map(|(src, tag_idx, delta)| Op::Push {
                src,
                tag_idx,
                delta
            }),
            2 => (0u64..1_500).prop_map(|by| Op::Advance { by }),
            3 => (0usize..3).prop_map(|tag_idx| Op::TryTakeAny { tag_idx }),
            2 => (0usize..4, 0usize..3)
                .prop_map(|(src, tag_idx)| Op::TryTakeRank { src, tag_idx }),
            1 => (0usize..5, 0usize..3).prop_map(|(src_sel, tag_idx)| Op::Probe {
                src_sel,
                tag_idx
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Randomized interleavings of pushes (including in-flight
        /// `available_at > now` cases), takes through both paths, time
        /// advances and probes produce identical envelope orders and wake
        /// hints from the indexed mailbox and the seed's linear scan.
        #[test]
        fn indexed_mailbox_matches_naive_reference(ops in prop::collection::vec(op_strategy(), 1..120)) {
            let tags = [Tag::user(1), Tag::user(2), Tag::internal(2, 0, 7)];
            let mb = Mailbox::new();
            let mut naive = naive::NaiveMailbox::default();
            let mut now = SimTime(0);
            let mut next_id = 0u64;
            // Per-src availability floors: production delivery per link is
            // non-overtaking, which the Src::Rank index relies on.
            let mut floors = [0u64; 4];

            for op in ops {
                match op {
                    Op::Push { src, tag_idx, delta } => {
                        let at = floors[src].max(now.0) + delta;
                        floors[src] = at;
                        let id = next_id;
                        next_id += 1;
                        mb.push_raw(Envelope {
                            src,
                            tag: tags[tag_idx],
                            bytes: id, // bytes double as the identity check
                            available_at: SimTime(at),
                            payload: Box::new(id),
                            #[cfg(feature = "check")]
                            clock: None,
                        });
                        naive.queue.push_back(naive::Env {
                            src,
                            tag: tags[tag_idx],
                            available_at: SimTime(at),
                            id,
                        });
                    }
                    Op::Advance { by } => now = SimTime(now.0 + by),
                    Op::TryTakeAny { tag_idx } => {
                        let a = mb.try_take(now, Src::Any, tags[tag_idx]);
                        let b = naive.try_take(now, Src::Any, tags[tag_idx]);
                        prop_assert_eq!(a.as_ref().map(|e| e.bytes), b.as_ref().map(|e| e.id));
                        let wa = {
                            let mut inner = mb.inner.lock();
                            match inner.find(now, Src::Any, tags[tag_idx]) {
                                Found::InFlight(at) => Some(at),
                                _ => None,
                            }
                        };
                        prop_assert_eq!(wa, naive.wake_hint(now, Src::Any, tags[tag_idx]));
                    }
                    Op::TryTakeRank { src, tag_idx } => {
                        let a = mb.try_take(now, Src::Rank(src), tags[tag_idx]);
                        let b = naive.try_take(now, Src::Rank(src), tags[tag_idx]);
                        prop_assert_eq!(a.as_ref().map(|e| e.bytes), b.as_ref().map(|e| e.id));
                        let wa = {
                            let mut inner = mb.inner.lock();
                            match inner.find(now, Src::Rank(src), tags[tag_idx]) {
                                Found::InFlight(at) => Some(at),
                                _ => None,
                            }
                        };
                        prop_assert_eq!(wa, naive.wake_hint(now, Src::Rank(src), tags[tag_idx]));
                    }
                    Op::Probe { src_sel, tag_idx } => {
                        let src = if src_sel == 4 { Src::Any } else { Src::Rank(src_sel) };
                        let a = mb.probe(now, src, tags[tag_idx]);
                        let b = naive.find(now, src, tags[tag_idx]);
                        let b_avail = match b {
                            Some((i, at)) if at <= now => Some(naive.queue[i].src),
                            _ => None,
                        };
                        prop_assert_eq!(a.map(|i| i.src), b_avail);
                    }
                }
            }

            // Final states agree: same depth, and draining everything via
            // the wildcard path yields the same envelope sequence.
            prop_assert_eq!(mb.len(), naive.queue.len());
            let end = SimTime(u64::MAX);
            for tag in tags {
                loop {
                    let a = mb.try_take(end, Src::Any, tag);
                    let b = naive.try_take(end, Src::Any, tag);
                    prop_assert_eq!(a.as_ref().map(|e| e.bytes), b.as_ref().map(|e| e.id));
                    if a.is_none() {
                        break;
                    }
                }
            }
            prop_assert_eq!(mb.len(), 0);
        }
    }
}

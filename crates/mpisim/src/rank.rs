//! The per-process MPI-flavoured handle: point-to-point messaging, modelled
//! compute, communicator management.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use desim::{Ctx, SimDuration, SimTime};

use crate::comm::Comm;
use crate::config::MachineConfig;
use crate::msg::{Envelope, MsgInfo, Src, Tag};
use crate::world::{Shared, SplitState};

/// Handle through which a rank body talks to the simulated machine.
///
/// Exposes a deliberately MPI-shaped API (`send`/`isend`/`recv`/`irecv`,
/// collectives in [`crate::coll`], Cartesian topologies in [`crate::cart`])
/// so application code reads like the MPI codes the paper modifies.
pub struct Rank<'c> {
    pub(crate) ctx: &'c mut Ctx,
    pub(crate) shared: Arc<Shared>,
    rank: usize,
    /// Per-communicator sequence numbers for collectives/splits.
    pub(crate) coll_seq: HashMap<u16, u32>,
}

/// Completion handle for a non-blocking send. The payload is already in
/// flight; `wait` blocks only until the local NIC has injected it (eager
/// protocol — buffer reusable).
#[derive(Debug)]
#[must_use = "isend requests should be waited on (or explicitly dropped)"]
pub struct SendReq {
    inject_done: SimTime,
}

/// Handle for a non-blocking receive: matching is deferred to `wait`.
#[derive(Debug)]
#[must_use = "irecv requests must be waited on"]
pub struct RecvReq {
    src: Src,
    tag: Tag,
}

impl<'c> Rank<'c> {
    pub(crate) fn new(ctx: &'c mut Ctx, shared: Arc<Shared>, rank: usize) -> Self {
        Rank { ctx, shared, rank, coll_seq: HashMap::new() }
    }

    /// This process's world rank.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.shared.nprocs
    }

    /// The world communicator.
    pub fn comm_world(&self) -> Comm {
        self.shared.world_comm()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Machine configuration (read-only).
    pub fn machine(&self) -> &MachineConfig {
        &self.shared.config
    }

    /// The fault plan this world runs under (read-only). Application-level
    /// fault points — element-granular consumer kills — consult this.
    pub fn fault_plan(&self) -> &desim::FaultPlan {
        &self.shared.fault
    }

    /// Terminate this rank as if killed by a fault: it unwinds immediately
    /// and is reported in the outcome's killed set. The execution half of
    /// [`desim::FaultPlan::kill_at_element`].
    pub fn exit_killed(&mut self) -> ! {
        self.ctx.exit_killed()
    }

    /// Deterministic per-rank RNG.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.ctx.rng()
    }

    /// Spend `secs` of modelled compute, perturbed by the machine's OS
    /// noise model.
    pub fn compute(&mut self, secs: f64) {
        let nominal = SimDuration::from_secs_f64(secs);
        let noisy = self.shared.config.noise.perturb(nominal, self.ctx.rng());
        self.ctx.advance(noisy);
    }

    /// Spend exactly `secs` of modelled compute (no noise).
    pub fn compute_exact(&mut self, secs: f64) {
        self.ctx.advance(SimDuration::from_secs_f64(secs));
    }

    /// Record a trace span around `f` (see `desim::trace`).
    pub fn traced<R>(&mut self, tag: &'static str, f: impl FnOnce(&mut Rank) -> R) -> R {
        self.ctx.trace_begin(tag);
        let r = f(self);
        self.ctx.trace_end(tag);
        r
    }

    pub fn trace_begin(&mut self, tag: &'static str) {
        self.ctx.trace_begin(tag);
    }

    pub fn trace_end(&mut self, tag: &'static str) {
        self.ctx.trace_end(tag);
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Non-blocking typed send of `value` to world rank `dst`, with a
    /// modelled wire size of `bytes`. Charges the sender CPU overhead and
    /// reserves NIC time; the payload is immediately in flight.
    pub fn isend<T: Send + 'static>(
        &mut self,
        dst: usize,
        tag: u32,
        bytes: u64,
        value: T,
    ) -> SendReq {
        self.isend_tagged(dst, Tag::user(tag), bytes, Box::new(value))
    }

    /// Blocking send: complete once the local NIC has injected the message
    /// (eager protocol).
    pub fn send<T: Send + 'static>(&mut self, dst: usize, tag: u32, bytes: u64, value: T) {
        let req = self.isend(dst, tag, bytes, value);
        self.wait_send(req);
    }

    /// Blocking typed receive. Panics if the payload type differs from `T`
    /// (a genuine program error, like a datatype mismatch in MPI).
    pub fn recv<T: Send + 'static>(&mut self, src: Src, tag: u32) -> (T, MsgInfo) {
        self.recv_tagged(src, Tag::user(tag))
    }

    /// Non-blocking receive: matching happens at [`Rank::wait_recv`].
    pub fn irecv(&mut self, src: Src, tag: u32) -> RecvReq {
        RecvReq { src, tag: Tag::user(tag) }
    }

    /// Complete a non-blocking send.
    pub fn wait_send(&mut self, req: SendReq) {
        let now = self.ctx.now();
        if req.inject_done > now {
            self.ctx.advance(req.inject_done.since(now));
        }
    }

    /// Complete a set of non-blocking sends.
    pub fn wait_send_all(&mut self, reqs: Vec<SendReq>) {
        let latest = reqs.iter().map(|r| r.inject_done).max();
        if let Some(t) = latest {
            let now = self.ctx.now();
            if t > now {
                self.ctx.advance(t.since(now));
            }
        }
    }

    /// Complete a non-blocking receive.
    pub fn wait_recv<T: Send + 'static>(&mut self, req: RecvReq) -> (T, MsgInfo) {
        self.recv_tagged(req.src, req.tag)
    }

    /// Blocking receive bounded by an absolute virtual-time `deadline`.
    ///
    /// Returns `None` if no matching message became available by the
    /// deadline (a message available exactly at the deadline is still
    /// delivered). This is the failure-detection primitive: instead of
    /// hanging forever on a peer that died, bound the wait and decide.
    pub fn recv_deadline<T: Send + 'static>(
        &mut self,
        src: Src,
        tag: u32,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        self.recv_tagged_deadline(src, Tag::user(tag), deadline)
    }

    /// [`Rank::recv_deadline`] with a relative timeout from now.
    pub fn recv_timeout<T: Send + 'static>(
        &mut self,
        src: Src,
        tag: u32,
        timeout: SimDuration,
    ) -> Option<(T, MsgInfo)> {
        let deadline = self.ctx.now() + timeout;
        self.recv_tagged_deadline(src, Tag::user(tag), deadline)
    }

    /// Whether a matching message could be received right now without
    /// blocking.
    pub fn iprobe(&mut self, src: Src, tag: u32) -> Option<MsgInfo> {
        self.shared.mailboxes[self.rank].probe(self.ctx.now(), src, Tag::user(tag))
    }

    /// Non-blocking matched receive: take a message only if available now.
    pub fn try_recv<T: Send + 'static>(&mut self, src: Src, tag: u32) -> Option<(T, MsgInfo)> {
        self.try_recv_tagged(src, Tag::user(tag))
    }

    // ------------------------------------------------------------------
    // Namespaced-tag variants (for libraries layered on the simulator,
    // e.g. the MPIStream crate; see [`Tag::internal`])
    // ------------------------------------------------------------------

    /// Non-blocking send with an explicit (possibly namespaced) [`Tag`].
    pub fn isend_t<T: Send + 'static>(
        &mut self,
        dst: usize,
        tag: Tag,
        bytes: u64,
        value: T,
    ) -> SendReq {
        self.isend_tagged(dst, tag, bytes, Box::new(value))
    }

    /// Blocking send with an explicit [`Tag`].
    pub fn send_t<T: Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: T) {
        let req = self.isend_t(dst, tag, bytes, value);
        self.wait_send(req);
    }

    /// Blocking receive with an explicit [`Tag`].
    pub fn recv_t<T: Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo) {
        self.recv_tagged(src, tag)
    }

    /// Non-blocking matched receive with an explicit [`Tag`].
    pub fn try_recv_t<T: Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(T, MsgInfo)> {
        self.try_recv_tagged(src, tag)
    }

    /// Deadline-bounded receive with an explicit [`Tag`]
    /// (see [`Rank::recv_deadline`]).
    pub fn recv_t_deadline<T: Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        self.recv_tagged_deadline(src, tag, deadline)
    }

    /// Probe with an explicit [`Tag`].
    pub fn iprobe_t(&mut self, src: Src, tag: Tag) -> Option<MsgInfo> {
        self.shared.mailboxes[self.rank].probe(self.ctx.now(), src, tag)
    }

    /// Messages currently parked in this rank's mailbox (diagnostics).
    pub fn mailbox_depth(&self) -> usize {
        self.shared.mailboxes[self.rank].len()
    }

    /// Modelled bytes currently parked in this rank's mailbox — the memory
    /// footprint of buffered, unconsumed stream data (§II-D of the paper).
    pub fn mailbox_bytes(&self) -> u64 {
        self.shared.mailboxes[self.rank].queued_bytes()
    }

    pub(crate) fn isend_tagged(
        &mut self,
        dst: usize,
        tag: Tag,
        bytes: u64,
        payload: Box<dyn Any + Send>,
    ) -> SendReq {
        assert!(dst < self.shared.nprocs, "send to out-of-range rank {dst}");
        let cfg = &self.shared.config;
        // Sender-side CPU overhead (LogP `o`).
        self.ctx.advance(cfg.send_overhead);
        let now = self.ctx.now();
        let (latency, _) = cfg.link(self.rank, dst);
        let (tx_bw, rx_bw) = if cfg.same_node(self.rank, dst) {
            (cfg.intra_bandwidth, cfg.intra_bandwidth)
        } else {
            (cfg.tx_bandwidth, cfg.rx_bandwidth)
        };

        // Two-stage store-and-forward: injection on the sender NIC, then a
        // latency hop, then drain through the receiver NIC. The rx stage
        // serializes concurrent senders and produces incast congestion.
        let inject_done = {
            let mut nic = self.shared.nics[self.rank].lock();
            nic.tx.occupy(now, SimDuration::from_bytes_at(bytes, tx_bw))
        };
        let arrival = inject_done + latency;
        let mut available_at = {
            let mut nic = self.shared.nics[dst].lock();
            nic.rx.occupy(arrival, SimDuration::from_bytes_at(bytes, rx_bw))
        };

        self.shared.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.shared.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.shared.per_rank_msgs[self.rank].fetch_add(1, Ordering::Relaxed);

        // Happens-before sanitizer: tick this rank's clock and stamp the
        // message. Ticked even if a link fault later drops the message —
        // the send event happened.
        #[cfg(feature = "check")]
        let clock = self.shared.sanitizer.as_ref().map(|s| s.on_send(self.rank));

        // Link-fault layer. Only engaged when the plan has link faults, so
        // the fault-free hot path is untouched. The drop decision is a pure
        // hash of (plan seed, link, per-link msg seq), evaluation-order
        // independent; the availability floor keeps per-link delivery
        // monotone (non-overtaking) even when an extra-delay window ends
        // between two consecutive messages.
        if self.shared.fault.has_link_faults() {
            use desim::LinkDisposition;
            let mut links = self.shared.link_state.lock();
            let entry = links.entry((self.rank, dst)).or_insert((0, SimTime::ZERO));
            let seq = entry.0;
            entry.0 += 1;
            match self.shared.fault.link_disposition(self.rank, dst, arrival, seq) {
                LinkDisposition::Drop => {
                    self.shared.msgs_dropped.fetch_add(1, Ordering::Relaxed);
                    // The sender still spent its NIC time; the message just
                    // never lands.
                    return SendReq { inject_done };
                }
                LinkDisposition::Deliver { extra } => {
                    available_at = (available_at + extra).max(entry.1);
                    entry.1 = available_at;
                }
            }
        }

        self.shared.mailboxes[dst].push(
            self.ctx,
            Envelope {
                src: self.rank,
                tag,
                bytes,
                available_at,
                payload,
                #[cfg(feature = "check")]
                clock,
            },
        );
        SendReq { inject_done }
    }

    pub(crate) fn recv_tagged<T: Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo) {
        let env = self.shared.mailboxes[self.rank].take(self.ctx, src, tag);
        #[cfg(feature = "check")]
        self.check_wildcard(src, &env);
        self.unpack(env)
    }

    pub(crate) fn recv_tagged_deadline<T: Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        let shared = self.shared.clone();
        let env = shared.mailboxes[self.rank].take_deadline(self.ctx, src, tag, deadline)?;
        #[cfg(feature = "check")]
        self.check_wildcard(src, &env);
        Some(self.unpack(env))
    }

    pub(crate) fn try_recv_tagged<T: Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
    ) -> Option<(T, MsgInfo)> {
        let env = self.shared.mailboxes[self.rank].try_take(self.ctx.now(), src, tag)?;
        #[cfg(feature = "check")]
        self.check_wildcard(src, &env);
        Some(self.unpack(env))
    }

    /// Sanitizer: after a wildcard match on a *user* tag, look for causally
    /// concurrent rival candidates still in the mailbox. Internal traffic
    /// (collectives, streams) multiplexes over `Src::Any` by design and is
    /// excluded — FCFS nondeterminism there is the mechanism, not a bug.
    #[cfg(feature = "check")]
    fn check_wildcard(&mut self, src: Src, env: &Envelope) {
        if !matches!(src, Src::Any) || env.tag.0 >> 63 != 0 {
            return;
        }
        let Some(san) = self.shared.sanitizer.as_ref() else { return };
        let now = self.ctx.now();
        let rivals = self.shared.mailboxes[self.rank].available_rivals(now, env.tag, env.src);
        if !rivals.is_empty() {
            san.on_wildcard_match(self.rank, env.tag, env.src, env.clock.as_ref(), &rivals, now.0);
        }
    }

    /// Sanitizer hook: register a stream channel's flow-control parameters
    /// (window in elements, credit tag). Called by the stream library at
    /// channel creation; no-op when the run does not check.
    #[cfg(feature = "check")]
    pub fn check_register_channel(&mut self, id: u16, window: Option<u64>, credit_tag: Tag) {
        if let Some(san) = self.shared.sanitizer.as_ref() {
            san.register_channel(id, window, credit_tag);
        }
    }

    /// Sanitizer hook: this rank put `elems` stream elements in flight to
    /// world rank `consumer` on channel `id`.
    #[cfg(feature = "check")]
    pub fn check_data_sent(&mut self, id: u16, consumer: usize, elems: u64) {
        if let Some(san) = self.shared.sanitizer.as_ref() {
            san.data_sent(id, self.rank, consumer, elems, self.ctx.now().0);
        }
    }

    /// Sanitizer hook: this rank granted `elems` credits back to world rank
    /// `producer` on channel `id`.
    #[cfg(feature = "check")]
    pub fn check_credit_issued(&mut self, id: u16, producer: usize, elems: u64) {
        if let Some(san) = self.shared.sanitizer.as_ref() {
            san.credit_issued(id, self.rank, producer, elems);
        }
    }

    fn unpack<T: Send + 'static>(&mut self, env: Envelope) -> (T, MsgInfo) {
        // Receiver-side CPU overhead per matched message.
        let o = self.shared.config.recv_overhead;
        self.ctx.advance(o);
        #[cfg(feature = "check")]
        if let Some(san) = self.shared.sanitizer.as_ref() {
            san.on_recv(self.rank, env.clock.as_ref());
        }
        let info = MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes };
        match env.payload.downcast::<T>() {
            Ok(v) => (*v, info),
            Err(_) => panic!(
                "rank {}: payload type mismatch receiving tag {:?} from {} \
                 (expected {})",
                self.rank,
                env.tag,
                env.src,
                std::any::type_name::<T>()
            ),
        }
    }

    /// Next collective sequence number on `comm` (each rank counts its own
    /// calls; MPI requires identical collective call order on a
    /// communicator, which makes the counters agree).
    pub(crate) fn next_seq(&mut self, comm: &Comm) -> u32 {
        let seq = self.coll_seq.entry(comm.id()).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Collective split of `comm` (MPI_Comm_split): members with the same
    /// `color` form a new communicator ordered by `(key, world_rank)`.
    /// `color = None` yields `None` (MPI_UNDEFINED). Synchronizing.
    pub fn split(&mut self, comm: &Comm, color: Option<i64>, key: i64) -> Option<Comm> {
        assert!(comm.contains(self.rank), "split on a communicator we are not in");
        let seq = self.next_seq(comm);
        let sk = (comm.id(), seq);
        let me = self.rank;
        let pid = self.ctx.pid();
        let now = self.ctx.now();
        let color_code = color.unwrap_or(i64::MIN);

        let complete = {
            let mut splits = self.shared.splits.lock();
            let st = splits.entry(sk).or_insert_with(|| SplitState {
                entries: Vec::new(),
                waiters: Vec::new(),
                last_arrival: SimTime::ZERO,
                result: None,
                picked: 0,
            });
            st.entries.push((color_code, key, me));
            st.last_arrival = st.last_arrival.max(now);
            if st.entries.len() == comm.size() {
                true
            } else {
                st.waiters.push(pid);
                false
            }
        };

        if complete {
            // Build the subcommunicators (deterministic ordering).
            let (groups, last) = {
                let mut splits = self.shared.splits.lock();
                let st = splits.get_mut(&sk).expect("split state exists");
                let mut entries = std::mem::take(&mut st.entries);
                entries.sort_by_key(|&(c, k, w)| (c, k, w));
                (entries, st.last_arrival)
            };
            let mut result: HashMap<usize, Option<Comm>> = HashMap::new();
            let mut i = 0;
            while i < groups.len() {
                let color = groups[i].0;
                let mut members = Vec::new();
                while i < groups.len() && groups[i].0 == color {
                    members.push(groups[i].2);
                    i += 1;
                }
                if color == i64::MIN {
                    for w in members {
                        result.insert(w, None);
                    }
                } else {
                    let c = self.shared.register_comm(members.clone());
                    for w in members {
                        result.insert(w, Some(c.clone()));
                    }
                }
            }
            let waiters = {
                let mut splits = self.shared.splits.lock();
                let st = splits.get_mut(&sk).expect("split state exists");
                st.result = Some(result);
                st.picked = 0;
                std::mem::take(&mut st.waiters)
            };
            // Release everyone at the synchronization point. The split is a
            // cheap setup-time collective: charge one latency.
            let release = last + self.shared.config.inter_latency;
            for w in waiters {
                self.ctx.kernel().schedule_at(release.max(self.ctx.now()), w);
            }
            if release > self.ctx.now() {
                let d = release.since(self.ctx.now());
                self.ctx.advance(d);
            }
            self.pick_split_result(sk, comm.size())
        } else {
            // Wait until the result is published.
            loop {
                {
                    let splits = self.shared.splits.lock();
                    if splits.get(&sk).map(|st| st.result.is_some()).unwrap_or(false) {
                        break;
                    }
                }
                self.ctx.suspend("comm-split");
            }
            self.pick_split_result(sk, comm.size())
        }
    }

    fn pick_split_result(&mut self, sk: (u16, u32), size: usize) -> Option<Comm> {
        let mut splits = self.shared.splits.lock();
        let st = splits.get_mut(&sk).expect("split state exists");
        let out = st
            .result
            .as_ref()
            .expect("split result published")
            .get(&self.rank)
            .cloned()
            .expect("every member has a split result");
        st.picked += 1;
        if st.picked == size {
            splits.remove(&sk);
        }
        out
    }

    /// Non-blocking attempt to complete a receive request (for
    /// [`Rank::waitany`]-style combinators).
    pub(crate) fn try_recv_req<T: Send + 'static>(
        &mut self,
        req: &RecvReq,
    ) -> Option<(T, MsgInfo)> {
        self.try_recv_tagged(req.src, req.tag)
    }

    /// Suspend until this rank's mailbox changes — a new message arrives
    /// or an in-flight one becomes available. May wake spuriously; callers
    /// re-check their condition. The building block for multiplexing over
    /// several message sources (see `mpistream`'s `operate2`).
    pub fn wait_for_mail(&mut self) {
        self.park_on_mailbox();
    }

    /// Suspend until this rank's mailbox changes (possibly spuriously).
    pub(crate) fn park_on_mailbox(&mut self) {
        let shared = self.shared.clone();
        shared.mailboxes[self.rank].park_until_change(self.ctx);
    }

    /// Allocate a world-unique 16-bit id (for layered libraries that need
    /// their own tag namespace, e.g. stream channels). Not collective —
    /// callers that need agreement should allocate on one rank and
    /// broadcast.
    pub fn alloc_channel_id(&mut self) -> u16 {
        let id = self.shared.channel_ids.fetch_add(1, Ordering::Relaxed);
        u16::try_from(id).expect("too many channels")
    }

    /// Direct access to the underlying simulation context (escape hatch for
    /// libraries layered on the simulator, e.g. the stream library).
    pub fn ctx(&mut self) -> &mut Ctx {
        self.ctx
    }
}

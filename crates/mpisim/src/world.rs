//! World construction: spawn `P` simulated ranks and run them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use desim::{Ctx, FaultPlan, LinkClock, SimConfig, SimError, SimOutcome, SimTime, Simulation};
use parking_lot::Mutex;

use crate::comm::Comm;
use crate::config::MachineConfig;
use crate::msg::Mailbox;
use crate::rank::Rank;

pub(crate) struct NicState {
    pub tx: LinkClock,
    pub rx: LinkClock,
}

/// State shared by every rank of a world.
pub(crate) struct Shared {
    pub config: MachineConfig,
    pub nprocs: usize,
    pub mailboxes: Vec<Mailbox>,
    pub nics: Vec<Mutex<NicState>>,
    pub comms: Mutex<Vec<Comm>>,
    /// Rendezvous state for `Rank::split` operations, keyed by
    /// `(parent_comm_id, seq)`.
    pub splits: Mutex<HashMap<(u16, u32), SplitState>>,
    pub msgs_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub per_rank_msgs: Vec<AtomicU64>,
    /// World-unique id source for stream channels (and other layered
    /// libraries needing a tag namespace of their own).
    pub channel_ids: AtomicU64,
    /// The run's failure schedule; ranks consult it per message when it has
    /// link faults. Kills/pauses are executed by the desim kernel.
    pub fault: FaultPlan,
    /// Per-link `(next msg seq, availability floor)`, touched only when the
    /// plan has link faults. The floor keeps per-link delivery availability
    /// monotone even when a fault window's extra delay ends mid-stream, so
    /// the surviving messages still obey non-overtaking.
    pub link_state: Mutex<HashMap<(usize, usize), (u64, SimTime)>>,
    /// Messages lost to link faults.
    pub msgs_dropped: AtomicU64,
    /// The happens-before sanitizer, when this run checks (see
    /// [`World::with_check`] and the [`crate::check`] module).
    #[cfg(feature = "check")]
    pub sanitizer: Option<Arc<crate::check::Sanitizer>>,
}

pub(crate) struct SplitState {
    /// (color, key, world_rank) deposited by each arrived member.
    pub entries: Vec<(i64, i64, usize)>,
    /// pids waiting for the split to complete.
    pub waiters: Vec<desim::Pid>,
    /// Latest arrival time, for the synchronization release.
    pub last_arrival: desim::SimTime,
    /// Result: world_rank -> comm (None color yields no comm).
    pub result: Option<HashMap<usize, Option<Comm>>>,
    /// How many members have picked their result up (for GC).
    pub picked: usize,
}

impl Shared {
    pub fn register_comm(&self, ranks: Vec<usize>) -> Comm {
        let mut comms = self.comms.lock();
        let id = u16::try_from(comms.len()).expect("too many communicators");
        let comm = Comm::new(id, ranks);
        comms.push(comm.clone());
        comm
    }

    pub fn world_comm(&self) -> Comm {
        self.comms.lock()[0].clone()
    }
}

/// Aggregate result of a world run.
#[derive(Debug)]
pub struct WorldOutcome {
    /// The underlying simulation outcome (end time, per-proc stats, trace).
    pub sim: SimOutcome,
    /// Total point-to-point messages sent (including library-internal).
    pub msgs_sent: u64,
    /// Total modelled bytes sent.
    pub bytes_sent: u64,
    /// Messages sent per world rank.
    pub per_rank_msgs: Vec<u64>,
    /// Messages lost to injected link faults (0 on fault-free runs).
    pub msgs_dropped: u64,
    /// Findings of the happens-before sanitizer. Always present; empty
    /// unless the run opted in with [`World::with_check`] (which needs the
    /// `check` feature) and something was actually wrong.
    pub san_reports: Vec<crate::check::SanReport>,
}

impl WorldOutcome {
    /// Virtual makespan of the run in seconds — the headline number every
    /// figure in the paper reports.
    pub fn elapsed_secs(&self) -> f64 {
        self.sim.end_time.as_secs_f64()
    }
}

/// A simulated machine running one SPMD program on `P` ranks.
pub struct World {
    pub config: MachineConfig,
    pub seed: u64,
    pub trace: bool,
    /// Seeded failure schedule applied to this run (see [`FaultPlan`]).
    /// Fault pids are world ranks. Empty (the default) injects nothing.
    pub fault_plan: FaultPlan,
    /// Run the happens-before sanitizer (see [`World::with_check`]).
    pub check: bool,
}

impl Default for World {
    fn default() -> Self {
        World {
            config: MachineConfig::default(),
            seed: 0xC0FFEE,
            trace: false,
            fault_plan: FaultPlan::default(),
            check: false,
        }
    }
}

impl World {
    pub fn new(config: MachineConfig) -> Self {
        World { config, ..World::default() }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attach a failure schedule; rank `r` in the plan is world rank `r`.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enable the happens-before sanitizer for this run: wildcard-receive
    /// race detection, an orphan-message scan at finalize, and stream
    /// credit-window auditing. Findings land in
    /// [`WorldOutcome::san_reports`] and enrich deadlock reports. Requires
    /// mpisim's `check` feature; without it this panics rather than
    /// silently not checking.
    pub fn with_check(mut self) -> Self {
        if cfg!(not(feature = "check")) {
            panic!("World::with_check requires mpisim to be built with the `check` feature");
        }
        self.check = true;
        self
    }

    /// Run `body` as an SPMD program on `nprocs` ranks and return the
    /// outcome. The body receives a [`Rank`] handle; world rank and sizes
    /// are available on it.
    pub fn run<F>(&self, nprocs: usize, body: F) -> Result<WorldOutcome, SimError>
    where
        F: Fn(&mut Rank) + Send + Sync + 'static,
    {
        assert!(nprocs > 0, "world needs at least one rank");
        #[cfg(feature = "check")]
        let sanitizer =
            if self.check { Some(Arc::new(crate::check::Sanitizer::new(nprocs))) } else { None };
        let shared = Arc::new(Shared {
            config: self.config.clone(),
            nprocs,
            mailboxes: (0..nprocs).map(|_| Mailbox::new()).collect(),
            nics: (0..nprocs)
                .map(|_| Mutex::new(NicState { tx: LinkClock::new(), rx: LinkClock::new() }))
                .collect(),
            comms: Mutex::new(Vec::new()),
            splits: Mutex::new(HashMap::new()),
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            per_rank_msgs: (0..nprocs).map(|_| AtomicU64::new(0)).collect(),
            channel_ids: AtomicU64::new(0),
            fault: self.fault_plan.clone(),
            link_state: Mutex::new(HashMap::new()),
            msgs_dropped: AtomicU64::new(0),
            #[cfg(feature = "check")]
            sanitizer,
        });
        // Communicator 0 is the world.
        shared.register_comm((0..nprocs).collect());

        let mut sim = Simulation::new(SimConfig {
            seed: self.seed,
            trace: self.trace,
            fault_plan: self.fault_plan.clone(),
            // Rank interactions are mediated by message availability times
            // and timed wake-ups, so decoupled local clocks (no heap event
            // per compute step) preserve results while skipping most of the
            // kernel's context switches. desim forces this off by itself
            // when the fault plan kills or pauses ranks.
            lazy_time: true,
            ..SimConfig::default()
        });
        // Deadlock reports include the sanitizer's credit-state table, so a
        // credit-exhaustion hang is diagnosable from the error alone.
        #[cfg(feature = "check")]
        if let Some(san) = shared.sanitizer.clone() {
            sim.kernel().add_diagnostics(Arc::new(move || san.deadlock_diag()));
        }
        let body = Arc::new(body);
        for r in 0..nprocs {
            let shared = shared.clone();
            let body = body.clone();
            sim.spawn(format!("rank{r}"), move |ctx: &mut Ctx| {
                let mut rank = Rank::new(ctx, shared, r);
                body(&mut rank);
            });
        }
        let sim_outcome = sim.run()?;
        // Orphan scan: anything still parked in a mailbox was never matched
        // by a receive. On faulty runs orphans addressed to (or sent by)
        // killed ranks are expected; callers filter by their fault plan.
        #[cfg(feature = "check")]
        if let Some(san) = shared.sanitizer.as_ref() {
            for (dst, mb) in shared.mailboxes.iter().enumerate() {
                for (src, tag, bytes, at) in mb.drain_meta() {
                    san.orphan(dst, src, tag, bytes, at.0);
                }
            }
        }
        #[cfg(feature = "check")]
        let san_reports = shared.sanitizer.as_ref().map(|s| s.reports()).unwrap_or_default();
        #[cfg(not(feature = "check"))]
        let san_reports = Vec::new();
        Ok(WorldOutcome {
            sim: sim_outcome,
            msgs_sent: shared.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: shared.bytes_sent.load(Ordering::Relaxed),
            per_rank_msgs: shared.per_rank_msgs.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            msgs_dropped: shared.msgs_dropped.load(Ordering::Relaxed),
            san_reports,
        })
    }

    /// [`World::run`], panicking on simulation failure.
    pub fn run_expect<F>(&self, nprocs: usize, body: F) -> WorldOutcome
    where
        F: Fn(&mut Rank) + Send + Sync + 'static,
    {
        match self.run(nprocs, body) {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        }
    }
}

//! Collective correctness and timing-shape tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpisim::{MachineConfig, NoiseModel, World};
use parking_lot::Mutex;

fn ideal_world() -> World {
    World::new(MachineConfig::ideal())
}

fn quiet_world() -> World {
    World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
}

#[test]
fn allreduce_sums_over_many_sizes() {
    for n in [1usize, 2, 3, 4, 5, 7, 8, 13, 16, 33] {
        let world = ideal_world();
        world.run_expect(n, move |rank| {
            let comm = rank.comm_world();
            let sum = rank.allreduce(&comm, 8, rank.world_rank() as u64 + 1, |a, b| *a += b);
            let expect = (n * (n + 1) / 2) as u64;
            assert_eq!(sum, expect, "n={n}");
        });
    }
}

#[test]
fn reduce_returns_only_at_root() {
    let world = ideal_world();
    world.run_expect(9, |rank| {
        let comm = rank.comm_world();
        let r = rank.reduce(&comm, 3, 8, rank.world_rank() as i64, |a, b| *a = (*a).max(*b));
        if rank.world_rank() == 3 {
            assert_eq!(r, Some(8));
        } else {
            assert_eq!(r, None);
        }
    });
}

#[test]
fn reduce_with_min_and_vector_ops() {
    let world = ideal_world();
    world.run_expect(6, |rank| {
        let comm = rank.comm_world();
        let v = vec![rank.world_rank() as f64, 10.0 - rank.world_rank() as f64];
        let r = rank.reduce(&comm, 0, 16, v, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x = x.min(*y);
            }
        });
        if rank.world_rank() == 0 {
            assert_eq!(r, Some(vec![0.0, 5.0]));
        }
    });
}

#[test]
fn bcast_from_every_root() {
    for root in 0..5usize {
        let world = ideal_world();
        world.run_expect(5, move |rank| {
            let comm = rank.comm_world();
            let val = if rank.world_rank() == root { Some(format!("from {root}")) } else { None };
            let got = rank.bcast(&comm, root, 32, val);
            assert_eq!(got, format!("from {root}"));
        });
    }
}

#[test]
fn gatherv_orders_by_comm_rank() {
    let world = ideal_world();
    world.run_expect(7, |rank| {
        let comm = rank.comm_world();
        let mine = vec![rank.world_rank(); rank.world_rank() + 1]; // variable sizes
        let got = rank.gatherv(&comm, 2, mine.len() as u64 * 8, mine);
        if rank.world_rank() == 2 {
            let got = got.unwrap();
            for (i, block) in got.iter().enumerate() {
                assert_eq!(block, &vec![i; i + 1]);
            }
        } else {
            assert!(got.is_none());
        }
    });
}

#[test]
fn allgatherv_gives_everyone_everything() {
    let world = ideal_world();
    world.run_expect(6, |rank| {
        let comm = rank.comm_world();
        let got = rank.allgatherv(&comm, 8, rank.world_rank() * 10);
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50]);
    });
}

#[test]
fn barrier_holds_everyone_until_last_arrival() {
    let world = quiet_world();
    let min_release = Arc::new(AtomicU64::new(u64::MAX));
    let mr = min_release.clone();
    world.run_expect(8, move |rank| {
        // Rank r computes r ms; the barrier must not release anyone before
        // the slowest (7 ms) has arrived.
        rank.compute_exact(rank.world_rank() as f64 * 1e-3);
        let comm = rank.comm_world();
        rank.barrier(&comm);
        mr.fetch_min(rank.now().as_nanos(), Ordering::SeqCst);
    });
    assert!(
        min_release.load(Ordering::SeqCst) >= 7_000_000,
        "someone left the barrier before the slowest rank arrived"
    );
}

#[test]
fn allreduce_scales_logarithmically_not_linearly() {
    // Timing-shape test: allreduce time at P=64 should be well below
    // 8x the time at P=8 (binomial tree: log2(64)/log2(8) = 2x rounds).
    fn allreduce_time(p: usize) -> f64 {
        let world = quiet_world();
        let out = world.run_expect(p, |rank| {
            let comm = rank.comm_world();
            for _ in 0..10 {
                let _ = rank.allreduce(&comm, 8, 1u64, |a, b| *a += b);
            }
        });
        out.elapsed_secs()
    }
    let t8 = allreduce_time(8);
    let t64 = allreduce_time(64);
    assert!(t64 > t8, "more ranks must cost more");
    assert!(t64 < t8 * 4.0, "t64={t64} should grow ~log, t8={t8}");
}

#[test]
fn ireduce_matches_blocking_reduce_result() {
    let world = ideal_world();
    world.run_expect(10, |rank| {
        let comm = rank.comm_world();
        let req = rank.ireduce_start(&comm, 8, rank.world_rank() as u64);
        rank.compute_exact(1e-4);
        let r = rank.ireduce_wait(req, |a, b| *a += b);
        if rank.world_rank() == 0 {
            assert_eq!(r, Some(45));
        } else {
            assert_eq!(r, None);
        }
    });
}

#[test]
fn ireduce_leaf_sends_overlap_compute() {
    // Interior ranks receive children data that was sent before their own
    // compute finished; overall time should be close to compute + O(log P)
    // combine, far below compute * 2.
    let world = quiet_world();
    let out = world.run_expect(16, |rank| {
        let comm = rank.comm_world();
        let req = rank.ireduce_start(&comm, 1 << 20, vec![rank.world_rank() as u64; 1]);
        rank.compute_exact(5e-3);
        let _ = rank.ireduce_wait(req, |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        });
    });
    let t = out.elapsed_secs();
    assert!(t < 6e-3, "ireduce should overlap, took {t}");
}

#[test]
fn iallgatherv_matches_blocking_allgatherv() {
    let world = ideal_world();
    world.run_expect(9, |rank| {
        let comm = rank.comm_world();
        let req = rank.iallgatherv_start(&comm, 8, rank.world_rank() as u32);
        rank.compute_exact(1e-5);
        let all = rank.iallgatherv_wait::<u32>(req);
        assert_eq!(all, (0..9u32).collect::<Vec<_>>());
    });
}

#[test]
fn collectives_work_on_subcommunicators() {
    let world = ideal_world();
    world.run_expect(8, |rank| {
        let wcomm = rank.comm_world();
        let color = (rank.world_rank() % 2) as i64;
        let sub = rank.split(&wcomm, Some(color), rank.world_rank() as i64).unwrap();
        assert_eq!(sub.size(), 4);
        let sum = rank.allreduce(&sub, 8, rank.world_rank() as u64, |a, b| *a += b);
        let expect: u64 = (0..8u64).filter(|r| r % 2 == rank.world_rank() as u64 % 2).sum();
        assert_eq!(sum, expect);
    });
}

#[test]
fn split_with_none_color_returns_no_comm() {
    let world = ideal_world();
    world.run_expect(5, |rank| {
        let wcomm = rank.comm_world();
        let color = if rank.world_rank() == 4 { None } else { Some(0i64) };
        let sub = rank.split(&wcomm, color, 0);
        if rank.world_rank() == 4 {
            assert!(sub.is_none());
        } else {
            let sub = sub.unwrap();
            assert_eq!(sub.size(), 4);
            assert_eq!(sub.ranks(), &[0, 1, 2, 3]);
        }
    });
}

#[test]
fn split_key_controls_ordering() {
    let world = ideal_world();
    world.run_expect(4, |rank| {
        let wcomm = rank.comm_world();
        // Reverse the order with descending keys.
        let key = -(rank.world_rank() as i64);
        let sub = rank.split(&wcomm, Some(0), key).unwrap();
        assert_eq!(sub.ranks(), &[3, 2, 1, 0]);
        assert_eq!(sub.rank_of(rank.world_rank()), Some(3 - rank.world_rank()));
    });
}

#[test]
fn interleaved_collectives_and_p2p_do_not_cross_talk() {
    let world = ideal_world();
    world.run_expect(4, |rank| {
        let comm = rank.comm_world();
        // User p2p with a tag value that internal traffic must not collide
        // with, interleaved between collectives.
        if rank.world_rank() == 0 {
            rank.send(1, 0, 8, 111u64);
        }
        let s = rank.allreduce(&comm, 8, 1u64, |a, b| *a += b);
        assert_eq!(s, 4);
        if rank.world_rank() == 1 {
            let (v, _) = rank.recv::<u64>(mpisim::Src::Rank(0), 0);
            assert_eq!(v, 111);
        }
        let s2 = rank.allreduce(&comm, 8, 2u64, |a, b| *a += b);
        assert_eq!(s2, 8);
    });
}

#[test]
fn reduce_is_deterministic_for_floats() {
    // Tree order is fixed, so float reduction is bitwise reproducible.
    fn run() -> f64 {
        let result = Arc::new(Mutex::new(0.0f64));
        let r2 = result.clone();
        let world = ideal_world();
        world.run_expect(13, move |rank| {
            let comm = rank.comm_world();
            let x = 0.1 * (rank.world_rank() as f64 + 1.0);
            let s = rank.allreduce(&comm, 8, x, |a, b| *a += b);
            if rank.world_rank() == 0 {
                *r2.lock() = s;
            }
        });
        let v = *result.lock();
        v
    }
    assert_eq!(run().to_bits(), run().to_bits());
}

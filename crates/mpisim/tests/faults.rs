//! Fault-injection semantics at the MPI layer: deadline receives, link
//! drops/delays, killed ranks, and the determinism of all of the above.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpisim::{FaultPlan, LinkFault, MachineConfig, NoiseModel, SimDuration, SimTime, Src, World};
use parking_lot::Mutex;

fn quiet_world() -> World {
    World::new(MachineConfig { noise: NoiseModel::none(), ..MachineConfig::default() })
}

#[test]
fn recv_timeout_returns_none_when_nothing_arrives() {
    let world = World::new(MachineConfig::ideal());
    world.run_expect(2, |rank| {
        if rank.world_rank() == 1 {
            let before = rank.now();
            let got = rank.recv_timeout::<u64>(Src::Rank(0), 5, SimDuration::from_millis(2));
            assert!(got.is_none());
            assert_eq!(rank.now().since(before), SimDuration::from_millis(2));
        }
        // Rank 0 sends nothing at all.
    });
}

#[test]
fn recv_timeout_delivers_message_that_arrives_in_time() {
    let world = quiet_world();
    world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            rank.compute_exact(1e-4);
            rank.send(1, 5, 64, 77u64);
        } else {
            let got = rank.recv_timeout::<u64>(Src::Rank(0), 5, SimDuration::from_secs(1));
            let (v, info) = got.expect("message arrives well before the deadline");
            assert_eq!(v, 77);
            assert_eq!(info.src, 0);
        }
    });
}

#[test]
fn recv_deadline_in_the_past_only_drains_available_messages() {
    let world = World::new(MachineConfig::ideal());
    world.run_expect(1, |rank| {
        // Deadline already passed and the mailbox is empty: immediate None,
        // no time advances.
        let before = rank.now();
        let got = rank.recv_deadline::<u64>(Src::Any, 9, SimTime::ZERO);
        assert!(got.is_none());
        assert_eq!(rank.now(), before);
    });
}

#[test]
fn dropped_messages_never_arrive_and_are_counted() {
    // Certain drop on the 0 -> 1 link: the receive must time out.
    let world =
        quiet_world().with_fault_plan(FaultPlan::new(3).link(LinkFault::new(0, 1).drop_prob(1.0)));
    let out = world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(1, 5, 64, 1u64);
            rank.send(1, 5, 64, 2u64);
        } else {
            let got = rank.recv_timeout::<u64>(Src::Rank(0), 5, SimDuration::from_millis(1));
            assert!(got.is_none(), "dropped message must not arrive");
        }
    });
    assert_eq!(out.msgs_dropped, 2);
    // Sends are still counted as sent (the sender spent the NIC time).
    assert_eq!(out.msgs_sent, 2);
}

#[test]
fn partial_drops_preserve_surviving_payloads_in_order() {
    // 50% drops on 0 -> 1; whatever survives must arrive in send order.
    let world =
        quiet_world().with_fault_plan(FaultPlan::new(11).link(LinkFault::new(0, 1).drop_prob(0.5)));
    let received = Arc::new(Mutex::new(Vec::new()));
    let rx = received.clone();
    let out = world.run_expect(2, move |rank| {
        const N: u64 = 64;
        if rank.world_rank() == 0 {
            for i in 0..N {
                rank.send(1, 5, 256, i);
            }
        } else {
            while let Some((v, _)) =
                rank.recv_timeout::<u64>(Src::Rank(0), 5, SimDuration::from_millis(5))
            {
                rx.lock().push(v);
            }
        }
    });
    let got = received.lock().clone();
    assert_eq!(got.len() as u64 + out.msgs_dropped, 64);
    assert!(out.msgs_dropped > 10, "seeded 50% drops lost {} of 64", out.msgs_dropped);
    assert!(got.len() > 10, "seeded 50% drops kept {} of 64", got.len());
    assert!(got.windows(2).all(|w| w[0] < w[1]), "survivors out of order: {got:?}");
}

#[test]
fn delay_spike_window_slows_messages_without_reordering() {
    let fault_free = |_: ()| {
        let world = quiet_world();
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = times.clone();
        world.run_expect(2, move |rank| {
            if rank.world_rank() == 0 {
                for i in 0..20u64 {
                    rank.compute_exact(1e-5);
                    rank.send(1, 5, 256, i);
                }
            } else {
                for _ in 0..20 {
                    let (v, _) = rank.recv::<u64>(Src::Rank(0), 5);
                    t.lock().push((v, rank.now()));
                }
            }
        });
        let v = times.lock().clone();
        v
    };
    let spiked = {
        // +1ms on messages whose arrival falls in [50us, 150us).
        let world = quiet_world().with_fault_plan(
            FaultPlan::new(5).link(
                LinkFault::new(0, 1)
                    .window(SimTime(50_000), SimTime(150_000))
                    .delay(SimDuration::from_millis(1)),
            ),
        );
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = times.clone();
        world.run_expect(2, move |rank| {
            if rank.world_rank() == 0 {
                for i in 0..20u64 {
                    rank.compute_exact(1e-5);
                    rank.send(1, 5, 256, i);
                }
            } else {
                for _ in 0..20 {
                    let (v, _) = rank.recv::<u64>(Src::Rank(0), 5);
                    t.lock().push((v, rank.now()));
                }
            }
        });
        let v = times.lock().clone();
        v
    };
    let base = fault_free(());
    // Values still arrive in send order (non-overtaking preserved).
    let order: Vec<u64> = spiked.iter().map(|&(v, _)| v).collect();
    assert_eq!(order, (0..20).collect::<Vec<_>>());
    // And the spike made the affected tail strictly later than fault-free.
    assert!(spiked.last().unwrap().1 > base.last().unwrap().1, "delay spike had no effect");
}

#[test]
fn killed_rank_is_reported_and_survivors_finish() {
    let world = World::new(MachineConfig::ideal())
        .with_fault_plan(FaultPlan::new(1).kill(1, SimTime(50_000)));
    let done = Arc::new(AtomicU64::new(0));
    let d = done.clone();
    let out = world.run_expect(3, move |rank| {
        if rank.world_rank() == 1 {
            // Would run for 1ms, but dies at 50us.
            for _ in 0..100 {
                rank.compute_exact(1e-5);
            }
        } else {
            rank.compute_exact(1e-4);
            d.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert_eq!(out.sim.killed, vec![1]);
    assert_eq!(done.load(Ordering::SeqCst), 2);
}

#[test]
fn fault_injected_world_replays_bit_identically() {
    let run = || {
        let world = World::default().with_seed(123).with_fault_plan(
            FaultPlan::new(42)
                .kill(2, SimTime(200_000))
                .link(LinkFault::new(0, 1).drop_prob(0.3))
                .link(
                    LinkFault::new(1, 0)
                        .window(SimTime(0), SimTime(100_000))
                        .delay(SimDuration::from_micros(40)),
                ),
        );
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        let out = world.run_expect(3, move |rank| {
            let me = rank.world_rank();
            for i in 0..50u64 {
                rank.compute(1e-6);
                let peer = (me + 1) % 3;
                rank.send(peer, 7, 128, (me as u64) << 32 | i);
                if let Some((v, info)) =
                    rank.recv_timeout::<u64>(Src::Any, 7, SimDuration::from_micros(50))
                {
                    l.lock().push((me, v, info.src, rank.now().as_nanos()));
                }
            }
        });
        let events = log.lock().clone();
        (out.sim.end_time, out.sim.killed.clone(), out.msgs_dropped, events)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed + same plan must replay identically");
    assert_eq!(a.1, vec![2]);
    assert!(a.2 > 0, "expected some seeded drops");
}

//! Point-to-point semantics and timing-model tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mpisim::{MachineConfig, NoiseModel, Src, World};
use parking_lot::Mutex;

fn quiet(cfg: MachineConfig) -> MachineConfig {
    MachineConfig { noise: NoiseModel::none(), ..cfg }
}

#[test]
fn typed_payloads_roundtrip() {
    let world = World::new(MachineConfig::ideal());
    world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(1, 1, 16, vec![1.0f64, 2.0]);
            rank.send(1, 2, 4, 42u32);
            rank.send(1, 3, 11, String::from("hello world"));
        } else {
            let (v, _) = rank.recv::<Vec<f64>>(Src::Rank(0), 1);
            assert_eq!(v, vec![1.0, 2.0]);
            let (n, _) = rank.recv::<u32>(Src::Rank(0), 2);
            assert_eq!(n, 42);
            let (s, info) = rank.recv::<String>(Src::Rank(0), 3);
            assert_eq!(s, "hello world");
            assert_eq!(info.src, 0);
            assert_eq!(info.bytes, 11);
        }
    });
}

#[test]
fn messages_from_one_source_do_not_overtake() {
    // A big message followed by a tiny one on the same (src, dst) pair must
    // be received in order: NIC serialization enforces non-overtaking.
    let world = World::new(quiet(MachineConfig::default()));
    world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            let r1 = rank.isend(1, 9, 100 << 20, 1u32); // 100 MB
            let r2 = rank.isend(1, 9, 1, 2u32); // 1 B
            rank.wait_send_all(vec![r1, r2]);
        } else {
            let (a, _) = rank.recv::<u32>(Src::Rank(0), 9);
            let (b, _) = rank.recv::<u32>(Src::Rank(0), 9);
            assert_eq!((a, b), (1, 2));
        }
    });
}

#[test]
fn any_source_takes_first_available() {
    // Rank 2 waits on AnySource; rank 1 is "late", rank 0 is "early".
    // FCFS must deliver rank 0's message first even though rank 1 has a
    // lower... (both match; availability decides).
    let got = Arc::new(Mutex::new(Vec::new()));
    let got2 = got.clone();
    let world = World::new(quiet(MachineConfig::default()));
    world.run_expect(3, move |rank| {
        match rank.world_rank() {
            0 => {
                rank.compute_exact(1e-6);
                rank.send(2, 5, 8, 0u64);
            }
            1 => {
                rank.compute_exact(5e-3); // much later
                rank.send(2, 5, 8, 1u64);
            }
            _ => {
                for _ in 0..2 {
                    let (v, info) = rank.recv::<u64>(Src::Any, 5);
                    got2.lock().push((v, info.src));
                }
            }
        }
    });
    assert_eq!(*got.lock(), vec![(0, 0), (1, 1)]);
}

#[test]
fn latency_and_bandwidth_govern_delivery_time() {
    let cfg = quiet(MachineConfig {
        inter_latency: mpisim::SimDuration::from_micros(2),
        tx_bandwidth: 1e9,
        rx_bandwidth: 1e9,
        send_overhead: mpisim::SimDuration::ZERO,
        recv_overhead: mpisim::SimDuration::ZERO,
        ranks_per_node: 1, // force inter-node
        ..MachineConfig::default()
    });
    let t_recv = Arc::new(AtomicU64::new(0));
    let t2 = t_recv.clone();
    let world = World::new(cfg);
    world.run_expect(2, move |rank| {
        if rank.world_rank() == 0 {
            // 1 MB at 1 GB/s = 1 ms per NIC stage, plus 2 us latency.
            rank.send(1, 1, 1_000_000, ());
        } else {
            let (_, _) = rank.recv::<()>(Src::Rank(0), 1);
            t2.store(rank.now().as_nanos(), Ordering::SeqCst);
        }
    });
    let t = t_recv.load(Ordering::SeqCst);
    // tx 1ms + latency 2us + rx 1ms = 2.002 ms.
    assert_eq!(t, 2_002_000);
}

#[test]
fn intra_node_is_faster_than_inter_node() {
    fn transfer_time(ranks_per_node: usize) -> u64 {
        let cfg = quiet(MachineConfig { ranks_per_node, ..MachineConfig::default() });
        let t = Arc::new(AtomicU64::new(0));
        let t2 = t.clone();
        let world = World::new(cfg);
        world.run_expect(2, move |rank| {
            if rank.world_rank() == 0 {
                rank.send(1, 1, 1 << 20, ());
            } else {
                let _ = rank.recv::<()>(Src::Rank(0), 1);
                t2.store(rank.now().as_nanos(), Ordering::SeqCst);
            }
        });
        t.load(Ordering::SeqCst)
    }
    let same_node = transfer_time(2);
    let cross_node = transfer_time(1);
    assert!(same_node < cross_node, "intra-node {same_node} should beat inter-node {cross_node}");
}

#[test]
fn incast_serializes_on_receiver_nic() {
    // N senders push 1 MB each to rank 0 simultaneously; the receiver NIC
    // drains them one after another, so total time ~ N * (1MB / rx_bw).
    const N: usize = 8;
    let cfg = quiet(MachineConfig {
        tx_bandwidth: 10e9,
        rx_bandwidth: 10e9,
        ranks_per_node: 1,
        ..MachineConfig::default()
    });
    let t_done = Arc::new(AtomicU64::new(0));
    let t2 = t_done.clone();
    let world = World::new(cfg);
    world.run_expect(N + 1, move |rank| {
        if rank.world_rank() == 0 {
            for _ in 0..N {
                let _ = rank.recv::<()>(Src::Any, 3);
            }
            t2.store(rank.now().as_nanos(), Ordering::SeqCst);
        } else {
            rank.send(0, 3, 1 << 20, ());
        }
    });
    let t = t_done.load(Ordering::SeqCst) as f64 / 1e9;
    let serial = N as f64 * (1 << 20) as f64 / 10e9;
    assert!(t >= serial, "incast time {t} must cover serial drain {serial}");
    assert!(t < serial * 1.5, "incast time {t} unreasonably above {serial}");
}

#[test]
fn irecv_overlaps_compute() {
    // Receiver posts irecv, computes 10 ms, then waits: the 1 MB message
    // arrives during the compute window, so wait is (nearly) free.
    let cfg = quiet(MachineConfig::default());
    let t_done = Arc::new(AtomicU64::new(0));
    let t2 = t_done.clone();
    let world = World::new(cfg);
    world.run_expect(2, move |rank| {
        if rank.world_rank() == 0 {
            rank.send(1, 4, 1 << 20, 123u64);
        } else {
            let req = rank.irecv(Src::Rank(0), 4);
            rank.compute_exact(10e-3);
            let (v, _) = rank.wait_recv::<u64>(req);
            assert_eq!(v, 123);
            t2.store(rank.now().as_nanos(), Ordering::SeqCst);
        }
    });
    let t = t_done.load(Ordering::SeqCst) as f64 / 1e9;
    assert!(t < 10.1e-3, "wait should be hidden by compute, got {t}");
}

#[test]
fn probe_and_try_recv() {
    let world = World::new(quiet(MachineConfig::default()));
    world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(1, 8, 64, 7i64);
        } else {
            assert!(rank.try_recv::<i64>(Src::Any, 8).is_none(), "nothing arrived yet");
            // Give the message time to arrive.
            rank.compute_exact(1e-3);
            let info = rank.iprobe(Src::Any, 8).expect("message should be visible");
            assert_eq!(info.src, 0);
            let (v, _) = rank.try_recv::<i64>(Src::Any, 8).expect("message is takeable");
            assert_eq!(v, 7);
            assert!(rank.iprobe(Src::Any, 8).is_none());
        }
    });
}

#[test]
#[should_panic(expected = "payload type mismatch")]
fn type_mismatch_panics_with_clear_message() {
    let world = World::new(MachineConfig::ideal());
    world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(1, 1, 8, 1u64);
        } else {
            let _ = rank.recv::<String>(Src::Rank(0), 1);
        }
    });
}

#[test]
fn message_counters_account_traffic() {
    let world = World::new(MachineConfig::ideal());
    let out = world.run_expect(2, |rank| {
        if rank.world_rank() == 0 {
            for _ in 0..5 {
                rank.send(1, 1, 100, ());
            }
        } else {
            for _ in 0..5 {
                let _ = rank.recv::<()>(Src::Rank(0), 1);
            }
        }
    });
    assert_eq!(out.msgs_sent, 5);
    assert_eq!(out.bytes_sent, 500);
    assert_eq!(out.per_rank_msgs, vec![5, 0]);
}

#[test]
fn compute_noise_is_deterministic_per_seed_and_perturbs_time() {
    fn run(seed: u64) -> f64 {
        let world = World::new(MachineConfig::default()).with_seed(seed);
        world
            .run_expect(4, |rank| {
                for _ in 0..50 {
                    rank.compute(1e-4);
                }
            })
            .elapsed_secs()
    }
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a, b);
    assert_ne!(a, c);
    // Noise should make makespan exceed the nominal 5 ms.
    assert!(a > 5e-3, "noise must add time, got {a}");
}

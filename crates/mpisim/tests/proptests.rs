//! Property-based tests: collectives against fold oracles, p2p
//! conservation, timing monotonicity.

use std::sync::Arc;

use mpisim::{MachineConfig, Src, World};
use parking_lot::Mutex;
use proptest::prelude::*;

fn ideal() -> World {
    World::new(MachineConfig::ideal())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// allreduce(sum) equals the serial fold for arbitrary inputs and
    /// world sizes, on every rank.
    #[test]
    fn allreduce_sum_matches_oracle(values in prop::collection::vec(-1_000_000i64..1_000_000, 2..20)) {
        let n = values.len();
        let expect: i64 = values.iter().sum();
        let values = Arc::new(values);
        ideal().run_expect(n, move |rank| {
            let comm = rank.comm_world();
            let mine = values[rank.world_rank()];
            let got = rank.allreduce(&comm, 8, mine, |a, b| *a += b);
            assert_eq!(got, expect);
        });
    }

    /// reduce(max) at an arbitrary root equals the serial max.
    #[test]
    fn reduce_max_matches_oracle(
        values in prop::collection::vec(any::<i32>(), 2..20),
        root_sel in any::<prop::sample::Index>(),
    ) {
        let n = values.len();
        let root = root_sel.index(n);
        let expect = *values.iter().max().unwrap();
        let values = Arc::new(values);
        ideal().run_expect(n, move |rank| {
            let comm = rank.comm_world();
            let mine = values[rank.world_rank()];
            let got = rank.reduce(&comm, root, 4, mine, |a, b| *a = (*a).max(*b));
            if rank.world_rank() == root {
                assert_eq!(got, Some(expect));
            } else {
                assert_eq!(got, None);
            }
        });
    }

    /// allgatherv returns every rank's block in rank order, for variable
    /// block sizes.
    #[test]
    fn allgatherv_matches_oracle(blocks in prop::collection::vec(
        prop::collection::vec(any::<u16>(), 0..8), 2..12)
    ) {
        let n = blocks.len();
        let expect: Vec<Vec<u16>> = blocks.clone();
        let blocks = Arc::new(blocks);
        ideal().run_expect(n, move |rank| {
            let comm = rank.comm_world();
            let mine = blocks[rank.world_rank()].clone();
            let bytes = mine.len() as u64 * 2;
            let got = rank.allgatherv(&comm, bytes, mine);
            assert_eq!(got, expect);
        });
    }

    /// Arbitrary random point-to-point traffic: every sent message is
    /// received exactly once with its payload intact.
    #[test]
    fn p2p_traffic_is_conserved(
        // (src, dst_offset, value) triples over a fixed 6-rank world.
        traffic in prop::collection::vec((0usize..6, 1usize..6, any::<u64>()), 0..40)
    ) {
        const N: usize = 6;
        // Expected per-receiver multiset.
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); N];
        for &(src, off, v) in &traffic {
            expected[(src + off) % N].push(v);
        }
        let mut outgoing: Vec<Vec<(usize, u64)>> = vec![Vec::new(); N];
        for &(src, off, v) in &traffic {
            outgoing[src].push((((src + off) % N), v));
        }
        let expected = Arc::new(expected);
        let expected2 = expected.clone();
        let outgoing = Arc::new(outgoing);
        let received: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(vec![Vec::new(); N]));
        let rcv = received.clone();
        ideal().run_expect(N, move |rank| {
            let me = rank.world_rank();
            for &(dst, v) in &outgoing[me] {
                rank.send(dst, 9, 8, v);
            }
            for _ in 0..expected2[me].len() {
                let (v, _) = rank.recv::<u64>(Src::Any, 9);
                rcv.lock()[me].push(v);
            }
        });
        let mut got = received.lock().clone();
        let mut want = (*expected).clone();
        for r in 0..N {
            got[r].sort_unstable();
            want[r].sort_unstable();
        }
        prop_assert_eq!(got, want);
    }

    /// Splits partition the world: every rank lands in exactly one
    /// subcommunicator and sizes add up.
    #[test]
    fn split_partitions_the_world(colors in prop::collection::vec(0i64..4, 2..16)) {
        let n = colors.len();
        let colors = Arc::new(colors);
        let colors2 = colors.clone();
        let seen: Arc<Mutex<Vec<(usize, i64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let s2 = seen.clone();
        ideal().run_expect(n, move |rank| {
            let comm = rank.comm_world();
            let me = rank.world_rank();
            let c = colors2[me];
            let sub = rank.split(&comm, Some(c), me as i64).unwrap();
            assert!(sub.contains(me));
            s2.lock().push((me, c, sub.size()));
        });
        let seen = seen.lock();
        prop_assert_eq!(seen.len(), n);
        for &(me, c, size) in seen.iter() {
            let expect = colors.iter().filter(|&&x| x == c).count();
            prop_assert_eq!(size, expect, "rank {} color {}", me, c);
        }
    }

    /// More bytes never arrive earlier: delivery time is monotone in
    /// message size (fixed machine, one sender/receiver pair).
    #[test]
    fn delivery_time_is_monotone_in_size(sizes in prop::collection::vec(1u64..10_000_000, 2..10)) {
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let times: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        for &s in &sorted {
            let t2 = times.clone();
            let world = World::new(MachineConfig {
                noise: mpisim::NoiseModel::none(),
                ..MachineConfig::default()
            });
            world.run_expect(2, move |rank| {
                if rank.world_rank() == 0 {
                    rank.send(1, 1, s, ());
                } else {
                    let _ = rank.recv::<()>(Src::Rank(0), 1);
                    t2.lock().push((s, rank.now().as_nanos()));
                }
            });
        }
        let times = times.lock();
        for w in times.windows(2) {
            prop_assert!(w[1].1 >= w[0].1, "bigger message arrived earlier: {w:?}");
        }
    }
}

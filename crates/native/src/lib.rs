//! # native — the stream runtime on real OS threads
//!
//! A [`Transport`](mpistream::Transport) backend that runs every rank as
//! an OS thread on the host, so stream programs written against
//! `mpistream` execute in *actual* parallel instead of inside the
//! discrete-event simulator. The paper's decoupling pipeline — producer
//! groups streaming to consumer groups over FCFS channels — is exercised
//! against a real memory hierarchy, real locks and the wall clock.
//!
//! ## What this backend is (and is not)
//!
//! - **Same programs.** `run_decoupled`, `Stream`, `StreamChannel`,
//!   `operate2` all work unchanged; the cross-backend equivalence suite
//!   checks that fault-free payload sets match the simulator exactly.
//! - **Real concurrency, wall-clock time.** [`Transport::now`] is
//!   nanoseconds since [`NativeWorld::run`] began; deadline receives park
//!   on a condvar with a wall-clock timeout. `compute(secs)` sleeps
//!   `secs × compute_scale` — it models occupancy, it does not simulate a
//!   machine.
//! - **No determinism.** FCFS arrival order depends on OS scheduling.
//!   Anything order-sensitive must be order-normalized before comparison
//!   (the equivalence tests sort payload sets for exactly this reason).
//! - **No fault model, no performance model.** There is no fault
//!   injection, no modelled network, no sanitizer. A rank that panics
//!   aborts the whole run when its thread is joined, but peers blocked on
//!   it will wait until then — bound native runs with an external timeout
//!   (as `ci.sh` does).
//!
//! ## Mailboxes and collectives
//!
//! Each rank owns an indexed mailbox mirroring the simulator's PR-3
//! matching structure — per-tag ordered index for wildcard matches,
//! per-`(src, tag)` FIFO for directed ones — fed through a lock-free
//! MPSC staging stack so N producers never serialize on the consumer's
//! index (see [`mailbox`] for the full design: Treiber staging, an
//! eventcount park protocol that cannot lose wake-ups, and a version
//! counter snapshotted once per polling round inside `wait_for_mail`).
//!
//! Collectives run over those mailboxes with a **rank-threshold hybrid
//! geometry**: groups at or below the flat threshold use a star (every
//! member exchanges directly with group rank 0 — the fewest total hops,
//! which wins when ranks outnumber cores and every tree level costs a
//! context switch), larger groups use a binomial tree (reduce to rank 0
//! and broadcast back down, `2(size-1)` directed messages but only
//! `O(log size)` levels on the critical path). The threshold comes from
//! [`NativeWorld::with_coll_flat_threshold`] or the
//! `NATIVE_COLL_FLAT_THRESHOLD` env var (see DESIGN.md §13 for the
//! measured crossover). Either geometry replaces the old global
//! gather-all rendezvous, whose single registry mutex and `notify_all`
//! thundering herd serialized every collective in the world.
//!
//! ```
//! use mpistream::{run_decoupled, ChannelConfig, GroupSpec, Transport};
//! use native::NativeWorld;
//!
//! let outcome = NativeWorld::new(8).run(|rank| {
//!     let world = rank.world_group();
//!     run_decoupled::<u64, _, _, _>(
//!         rank,
//!         &world,
//!         GroupSpec { every: 4 },
//!         ChannelConfig::default(),
//!         |rank, p| {
//!             for step in 0..10 {
//!                 p.stream.isend(rank, step);
//!             }
//!         },
//!         |rank, c| {
//!             let mut seen = 0;
//!             c.stream.operate(rank, |_, _| seen += 1);
//!             assert_eq!(seen, 30); // 3 producers x 10 elements each
//!         },
//!     );
//! });
//! assert_eq!(outcome.nprocs, 8);
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use desim::SimTime;
use mpistream::{Group, MsgInfo, Src, Tag, Transport, Wire};

pub mod mailbox;
pub mod sync;

use mailbox::{Env, Mailbox};
use sync::atomic::{AtomicU32, Ordering};
use sync::{thread, Instant, Mutex};

/// Group id of the world group.
const WORLD_ID: u64 = 0;
/// Group id marking metadata-only groups (never collective targets).
const META_ID: u64 = u64::MAX;
/// Internal tag namespace for collective traffic (streams use ns 2).
const NS_COLL: u8 = 3;

/// An ordered set of world ranks on the native backend — plain metadata
/// plus an id the collective rendezvous keys on.
#[derive(Clone, Debug)]
pub struct NativeGroup {
    id: u64,
    ranks: Arc<Vec<usize>>,
}

impl NativeGroup {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }
}

impl Group for NativeGroup {
    fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    fn rank_of(&self, w: usize) -> Option<usize> {
        // Membership lists are small and setup-time only; linear scan.
        self.ranks.iter().position(|&x| x == w)
    }

    fn meta(ranks: Vec<usize>) -> NativeGroup {
        NativeGroup { id: META_ID, ranks: Arc::new(ranks) }
    }
}

#[derive(Default)]
struct GroupRegistry {
    /// `(parent_id, collective_seq, color) -> id` — every member of one
    /// split cell computes the same key, so lookup-or-insert hands the
    /// whole cell the same id regardless of arrival order.
    ids: HashMap<(u64, u32, i64), u64>,
    next: u64,
}

struct SharedState {
    nprocs: usize,
    epoch: Instant,
    compute_scale: f64,
    /// Groups at or below this size use the flat (star) collective
    /// geometry; larger ones use the binomial tree.
    flat_threshold: usize,
    mailboxes: Vec<Mailbox>,
    world: NativeGroup,
    groups: Mutex<GroupRegistry>,
    channel_ids: AtomicU32,
}

/// What a native run reports back.
#[derive(Clone, Copy, Debug)]
pub struct NativeOutcome {
    /// Number of ranks (threads) that ran.
    pub nprocs: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Default flat-collective threshold: group sizes at or below this use
/// the star geometry. Set from the `native_bench --coll-sweep`
/// measurement on the CI host (flat beat the tree at every size up to
/// 64, ratio 0.41–0.76 — with ranks far outnumbering cores, every tree
/// level is a forced context switch while the star's hub drains its one
/// mailbox in arrival order; see DESIGN.md §13). Sizes past the
/// measured range fall back to the tree's `O(log n)` critical path.
/// Override per-world with [`NativeWorld::with_coll_flat_threshold`] or
/// globally with the `NATIVE_COLL_FLAT_THRESHOLD` env var.
const DEFAULT_FLAT_THRESHOLD: usize = 64;

/// A native world: `nprocs` ranks, each on its own OS thread.
pub struct NativeWorld {
    nprocs: usize,
    compute_scale: f64,
    coll_flat_threshold: Option<usize>,
}

impl NativeWorld {
    /// A world of `nprocs` ranks.
    pub fn new(nprocs: usize) -> NativeWorld {
        assert!(nprocs > 0, "a world needs at least one rank");
        NativeWorld { nprocs, compute_scale: 1.0, coll_flat_threshold: None }
    }

    /// Wall-clock seconds slept per modelled compute second (default 1.0).
    /// Scaled-down runs of simulator-sized workloads set this below 1 so
    /// `compute(secs)` costs go down proportionally.
    pub fn with_compute_scale(mut self, scale: f64) -> NativeWorld {
        assert!(scale.is_finite() && scale >= 0.0, "compute_scale must be finite and >= 0");
        self.compute_scale = scale;
        self
    }

    /// Largest group size that uses the flat (star) collective geometry;
    /// bigger groups switch to the binomial tree. `0` forces trees
    /// everywhere, `usize::MAX` forces flat everywhere. Defaults to the
    /// `NATIVE_COLL_FLAT_THRESHOLD` env var, else the measured crossover
    /// baked into the crate.
    pub fn with_coll_flat_threshold(mut self, threshold: usize) -> NativeWorld {
        self.coll_flat_threshold = Some(threshold);
        self
    }

    /// Run `body` once per rank, each on its own thread, and join them
    /// all. A panicking rank propagates after every thread has exited —
    /// peers blocked on the dead rank block the join, so bound native
    /// runs with an external timeout.
    pub fn run<F>(&self, body: F) -> NativeOutcome
    where
        F: Fn(&mut NativeRank) + Send + Sync,
    {
        let flat_threshold = self.coll_flat_threshold.unwrap_or_else(|| {
            std::env::var("NATIVE_COLL_FLAT_THRESHOLD")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_FLAT_THRESHOLD)
        });
        let shared = Arc::new(SharedState {
            nprocs: self.nprocs,
            epoch: Instant::now(),
            compute_scale: self.compute_scale,
            flat_threshold,
            mailboxes: (0..self.nprocs).map(|_| Mailbox::new()).collect(),
            world: NativeGroup { id: WORLD_ID, ranks: Arc::new((0..self.nprocs).collect()) },
            groups: Mutex::new(GroupRegistry { ids: HashMap::new(), next: 1 }),
            channel_ids: AtomicU32::new(0),
        });
        let start = Instant::now();
        thread::scope(|scope| {
            let body = &body;
            for r in 0..self.nprocs {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut rank =
                        NativeRank { shared, rank: r, coll_seq: HashMap::new(), mail_seen: 0 };
                    body(&mut rank);
                });
            }
        });
        NativeOutcome { nprocs: self.nprocs, elapsed: start.elapsed() }
    }
}

/// One native rank: the per-thread handle [`NativeWorld::run`] passes to
/// the body. Implements [`Transport`], so the whole stream runtime works
/// against it.
pub struct NativeRank {
    shared: Arc<SharedState>,
    rank: usize,
    /// Per-group collective sequence numbers (identical call order on a
    /// group keeps them in agreement, as MPI requires).
    coll_seq: HashMap<u64, u32>,
    /// Mailbox version at the last `wait_for_mail` return — a polling-
    /// round snapshot, deliberately *not* advanced by `try_recv`/`probe`
    /// (see `wait_for_mail` for why).
    mail_seen: u64,
}

impl NativeRank {
    fn next_seq(&mut self, group: &NativeGroup) -> u32 {
        assert!(group.id != META_ID, "collective on a metadata-only group");
        let seq = self.coll_seq.entry(group.id).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    /// My group rank on `group` (collectives only make sense for members).
    fn my_group_rank(&self, group: &NativeGroup) -> usize {
        group.rank_of(self.rank).expect("collective on a group we are not in")
    }

    /// Children of virtual rank `v` in a binomial tree over `size` ranks,
    /// ascending: `v + 2^k` for every `2^k` below `v`'s lowest set bit
    /// (all of them for the root) that stays inside the group.
    fn tree_children(v: usize, size: usize) -> impl Iterator<Item = usize> {
        let lsb = if v == 0 { usize::MAX } else { v & v.wrapping_neg() };
        std::iter::successors(Some(1usize), |k| k.checked_mul(2))
            .take_while(move |&k| k < lsb && v + k < size)
            .map(move |k| v + k)
    }

    /// Parent of virtual rank `v != 0`: clear the lowest set bit.
    fn tree_parent(v: usize) -> usize {
        v & (v - 1)
    }

    /// Whether collectives on a group of `size` members use the flat
    /// (star) geometry. Every member computes this from the shared
    /// threshold, so the whole group always agrees.
    fn coll_flat(&self, size: usize) -> bool {
        size <= self.shared.flat_threshold
    }

    /// Reduce up to virtual rank 0: fold the children's partial
    /// accumulators (ascending, a fixed deterministic order) into ours,
    /// then forward to the parent. Returns `Some(total)` at the root,
    /// `None` elsewhere. `op` must be associative and commutative (the
    /// Transport contract); for floats the fold order — linear in the
    /// flat geometry, tree-shaped otherwise — may differ bitwise from
    /// another geometry's (DESIGN.md §11).
    fn tree_reduce<T: Wire + Send + 'static>(
        &mut self,
        tree: &Tree<'_>,
        bytes: u64,
        value: T,
        op: &impl Fn(&mut T, &T),
    ) -> Option<T> {
        let mut acc = value;
        for c in tree.children(tree.my_v) {
            let (child, _info) = self.recv::<T>(Src::Rank((tree.to_world)(c)), tree.tag);
            op(&mut acc, &child);
        }
        if tree.my_v == 0 {
            Some(acc)
        } else {
            self.send((tree.to_world)(tree.parent(tree.my_v)), tree.tag, bytes, acc);
            None
        }
    }

    /// Broadcast down from virtual rank 0: receive from the parent, then
    /// forward to each child. `value` must be `Some` at the root. Safe on
    /// the same tag as a preceding [`Self::tree_reduce`] over the same
    /// tree: between any rank pair the two phases flow in opposite
    /// directions, so directed receives cannot cross-match.
    fn tree_bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        tree: &Tree<'_>,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        let val = if tree.my_v == 0 {
            value.expect("tree root supplies the broadcast value")
        } else {
            self.recv::<T>(Src::Rank((tree.to_world)(tree.parent(tree.my_v))), tree.tag).0
        };
        for c in tree.children(tree.my_v) {
            self.send((tree.to_world)(c), tree.tag, bytes, val.clone());
        }
        val
    }

    fn deadline_instant(&self, deadline: SimTime) -> Instant {
        self.shared.epoch + Duration::from_nanos(deadline.0)
    }
}

/// One collective's geometry: its tag, this rank's virtual rank in the
/// (possibly root-rotated) overlay, the group size, the map from virtual
/// ranks back to world ranks, and the shape — flat star (small groups)
/// or binomial tree (large ones). Both shapes share the reduce/bcast
/// drivers: only `children`/`parent` differ.
struct Tree<'a> {
    tag: Tag,
    to_world: &'a dyn Fn(usize) -> usize,
    my_v: usize,
    size: usize,
    flat: bool,
}

impl Tree<'_> {
    /// Children of virtual rank `v`, ascending (the deterministic fold
    /// and gather order). Flat: the root owns everyone. The `Vec` is at
    /// most `log2(size)` entries on the tree path and `size - 1` on the
    /// flat one — noise next to the per-child envelope allocations.
    fn children(&self, v: usize) -> Vec<usize> {
        if self.flat {
            if v == 0 {
                (1..self.size).collect()
            } else {
                Vec::new()
            }
        } else {
            NativeRank::tree_children(v, self.size).collect()
        }
    }

    /// Parent of virtual rank `v != 0`.
    fn parent(&self, v: usize) -> usize {
        if self.flat {
            0
        } else {
            NativeRank::tree_parent(v)
        }
    }
}

/// Tag for collective `seq` on `group` — unique among *concurrently
/// outstanding* messages: collectives on one group are totally ordered on
/// every member (the MPI call-order contract), matching is directed, and
/// per-`(src, tag)` delivery is FIFO, so a truncated group id cannot
/// cause cross-matching even if two group ids alias in the low 16 bits.
fn coll_tag(group_id: u64, seq: u32) -> Tag {
    Tag::internal(NS_COLL, group_id as u16, seq)
}

impl Transport for NativeRank {
    type Group = NativeGroup;

    fn world_rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.shared.nprocs
    }

    fn world_group(&self) -> NativeGroup {
        self.shared.world.clone()
    }

    fn now(&self) -> SimTime {
        SimTime(u64::try_from(self.shared.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    fn compute(&mut self, secs: f64) {
        let scaled = secs * self.shared.compute_scale;
        if scaled.is_finite() && scaled > 0.0 {
            thread::sleep(Duration::from_secs_f64(scaled));
        }
    }

    fn send<T: Wire + Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: T) {
        assert!(dst < self.shared.nprocs, "send to out-of-range rank {dst}");
        self.shared.mailboxes[dst].push(Env {
            src: self.rank,
            tag,
            bytes,
            payload: Box::new(value),
        });
    }

    fn recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo) {
        let env = self.shared.mailboxes[self.rank].take(src, tag);
        unpack(self.rank, env)
    }

    fn try_recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(T, MsgInfo)> {
        let env = self.shared.mailboxes[self.rank].try_take(src, tag);
        env.map(|e| unpack(self.rank, e))
    }

    fn recv_deadline<T: Wire + Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        let until = self.deadline_instant(deadline);
        let env = self.shared.mailboxes[self.rank].take_deadline(src, tag, until)?;
        Some(unpack(self.rank, env))
    }

    fn probe(&mut self, src: Src, tag: Tag) -> Option<MsgInfo> {
        self.shared.mailboxes[self.rank].probe(src, tag)
    }

    fn wait_for_mail(&mut self) {
        // `mail_seen` is the version at the *previous* return from here
        // (initially 0, matching the mailbox's initial version); polls in
        // between never touch it. So a push landing anywhere in the
        // caller's polling round — even between polls of two different
        // streams in one `operate2` pass — keeps the version ahead of the
        // snapshot and this returns immediately instead of parking past a
        // message it never re-examined. Worst case is one spurious
        // re-poll; a lost wake-up is impossible.
        self.mail_seen = self.shared.mailboxes[self.rank].wait_change(self.mail_seen);
    }

    fn barrier(&mut self, group: &NativeGroup) {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        let to_world = move |v: usize| ranks[v];
        let tree = Tree { tag, to_world: &to_world, my_v: my_gr, size, flat: self.coll_flat(size) };
        let done = self.tree_reduce(&tree, 1, (), &|_, _| {});
        let () = self.tree_bcast(&tree, 1, done);
    }

    fn allreduce<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &NativeGroup,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> T {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        let to_world = move |v: usize| ranks[v];
        // Reduce to group rank 0, then broadcast the total back down the
        // same overlay: 2(size-1) directed messages instead of the old
        // global gather-all rendezvous (one mutex, thundering-herd
        // wake-ups). `op` must be associative and commutative (the
        // Transport contract) — for floats the fold order depends on the
        // geometry (see DESIGN.md §11).
        let tree = Tree { tag, to_world: &to_world, my_v: my_gr, size, flat: self.coll_flat(size) };
        let total = self.tree_reduce(&tree, bytes, value, &op);
        self.tree_bcast(&tree, bytes, total)
    }

    fn allgatherv<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &NativeGroup,
        bytes: u64,
        value: T,
    ) -> Vec<T> {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        let to_world = move |v: usize| ranks[v];
        let tree = Tree { tag, to_world: &to_world, my_v: my_gr, size, flat: self.coll_flat(size) };
        // Gather upward: in the tree, child `v + 2^k` owns the contiguous
        // group-rank range [v + 2^k, v + 2^(k+1)) (clipped to size); in
        // the flat star each child owns just itself. Either way appending
        // children ascending keeps the accumulator contiguous and
        // group-rank-ordered; rank 0 ends up with the full vector.
        let mut acc: Vec<T> = vec![value];
        for c in tree.children(my_gr) {
            let (mut sub, _info) = self.recv::<Vec<T>>(Src::Rank((tree.to_world)(c)), tag);
            acc.append(&mut sub);
        }
        let gathered = if my_gr == 0 {
            Some(acc)
        } else {
            let n = acc.len() as u64;
            self.send((tree.to_world)(tree.parent(my_gr)), tag, bytes * n, acc);
            None
        };
        self.tree_bcast(&tree, bytes * size as u64, gathered)
    }

    fn bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &NativeGroup,
        root: usize,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        let seq = self.next_seq(group);
        let tag = coll_tag(group.id, seq);
        let my_gr = self.my_group_rank(group);
        let size = group.size();
        let ranks = Arc::clone(&group.ranks);
        assert!(root < size, "bcast root {root} out of range for group of {size}");
        // Rotate the overlay so the root sits at virtual rank 0.
        let my_v = (my_gr + size - root) % size;
        let to_world = move |v: usize| ranks[(v + root) % size];
        if my_v == 0 {
            assert!(value.is_some(), "root supplied the broadcast value");
        }
        let tree = Tree { tag, to_world: &to_world, my_v, size, flat: self.coll_flat(size) };
        self.tree_bcast(&tree, bytes, value)
    }

    fn split(&mut self, group: &NativeGroup, color: Option<i64>, key: i64) -> Option<NativeGroup> {
        // Gather the Option itself (via the tree allgatherv) — no
        // sentinel, so every i64 (including i64::MIN) is a legal color,
        // distinct from non-participation.
        let mut entries = self.allgatherv(group, 24, (color, key, self.rank));
        let seq = self.coll_seq[&group.id] - 1; // the allgatherv's seq
        let my_color = color?;
        // Members with my color, ordered by (key, world_rank) — the
        // MPI_Comm_split contract. `None` entries match no Some color.
        entries.retain(|&(c, _, _)| c == Some(my_color));
        entries.sort_unstable_by_key(|&(_, k, w)| (k, w));
        let members: Vec<usize> = entries.iter().map(|&(_, _, w)| w).collect();
        // One id per split cell, agreed through the registry: every member
        // computes the same (parent, seq, color) key, and non-participants
        // returned above without ever touching the registry.
        let id = {
            let mut groups = self.shared.groups.lock().unwrap();
            match groups.ids.get(&(group.id, seq, my_color)) {
                Some(&id) => id,
                None => {
                    let id = groups.next;
                    groups.next += 1;
                    groups.ids.insert((group.id, seq, my_color), id);
                    id
                }
            }
        };
        Some(NativeGroup { id, ranks: Arc::new(members) })
    }

    fn alloc_channel_id(&mut self) -> u16 {
        let id = self.shared.channel_ids.fetch_add(1, Ordering::Relaxed);
        u16::try_from(id).expect("too many channels")
    }
}

fn unpack<T: Send + 'static>(rank: usize, env: Env) -> (T, MsgInfo) {
    let info = MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes };
    match env.payload.downcast::<T>() {
        Ok(v) => (*v, info),
        Err(_) => panic!(
            "rank {rank}: payload type mismatch receiving tag {:?} from {} (expected {})",
            env.tag,
            env.src,
            std::any::type_name::<T>()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_round_trips() {
        NativeWorld::new(2).run(|rank| {
            let t = Tag::user(1);
            if rank.world_rank() == 0 {
                rank.send(1, t, 8, 41u64);
                let (v, info) = rank.recv::<u64>(Src::Rank(1), t);
                assert_eq!(v, 42);
                assert_eq!(info.src, 1);
            } else {
                let (v, _) = rank.recv::<u64>(Src::Any, t);
                rank.send(0, t, 8, v + 1);
            }
        });
    }

    #[test]
    fn collectives_agree_across_threads() {
        NativeWorld::new(8).run(|rank| {
            let world = rank.world_group();
            let sum = rank.allreduce(&world, 8, rank.world_rank() as u64, |a, b| *a += b);
            assert_eq!(sum, 28);
            let all = rank.allgatherv(&world, 8, rank.world_rank());
            assert_eq!(all, (0..8).collect::<Vec<_>>());
            let from_root = rank.bcast(&world, 3, 8, (rank.world_rank() == 3).then_some(99u32));
            assert_eq!(from_root, 99);
            rank.barrier(&world);
        });
    }

    /// The two collective geometries are interchangeable: force flat
    /// everywhere (`usize::MAX`) and trees everywhere (`0`) on the same
    /// world and demand identical results from every collective.
    #[test]
    fn flat_and_tree_collectives_agree() {
        for threshold in [0, usize::MAX] {
            NativeWorld::new(6).with_coll_flat_threshold(threshold).run(|rank| {
                let world = rank.world_group();
                let sum = rank.allreduce(&world, 8, rank.world_rank() as u64, |a, b| *a += b);
                assert_eq!(sum, 15);
                let all = rank.allgatherv(&world, 8, rank.world_rank());
                assert_eq!(all, (0..6).collect::<Vec<_>>());
                let v = rank.bcast(&world, 4, 8, (rank.world_rank() == 4).then_some(7u8));
                assert_eq!(v, 7);
                rank.barrier(&world);
                let g = rank.split(&world, Some((rank.world_rank() % 2) as i64), 0).unwrap();
                assert_eq!(g.size(), 3);
            });
        }
    }

    #[test]
    fn split_forms_color_groups_with_distinct_ids() {
        NativeWorld::new(6).run(|rank| {
            let world = rank.world_group();
            let me = rank.world_rank();
            let g = rank.split(&world, Some((me % 2) as i64), me as i64).unwrap();
            let expect: Vec<usize> = (0..6).filter(|r| r % 2 == me % 2).collect();
            assert_eq!(g.ranks(), &expect[..]);
            // Collectives address the new group without cross-talk.
            let sum = rank.allreduce(&g, 8, 1u32, |a, b| *a += b);
            assert_eq!(sum, 3);
        });
    }

    /// `Some(i64::MIN)` is a legal color, distinct from `None` — the old
    /// sentinel encoding collapsed the two, so MIN-colored members would
    /// have absorbed non-participants and deadlocked on first collective.
    #[test]
    fn split_min_color_is_distinct_from_none() {
        NativeWorld::new(4).run(|rank| {
            let world = rank.world_group();
            let me = rank.world_rank();
            let color = if me < 2 { Some(i64::MIN) } else { None };
            let g = rank.split(&world, color, me as i64);
            assert_eq!(g.is_some(), me < 2);
            if let Some(g) = g {
                assert_eq!(g.ranks(), &[0, 1]);
                let sum = rank.allreduce(&g, 8, 1u32, |a, b| *a += b);
                assert_eq!(sum, 2);
            }
        });
    }

    #[test]
    fn split_none_yields_no_group() {
        NativeWorld::new(3).run(|rank| {
            let world = rank.world_group();
            let color = if rank.world_rank() == 2 { None } else { Some(0) };
            let g = rank.split(&world, color, 0);
            assert_eq!(g.is_some(), rank.world_rank() != 2);
            if let Some(g) = g {
                assert_eq!(g.ranks(), &[0, 1]);
            }
        });
    }

    #[test]
    fn deadline_recv_times_out_on_the_wall_clock() {
        NativeWorld::new(1).run(|rank| {
            let deadline = rank.now() + desim::SimDuration::from_millis(15);
            let got = rank.recv_deadline::<u64>(Src::Any, Tag::user(9), deadline);
            assert!(got.is_none());
            assert!(rank.now() >= deadline);
        });
    }

    #[test]
    fn clock_is_monotone_and_compute_advances_it() {
        NativeWorld::new(1).run(|rank| {
            let t0 = rank.now();
            rank.compute(5e-3);
            let t1 = rank.now();
            assert!(t1 > t0);
            assert!(t1.since(t0) >= desim::SimDuration::from_millis(4));
        });
    }
}

//! Per-rank mailboxes for the native backend.
//!
//! The matching structure mirrors the simulator's indexed mailbox
//! (`mpisim::msg`): envelopes live in a store keyed by arrival sequence,
//! with a per-tag ordered index for `Src::Any` matching and a
//! per-`(src, tag)` FIFO for directed receives. The simulator's in-flight
//! machinery (messages whose availability lies in the virtual future) has
//! no native counterpart — a message is available the moment `push` lands
//! it — so that whole layer disappears and FCFS order *is* arrival order.
//!
//! ## The MPSC split
//!
//! A mailbox has many producers (any rank may `push`) but exactly **one
//! consumer** — the owning rank thread is the only caller of
//! `take`/`try_take`/`take_deadline`/`probe`/`wait_change`. That asymmetry
//! shapes the whole design:
//!
//! - **Producers** push onto a lock-free Treiber stack (one
//!   `compare_exchange` on the staging head) and never touch the match
//!   index. N producers hammering one rank — the incast pattern — contend
//!   only on a single cache line, not on a mutex serializing the whole
//!   index.
//! - **The consumer** owns the index mutex outright (it is uncontended by
//!   construction), takes from the index first — staged envelopes are
//!   always *younger* than indexed ones, so index-first preserves FCFS —
//!   and drains the staging stack only on an index miss, with one atomic
//!   `swap` plus a list reversal to restore arrival order.
//!
//! The linearization point of arrival is the staging CAS; drains preserve
//! that order, so wildcard matching remains exactly FCFS.
//!
//! ## The index, sized for the per-message budget
//!
//! Arrival ids are consecutive, so the envelope store is a sliding window
//! of slots (`Slab`) indexed by `id - base` — no hashing at all on the
//! store. The per-tag and per-`(src, tag)` orders are plain `VecDeque`s of
//! ids behind a cheap multiplicative hasher; a take through one order
//! leaves a tombstone in the other, popped lazily when it reaches the
//! front and compacted outright when tombstones hit half a queue. And a
//! receive that misses the index entirely takes its match *straight off
//! the drain* — the first staged envelope in arrival order that matches is
//! handed to the caller without ever touching the index, which is the
//! common case for directed receives on an otherwise-empty mailbox
//! (credit waits, pingpong turnarounds, tree-collective hops).
//!
//! ## Parking, without lost wake-ups
//!
//! Blocking waits use an eventcount-style protocol instead of sleeping
//! under the index lock. The consumer publishes `parked = true` (while
//! holding the small park mutex), then re-checks its wake condition —
//! staging non-empty for `take`, version moved for `wait_change` — and
//! only then waits on the condvar. A producer makes its push visible
//! first, then checks `parked` and notifies under the park mutex. All
//! four accesses are `SeqCst`, which closes the store-buffering race: the
//! producer sees `parked` or the consumer sees the push — never neither.
//! Taking the park mutex around `notify_all` closes the other gap: a
//! notification cannot fire between the consumer's re-check and its wait,
//! because the consumer holds the mutex across both.
//!
//! A monotone `version` counter (bumped on every push) lets
//! `wait_for_mail` detect "something changed since I last looked". The
//! caller's snapshot of the counter advances *only* inside
//! [`Mailbox::wait_change`] — never on individual polls — so a push that
//! lands anywhere in a multi-poll round (e.g. `operate2` polling two
//! streams in turn) still wakes the next wait instead of being absorbed
//! into a later poll's observation. The cost is at most one spurious
//! re-poll; the benefit is that the wake-up cannot be lost.
//!
//! Deadline takes recompute the remaining time from the caller's absolute
//! `deadline` on every pass around the wait loop, so a spurious condvar
//! wake can neither extend the wait (the deadline is a fixed instant)
//! nor truncate it (the loop keeps waiting until the instant passes).
//!
//! This module is public so the crate's stress-test battery can hammer a
//! bare mailbox from many real threads; it is not a stable API.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::ptr;

use crate::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use crate::sync::boxed;
use crate::sync::cell::RaceCell;
use crate::sync::{Condvar, Instant, Mutex};

use mpistream::{MsgInfo, Src, Tag};

pub struct Env {
    pub src: usize,
    pub tag: Tag,
    pub bytes: u64,
    pub payload: Box<dyn Any + Send>,
}

/// One staged envelope on the producers' Treiber stack. The `next` link
/// is a [`RaceCell`]: it is written without synchronization of its own
/// (by the pushing producer before the CAS publishes the node, and by
/// the draining consumer during reversal), with the happens-before
/// argument carried entirely by the staging head's atomics — exactly
/// what the model checker's race detector verifies under
/// `--cfg schedcheck`.
struct Node {
    env: Env,
    next: RaceCell<*mut Node>,
}

/// Multiplicative hasher for the small integer keys the index uses (tags
/// and `(src, tag)` pairs). SipHash dominated the per-message profile;
/// one multiply plus a high-to-low fold is plenty for keys we pick
/// ourselves. The fold matters: hashbrown derives the bucket from the low
/// bits, and internal tags that differ only in the channel bits (32..48)
/// would otherwise collide into one bucket chain.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The envelope store. Arrival ids are consecutive, so this is a sliding
/// window over id space: slot `id - base` holds the envelope, `None` once
/// taken, and the window's fully-consumed prefix is popped as it forms.
/// No hashing, O(1) everything.
#[derive(Default)]
struct Slab {
    base: u64,
    slots: VecDeque<Option<Env>>,
}

impl Slab {
    fn insert(&mut self, env: Env) -> u64 {
        let id = self.base + self.slots.len() as u64;
        self.slots.push_back(Some(env));
        id
    }

    fn contains(&self, id: u64) -> bool {
        id.checked_sub(self.base)
            .and_then(|i| usize::try_from(i).ok())
            .and_then(|i| self.slots.get(i))
            .is_some_and(Option::is_some)
    }

    fn get(&self, id: u64) -> Option<&Env> {
        let i = usize::try_from(id.checked_sub(self.base)?).ok()?;
        self.slots.get(i)?.as_ref()
    }

    fn remove(&mut self, id: u64) -> Option<Env> {
        let i = usize::try_from(id.checked_sub(self.base)?).ok()?;
        let env = self.slots.get_mut(i)?.take()?;
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        Some(env)
    }
}

/// Arrival-ordered ids for one tag (or one `(src, tag)`). A take through
/// the *other* index leaves the id here as a tombstone: dead entries are
/// popped lazily when they surface at the front, and the whole queue is
/// compacted when they reach half its length, so space stays linear in
/// the live count even for queues only ever consumed from the other side
/// (a credit tag drained purely by directed receives, say).
#[derive(Default)]
struct TagQueue {
    q: VecDeque<u64>,
    dead: usize,
}

impl TagQueue {
    /// First id still alive in `slab`, popping the dead prefix.
    fn front_alive(&mut self, slab: &Slab) -> Option<u64> {
        while let Some(&id) = self.q.front() {
            if slab.contains(id) {
                return Some(id);
            }
            self.q.pop_front();
            self.dead -= 1;
        }
        None
    }

    /// `id` (somewhere in the queue) was taken through the other index.
    fn note_dead(&mut self, id: u64, slab: &Slab) {
        if self.q.front() == Some(&id) {
            self.q.pop_front();
            return;
        }
        self.dead += 1;
        if self.dead * 2 > self.q.len() {
            self.q.retain(|&i| slab.contains(i));
            self.dead = 0;
        }
    }
}

/// The match index, with each side materialized only on first use: a
/// mailbox drained purely by wildcard receives (an incast sink) never
/// maintains the `(src, tag)` mirror, and one drained purely by directed
/// receives (a producer waiting on credits, a pingpong turnaround) never
/// maintains the per-tag side. Building a side on demand is one pass over
/// the live slab — amortized against never paying for it at all on the
/// per-message hot path.
#[derive(Default)]
struct Inner {
    slab: Slab,
    by_tag: Option<FxMap<Tag, TagQueue>>,
    by_src_tag: Option<FxMap<(usize, Tag), TagQueue>>,
}

impl Inner {
    fn index(&mut self, env: Env) {
        let (src, tag) = (env.src, env.tag);
        let id = self.slab.insert(env);
        if let Some(bt) = &mut self.by_tag {
            bt.entry(tag).or_default().q.push_back(id);
        }
        if let Some(bst) = &mut self.by_src_tag {
            bst.entry((src, tag)).or_default().q.push_back(id);
        }
    }

    fn build_by_tag(slab: &Slab) -> FxMap<Tag, TagQueue> {
        let mut m = FxMap::<Tag, TagQueue>::default();
        for (i, slot) in slab.slots.iter().enumerate() {
            if let Some(env) = slot {
                m.entry(env.tag).or_default().q.push_back(slab.base + i as u64);
            }
        }
        m
    }

    fn build_by_src_tag(slab: &Slab) -> FxMap<(usize, Tag), TagQueue> {
        let mut m = FxMap::<(usize, Tag), TagQueue>::default();
        for (i, slot) in slab.slots.iter().enumerate() {
            if let Some(env) = slot {
                m.entry((env.src, env.tag)).or_default().q.push_back(slab.base + i as u64);
            }
        }
        m
    }

    /// Id of the first available message matching `(src, tag)`.
    fn find(&mut self, src: Src, tag: Tag) -> Option<u64> {
        let slab = &self.slab;
        match src {
            Src::Any => {
                let bt = self.by_tag.get_or_insert_with(|| Self::build_by_tag(slab));
                let tq = bt.get_mut(&tag)?;
                match tq.front_alive(slab) {
                    Some(id) => Some(id),
                    None => {
                        bt.remove(&tag);
                        None
                    }
                }
            }
            Src::Rank(r) => {
                let bst = self.by_src_tag.get_or_insert_with(|| Self::build_by_src_tag(slab));
                let tq = bst.get_mut(&(r, tag))?;
                match tq.front_alive(slab) {
                    Some(id) => Some(id),
                    None => {
                        bst.remove(&(r, tag));
                        None
                    }
                }
            }
        }
    }

    fn take(&mut self, src: Src, tag: Tag) -> Option<Env> {
        let id = self.find(src, tag)?;
        let env = self.slab.remove(id).expect("found id has an envelope");
        // Pop the matched queue (find materialized it and left `id` at its
        // front); tombstone or pop the mirror queue if it exists.
        match src {
            Src::Any => {
                let bt = self.by_tag.as_mut().expect("find materialized by_tag");
                let tq = bt.get_mut(&tag).expect("matched queue exists");
                tq.q.pop_front();
                if tq.q.is_empty() {
                    bt.remove(&tag);
                }
                if let Some(bst) = &mut self.by_src_tag {
                    if let Some(st) = bst.get_mut(&(env.src, tag)) {
                        st.note_dead(id, &self.slab);
                        if st.q.is_empty() {
                            bst.remove(&(env.src, tag));
                        }
                    }
                }
            }
            Src::Rank(r) => {
                let bst = self.by_src_tag.as_mut().expect("find materialized by_src_tag");
                let tq = bst.get_mut(&(r, tag)).expect("matched queue exists");
                tq.q.pop_front();
                if tq.q.is_empty() {
                    bst.remove(&(r, tag));
                }
                if let Some(bt) = &mut self.by_tag {
                    if let Some(tq) = bt.get_mut(&tag) {
                        tq.note_dead(id, &self.slab);
                        if tq.q.is_empty() {
                            bt.remove(&tag);
                        }
                    }
                }
            }
        }
        Some(env)
    }
}

pub struct Mailbox {
    /// Producers' staging stack: newest envelope at the head.
    stage: AtomicPtr<Node>,
    /// Bumped on every push; `wait_for_mail`'s change signal.
    version: AtomicU64,
    /// The owning consumer's match index. Uncontended by construction —
    /// producers never lock it.
    inner: Mutex<Inner>,
    /// Eventcount state: `parked` is only trusted when the consumer set it
    /// under `park`; producers notify under `park` too.
    parked: AtomicBool,
    park: Mutex<()>,
    cv: Condvar,
}

// SAFETY: the raw `Node` pointers are only ever created from `Box`es and
// traverse threads through the atomic head; every node is owned by exactly
// one side at a time (producers until the CAS lands, then the staging
// stack, then the drainer). `Env` is `Send` (its payload is
// `Box<dyn Any + Send>`), so moving nodes across threads is sound.
unsafe impl Send for Mailbox {}
unsafe impl Sync for Mailbox {}

impl Default for Mailbox {
    fn default() -> Mailbox {
        Mailbox::new()
    }
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox {
            stage: AtomicPtr::new(ptr::null_mut()),
            version: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
            parked: AtomicBool::new(false),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Land an envelope (any thread). Lock-free except for the notify path,
    /// which takes the (tiny) park mutex only when the consumer is parked.
    pub fn push(&self, env: Env) {
        let node = boxed::into_raw(Box::new(Node { env, next: RaceCell::new(ptr::null_mut()) }));
        let mut head = self.stage.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS succeeds.
            unsafe { (*node).next.set(head) };
            match self.stage.compare_exchange_weak(head, node, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.version.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) {
            // Locking (then releasing) the park mutex makes the notify
            // atomic with respect to the consumer's park-or-recheck
            // decision: the consumer holds the mutex from publishing
            // `parked` through entering the wait, so our acquisition
            // serializes either before its re-check (which then sees the
            // push) or after it is waiting (so the notify lands). Dropping
            // the guard *before* notifying keeps the woken thread from
            // immediately blocking on a mutex we still hold.
            drop(self.park.lock().unwrap());
            self.cv.notify_all();
        }
    }

    /// Detach the staged chain and restore arrival order (the stack is
    /// LIFO; reversal yields the CAS linearization order).
    fn drain_reversed(&self) -> *mut Node {
        let mut head = self.stage.swap(ptr::null_mut(), Ordering::SeqCst);
        let mut prev: *mut Node = ptr::null_mut();
        while !head.is_null() {
            // SAFETY: the swap gave us exclusive ownership of the chain.
            let next = unsafe { (*head).next.get() };
            unsafe { (*head).next.set(prev) };
            prev = head;
            head = next;
        }
        prev
    }

    /// Move everything staged into the index.
    fn drain_into(&self, inner: &mut Inner) {
        let mut head = self.drain_reversed();
        while !head.is_null() {
            // SAFETY: each node is consumed exactly once.
            let node = unsafe { boxed::from_raw(head) };
            head = node.next.get();
            inner.index(node.env);
        }
    }

    /// Drain staging, handing the first match for `(src, tag)` straight to
    /// the caller and indexing everything else. Only sound when the index
    /// holds no match (the caller's `Inner::take` just missed): staged
    /// envelopes are younger than indexed ones, so the oldest match overall
    /// is the first match in the drained chain. The hot receive path —
    /// waiter already posted, message arrives — thus skips the index
    /// entirely.
    fn drain_match(&self, inner: &mut Inner, src: Src, tag: Tag) -> Option<Env> {
        let mut head = self.drain_reversed();
        let mut hit: Option<Env> = None;
        while !head.is_null() {
            // SAFETY: each node is consumed exactly once.
            let node = unsafe { boxed::from_raw(head) };
            head = node.next.get();
            let env = node.env;
            let matches = hit.is_none()
                && env.tag == tag
                && match src {
                    Src::Any => true,
                    Src::Rank(r) => env.src == r,
                };
            if matches {
                hit = Some(env);
            } else {
                inner.index(env);
            }
        }
        hit
    }

    /// Non-blocking take (owning rank only). Deliberately does *not*
    /// report the mailbox version: polls must not advance the caller's
    /// `wait_change` snapshot, or a push landing between two polls of one
    /// multiplexing round would be absorbed and the subsequent park could
    /// sleep forever (lost wake-up).
    pub fn try_take(&self, src: Src, tag: Tag) -> Option<Env> {
        let mut inner = self.inner.lock().unwrap();
        // Index first: staged envelopes are younger than indexed ones, so
        // this preserves FCFS and keeps the hot path off the shared
        // staging cache line entirely.
        if let Some(env) = inner.take(src, tag) {
            return Some(env);
        }
        self.drain_match(&mut inner, src, tag)
    }

    /// Blocking take (owning rank only).
    pub fn take(&self, src: Src, tag: Tag) -> Env {
        let mut inner = self.inner.lock().unwrap();
        if let Some(env) = inner.take(src, tag) {
            return env;
        }
        // The index holds no match from here on: only our own drains feed
        // it, and `drain_match` indexes non-matching envelopes only. So
        // the loop needs just drain + park.
        loop {
            if let Some(env) = self.drain_match(&mut inner, src, tag) {
                return env;
            }
            // Eventcount park: publish intent, re-check for a push that
            // raced the drain, then sleep. Producers never need `inner`,
            // so holding it across the wait starves nobody.
            let mut g = self.park.lock().unwrap();
            self.parked.store(true, Ordering::SeqCst);
            if self.stage.load(Ordering::SeqCst).is_null() {
                g = self.cv.wait(g).unwrap();
            }
            self.parked.store(false, Ordering::SeqCst);
            drop(g);
        }
    }

    /// Blocking take that gives up at the wall-clock `deadline` (owning
    /// rank only). The remaining wait is recomputed from the absolute
    /// deadline on every pass, so spurious wakes neither extend nor
    /// truncate the timeout.
    pub fn take_deadline(&self, src: Src, tag: Tag, deadline: Instant) -> Option<Env> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(env) = inner.take(src, tag) {
            return Some(env);
        }
        loop {
            if let Some(env) = self.drain_match(&mut inner, src, tag) {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let mut g = self.park.lock().unwrap();
            self.parked.store(true, Ordering::SeqCst);
            if self.stage.load(Ordering::SeqCst).is_null() {
                let (guard, _timeout) = self.cv.wait_timeout(g, deadline - now).unwrap();
                g = guard;
            }
            self.parked.store(false, Ordering::SeqCst);
            drop(g);
        }
    }

    /// Metadata of the first available match, without consuming it (owning
    /// rank only). Like [`Mailbox::try_take`], never exposes the version.
    pub fn probe(&self, src: Src, tag: Tag) -> Option<MsgInfo> {
        let mut inner = self.inner.lock().unwrap();
        if inner.find(src, tag).is_none() {
            self.drain_into(&mut inner);
        }
        inner.find(src, tag).map(|id| {
            let env = inner.slab.get(id).expect("found id has an envelope");
            MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes }
        })
    }

    /// Park until the mailbox version moves past `seen`, then return the
    /// new version — the caller's snapshot for its *next* polling round.
    /// Because `seen` was taken when the previous `wait_change` returned
    /// (not during any poll since), every push after that instant makes
    /// the version differ and the call return immediately. The signal
    /// cannot be lost between a failed poll and the park; at worst the
    /// caller re-polls once for a message it already consumed.
    pub fn wait_change(&self, seen: u64) -> u64 {
        loop {
            let v = self.version.load(Ordering::SeqCst);
            if v != seen {
                return v;
            }
            let mut g = self.park.lock().unwrap();
            self.parked.store(true, Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == seen {
                g = self.cv.wait(g).unwrap();
            }
            self.parked.store(false, Ordering::SeqCst);
            drop(g);
        }
    }

    /// Current version, as a round-start snapshot (tests only; ranks get
    /// theirs from `wait_change`, starting from the shared initial 0).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

impl Drop for Mailbox {
    fn drop(&mut self) {
        // Free anything still staged (undrained pushes at teardown). A
        // `swap` rather than `get_mut` so the same code type-checks
        // against the schedcheck shadow `AtomicPtr`, which has no
        // `get_mut`; under the model this is also what proves to the
        // SC203 leak tracker that every staged node is reclaimed.
        let mut head = self.stage.swap(ptr::null_mut(), Ordering::SeqCst);
        while !head.is_null() {
            // SAFETY: drop has exclusive access; each node freed once.
            let node = unsafe { boxed::from_raw(head) };
            head = node.next.get();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag, v: u32) -> Env {
        Env { src, tag, bytes: 8, payload: Box::new(v) }
    }

    fn val(e: Env) -> u32 {
        *e.payload.downcast::<u32>().unwrap()
    }

    #[test]
    fn wildcard_takes_in_arrival_order_across_sources() {
        let mb = Mailbox::new();
        let t = Tag::user(7);
        mb.push(env(2, t, 20));
        mb.push(env(0, t, 0));
        mb.push(env(2, t, 21));
        assert_eq!(val(mb.take(Src::Any, t)), 20);
        assert_eq!(val(mb.take(Src::Any, t)), 0);
        assert_eq!(val(mb.take(Src::Any, t)), 21);
        assert!(mb.try_take(Src::Any, t).is_none());
    }

    #[test]
    fn directed_take_skips_other_sources_and_tombstones() {
        let mb = Mailbox::new();
        let t = Tag::user(1);
        mb.push(env(0, t, 1));
        mb.push(env(1, t, 2));
        mb.push(env(0, t, 3));
        // Wildcard consumes src 0's first message, leaving a tombstone in
        // the (0, t) FIFO.
        assert_eq!(val(mb.take(Src::Any, t)), 1);
        assert_eq!(val(mb.take(Src::Rank(0), t)), 3);
        assert_eq!(val(mb.take(Src::Rank(1), t)), 2);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let mb = Mailbox::new();
        mb.push(env(0, Tag::user(1), 1));
        assert!(mb.try_take(Src::Any, Tag::user(2)).is_none());
        assert!(mb.probe(Src::Any, Tag::user(1)).is_some());
        assert_eq!(val(mb.take(Src::Any, Tag::user(1))), 1);
    }

    #[test]
    fn deadline_take_times_out_empty() {
        let mb = Mailbox::new();
        let before = Instant::now();
        let got =
            mb.take_deadline(Src::Any, Tag::user(1), before + std::time::Duration::from_millis(20));
        assert!(got.is_none());
        assert!(before.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn version_moves_on_push_only() {
        let mb = Mailbox::new();
        let v0 = mb.version();
        mb.push(env(0, Tag::user(1), 1));
        let v1 = mb.wait_change(v0); // returns immediately: version moved
        assert!(v1 > v0);
    }

    /// The lost-wakeup regression: a push landing *between* two polls of a
    /// multiplexing round must still wake the next `wait_change`, because
    /// polls never advance the caller's snapshot.
    #[test]
    fn push_between_polls_is_not_absorbed() {
        let mb = Mailbox::new();
        let ta = Tag::user(1);
        let tb = Tag::user(2);
        let seen = mb.version(); // round-start snapshot
        assert!(mb.try_take(Src::Any, ta).is_none()); // poll stream A
        mb.push(env(0, tb, 7)); // producer lands B's message mid-round
        assert!(mb.try_take(Src::Any, ta).is_none()); // poll A again: no match
                                                      // The park must return immediately — the mid-round push moved the
                                                      // version past the round-start snapshot.
        let new = mb.wait_change(seen);
        assert!(new > seen);
        assert_eq!(val(mb.take(Src::Any, tb)), 7);
    }

    /// Teardown regression (PR 6): envelopes still sitting in the
    /// staging stack when the mailbox is dropped — pushed, never drained
    /// — must have their payloads freed, wherever they ended up (staged,
    /// indexed, or handed out). The schedcheck model proves this for
    /// every interleaving; this test pins the std build by counting
    /// payload drops directly.
    #[test]
    fn drop_frees_staged_and_indexed_envelopes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let counted = |drops: &Arc<AtomicUsize>| Env {
            src: 0,
            tag: Tag::user(1),
            bytes: 1,
            payload: Box::new(Counted(Arc::clone(drops))),
        };

        // All three staged, none drained: Drop's swap loop frees them.
        let mb = Mailbox::new();
        for _ in 0..3 {
            mb.push(counted(&drops));
        }
        drop(mb);
        assert_eq!(drops.load(Ordering::SeqCst), 3, "staged envelopes leaked at teardown");

        // Mixed fates: one consumed by the taker, two left behind in the
        // index (the take drained them), all freed by the end.
        drops.store(0, Ordering::SeqCst);
        let mb = Mailbox::new();
        for _ in 0..3 {
            mb.push(counted(&drops));
        }
        let taken = mb.take(Src::Any, Tag::user(1));
        drop(taken);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(mb);
        assert_eq!(drops.load(Ordering::SeqCst), 3, "indexed envelopes leaked at teardown");
    }

    /// Index-first matching must not reorder a staged-but-undrained
    /// envelope ahead of an older indexed one (FCFS across the drain
    /// boundary).
    #[test]
    fn fcfs_holds_across_the_staging_boundary() {
        let mb = Mailbox::new();
        let t = Tag::user(3);
        mb.push(env(0, t, 1));
        // Force a drain: the first take moves everything into the index.
        assert_eq!(val(mb.take(Src::Any, t)), 1);
        mb.push(env(1, t, 2)); // indexed on next miss
        mb.push(env(0, t, 3));
        assert_eq!(val(mb.take(Src::Any, t)), 2);
        // 3 is now indexed; a fresh push stages 4 behind it.
        mb.push(env(1, t, 4));
        assert_eq!(val(mb.take(Src::Any, t)), 3);
        assert_eq!(val(mb.take(Src::Any, t)), 4);
    }
}

//! Per-rank mailboxes for the native backend.
//!
//! The structure mirrors the simulator's indexed mailbox (`mpisim::msg`):
//! envelopes live in a store keyed by arrival sequence, with a per-tag
//! ordered index for `Src::Any` matching and a per-`(src, tag)` FIFO for
//! directed receives. The simulator's in-flight machinery (messages whose
//! availability lies in the virtual future) has no native counterpart —
//! here a message is available the moment `push` lands it — so that whole
//! layer disappears and FCFS order *is* arrival order.
//!
//! Blocking is a `Mutex` + `Condvar` pair per mailbox: senders push under
//! the lock and `notify_all`; parked receivers re-check their match on
//! every wake. A monotone `version` counter (bumped on every push) lets
//! `wait_for_mail` detect "something changed since I last looked". The
//! caller's snapshot of the counter advances *only* inside
//! [`Mailbox::wait_change`] — never on individual polls — so a push that
//! lands anywhere in a multi-poll round (e.g. `operate2` polling two
//! streams in turn) still wakes the next wait instead of being absorbed
//! into a later poll's observation. The cost is at most one spurious
//! re-poll; the benefit is that the wake-up cannot be lost.

use std::any::Any;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use mpistream::{MsgInfo, Src, Tag};

pub(crate) struct Env {
    pub src: usize,
    pub tag: Tag,
    pub bytes: u64,
    pub payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct Inner {
    /// Arrival sequence of the next push (also the FCFS order key).
    next_seq: u64,
    /// Bumped on every push; `wait_for_mail`'s change signal.
    version: u64,
    envs: HashMap<u64, Env>,
    /// Arrival-ordered ids per tag (kept exact: ids are removed on take).
    by_tag: HashMap<Tag, BTreeSet<u64>>,
    /// FIFO ids per (src, tag). Lazily compacted: a take through `by_tag`
    /// leaves a tombstone here, skipped on the next directed match.
    by_src_tag: HashMap<(usize, Tag), VecDeque<u64>>,
}

impl Inner {
    fn push(&mut self, env: Env) {
        let id = self.next_seq;
        self.next_seq += 1;
        self.version += 1;
        self.by_tag.entry(env.tag).or_default().insert(id);
        self.by_src_tag.entry((env.src, env.tag)).or_default().push_back(id);
        self.envs.insert(id, env);
    }

    /// Id of the first available message matching `(src, tag)`.
    fn find(&mut self, src: Src, tag: Tag) -> Option<u64> {
        match src {
            Src::Any => self.by_tag.get(&tag).and_then(|ids| ids.first().copied()),
            Src::Rank(r) => {
                let q = self.by_src_tag.get_mut(&(r, tag))?;
                // Skip tombstones left by wildcard takes.
                while let Some(&id) = q.front() {
                    if self.envs.contains_key(&id) {
                        return Some(id);
                    }
                    q.pop_front();
                }
                None
            }
        }
    }

    fn take(&mut self, src: Src, tag: Tag) -> Option<Env> {
        let id = self.find(src, tag)?;
        let env = self.envs.remove(&id).expect("indexed id has an envelope");
        if let Some(ids) = self.by_tag.get_mut(&tag) {
            ids.remove(&id);
            if ids.is_empty() {
                self.by_tag.remove(&tag);
            }
        }
        // `by_src_tag` keeps a tombstone unless the id is already at the
        // front (the common directed-receive case).
        if let Some(q) = self.by_src_tag.get_mut(&(env.src, tag)) {
            if q.front() == Some(&id) {
                q.pop_front();
            }
            if q.is_empty() {
                self.by_src_tag.remove(&(env.src, tag));
            }
        }
        Some(env)
    }
}

pub(crate) struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox { inner: Mutex::new(Inner::default()), cv: Condvar::new() }
    }

    pub fn push(&self, env: Env) {
        let mut inner = self.inner.lock().unwrap();
        inner.push(env);
        self.cv.notify_all();
    }

    /// Non-blocking take. Deliberately does *not* report the mailbox
    /// version: polls must not advance the caller's `wait_change`
    /// snapshot, or a push landing between two polls of one multiplexing
    /// round would be absorbed and the subsequent park could sleep
    /// forever (lost wake-up).
    pub fn try_take(&self, src: Src, tag: Tag) -> Option<Env> {
        self.inner.lock().unwrap().take(src, tag)
    }

    /// Blocking take.
    pub fn take(&self, src: Src, tag: Tag) -> Env {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(env) = inner.take(src, tag) {
                return env;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Blocking take that gives up at the wall-clock `deadline`.
    pub fn take_deadline(&self, src: Src, tag: Tag, deadline: Instant) -> Option<Env> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(env) = inner.take(src, tag) {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self.cv.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Metadata of the first available match, without consuming it. Like
    /// [`Mailbox::try_take`], this never exposes the version counter.
    pub fn probe(&self, src: Src, tag: Tag) -> Option<MsgInfo> {
        let mut inner = self.inner.lock().unwrap();
        inner.find(src, tag).map(|id| {
            let env = &inner.envs[&id];
            MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes }
        })
    }

    /// Park until the mailbox version moves past `seen`, then return the
    /// new version — the caller's snapshot for its *next* polling round.
    /// Because `seen` was taken when the previous `wait_change` returned
    /// (not during any poll since), every push after that instant makes
    /// the version differ and the call return immediately. The signal
    /// cannot be lost between a failed poll and the park; at worst the
    /// caller re-polls once for a message it already consumed.
    pub fn wait_change(&self, seen: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        while inner.version == seen {
            inner = self.cv.wait(inner).unwrap();
        }
        inner.version
    }

    /// Current version, as a round-start snapshot (tests only; ranks get
    /// theirs from `wait_change`, starting from the shared initial 0).
    #[cfg(test)]
    fn version(&self) -> u64 {
        self.inner.lock().unwrap().version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag, v: u32) -> Env {
        Env { src, tag, bytes: 8, payload: Box::new(v) }
    }

    fn val(e: Env) -> u32 {
        *e.payload.downcast::<u32>().unwrap()
    }

    #[test]
    fn wildcard_takes_in_arrival_order_across_sources() {
        let mb = Mailbox::new();
        let t = Tag::user(7);
        mb.push(env(2, t, 20));
        mb.push(env(0, t, 0));
        mb.push(env(2, t, 21));
        assert_eq!(val(mb.take(Src::Any, t)), 20);
        assert_eq!(val(mb.take(Src::Any, t)), 0);
        assert_eq!(val(mb.take(Src::Any, t)), 21);
        assert!(mb.try_take(Src::Any, t).is_none());
    }

    #[test]
    fn directed_take_skips_other_sources_and_tombstones() {
        let mb = Mailbox::new();
        let t = Tag::user(1);
        mb.push(env(0, t, 1));
        mb.push(env(1, t, 2));
        mb.push(env(0, t, 3));
        // Wildcard consumes src 0's first message, leaving a tombstone in
        // the (0, t) FIFO.
        assert_eq!(val(mb.take(Src::Any, t)), 1);
        assert_eq!(val(mb.take(Src::Rank(0), t)), 3);
        assert_eq!(val(mb.take(Src::Rank(1), t)), 2);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let mb = Mailbox::new();
        mb.push(env(0, Tag::user(1), 1));
        assert!(mb.try_take(Src::Any, Tag::user(2)).is_none());
        assert!(mb.probe(Src::Any, Tag::user(1)).is_some());
        assert_eq!(val(mb.take(Src::Any, Tag::user(1))), 1);
    }

    #[test]
    fn deadline_take_times_out_empty() {
        let mb = Mailbox::new();
        let before = Instant::now();
        let got =
            mb.take_deadline(Src::Any, Tag::user(1), before + std::time::Duration::from_millis(20));
        assert!(got.is_none());
        assert!(before.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn version_moves_on_push_only() {
        let mb = Mailbox::new();
        let v0 = mb.version();
        mb.push(env(0, Tag::user(1), 1));
        let v1 = mb.wait_change(v0); // returns immediately: version moved
        assert!(v1 > v0);
    }

    /// The lost-wakeup regression: a push landing *between* two polls of a
    /// multiplexing round must still wake the next `wait_change`, because
    /// polls never advance the caller's snapshot.
    #[test]
    fn push_between_polls_is_not_absorbed() {
        let mb = Mailbox::new();
        let ta = Tag::user(1);
        let tb = Tag::user(2);
        let seen = mb.version(); // round-start snapshot
        assert!(mb.try_take(Src::Any, ta).is_none()); // poll stream A
        mb.push(env(0, tb, 7)); // producer lands B's message mid-round
        assert!(mb.try_take(Src::Any, ta).is_none()); // poll A again: no match
                                                      // The park must return immediately — the mid-round push moved the
                                                      // version past the round-start snapshot.
        let new = mb.wait_change(seen);
        assert!(new > seen);
        assert_eq!(val(mb.take(Src::Any, tb)), 7);
    }
}

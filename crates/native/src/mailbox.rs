//! Per-rank mailboxes for the native backend.
//!
//! The structure mirrors the simulator's indexed mailbox (`mpisim::msg`):
//! envelopes live in a store keyed by arrival sequence, with a per-tag
//! ordered index for `Src::Any` matching and a per-`(src, tag)` FIFO for
//! directed receives. The simulator's in-flight machinery (messages whose
//! availability lies in the virtual future) has no native counterpart —
//! here a message is available the moment `push` lands it — so that whole
//! layer disappears and FCFS order *is* arrival order.
//!
//! Blocking is a `Mutex` + `Condvar` pair per mailbox: senders push under
//! the lock and `notify_all`; parked receivers re-check their match on
//! every wake. A monotone `version` counter (bumped on every push) lets
//! `wait_for_mail` detect "something changed since I last looked" without
//! races between a failed `try_recv` and the park.

use std::any::Any;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use mpistream::{MsgInfo, Src, Tag};

pub(crate) struct Env {
    pub src: usize,
    pub tag: Tag,
    pub bytes: u64,
    pub payload: Box<dyn Any + Send>,
}

#[derive(Default)]
struct Inner {
    /// Arrival sequence of the next push (also the FCFS order key).
    next_seq: u64,
    /// Bumped on every push; `wait_for_mail`'s change signal.
    version: u64,
    envs: HashMap<u64, Env>,
    /// Arrival-ordered ids per tag (kept exact: ids are removed on take).
    by_tag: HashMap<Tag, BTreeSet<u64>>,
    /// FIFO ids per (src, tag). Lazily compacted: a take through `by_tag`
    /// leaves a tombstone here, skipped on the next directed match.
    by_src_tag: HashMap<(usize, Tag), VecDeque<u64>>,
}

impl Inner {
    fn push(&mut self, env: Env) {
        let id = self.next_seq;
        self.next_seq += 1;
        self.version += 1;
        self.by_tag.entry(env.tag).or_default().insert(id);
        self.by_src_tag.entry((env.src, env.tag)).or_default().push_back(id);
        self.envs.insert(id, env);
    }

    /// Id of the first available message matching `(src, tag)`.
    fn find(&mut self, src: Src, tag: Tag) -> Option<u64> {
        match src {
            Src::Any => self.by_tag.get(&tag).and_then(|ids| ids.first().copied()),
            Src::Rank(r) => {
                let q = self.by_src_tag.get_mut(&(r, tag))?;
                // Skip tombstones left by wildcard takes.
                while let Some(&id) = q.front() {
                    if self.envs.contains_key(&id) {
                        return Some(id);
                    }
                    q.pop_front();
                }
                None
            }
        }
    }

    fn take(&mut self, src: Src, tag: Tag) -> Option<Env> {
        let id = self.find(src, tag)?;
        let env = self.envs.remove(&id).expect("indexed id has an envelope");
        if let Some(ids) = self.by_tag.get_mut(&tag) {
            ids.remove(&id);
            if ids.is_empty() {
                self.by_tag.remove(&tag);
            }
        }
        // `by_src_tag` keeps a tombstone unless the id is already at the
        // front (the common directed-receive case).
        if let Some(q) = self.by_src_tag.get_mut(&(env.src, tag)) {
            if q.front() == Some(&id) {
                q.pop_front();
            }
            if q.is_empty() {
                self.by_src_tag.remove(&(env.src, tag));
            }
        }
        Some(env)
    }
}

pub(crate) struct Mailbox {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Mailbox {
    pub fn new() -> Mailbox {
        Mailbox { inner: Mutex::new(Inner::default()), cv: Condvar::new() }
    }

    pub fn push(&self, env: Env) {
        let mut inner = self.inner.lock().unwrap();
        inner.push(env);
        self.cv.notify_all();
    }

    /// Non-blocking take. Returns the mailbox version observed alongside
    /// the result, so the caller can later park "until changed".
    pub fn try_take(&self, src: Src, tag: Tag) -> (Option<Env>, u64) {
        let mut inner = self.inner.lock().unwrap();
        let env = inner.take(src, tag);
        let version = inner.version;
        (env, version)
    }

    /// Blocking take.
    pub fn take(&self, src: Src, tag: Tag) -> Env {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(env) = inner.take(src, tag) {
                return env;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Blocking take that gives up at the wall-clock `deadline`.
    pub fn take_deadline(&self, src: Src, tag: Tag, deadline: Instant) -> Option<Env> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(env) = inner.take(src, tag) {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self.cv.wait_timeout(inner, deadline - now).unwrap();
            inner = guard;
        }
    }

    /// Metadata of the first available match, without consuming it.
    pub fn probe(&self, src: Src, tag: Tag) -> (Option<MsgInfo>, u64) {
        let mut inner = self.inner.lock().unwrap();
        let info = inner.find(src, tag).map(|id| {
            let env = &inner.envs[&id];
            MsgInfo { src: env.src, tag: env.tag, bytes: env.bytes }
        });
        let version = inner.version;
        (info, version)
    }

    /// Park until the mailbox version moves past `seen` (a push happened
    /// since the caller last looked). Returns the new version. Wakes
    /// immediately when the version already moved — the signal cannot be
    /// lost between a failed `try_take` and the park.
    pub fn wait_change(&self, seen: u64) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        while inner.version == seen {
            inner = self.cv.wait(inner).unwrap();
        }
        inner.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: Tag, v: u32) -> Env {
        Env { src, tag, bytes: 8, payload: Box::new(v) }
    }

    fn val(e: Env) -> u32 {
        *e.payload.downcast::<u32>().unwrap()
    }

    #[test]
    fn wildcard_takes_in_arrival_order_across_sources() {
        let mb = Mailbox::new();
        let t = Tag::user(7);
        mb.push(env(2, t, 20));
        mb.push(env(0, t, 0));
        mb.push(env(2, t, 21));
        assert_eq!(val(mb.take(Src::Any, t)), 20);
        assert_eq!(val(mb.take(Src::Any, t)), 0);
        assert_eq!(val(mb.take(Src::Any, t)), 21);
        assert!(mb.try_take(Src::Any, t).0.is_none());
    }

    #[test]
    fn directed_take_skips_other_sources_and_tombstones() {
        let mb = Mailbox::new();
        let t = Tag::user(1);
        mb.push(env(0, t, 1));
        mb.push(env(1, t, 2));
        mb.push(env(0, t, 3));
        // Wildcard consumes src 0's first message, leaving a tombstone in
        // the (0, t) FIFO.
        assert_eq!(val(mb.take(Src::Any, t)), 1);
        assert_eq!(val(mb.take(Src::Rank(0), t)), 3);
        assert_eq!(val(mb.take(Src::Rank(1), t)), 2);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let mb = Mailbox::new();
        mb.push(env(0, Tag::user(1), 1));
        assert!(mb.try_take(Src::Any, Tag::user(2)).0.is_none());
        assert!(mb.probe(Src::Any, Tag::user(1)).0.is_some());
        assert_eq!(val(mb.take(Src::Any, Tag::user(1))), 1);
    }

    #[test]
    fn deadline_take_times_out_empty() {
        let mb = Mailbox::new();
        let before = Instant::now();
        let got =
            mb.take_deadline(Src::Any, Tag::user(1), before + std::time::Duration::from_millis(20));
        assert!(got.is_none());
        assert!(before.elapsed() >= std::time::Duration::from_millis(20));
    }

    #[test]
    fn version_moves_on_push_only() {
        let mb = Mailbox::new();
        let (_, v0) = mb.try_take(Src::Any, Tag::user(1));
        mb.push(env(0, Tag::user(1), 1));
        let v1 = mb.wait_change(v0); // returns immediately: version moved
        assert!(v1 > v0);
    }
}

//! The sync facade: every synchronization primitive the native backend
//! touches is imported through here, never from `std` directly.
//!
//! By default this re-exports the real `std` types (plus two zero-cost
//! wrappers, [`cell::RaceCell`] and [`boxed`]) — the production build is
//! unchanged. Under `RUSTFLAGS='--cfg schedcheck'` it re-exports the
//! shadow types from the `schedcheck` crate instead, so the *same*
//! mailbox/collective source is driven by the bounded model checker:
//! every atomic op, lock, park and raw-node hand-off becomes a schedule
//! point, with vector-clock race detection (SC201), deadlock/lost-wakeup
//! detection (SC202) and leak/double-free tracking (SC203). See
//! DESIGN.md §14 and `crates/native/tests/schedcheck_models.rs`.
//!
//! The two wrappers exist so the facade covers the unsafe spots too:
//!
//! - [`cell::RaceCell`] marks a shared mutable location whose safety
//!   argument lives outside the type system (the `next` pointer of a
//!   staged `Node`, published by the Treiber CAS). std mode: a plain
//!   `Cell`. schedcheck mode: a race-detection point.
//! - [`boxed::into_raw`]/[`boxed::from_raw`] mark ownership transfers
//!   of raw nodes. std mode: the `Box` calls. schedcheck mode: every
//!   minted pointer must be reclaimed exactly once per execution.

#[cfg(not(schedcheck))]
mod imp {
    pub use std::sync::{Condvar, Mutex, MutexGuard};
    pub use std::time::Instant;

    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }

    pub mod thread {
        pub use std::thread::{scope, sleep, spawn, yield_now, JoinHandle, ScopedJoinHandle};
    }

    pub mod cell {
        /// A shared mutable location with an external safety argument
        /// (see the module docs). In the std build this is a plain
        /// `Cell`; under `--cfg schedcheck` accesses are race-checked.
        #[derive(Default)]
        pub struct RaceCell<T>(std::cell::Cell<T>);

        impl<T: Copy> RaceCell<T> {
            #[inline]
            pub const fn new(v: T) -> Self {
                RaceCell(std::cell::Cell::new(v))
            }

            #[inline]
            pub fn get(&self) -> T {
                self.0.get()
            }

            #[inline]
            pub fn set(&self, v: T) {
                self.0.set(v);
            }
        }
    }

    pub mod boxed {
        /// `Box::into_raw`, tracked under `--cfg schedcheck`.
        #[inline]
        pub fn into_raw<T>(b: Box<T>) -> *mut T {
            Box::into_raw(b)
        }

        /// `Box::from_raw`, tracked under `--cfg schedcheck`.
        ///
        /// # Safety
        /// Same contract as [`Box::from_raw`].
        #[inline]
        pub unsafe fn from_raw<T>(p: *mut T) -> Box<T> {
            unsafe { Box::from_raw(p) }
        }
    }
}

#[cfg(schedcheck)]
mod imp {
    pub use schedcheck::atomic;
    pub use schedcheck::boxed;
    pub use schedcheck::cell;
    pub use schedcheck::thread;
    pub use schedcheck::time::Instant;
    pub use schedcheck::{Condvar, Mutex, MutexGuard};
}

pub use imp::*;

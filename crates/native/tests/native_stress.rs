//! Concurrency stress battery for the native backend.
//!
//! Every optimization in the native mailbox is a concurrency change to
//! real-thread code — the same code where review already caught a
//! lost-wakeup race — so this battery is load-bearing, not decoration. It
//! hammers the lock-free staging path from many real producer threads,
//! drives the eventcount park protocol through polling races, pins the
//! deadline-recompute semantics under spurious wakes, audits the batched
//! credit protocol for window overruns, and repeats the tree collectives
//! enough times that a single mis-matched hop would deadlock or
//! mis-reduce.
//!
//! Iteration counts scale with `NATIVE_STRESS_ITERS` (a multiplier,
//! default 1): CI runs the defaults, local soaks crank it up, e.g.
//! `NATIVE_STRESS_ITERS=20 cargo test --release -p native --test
//! native_stress`. Tests that would *hang* on a lost wake-up run under a
//! watchdog that aborts the process instead of letting CI time out
//! silently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpistream::transport::SimTime;
use mpistream::{
    ChannelConfig, Group, GroupSpec, MsgInfo, Role, RoutePolicy, Src, Stream, StreamChannel, Tag,
    Transport, Wire,
};
use native::mailbox::{Env, Mailbox};
use native::{NativeGroup, NativeRank, NativeWorld};
use proptest::prelude::*;

/// `n` scaled by the `NATIVE_STRESS_ITERS` multiplier (default 1).
fn iters(n: u64) -> u64 {
    let scale: u64 =
        std::env::var("NATIVE_STRESS_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    n * scale.max(1)
}

fn env_msg(src: usize, tag: Tag, seq: u64) -> Env {
    Env { src, tag, bytes: 8, payload: Box::new(seq) }
}

fn seq_of(env: Env) -> (usize, u64) {
    let src = env.src;
    (src, *env.payload.downcast::<u64>().expect("u64 payload"))
}

/// Run `f` under a watchdog: if it has not finished within `secs`, abort
/// the process with a diagnostic. A lost wake-up manifests as a hang; an
/// abort turns that into a loud, fast CI failure instead of a timeout.
fn with_watchdog<R>(label: &'static str, secs: u64, f: impl FnOnce() -> R) -> R {
    let done = Arc::new(AtomicBool::new(false));
    let d2 = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while !d2.load(Ordering::Acquire) {
            if start.elapsed() > Duration::from_secs(secs) {
                eprintln!("watchdog: `{label}` exceeded {secs}s — lost wake-up or deadlock");
                std::process::abort();
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
    let r = f();
    done.store(true, Ordering::Release);
    r
}

// ---------------------------------------------------------------------
// MPSC staging: many producers, one draining owner
// ---------------------------------------------------------------------

/// The incast shape at full contention: N real threads hammer one
/// mailbox's staging stack while the owner blocking-takes everything.
/// Checks conservation (every message exactly once) and per-source FIFO
/// (the CAS linearization must survive the stack reversal and the
/// index/drain-match split).
#[test]
fn mpsc_hammer_conserves_and_orders_per_source() {
    let producers = 8usize;
    let per = iters(20_000);
    let mb = Arc::new(Mailbox::new());
    let tag = Tag::user(1);
    with_watchdog("mpsc_hammer", 120, || {
        std::thread::scope(|s| {
            for p in 0..producers {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..per {
                        mb.push(env_msg(p, tag, i));
                    }
                });
            }
            let mut next = vec![0u64; producers];
            for _ in 0..per * producers as u64 {
                let (src, seq) = seq_of(mb.take(Src::Any, tag));
                assert_eq!(seq, next[src], "per-source FIFO violated for src {src}");
                next[src] += 1;
            }
            assert!(next.iter().all(|&n| n == per), "every source fully delivered");
        });
    });
    assert!(mb.try_take(Src::Any, tag).is_none(), "no stragglers");
}

/// Wildcard and directed receives interleaved against live producers:
/// directed takes tombstone the per-tag order and wildcard takes
/// tombstone the per-source order — both lazily compacted — so mixing
/// them under load exercises exactly the bookkeeping the sharded index
/// rewrite changed.
#[test]
fn directed_and_wildcard_interleave_without_loss() {
    let producers = 4usize;
    let per = iters(10_000); // per producer, alternating two tags
    let (ta, tb) = (Tag::user(1), Tag::user(2));
    let mb = Arc::new(Mailbox::new());
    with_watchdog("directed_wildcard_interleave", 120, || {
        std::thread::scope(|s| {
            for p in 0..producers {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..per {
                        let tag = if i % 2 == 0 { ta } else { tb };
                        mb.push(env_msg(p, tag, i));
                    }
                });
            }
            // Directed drain of tag B, round-robin over sources, racing
            // the producers; each source's B-sequence must ascend.
            let b_per = per / 2;
            let mut last_b = vec![None::<u64>; producers];
            for _ in 0..b_per {
                for (p, last) in last_b.iter_mut().enumerate() {
                    let (src, seq) = seq_of(mb.take(Src::Rank(p), tb));
                    assert_eq!(src, p);
                    assert!(last.is_none_or(|l| seq > l), "directed FIFO violated");
                    *last = Some(seq);
                }
            }
            // Wildcard drain of tag A; per-source order must ascend.
            let a_per = per - b_per;
            let mut last_a = vec![None::<u64>; producers];
            for _ in 0..a_per * producers as u64 {
                let (src, seq) = seq_of(mb.take(Src::Any, ta));
                assert!(last_a[src].is_none_or(|l| seq > l), "wildcard FIFO violated");
                last_a[src] = Some(seq);
            }
        });
    });
    assert!(mb.try_take(Src::Any, ta).is_none());
    assert!(mb.try_take(Src::Any, tb).is_none());
}

// ---------------------------------------------------------------------
// The eventcount under polling races (no lost wake-ups, no absorbed
// pushes)
// ---------------------------------------------------------------------

/// The `operate2` pattern driven straight at the mailbox: poll several
/// tags, then park on `wait_change` with a round-start snapshot. A push
/// landing *between* two polls of one round must still wake the park. A
/// lost wake-up hangs the loop — the watchdog converts that into an
/// abort.
#[test]
fn polling_rounds_never_sleep_past_a_push() {
    let total = iters(50_000);
    let tags = [Tag::user(1), Tag::user(2), Tag::user(3)];
    let mb = Arc::new(Mailbox::new());
    with_watchdog("polling_rounds", 120, || {
        std::thread::scope(|s| {
            {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..total {
                        mb.push(env_msg(0, tags[(i % 3) as usize], i));
                        if i % 64 == 0 {
                            // Give the consumer a chance to park so pushes
                            // land in every phase of its round.
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut got = 0u64;
            let mut seen = 0u64; // matches the mailbox's initial version
            while got < total {
                loop {
                    let mut round = 0;
                    for t in tags {
                        while mb.try_take(Src::Any, t).is_some() {
                            round += 1;
                        }
                    }
                    got += round;
                    if round == 0 {
                        break;
                    }
                }
                if got < total {
                    seen = mb.wait_change(seen);
                }
            }
        });
    });
}

// ---------------------------------------------------------------------
// Deadline semantics under spurious wakes
// ---------------------------------------------------------------------

/// Non-matching pushes wake a parked deadline take over and over; each
/// wake must *recompute the remaining time* against the absolute
/// deadline. Re-waiting the full timeout per wake would never expire
/// under this spam (the old bug); giving up early would truncate. The
/// deadline must land in between.
#[test]
fn spurious_wakes_neither_extend_nor_truncate_deadlines() {
    let mb = Arc::new(Mailbox::new());
    let deadline = Duration::from_millis(300);
    let stop = Arc::new(AtomicBool::new(false));
    with_watchdog("deadline_spurious_wakes", 60, || {
        std::thread::scope(|s| {
            {
                let (mb, stop) = (Arc::clone(&mb), Arc::clone(&stop));
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        // Wrong tag: wakes the parked take, never matches.
                        mb.push(env_msg(1, Tag::user(9), i));
                        i += 1;
                        std::thread::sleep(Duration::from_millis(5));
                    }
                });
            }
            let t0 = Instant::now();
            let got = mb.take_deadline(Src::Any, Tag::user(1), t0 + deadline);
            let elapsed = t0.elapsed();
            stop.store(true, Ordering::Release);
            assert!(got.is_none(), "nothing matching was ever pushed");
            assert!(elapsed >= deadline, "deadline truncated: {elapsed:?} < {deadline:?}");
            assert!(
                elapsed < deadline + Duration::from_secs(2),
                "deadline extended by spurious wakes: {elapsed:?}"
            );
        });
    });
}

/// The positive half: a matching message that arrives mid-wait (behind a
/// screen of non-matching wakes) is delivered promptly, well before the
/// deadline.
#[test]
fn matching_message_beats_the_deadline_despite_spurious_wakes() {
    let mb = Arc::new(Mailbox::new());
    with_watchdog("deadline_delivery", 60, || {
        std::thread::scope(|s| {
            {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..10u64 {
                        mb.push(env_msg(1, Tag::user(9), i)); // spurious
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    mb.push(env_msg(2, Tag::user(1), 42)); // the real one
                });
            }
            let t0 = Instant::now();
            let got = mb.take_deadline(Src::Any, Tag::user(1), t0 + Duration::from_secs(30));
            let (src, seq) = seq_of(got.expect("delivered"));
            assert_eq!((src, seq), (2, 42));
            assert!(t0.elapsed() < Duration::from_secs(10), "delivery was prompt");
        });
    });
}

// ---------------------------------------------------------------------
// Batched credits: no credit overrun, end-to-end on real threads
// ---------------------------------------------------------------------

/// Per-(channel, producer, consumer) credit ledger fed by the Transport
/// sanitizer hooks. The invariants of the credit protocol, batched or
/// not: a producer never has more than `window` elements outstanding
/// towards one consumer, and a consumer never acknowledges elements it
/// was never sent.
#[derive(Default)]
struct CreditLedger {
    windows: Mutex<HashMap<u16, u64>>,
    outstanding: Mutex<HashMap<(u16, usize, usize), i64>>,
    violations: Mutex<Vec<String>>,
}

impl CreditLedger {
    fn violation(&self, msg: String) {
        self.violations.lock().unwrap().push(msg);
    }

    fn data_sent(&self, id: u16, producer: usize, consumer: usize, elems: u64) {
        let mut out = self.outstanding.lock().unwrap();
        let o = out.entry((id, producer, consumer)).or_insert(0);
        *o += elems as i64;
        if let Some(&w) = self.windows.lock().unwrap().get(&id) {
            if *o > w as i64 {
                self.violation(format!(
                    "channel {id}: producer {producer} has {o} outstanding towards \
                     consumer {consumer}, window {w}"
                ));
            }
        }
    }

    fn credit_issued(&self, id: u16, producer: usize, consumer: usize, elems: u64) {
        let mut out = self.outstanding.lock().unwrap();
        let o = out.entry((id, producer, consumer)).or_insert(0);
        *o -= elems as i64;
        if *o < 0 {
            self.violation(format!(
                "channel {id}: consumer {consumer} acknowledged {} elements never sent \
                 by producer {producer}",
                -*o
            ));
        }
    }
}

/// A [`Transport`] wrapper that forwards everything to the wrapped
/// [`NativeRank`] and routes the sanitizer hooks into a [`CreditLedger`]
/// — the native analogue of the simulator's `check` feature.
struct Audited<'a> {
    inner: &'a mut NativeRank,
    ledger: Arc<CreditLedger>,
}

impl Transport for Audited<'_> {
    type Group = NativeGroup;

    fn world_rank(&self) -> usize {
        self.inner.world_rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn world_group(&self) -> NativeGroup {
        self.inner.world_group()
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn compute(&mut self, secs: f64) {
        self.inner.compute(secs);
    }
    fn send<T: Wire + Send + 'static>(&mut self, dst: usize, tag: Tag, bytes: u64, value: T) {
        self.inner.send(dst, tag, bytes, value);
    }
    fn recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> (T, MsgInfo) {
        self.inner.recv(src, tag)
    }
    fn try_recv<T: Wire + Send + 'static>(&mut self, src: Src, tag: Tag) -> Option<(T, MsgInfo)> {
        self.inner.try_recv(src, tag)
    }
    fn recv_deadline<T: Wire + Send + 'static>(
        &mut self,
        src: Src,
        tag: Tag,
        deadline: SimTime,
    ) -> Option<(T, MsgInfo)> {
        self.inner.recv_deadline(src, tag, deadline)
    }
    fn probe(&mut self, src: Src, tag: Tag) -> Option<MsgInfo> {
        self.inner.probe(src, tag)
    }
    fn wait_for_mail(&mut self) {
        self.inner.wait_for_mail();
    }
    fn barrier(&mut self, group: &NativeGroup) {
        self.inner.barrier(group);
    }
    fn allreduce<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &NativeGroup,
        bytes: u64,
        value: T,
        op: impl Fn(&mut T, &T),
    ) -> T {
        self.inner.allreduce(group, bytes, value, op)
    }
    fn allgatherv<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &NativeGroup,
        bytes: u64,
        value: T,
    ) -> Vec<T> {
        self.inner.allgatherv(group, bytes, value)
    }
    fn bcast<T: Wire + Clone + Send + 'static>(
        &mut self,
        group: &NativeGroup,
        root: usize,
        bytes: u64,
        value: Option<T>,
    ) -> T {
        self.inner.bcast(group, root, bytes, value)
    }
    fn split(&mut self, group: &NativeGroup, color: Option<i64>, key: i64) -> Option<NativeGroup> {
        self.inner.split(group, color, key)
    }
    fn alloc_channel_id(&mut self) -> u16 {
        self.inner.alloc_channel_id()
    }

    fn check_register_channel(&mut self, id: u16, window: Option<u64>, _credit_tag: Tag) {
        if let Some(w) = window {
            self.ledger.windows.lock().unwrap().insert(id, w);
        }
    }
    fn check_data_sent(&mut self, id: u16, consumer: usize, elems: u64) {
        let me = self.inner.world_rank();
        self.ledger.data_sent(id, me, consumer, elems);
    }
    fn check_credit_issued(&mut self, id: u16, producer: usize, elems: u64) {
        let me = self.inner.world_rank();
        self.ledger.credit_issued(id, producer, me, elems);
    }
}

/// A credited, aggregated stream pipeline on real threads with the credit
/// hooks audited, across the batch spectrum: unbatched (1), mid-window
/// (4), and the maximum the validator allows for credits 8 / aggregation
/// 2 (7). Conservation plus a clean ledger means the batched
/// acknowledgement path neither overruns the window nor invents credit.
#[test]
fn batched_credits_never_overrun_the_window() {
    for credit_batch in [1usize, 4, 7] {
        let per = iters(3_000);
        let nprocs = 6usize;
        let every = 3usize; // producers {0,1,3,4}, consumers {2,5}
        let ledger = Arc::new(CreditLedger::default());
        let received = Arc::new(Mutex::new(Vec::<u64>::new()));
        let (l2, r2) = (Arc::clone(&ledger), Arc::clone(&received));
        with_watchdog("batched_credit_audit", 240, move || {
            NativeWorld::new(nprocs).run(move |rank| {
                let mut rank = Audited { inner: rank, ledger: Arc::clone(&l2) };
                let comm = rank.world_group();
                let spec = GroupSpec { every };
                let role = spec.role_of(rank.world_rank());
                let ch = StreamChannel::create(
                    &mut rank,
                    &comm,
                    role,
                    ChannelConfig {
                        element_bytes: 64,
                        aggregation: 2,
                        credits: Some(8),
                        route: RoutePolicy::RoundRobin,
                        credit_batch,
                        ..ChannelConfig::default()
                    },
                );
                let mut stream: Stream<u64> = Stream::attach(ch);
                match role {
                    Role::Producer => {
                        let me = rank.world_rank() as u64;
                        for i in 0..per {
                            stream.isend(&mut rank, (me << 32) | i);
                        }
                        stream.terminate(&mut rank);
                    }
                    Role::Consumer => {
                        stream.operate(&mut rank, |_, v| r2.lock().unwrap().push(v));
                    }
                    Role::Bystander => unreachable!(),
                }
            });
        });
        let violations = ledger.violations.lock().unwrap();
        assert!(violations.is_empty(), "credit_batch {credit_batch}: {violations:?}");
        let mut got = received.lock().unwrap().clone();
        got.sort_unstable();
        let mut want: Vec<u64> =
            [0u64, 1, 3, 4].iter().flat_map(|&p| (0..per).map(move |i| (p << 32) | i)).collect();
        want.sort_unstable();
        assert_eq!(got, want, "credit_batch {credit_batch}: conservation");
        // Whatever credit was still pending at termination, nothing ended
        // negative: the consumer never acknowledged phantom elements.
        let out = ledger.outstanding.lock().unwrap();
        assert!(out.values().all(|&o| o >= 0), "negative outstanding: {out:?}");
    }
}

// ---------------------------------------------------------------------
// Tree collectives under repetition
// ---------------------------------------------------------------------

/// Many rounds of the full collective subset on a non-power-of-two world
/// *and* on split subgroups, with analytic expected values every round. A
/// single cross-matched tree hop (wrong parent/child pairing, tag
/// aliasing between reduce and bcast phases, a stale registry id) either
/// deadlocks (watchdog) or fails an equality.
#[test]
fn tree_collectives_survive_repetition_and_splits() {
    let rounds = iters(200);
    let nprocs = 9usize; // odd: exercises clipped binomial trees
    with_watchdog("tree_collective_repetition", 240, move || {
        NativeWorld::new(nprocs).run(move |rank| {
            let world = rank.world_group();
            let me = rank.world_rank() as u64;
            let n = nprocs as u64;
            let sub = rank
                .split(&world, Some((rank.world_rank() % 2) as i64), me as i64)
                .expect("every rank participates");
            let subsize = sub.size() as u64;
            let my_sub = sub.rank_of(rank.world_rank()).unwrap() as u64;
            for r in 0..rounds {
                rank.barrier(&world);
                let sum = rank.allreduce(&world, 8, me + r, |a, b| *a += b);
                assert_eq!(sum, n * (n - 1) / 2 + n * r);
                let all = rank.allgatherv(&world, 8, (me, r));
                assert_eq!(all.len(), nprocs);
                assert!(all.iter().enumerate().all(|(i, &(w, rr))| w == i as u64 && rr == r));
                let root = (r % n) as usize;
                let got = rank.bcast(&world, root, 8, (rank.world_rank() == root).then_some(r));
                assert_eq!(got, r);
                // The same subset on the split cell: ids and tags must not
                // cross-talk with the world's collectives.
                let ssum = rank.allreduce(&sub, 8, my_sub, |a, b| *a += b);
                assert_eq!(ssum, subsize * (subsize - 1) / 2);
            }
        });
    });
}

// ---------------------------------------------------------------------
// Randomized interleavings (vendored proptest)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random pipelines against a bare mailbox: random producer counts,
    /// message counts, tag spreads and a randomized consumption plan
    /// mixing blocking wildcard takes, blocking directed takes, polls and
    /// probes. Conservation and per-(source, tag) FIFO must hold on every
    /// interleaving the OS scheduler happens to produce.
    #[test]
    fn randomized_interleavings_conserve_and_order(
        producers in 1usize..5,
        per in 1u64..400,
        ntags in 1u32..4,
        plan_seed in any::<u64>(),
    ) {
        let mb = Arc::new(Mailbox::new());
        std::thread::scope(|s| {
            for p in 0..producers {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for i in 0..per {
                        mb.push(env_msg(p, Tag::user(1 + (i % ntags as u64) as u32), i));
                        if i % 17 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Remaining counts per (src, tag) and per tag — blocking takes
            // are only issued where a message is still owed, so the plan
            // can never deadlock.
            let mut per_src_tag = vec![vec![0u64; ntags as usize]; producers];
            for counts in per_src_tag.iter_mut() {
                for (t, c) in counts.iter_mut().enumerate() {
                    *c = (per + (ntags as u64 - 1) - t as u64) / ntags as u64;
                }
            }
            let mut per_tag: Vec<u64> = (0..ntags as usize)
                .map(|t| per_src_tag.iter().map(|c| c[t]).sum())
                .collect();
            let mut last = vec![vec![None::<u64>; ntags as usize]; producers];
            let mut state = plan_seed;
            let step = |s: &mut u64| {
                *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *s >> 33
            };
            while per_tag.iter().any(|&c| c > 0) {
                let r = step(&mut state);
                let tag_idx = (r % ntags as u64) as usize;
                let tag = Tag::user(1 + tag_idx as u32);
                match r % 5 {
                    // Blocking wildcard take on a tag still owed messages.
                    0 | 1 if per_tag[tag_idx] > 0 => {
                        let (src, seq) = seq_of(mb.take(Src::Any, tag));
                        prop_assert!(last[src][tag_idx].is_none_or(|l| seq > l));
                        last[src][tag_idx] = Some(seq);
                        per_src_tag[src][tag_idx] -= 1;
                        per_tag[tag_idx] -= 1;
                    }
                    // Blocking directed take where that source still owes.
                    2 => {
                        let p = (r / 7) as usize % producers;
                        if per_src_tag[p][tag_idx] > 0 {
                            let (src, seq) = seq_of(mb.take(Src::Rank(p), tag));
                            prop_assert_eq!(src, p);
                            prop_assert!(last[p][tag_idx].is_none_or(|l| seq > l));
                            last[p][tag_idx] = Some(seq);
                            per_src_tag[p][tag_idx] -= 1;
                            per_tag[tag_idx] -= 1;
                        }
                    }
                    // Poll: consume only if something is ready.
                    3 => {
                        if let Some(env) = mb.try_take(Src::Any, tag) {
                            let (src, seq) = seq_of(env);
                            prop_assert!(last[src][tag_idx].is_none_or(|l| seq > l));
                            last[src][tag_idx] = Some(seq);
                            per_src_tag[src][tag_idx] -= 1;
                            per_tag[tag_idx] -= 1;
                        }
                    }
                    // Probe: must never consume.
                    _ => {
                        if let Some(info) = mb.probe(Src::Any, tag) {
                            prop_assert_eq!(info.tag, tag);
                            prop_assert!(per_tag[tag_idx] > 0, "probe saw a message nobody owes");
                        }
                    }
                }
            }
            prop_assert!(per_src_tag.iter().all(|c| c.iter().all(|&x| x == 0)));
        });
        // Fully drained: nothing left on any tag.
        for t in 0..ntags {
            prop_assert!(mb.try_take(Src::Any, Tag::user(1 + t)).is_none());
        }
    }
}
